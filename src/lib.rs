//! # cavm — Correlation-Aware VM Allocation for Energy-Efficient Datacenters
//!
//! A from-scratch Rust reproduction of Kim, Ruggiero, Atienza &
//! Lederberger, *"Correlation-Aware Virtual Machine Allocation for
//! Energy-Efficient Datacenters"*, DATE 2013.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`trace`] — time-series substrate (sampled signals, streaming stats,
//!   envelopes, deterministic RNG).
//! * [`workload`] — workload generators (client waveforms, web-search
//!   clusters, datacenter trace synthesis, PARSEC-like stream profiles).
//! * [`power`] — DVFS ladders, power models, energy metering.
//! * [`microarch`] — shared-cache interference simulator (paper Table I).
//! * [`cluster`] — discrete-event web-search cluster simulator (paper
//!   Setup-1: Figs 1, 4, 5).
//! * [`core`] — the paper's contribution: the correlation cost metric
//!   (Eqn 1), cost matrix, server cost (Eqn 2), the UPDATE/ALLOCATE
//!   placement heuristic (Fig 2), baselines (FFD, BFD, PCP, SuperVM)
//!   and the frequency decision (Eqn 4).
//! * [`sim`] — the online datacenter controller (event-driven VM
//!   lifecycle, incremental admissions, streaming metric sinks) and
//!   the batch trace-driven simulator built on it (paper Setup-2:
//!   Table II, Fig 6).
//!
//! # Quickstart
//!
//! ```
//! use cavm::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Synthesize a tiny datacenter of 8 VMs in 2 correlated groups
//! // (4 hours of traces keep the doctest fast).
//! let fleet = DatacenterTraceBuilder::new(8)
//!     .groups(2)
//!     .seed(7)
//!     .duration_hours(4.0)
//!     .build()?;
//!
//! // Score pairwise correlation with the paper's cost metric (Eqn 1).
//! let traces = fleet.traces();
//! let matrix = CostMatrix::from_traces(&traces, Reference::Peak)?;
//!
//! // Place the VMs on a heterogeneous fleet: a few dense 16-core
//! // boxes in front of the paper's 8-core Xeons.
//! let servers = ServerFleet::new(vec![
//!     ServerClass::new("octo", 20, 8.0, LinearPowerModel::xeon_e5410())?,
//!     ServerClass::new(
//!         "hexadeca",
//!         4,
//!         16.0,
//!         LinearPowerModel::xeon_e5410().scaled(1.85)?,
//!     )?,
//! ])?;
//! let vms = VmDescriptor::from_traces(&traces, Reference::Peak)?;
//! let placement = ProposedPolicy::default().place(&vms, &matrix, &servers)?;
//! assert!(placement.server_count() >= 1);
//!
//! // Pick each server's frequency by Eqn (4), on its own class ladder.
//! let planner = FleetFrequencyPlanner::new(&servers);
//! for (s, members) in placement.servers().iter().enumerate() {
//!     let class = placement.class_of(s).unwrap();
//!     let demand: f64 = members.iter().map(|&id| vms[id].demand).sum();
//!     let cost = server_cost_of(members, &vms, &matrix);
//!     let f = planner.static_level_correlation_aware(class, demand, cost.max(1.0))?;
//!     assert!(f >= servers.class(class).unwrap().ladder().min());
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use cavm_cluster as cluster;
pub use cavm_core as core;
pub use cavm_microarch as microarch;
pub use cavm_power as power;
pub use cavm_sim as sim;
pub use cavm_trace as trace;
pub use cavm_workload as workload;

/// The most commonly used items across the workspace, in one import.
pub mod prelude {
    pub use cavm_cluster::{
        run_setup1, ClusterSim, ClusterSimConfig, Setup1Config, Setup1Placement,
    };
    pub use cavm_core::{
        alloc::{
            AllocationPolicy, BfdPolicy, FfdPolicy, PcpPolicy, Placement, ProposedPolicy,
            SuperVmPolicy, VmDescriptor,
        },
        corr::{cost_of_traces, CostMatrix, CostMetric, PearsonStream},
        dvfs::{DvfsMode, FleetFrequencyPlanner, FrequencyPlanner},
        fleet::{ServerClass, ServerFleet, ServerHealth},
        predict::{EwmaPredictor, LastValuePredictor, MovingAveragePredictor, Predictor},
        servercost::{server_cost, server_cost_of},
    };
    pub use cavm_microarch::{machine::Machine, stream::StreamProfile};
    pub use cavm_power::{DvfsLadder, EnergyMeter, Frequency, LinearPowerModel, PowerModel};
    pub use cavm_sim::{
        Buffered, ClassBreakdown, ControllerConfig, DatacenterController, MergedReport, MetricSink,
        NullSink, PeriodRecord, Policy, QosGuard, RepackEvent, RepackReason, RepackTrigger,
        ReportSink, Scenario, ScenarioBuilder, ServiceReport, SessionEvent, SessionHost, SimReport,
        SinkEvent, SlackController, Threaded, ViolationEvent, VmEvent, WhatIf, WhatIfDelta,
    };
    pub use cavm_trace::{Envelope, Reference, SimRng, TimeSeries};
    pub use cavm_workload::{
        clients::ClientWave,
        datacenter::{DailyArchetype, DatacenterTraceBuilder, VmFleet},
        dataset::{
            assemble, AzureTraceReader, DemandModel, HuaweiTraceReader, SyntheticApp,
            SyntheticTrace, SyntheticTraceBuilder, TraceDataset, TraceRecord,
        },
        faults::{FaultEntry, FaultKind, FaultModel, FaultPlan, FaultPlanBuilder},
        lifecycle::{ArrivalProcess, Lifecycle, LifecycleBuilder, LifecycleEntry, LifetimeModel},
        websearch::WebSearchCluster,
    };
}
