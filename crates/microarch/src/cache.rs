//! Set-associative LRU caches.

use crate::MicroarchError;
use serde::{Deserialize, Serialize};

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// A 64 KiB, 2-way, 64 B-line L1 (Opteron-6174-like).
    pub fn l1_opteron() -> Self {
        Self {
            size_bytes: 64 * 1024,
            line_bytes: 64,
            ways: 2,
        }
    }

    /// A 512 KiB, 16-way, 64 B-line per-core L2 (Opteron-6174-like; the
    /// paper's Table I reports L2 statistics on this machine).
    pub fn l2_opteron() -> Self {
        Self {
            size_bytes: 512 * 1024,
            line_bytes: 64,
            ways: 16,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }

    fn validate(&self) -> crate::Result<()> {
        if self.size_bytes == 0 || self.line_bytes == 0 || self.ways == 0 {
            return Err(MicroarchError::BadGeometry(
                "all dimensions must be non-zero",
            ));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(MicroarchError::BadGeometry(
                "line size must be a power of two",
            ));
        }
        if !self.size_bytes.is_multiple_of(self.line_bytes * self.ways) {
            return Err(MicroarchError::BadGeometry(
                "size must be divisible by line size × ways",
            ));
        }
        if !self.sets().is_power_of_two() {
            return Err(MicroarchError::BadGeometry(
                "set count must be a power of two",
            ));
        }
        Ok(())
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled (possibly evicting the
    /// least-recently-used line of its set).
    Miss,
}

/// A set-associative cache with true-LRU replacement.
///
/// # Example
///
/// ```
/// use cavm_microarch::cache::{Access, Cache, CacheConfig};
///
/// # fn main() -> Result<(), cavm_microarch::MicroarchError> {
/// let mut cache = Cache::new(CacheConfig { size_bytes: 1024, line_bytes: 64, ways: 2 })?;
/// assert_eq!(cache.access(0x40), Access::Miss);
/// assert_eq!(cache.access(0x40), Access::Hit);
/// assert_eq!(cache.access(0x44), Access::Hit); // same line
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    set_mask: u64,
    line_shift: u32,
    /// Per set: tags ordered most-recently-used first.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty cache.
    ///
    /// # Errors
    ///
    /// Returns [`MicroarchError::BadGeometry`] for inconsistent
    /// dimensions.
    pub fn new(config: CacheConfig) -> crate::Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            set_mask: (config.sets() - 1) as u64,
            line_shift: config.line_bytes.trailing_zeros(),
            sets: vec![Vec::with_capacity(config.ways); config.sets()],
            hits: 0,
            misses: 0,
        })
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Performs one access (read semantics; fills on miss).
    pub fn access(&mut self, addr: u64) -> Access {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.config.sets().trailing_zeros();
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.insert(0, t);
            self.hits += 1;
            Access::Hit
        } else {
            if set.len() == self.config.ways {
                set.pop(); // evict LRU
            }
            set.insert(0, tag);
            self.misses += 1;
            Access::Miss
        }
    }

    /// Accesses observed so far.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `[0, 1]`, 0.0 before any access.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }

    /// Clears only the hit/miss counters (contents stay warm).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
        })
        .unwrap()
    }

    #[test]
    fn geometry_validation() {
        assert!(Cache::new(CacheConfig {
            size_bytes: 0,
            line_bytes: 64,
            ways: 2
        })
        .is_err());
        assert!(Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 60,
            ways: 2
        })
        .is_err());
        assert!(Cache::new(CacheConfig {
            size_bytes: 500,
            line_bytes: 64,
            ways: 2
        })
        .is_err());
        // 3 sets: not a power of two.
        assert!(Cache::new(CacheConfig {
            size_bytes: 384,
            line_bytes: 64,
            ways: 2
        })
        .is_err());
        assert_eq!(CacheConfig::l1_opteron().sets(), 512);
        assert_eq!(CacheConfig::l2_opteron().sets(), 512);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert_eq!(c.access(0x1000), Access::Miss);
        assert_eq!(c.access(0x1000), Access::Hit);
        assert_eq!(c.access(0x103F), Access::Hit, "same 64-byte line");
        assert_eq!(c.access(0x1040), Access::Miss, "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.accesses(), 4);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets × line =
        // 4 × 64 = 256) in a 2-way set: the third evicts the first.
        assert_eq!(c.access(0x0000), Access::Miss);
        assert_eq!(c.access(0x0100), Access::Miss);
        // Touch the first to make the second LRU.
        assert_eq!(c.access(0x0000), Access::Hit);
        assert_eq!(c.access(0x0200), Access::Miss); // evicts 0x0100
        assert_eq!(c.access(0x0000), Access::Hit);
        assert_eq!(c.access(0x0100), Access::Miss, "was evicted");
    }

    #[test]
    fn working_set_within_capacity_converges_to_hits() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 4096,
            line_bytes: 64,
            ways: 4,
        })
        .unwrap();
        // 32 lines < 64-line capacity: after the first pass, all hits.
        for pass in 0..3 {
            c.reset_counters();
            for i in 0..32u64 {
                c.access(i * 64);
            }
            if pass > 0 {
                assert_eq!(c.misses(), 0, "pass {pass}");
            }
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = tiny(); // 8 lines capacity
                            // 16 lines cycled: pure LRU round-robin thrashes every access.
        for _ in 0..4 {
            for i in 0..16u64 {
                c.access(i * 64);
            }
        }
        assert!(c.miss_rate() > 0.9, "miss rate {}", c.miss_rate());
    }

    #[test]
    fn reset_clears_contents() {
        let mut c = tiny();
        c.access(0x40);
        c.reset();
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.access(0x40), Access::Miss);
    }
}
