use std::fmt;

/// Errors produced by the microarchitectural models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MicroarchError {
    /// A cache geometry parameter was invalid (zero, not a power of two
    /// where required, or inconsistent).
    BadGeometry(&'static str),
    /// A workload or machine parameter was out of range.
    InvalidParameter(&'static str),
}

impl fmt::Display for MicroarchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MicroarchError::BadGeometry(what) => write!(f, "bad cache geometry: {what}"),
            MicroarchError::InvalidParameter(what) => {
                write!(f, "invalid parameter: {what}")
            }
        }
    }
}

impl std::error::Error for MicroarchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!MicroarchError::BadGeometry("x").to_string().is_empty());
        assert!(!MicroarchError::InvalidParameter("y").to_string().is_empty());
    }
}
