//! Synthetic memory reference streams.
//!
//! A [`StreamProfile`] abstracts a workload's memory behaviour into the
//! parameters that determine shared-cache interference. References come
//! in two kinds:
//!
//! * **strided** (probability `stride_fraction`): continue the current
//!   sequential run in 8-byte steps (one new cache line every eight
//!   references), staying inside the region of the last jump;
//! * **jumps**: pick a locality tier — a *hot* set sized to live in the
//!   L1, a *warm* set sized to live in the L2, or the *cold* remainder
//!   of the working set — and land uniformly inside it.
//!
//! The three-tier shape is what the paper's Table I numbers imply for
//! web search: most references hit L1, most L1 misses hit L2 (miss rate
//! ≈ 11%), yet the total footprint dwarfs every cache level, so the L2
//! content turns over constantly and a co-runner cannot make it much
//! worse. Presets are calibrated qualitatively from the CloudSuite
//! characterization (Ferdman et al., ASPLOS 2012) and PARSEC studies.

use crate::MicroarchError;
use cavm_trace::SimRng;
use serde::{Deserialize, Serialize};

/// A synthetic workload's memory personality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamProfile {
    /// Display name.
    pub name: String,
    /// Total touched memory in bytes (hot + warm + cold regions).
    pub working_set_bytes: u64,
    /// Bytes of the L1-resident hot tier.
    pub hot_set_bytes: u64,
    /// Bytes of the L2-resident warm tier.
    pub warm_set_bytes: u64,
    /// Probability that a *jump* targets the hot tier.
    pub hot_fraction: f64,
    /// Probability that a *jump* targets the warm tier (the remainder
    /// goes to the cold tier).
    pub warm_fraction: f64,
    /// Probability that a reference continues the current sequential
    /// run instead of jumping.
    pub stride_fraction: f64,
    /// Memory references per 1000 instructions.
    pub refs_per_kilo_instr: f64,
    /// Cycles per instruction with a perfect cache.
    pub base_cpi: f64,
}

impl StreamProfile {
    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns [`MicroarchError::InvalidParameter`] for inconsistent
    /// parameters.
    pub fn validate(&self) -> crate::Result<()> {
        if self.working_set_bytes == 0 || self.hot_set_bytes == 0 {
            return Err(MicroarchError::InvalidParameter("regions must be non-zero"));
        }
        if self.hot_set_bytes + self.warm_set_bytes > self.working_set_bytes {
            return Err(MicroarchError::InvalidParameter(
                "hot + warm tiers cannot exceed the working set",
            ));
        }
        let fractions_ok = (0.0..=1.0).contains(&self.hot_fraction)
            && (0.0..=1.0).contains(&self.warm_fraction)
            && (0.0..=1.0).contains(&self.stride_fraction)
            && self.hot_fraction + self.warm_fraction <= 1.0;
        if !fractions_ok {
            return Err(MicroarchError::InvalidParameter(
                "tier fractions must lie in [0, 1] and sum to at most 1",
            ));
        }
        if !(self.refs_per_kilo_instr > 0.0 && self.refs_per_kilo_instr.is_finite()) {
            return Err(MicroarchError::InvalidParameter(
                "memory intensity must be > 0",
            ));
        }
        if !(self.base_cpi > 0.0 && self.base_cpi.is_finite()) {
            return Err(MicroarchError::InvalidParameter("base cpi must be > 0"));
        }
        Ok(())
    }

    /// CloudSuite web search (Nutch ISN): a footprint far beyond any
    /// on-chip cache, yet high L1/L2 hit rates on its hot index
    /// structures — the paper's primary workload (Table I: IPC ≈ 0.75,
    /// L2 MPKI ≈ 2.4, L2 miss rate ≈ 11%).
    pub fn web_search() -> Self {
        Self {
            name: "websearch".into(),
            working_set_bytes: 256 * 1024 * 1024,
            hot_set_bytes: 32 * 1024,
            warm_set_bytes: 224 * 1024,
            hot_fraction: 0.82,
            warm_fraction: 0.162,
            stride_fraction: 0.30,
            refs_per_kilo_instr: 220.0,
            base_cpi: 0.60,
        }
    }

    /// PARSEC Blackscholes: tiny working set, compute bound.
    pub fn blackscholes() -> Self {
        Self {
            name: "blackscholes".into(),
            working_set_bytes: 2 * 1024 * 1024,
            hot_set_bytes: 32 * 1024,
            warm_set_bytes: 192 * 1024,
            hot_fraction: 0.75,
            warm_fraction: 0.22,
            stride_fraction: 0.70,
            refs_per_kilo_instr: 150.0,
            base_cpi: 0.70,
        }
    }

    /// PARSEC Swaptions: small working set, compute bound.
    pub fn swaptions() -> Self {
        Self {
            name: "swaptions".into(),
            working_set_bytes: 1024 * 1024,
            hot_set_bytes: 32 * 1024,
            warm_set_bytes: 128 * 1024,
            hot_fraction: 0.8,
            warm_fraction: 0.18,
            stride_fraction: 0.5,
            refs_per_kilo_instr: 120.0,
            base_cpi: 0.65,
        }
    }

    /// PARSEC Facesim: mid-size working set, streaming passes.
    pub fn facesim() -> Self {
        Self {
            name: "facesim".into(),
            working_set_bytes: 48 * 1024 * 1024,
            hot_set_bytes: 32 * 1024,
            warm_set_bytes: 256 * 1024,
            hot_fraction: 0.72,
            warm_fraction: 0.22,
            stride_fraction: 0.6,
            refs_per_kilo_instr: 220.0,
            base_cpi: 0.8,
        }
    }

    /// PARSEC Canneal: large working set, pointer-chasing random
    /// accesses — the most cache-hungry PARSEC member.
    pub fn canneal() -> Self {
        Self {
            name: "canneal".into(),
            working_set_bytes: 192 * 1024 * 1024,
            hot_set_bytes: 32 * 1024,
            warm_set_bytes: 256 * 1024,
            hot_fraction: 0.66,
            warm_fraction: 0.24,
            stride_fraction: 0.08,
            refs_per_kilo_instr: 280.0,
            base_cpi: 0.85,
        }
    }

    /// A deliberately cache-*resident* workload — its whole footprint
    /// fits the shared L3 (though not the private L2) — used as the
    /// contrast case: co-location with a cache-hungry neighbour evicts
    /// its L3-resident set and hurts it.
    pub fn cache_resident() -> Self {
        Self {
            name: "cache-resident".into(),
            working_set_bytes: 3 * 1024 * 1024,
            hot_set_bytes: 32 * 1024,
            warm_set_bytes: 448 * 1024,
            hot_fraction: 0.45,
            warm_fraction: 0.25,
            stride_fraction: 0.3,
            refs_per_kilo_instr: 250.0,
            base_cpi: 0.6,
        }
    }

    /// The paper's Table I co-runner set.
    pub fn parsec_corunners() -> Vec<StreamProfile> {
        vec![
            Self::blackscholes(),
            Self::swaptions(),
            Self::facesim(),
            Self::canneal(),
        ]
    }
}

/// Locality tier of the last jump; strided runs stay inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Hot,
    Warm,
    Cold,
}

/// Stateful address generator for one workload.
#[derive(Debug, Clone)]
pub struct AddressStream {
    profile: StreamProfile,
    /// Base offset so two streams never alias (distinct address
    /// spaces).
    base: u64,
    cursor: u64,
    tier: Tier,
    rng: SimRng,
}

impl AddressStream {
    /// Creates a stream over the profile's address space, offset by
    /// `base` (use distinct bases for co-located workloads).
    ///
    /// # Errors
    ///
    /// Propagates profile validation errors.
    pub fn new(profile: StreamProfile, base: u64, seed: u64) -> crate::Result<Self> {
        profile.validate()?;
        Ok(Self {
            profile,
            base,
            cursor: base,
            tier: Tier::Hot,
            rng: SimRng::new(seed),
        })
    }

    /// The profile.
    pub fn profile(&self) -> &StreamProfile {
        &self.profile
    }

    /// Region bounds `[lo, hi)` of a tier.
    fn tier_bounds(&self, tier: Tier) -> (u64, u64) {
        let p = &self.profile;
        match tier {
            Tier::Hot => (self.base, self.base + p.hot_set_bytes),
            Tier::Warm => (
                self.base + p.hot_set_bytes,
                self.base + p.hot_set_bytes + p.warm_set_bytes,
            ),
            Tier::Cold => {
                let lo = self.base + p.hot_set_bytes + p.warm_set_bytes;
                let hi = self.base + p.working_set_bytes;
                if lo >= hi {
                    // Degenerate: no cold tier; fall back to warm.
                    self.tier_bounds(Tier::Warm)
                } else {
                    (lo, hi)
                }
            }
        }
    }

    /// Produces the next reference address.
    pub fn next_address(&mut self) -> u64 {
        let p = &self.profile;
        if self.rng.f64() < p.stride_fraction {
            // Continue the sequential run in 8-byte steps (one new
            // cache line per eight references), wrapping within the
            // current tier.
            let (lo, hi) = self.tier_bounds(self.tier);
            self.cursor += 8;
            if self.cursor >= hi {
                self.cursor = lo;
            }
            self.cursor
        } else {
            let t = self.rng.f64();
            let tier = if t < p.hot_fraction {
                Tier::Hot
            } else if t < p.hot_fraction + p.warm_fraction {
                Tier::Warm
            } else {
                Tier::Cold
            };
            self.tier = tier;
            let (lo, hi) = self.tier_bounds(tier);
            self.cursor = lo + self.rng.next_u64() % (hi - lo).max(8);
            self.cursor
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for p in [
            StreamProfile::web_search(),
            StreamProfile::blackscholes(),
            StreamProfile::swaptions(),
            StreamProfile::facesim(),
            StreamProfile::canneal(),
            StreamProfile::cache_resident(),
        ] {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
        assert_eq!(StreamProfile::parsec_corunners().len(), 4);
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        let mut p = StreamProfile::blackscholes();
        p.working_set_bytes = 0;
        assert!(p.validate().is_err());
        let mut p = StreamProfile::blackscholes();
        p.hot_set_bytes = p.working_set_bytes;
        p.warm_set_bytes = 1;
        assert!(p.validate().is_err());
        let mut p = StreamProfile::blackscholes();
        p.hot_fraction = 0.8;
        p.warm_fraction = 0.3;
        assert!(p.validate().is_err());
        let mut p = StreamProfile::blackscholes();
        p.stride_fraction = -0.1;
        assert!(p.validate().is_err());
        let mut p = StreamProfile::blackscholes();
        p.refs_per_kilo_instr = 0.0;
        assert!(p.validate().is_err());
        let mut p = StreamProfile::blackscholes();
        p.base_cpi = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn addresses_stay_in_the_window() {
        let base = 1 << 40;
        let p = StreamProfile::facesim();
        let ws = p.working_set_bytes;
        let mut s = AddressStream::new(p, base, 7).unwrap();
        for _ in 0..50_000 {
            let a = s.next_address();
            assert!(
                a >= base && a < base + ws + 64,
                "address {a:#x} out of window"
            );
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = AddressStream::new(StreamProfile::canneal(), 0, 3).unwrap();
        let mut b = AddressStream::new(StreamProfile::canneal(), 0, 3).unwrap();
        for _ in 0..1000 {
            assert_eq!(a.next_address(), b.next_address());
        }
    }

    #[test]
    fn distinct_bases_do_not_alias() {
        let mut a = AddressStream::new(StreamProfile::blackscholes(), 0, 3).unwrap();
        let base_b = 1 << 42;
        let mut b = AddressStream::new(StreamProfile::blackscholes(), base_b, 3).unwrap();
        for _ in 0..1000 {
            assert!(a.next_address() < base_b);
            assert!(b.next_address() >= base_b);
        }
    }

    #[test]
    fn stride_advances_by_eight_bytes() {
        let mut p = StreamProfile::blackscholes();
        p.stride_fraction = 1.0;
        let mut s = AddressStream::new(p, 0, 5).unwrap();
        let first = s.next_address();
        let second = s.next_address();
        assert_eq!(second, first + 8);
    }

    #[test]
    fn hot_tier_dominates_when_configured() {
        let mut p = StreamProfile::web_search();
        p.stride_fraction = 0.0;
        let hot_limit = p.hot_set_bytes;
        let hot_fraction = p.hot_fraction;
        let mut s = AddressStream::new(p, 0, 11).unwrap();
        let n = 100_000;
        let hot_hits = (0..n).filter(|_| s.next_address() < hot_limit).count();
        let measured = hot_hits as f64 / n as f64;
        assert!(
            (measured - hot_fraction).abs() < 0.01,
            "hot fraction {measured} vs configured {hot_fraction}"
        );
    }
}
