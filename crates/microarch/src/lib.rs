//! Microarchitectural interference substrate (paper Table I).
//!
//! §III-B of the paper justifies core sharing with a measurement: a web
//! search application co-located with PARSEC workloads shows *negligible*
//! change in IPC, L2 MPKI and L2 miss rate, because its working set is
//! "far beyond the amount an on-chip cache can sustain" — it misses in
//! L2 with or without a co-runner. This crate reproduces that experiment
//! in simulation:
//!
//! * [`cache`] — set-associative LRU caches (private L1, shared L2);
//! * [`stream`] — synthetic memory reference generators parameterized by
//!   working-set size, hot-set locality and stride behaviour, with
//!   profiles for the paper's workloads (web search, Blackscholes,
//!   Swaptions, Facesim, Canneal);
//! * [`machine`] — an in-order core model (CPI = base + miss penalties)
//!   and the co-location harness: run a workload alone, then
//!   fine-grained-interleaved with a co-runner on a shared L2, and
//!   compare IPC / L2 MPKI / L2 miss rate.
//!
//! The substrate also reproduces the *contrast* the paper's argument
//! implies: a cache-resident workload (working set ≲ L2) co-located with
//! a cache-hungry one degrades substantially — core sharing is only free
//! for scale-out workloads.
//!
//! # Example
//!
//! ```
//! use cavm_microarch::{machine::Machine, stream::StreamProfile};
//!
//! # fn main() -> Result<(), cavm_microarch::MicroarchError> {
//! let machine = Machine::opteron_like()?;
//! let solo = machine.run_solo(&StreamProfile::web_search(), 200_000, 1)?;
//! let (with_corunner, _) = machine.run_pair(
//!     &StreamProfile::web_search(),
//!     &StreamProfile::blackscholes(),
//!     200_000,
//!     1,
//! )?;
//! // Co-location barely moves the web-search IPC.
//! let delta = (solo.ipc - with_corunner.ipc).abs() / solo.ipc;
//! assert!(delta < 0.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod error;
pub mod machine;
pub mod stream;

pub use cache::{Cache, CacheConfig};
pub use error::MicroarchError;
pub use machine::{Machine, WorkloadMetrics};
pub use stream::StreamProfile;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MicroarchError>;
