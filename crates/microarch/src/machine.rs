//! The co-location machine model: private L1/L2 per core, a shared L3,
//! in-order cores.
//!
//! This mirrors the paper's Table I testbed (AMD Opteron 6174): each
//! core owns a 64 KiB L1 and a 512 KiB L2; co-located workloads contend
//! only in the shared last-level cache and memory. That topology is the
//! deep reason Table I is so flat — the reported metrics are *private
//! L2* statistics, which a co-runner can only disturb indirectly, and a
//! scale-out workload's cold footprint misses past the L3 regardless of
//! who its neighbour is.
//!
//! Per-workload cost accounting follows the classic in-order model:
//!
//! ```text
//! CPI = base_cpi + refs/instr · ( P(L1 miss, L2 hit) · l2_hit_cycles
//!                               + P(L2 miss, L3 hit) · l3_hit_cycles
//!                               + P(L3 miss)         · mem_cycles )
//! ```
//!
//! Reported metrics match Table I's columns: IPC, L2 MPKI
//! (misses / kilo-instruction) and L2 miss rate.

use crate::cache::{Access, Cache, CacheConfig};
use crate::stream::{AddressStream, StreamProfile};
use crate::MicroarchError;
use serde::{Deserialize, Serialize};

/// Table I's per-workload metrics (plus L3 diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMetrics {
    /// Instructions per cycle.
    pub ipc: f64,
    /// Private-L2 misses per 1000 instructions.
    pub l2_mpki: f64,
    /// Private-L2 miss rate over L2 accesses, in `[0, 1]`.
    pub l2_miss_rate: f64,
    /// Shared-L3 misses per 1000 instructions.
    pub l3_mpki: f64,
    /// Shared-L3 miss rate over L3 accesses, in `[0, 1]`.
    pub l3_miss_rate: f64,
    /// Instructions simulated.
    pub instructions: u64,
}

/// Machine configuration: cache hierarchy and penalty cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Private L1 geometry (one per workload).
    pub l1: CacheConfig,
    /// Private L2 geometry (one per workload).
    pub l2: CacheConfig,
    /// Shared L3 geometry.
    pub l3: CacheConfig,
    /// L1-miss/L2-hit service latency in cycles.
    pub l2_hit_cycles: f64,
    /// L2-miss/L3-hit service latency in cycles.
    pub l3_hit_cycles: f64,
    /// L3-miss/memory service latency in cycles.
    pub mem_cycles: f64,
    /// Instructions per interleave quantum when co-located.
    pub quantum_instructions: u64,
    /// Instructions executed before measurement starts (caches warm up,
    /// then all counters reset). Compulsory misses would otherwise
    /// dominate short runs.
    pub warmup_instructions: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            l1: CacheConfig::l1_opteron(),
            l2: CacheConfig::l2_opteron(),
            // One die of the Opteron 6174 package: 6 MiB L3 minus the
            // HT-Assist probe filter, rounded to a power-of-two set count.
            l3: CacheConfig {
                size_bytes: 4 * 1024 * 1024,
                line_bytes: 64,
                ways: 16,
            },
            l2_hit_cycles: 12.0,
            l3_hit_cycles: 45.0,
            mem_cycles: 200.0,
            quantum_instructions: 1000,
            warmup_instructions: 1_000_000,
        }
    }
}

/// The co-location simulator.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
}

impl Machine {
    /// Builds a machine.
    ///
    /// # Errors
    ///
    /// Returns geometry errors from the cache configs and
    /// [`MicroarchError::InvalidParameter`] for non-increasing
    /// latencies or a zero quantum.
    pub fn new(config: MachineConfig) -> crate::Result<Self> {
        Cache::new(config.l1)?;
        Cache::new(config.l2)?;
        Cache::new(config.l3)?;
        let increasing = config.l2_hit_cycles > 0.0
            && config.l3_hit_cycles > config.l2_hit_cycles
            && config.mem_cycles > config.l3_hit_cycles;
        if !increasing {
            return Err(MicroarchError::InvalidParameter(
                "latencies must satisfy 0 < l2_hit < l3_hit < mem",
            ));
        }
        if config.quantum_instructions == 0 {
            return Err(MicroarchError::InvalidParameter(
                "quantum must be >= 1 instruction",
            ));
        }
        Ok(Self { config })
    }

    /// An AMD-Opteron-6174-flavoured machine (the paper's Table I
    /// testbed): private 64 KiB L1 and 512 KiB L2 per workload, shared
    /// 4 MiB L3.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`Machine::new`].
    pub fn opteron_like() -> crate::Result<Self> {
        Self::new(MachineConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Runs one workload alone for `instructions` instructions.
    ///
    /// # Errors
    ///
    /// Propagates profile validation errors.
    pub fn run_solo(
        &self,
        profile: &StreamProfile,
        instructions: u64,
        seed: u64,
    ) -> crate::Result<WorkloadMetrics> {
        let mut ctx = WorkloadContext::new(profile, 0, seed, &self.config)?;
        let mut l3 = Cache::new(self.config.l3)?;
        let warm_quanta = self
            .config
            .warmup_instructions
            .div_ceil(self.config.quantum_instructions);
        for _ in 0..warm_quanta {
            ctx.run_quantum(self.config.quantum_instructions, &mut l3, &self.config);
        }
        ctx.reset_counters();
        l3.reset_counters();
        let quanta = instructions.div_ceil(self.config.quantum_instructions);
        for _ in 0..quanta {
            ctx.run_quantum(self.config.quantum_instructions, &mut l3, &self.config);
        }
        Ok(ctx.metrics())
    }

    /// Runs `primary` and `corunner` interleaved on the shared L3 until
    /// the primary has executed `instructions` instructions (the
    /// co-runner executes the same quantum count). Returns
    /// `(primary, corunner)` metrics.
    ///
    /// # Errors
    ///
    /// Propagates profile validation errors.
    pub fn run_pair(
        &self,
        primary: &StreamProfile,
        corunner: &StreamProfile,
        instructions: u64,
        seed: u64,
    ) -> crate::Result<(WorkloadMetrics, WorkloadMetrics)> {
        // Distinct address-space bases: workloads never share lines.
        let mut a = WorkloadContext::new(primary, 0, seed, &self.config)?;
        let mut b = WorkloadContext::new(corunner, 1 << 44, seed ^ 0x9E37, &self.config)?;
        let mut l3 = Cache::new(self.config.l3)?;
        let warm_quanta = self
            .config
            .warmup_instructions
            .div_ceil(self.config.quantum_instructions);
        for _ in 0..warm_quanta {
            a.run_quantum(self.config.quantum_instructions, &mut l3, &self.config);
            b.run_quantum(self.config.quantum_instructions, &mut l3, &self.config);
        }
        a.reset_counters();
        b.reset_counters();
        l3.reset_counters();
        let quanta = instructions.div_ceil(self.config.quantum_instructions);
        for _ in 0..quanta {
            a.run_quantum(self.config.quantum_instructions, &mut l3, &self.config);
            b.run_quantum(self.config.quantum_instructions, &mut l3, &self.config);
        }
        Ok((a.metrics(), b.metrics()))
    }

    /// Convenience for Table I: metrics of `primary` running alone and
    /// next to each co-runner, as `(solo, Vec<(corunner_name, paired)>)`.
    ///
    /// # Errors
    ///
    /// Propagates profile validation errors.
    pub fn colocation_study(
        &self,
        primary: &StreamProfile,
        corunners: &[StreamProfile],
        instructions: u64,
        seed: u64,
    ) -> crate::Result<(WorkloadMetrics, Vec<(String, WorkloadMetrics)>)> {
        let solo = self.run_solo(primary, instructions, seed)?;
        let mut paired = Vec::with_capacity(corunners.len());
        for co in corunners {
            let (p, _) = self.run_pair(primary, co, instructions, seed)?;
            paired.push((co.name.clone(), p));
        }
        Ok((solo, paired))
    }
}

/// One workload's private state: stream, private caches, accounting.
struct WorkloadContext {
    stream: AddressStream,
    l1: Cache,
    l2: Cache,
    refs_per_instr: f64,
    base_cpi: f64,
    instructions: u64,
    l3_accesses: u64,
    l3_misses: u64,
    cycles: f64,
    /// Fractional carry of memory references between quanta.
    ref_carry: f64,
}

impl WorkloadContext {
    fn new(
        profile: &StreamProfile,
        base: u64,
        seed: u64,
        config: &MachineConfig,
    ) -> crate::Result<Self> {
        Ok(Self {
            stream: AddressStream::new(profile.clone(), base, seed)?,
            l1: Cache::new(config.l1)?,
            l2: Cache::new(config.l2)?,
            refs_per_instr: profile.refs_per_kilo_instr / 1000.0,
            base_cpi: profile.base_cpi,
            instructions: 0,
            l3_accesses: 0,
            l3_misses: 0,
            cycles: 0.0,
            ref_carry: 0.0,
        })
    }

    /// Clears measurement counters after warm-up (cache contents stay).
    fn reset_counters(&mut self) {
        self.instructions = 0;
        self.l3_accesses = 0;
        self.l3_misses = 0;
        self.cycles = 0.0;
        self.l1.reset_counters();
        self.l2.reset_counters();
    }

    fn run_quantum(&mut self, instructions: u64, l3: &mut Cache, config: &MachineConfig) {
        let want = instructions as f64 * self.refs_per_instr + self.ref_carry;
        let refs = want.floor() as u64;
        self.ref_carry = want - refs as f64;
        self.instructions += instructions;
        self.cycles += instructions as f64 * self.base_cpi;
        for _ in 0..refs {
            let addr = self.stream.next_address();
            if self.l1.access(addr) == Access::Hit {
                continue;
            }
            if self.l2.access(addr) == Access::Hit {
                self.cycles += config.l2_hit_cycles;
                continue;
            }
            self.l3_accesses += 1;
            match l3.access(addr) {
                Access::Hit => self.cycles += config.l3_hit_cycles,
                Access::Miss => {
                    self.l3_misses += 1;
                    self.cycles += config.mem_cycles;
                }
            }
        }
    }

    fn metrics(&self) -> WorkloadMetrics {
        let instr = self.instructions as f64;
        WorkloadMetrics {
            ipc: if self.cycles > 0.0 {
                instr / self.cycles
            } else {
                0.0
            },
            l2_mpki: if self.instructions > 0 {
                self.l2.misses() as f64 * 1000.0 / instr
            } else {
                0.0
            },
            l2_miss_rate: self.l2.miss_rate(),
            l3_mpki: if self.instructions > 0 {
                self.l3_misses as f64 * 1000.0 / instr
            } else {
                0.0
            },
            l3_miss_rate: if self.l3_accesses > 0 {
                self.l3_misses as f64 / self.l3_accesses as f64
            } else {
                0.0
            },
            instructions: self.instructions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INSTR: u64 = 1_500_000;

    #[test]
    fn machine_validation() {
        let base = MachineConfig::default();
        let cfg = MachineConfig {
            l2_hit_cycles: 0.0,
            ..base
        };
        assert!(Machine::new(cfg).is_err());
        let cfg = MachineConfig {
            l3_hit_cycles: base.l2_hit_cycles,
            ..base
        };
        assert!(Machine::new(cfg).is_err());
        let cfg = MachineConfig {
            mem_cycles: base.l3_hit_cycles,
            ..base
        };
        assert!(Machine::new(cfg).is_err());
        let cfg = MachineConfig {
            quantum_instructions: 0,
            ..base
        };
        assert!(Machine::new(cfg).is_err());
        assert!(Machine::opteron_like().is_ok());
    }

    #[test]
    fn metrics_are_plausible_for_web_search() {
        let m = Machine::opteron_like().unwrap();
        let ws = m.run_solo(&StreamProfile::web_search(), INSTR, 1).unwrap();
        // Table I ballpark: IPC ~0.7-0.8, MPKI a few, L2 miss ~11%.
        assert!(ws.ipc > 0.45 && ws.ipc < 1.1, "ipc {}", ws.ipc);
        assert!(ws.l2_mpki > 0.8 && ws.l2_mpki < 10.0, "mpki {}", ws.l2_mpki);
        assert!(
            ws.l2_miss_rate > 0.04 && ws.l2_miss_rate < 0.35,
            "miss rate {}",
            ws.l2_miss_rate
        );
        assert_eq!(ws.instructions, INSTR);
    }

    #[test]
    fn web_search_is_insensitive_to_corunners() {
        // The paper's Table I claim: IPC/L2 metrics barely move.
        let m = Machine::opteron_like().unwrap();
        let solo = m.run_solo(&StreamProfile::web_search(), INSTR, 1).unwrap();
        for co in StreamProfile::parsec_corunners() {
            let (paired, _) = m
                .run_pair(&StreamProfile::web_search(), &co, INSTR, 1)
                .unwrap();
            let ipc_delta = (paired.ipc - solo.ipc).abs() / solo.ipc;
            assert!(ipc_delta < 0.06, "{}: ipc delta {ipc_delta}", co.name);
            let mpki_delta = (paired.l2_mpki - solo.l2_mpki).abs() / solo.l2_mpki;
            assert!(mpki_delta < 0.10, "{}: l2 mpki delta {mpki_delta}", co.name);
        }
    }

    #[test]
    fn cache_resident_workload_is_hurt_by_canneal() {
        // The contrast case: sharing is NOT free for workloads whose
        // working set lives in the shared cache — exactly why the
        // paper's argument needs the large-working-set premise.
        let m = Machine::opteron_like().unwrap();
        let solo = m
            .run_solo(&StreamProfile::cache_resident(), INSTR, 1)
            .unwrap();
        let (paired, _) = m
            .run_pair(
                &StreamProfile::cache_resident(),
                &StreamProfile::canneal(),
                INSTR,
                1,
            )
            .unwrap();
        let loss = (solo.ipc - paired.ipc) / solo.ipc;
        assert!(
            loss > 0.05,
            "cache-resident should lose >5% IPC next to canneal, lost {loss}"
        );
        assert!(paired.l3_miss_rate > solo.l3_miss_rate);
    }

    #[test]
    fn small_workloads_barely_interact() {
        let m = Machine::opteron_like().unwrap();
        let solo = m
            .run_solo(&StreamProfile::blackscholes(), INSTR, 1)
            .unwrap();
        let (paired, _) = m
            .run_pair(
                &StreamProfile::blackscholes(),
                &StreamProfile::swaptions(),
                INSTR,
                1,
            )
            .unwrap();
        let delta = (paired.ipc - solo.ipc).abs() / solo.ipc;
        assert!(delta < 0.1, "ipc delta {delta}");
    }

    #[test]
    fn runs_are_deterministic() {
        let m = Machine::opteron_like().unwrap();
        let a = m.run_solo(&StreamProfile::canneal(), 100_000, 9).unwrap();
        let b = m.run_solo(&StreamProfile::canneal(), 100_000, 9).unwrap();
        assert_eq!(a, b);
        let p1 = m
            .run_pair(
                &StreamProfile::canneal(),
                &StreamProfile::facesim(),
                100_000,
                9,
            )
            .unwrap();
        let p2 = m
            .run_pair(
                &StreamProfile::canneal(),
                &StreamProfile::facesim(),
                100_000,
                9,
            )
            .unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn colocation_study_covers_all_corunners() {
        let m = Machine::opteron_like().unwrap();
        let (solo, paired) = m
            .colocation_study(
                &StreamProfile::web_search(),
                &StreamProfile::parsec_corunners(),
                100_000,
                2,
            )
            .unwrap();
        assert_eq!(paired.len(), 4);
        assert!(solo.ipc > 0.0);
        for (name, metrics) in &paired {
            assert!(!name.is_empty());
            assert!(metrics.ipc > 0.0);
        }
    }

    #[test]
    fn higher_memory_intensity_lowers_ipc() {
        let m = Machine::opteron_like().unwrap();
        let mut light = StreamProfile::canneal();
        light.refs_per_kilo_instr = 50.0;
        let mut heavy = StreamProfile::canneal();
        heavy.refs_per_kilo_instr = 400.0;
        let l = m.run_solo(&light, 100_000, 3).unwrap();
        let h = m.run_solo(&heavy, 100_000, 3).unwrap();
        assert!(l.ipc > h.ipc);
    }
}
