//! Fig 1 regenerator, scaled down: ISN utilization-trace synthesis.

use cavm_trace::SimRng;
use cavm_workload::{ClientWave, WebSearchCluster};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cluster = WebSearchCluster::paper_setup1().expect("preset is valid");
    let wave = ClientWave::sine(0.0, 300.0, 600.0).expect("valid wave");
    let clients = wave.sample(1.0, 600).expect("sampling succeeds");

    c.bench_function("fig1_isn_traces_600s", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(1);
            black_box(
                cluster
                    .utilization_traces(black_box(&clients), &mut rng)
                    .expect("generation succeeds"),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
