//! The paper's §IV-A computational argument: streaming cost-metric
//! updates vs Pearson (streaming and end-of-interval batch).

use cavm_core::corr::{pearson_of_traces, CostMatrix, CostMetric, PearsonStream};
use cavm_trace::{Reference, SimRng, TimeSeries};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn samples(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SimRng::new(seed);
    (
        (0..n).map(|_| rng.f64() * 4.0).collect(),
        (0..n).map(|_| rng.f64() * 4.0).collect(),
    )
}

fn bench(c: &mut Criterion) {
    let (xs, ys) = samples(4096, 7);

    c.bench_function("cost_metric_stream_4096", |b| {
        b.iter(|| {
            let mut m = CostMetric::new(Reference::Peak).expect("valid reference");
            for (x, y) in xs.iter().zip(&ys) {
                m.push(black_box(*x), black_box(*y));
            }
            black_box(m.cost())
        })
    });

    c.bench_function("pearson_stream_4096", |b| {
        b.iter(|| {
            let mut p = PearsonStream::new();
            for (x, y) in xs.iter().zip(&ys) {
                p.push(black_box(*x), black_box(*y));
            }
            black_box(p.correlation())
        })
    });

    // The formulation the paper criticizes: recompute from stored
    // samples at the end of every interval.
    let a = TimeSeries::new(1.0, xs.clone()).expect("finite samples");
    let bseries = TimeSeries::new(1.0, ys.clone()).expect("finite samples");
    c.bench_function("pearson_batch_4096", |b| {
        b.iter(|| black_box(pearson_of_traces(&a, &bseries).expect("uniform traces")))
    });

    // Fleet-wide monitoring tick: one push_sample on a 40-VM matrix.
    c.bench_function("cost_matrix_tick_40vms", |b| {
        let mut rng = SimRng::new(3);
        let sample: Vec<f64> = (0..40).map(|_| rng.f64() * 4.0).collect();
        b.iter_batched(
            || CostMatrix::new(40, Reference::Peak).expect("valid size"),
            |mut m| {
                for _ in 0..100 {
                    m.push_sample(black_box(&sample)).expect("matching width");
                }
                black_box(m.samples())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
