//! Table II regenerator, scaled down: a 3-hour, 12-VM datacenter replay
//! per policy under static DVFS.

use cavm_bench::{mini_fleet, run_setup2, table2_policies};
use cavm_core::dvfs::DvfsMode;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fleet = mini_fleet(11, 12, 3.0);
    let mut group = c.benchmark_group("table2_static_12vms_3h");
    group.sample_size(10);
    for policy in table2_policies() {
        group.bench_function(policy.name(), |b| {
            b.iter(|| black_box(run_setup2(black_box(&fleet), policy, DvfsMode::Static)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
