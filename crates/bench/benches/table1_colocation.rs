//! Table I regenerator, scaled down: one co-location run on the shared
//! cache model.

use cavm_microarch::machine::{Machine, MachineConfig};
use cavm_microarch::stream::StreamProfile;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let config = MachineConfig {
        warmup_instructions: 100_000,
        ..MachineConfig::default()
    };
    let machine = Machine::new(config).expect("valid machine");

    c.bench_function("table1_websearch_solo_200k", |b| {
        b.iter(|| {
            black_box(
                machine
                    .run_solo(&StreamProfile::web_search(), 200_000, 1)
                    .expect("run succeeds"),
            )
        })
    });

    c.bench_function("table1_websearch_with_canneal_200k", |b| {
        b.iter(|| {
            black_box(
                machine
                    .run_pair(
                        &StreamProfile::web_search(),
                        &StreamProfile::canneal(),
                        200_000,
                        1,
                    )
                    .expect("run succeeds"),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
