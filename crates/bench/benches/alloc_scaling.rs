//! Allocation-policy throughput as the fleet grows: n ∈ {64, 256,
//! 1024, 4096} VMs, on the uniform 8-core fleet and on a 3-class
//! heterogeneous fleet (4/8/16-core).
//!
//! The proposed policy's ALLOCATE scan is the interesting series: with
//! the incremental `ServerCostAggregate` each candidate probe is
//! O(|members|) and the capacity-sorted unallocated list cuts every
//! pass off at the first fitting VM. The heterogeneous variant checks
//! that per-class bin capacities keep the same scan structure (bins
//! just carry their own `cores`).

use cavm_core::alloc::{AllocationPolicy, BfdPolicy, FfdPolicy, ProposedPolicy, VmDescriptor};
use cavm_core::corr::CostMatrix;
use cavm_core::fleet::{ServerFleet, UNBOUNDED};
use cavm_power::LinearPowerModel;
use cavm_trace::{Reference, SimRng};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn instance(n: usize, seed: u64) -> (Vec<VmDescriptor>, CostMatrix) {
    let mut rng = SimRng::new(seed);
    let vms: Vec<VmDescriptor> = (0..n)
        .map(|i| VmDescriptor::new(i, rng.range_f64(0.3, 3.5)))
        .collect();
    let mut matrix = CostMatrix::new(n, Reference::Peak).expect("valid size");
    for _ in 0..64 {
        let sample: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 3.5)).collect();
        matrix.push_sample(&sample).expect("matching width");
    }
    (vms, matrix)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_scaling");
    let uniform =
        ServerFleet::uniform(UNBOUNDED, 8.0, LinearPowerModel::xeon_e5410()).expect("valid fleet");
    for n in [64usize, 256, 1024, 4096] {
        let (vms, matrix) = instance(n, n as u64);
        let hetero = ServerFleet::mixed_4_8_16(n, n, n).expect("valid counts");
        for (label, fleet) in [("uniform", &uniform), ("hetero3", &hetero)] {
            group.bench_with_input(
                BenchmarkId::new(format!("proposed/{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        black_box(
                            ProposedPolicy::default()
                                .place(black_box(&vms), &matrix, fleet)
                                .expect("feasible instance"),
                        )
                    })
                },
            );
            group.bench_with_input(BenchmarkId::new(format!("bfd/{label}"), n), &n, |b, _| {
                b.iter(|| {
                    black_box(
                        BfdPolicy
                            .place(black_box(&vms), &matrix, fleet)
                            .expect("feasible"),
                    )
                })
            });
            group.bench_with_input(BenchmarkId::new(format!("ffd/{label}"), n), &n, |b, _| {
                b.iter(|| {
                    black_box(
                        FfdPolicy
                            .place(black_box(&vms), &matrix, fleet)
                            .expect("feasible"),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
