//! Allocation-policy throughput as the fleet grows: n ∈ {64, 256,
//! 1024, 4096} VMs.
//!
//! The proposed policy's ALLOCATE scan is the interesting series: with
//! the incremental `ServerCostAggregate` each candidate probe is
//! O(|members|) and the capacity-sorted unallocated list cuts every
//! pass off at the first fitting VM.

use cavm_core::alloc::{AllocationPolicy, BfdPolicy, FfdPolicy, ProposedPolicy, VmDescriptor};
use cavm_core::corr::CostMatrix;
use cavm_trace::{Reference, SimRng};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn instance(n: usize, seed: u64) -> (Vec<VmDescriptor>, CostMatrix) {
    let mut rng = SimRng::new(seed);
    let vms: Vec<VmDescriptor> = (0..n)
        .map(|i| VmDescriptor::new(i, rng.range_f64(0.3, 3.5)))
        .collect();
    let mut matrix = CostMatrix::new(n, Reference::Peak).expect("valid size");
    for _ in 0..64 {
        let sample: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 3.5)).collect();
        matrix.push_sample(&sample).expect("matching width");
    }
    (vms, matrix)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_scaling");
    for n in [64usize, 256, 1024, 4096] {
        let (vms, matrix) = instance(n, n as u64);
        group.bench_with_input(BenchmarkId::new("proposed", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    ProposedPolicy::default()
                        .place(black_box(&vms), &matrix, 8.0)
                        .expect("feasible instance"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("bfd", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    BfdPolicy
                        .place(black_box(&vms), &matrix, 8.0)
                        .expect("feasible"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("ffd", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    FfdPolicy
                        .place(black_box(&vms), &matrix, 8.0)
                        .expect("feasible"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
