//! Fleet-wide monitoring tick throughput: the SoA `CostMatrix` kernel
//! vs the seed per-pair `PairwiseCostMatrix`, at n ∈ {64, 256, 1024,
//! 4096} VMs (the seed path is skipped at 4096 where its ~640 B/pair
//! footprint makes construction alone take seconds).

use cavm_core::corr::baseline::PairwiseCostMatrix;
use cavm_core::corr::CostMatrix;
use cavm_trace::{Reference, SimRng};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sample(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::new(seed);
    (0..n).map(|_| rng.f64() * 4.0).collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_tick");
    for n in [64usize, 256, 1024, 4096] {
        let utils = sample(n, n as u64);

        let mut soa = CostMatrix::new(n, Reference::Peak).expect("valid size");
        group.bench_with_input(BenchmarkId::new("soa_peak", n), &n, |b, _| {
            b.iter(|| {
                soa.push_sample(black_box(&utils)).expect("matching width");
                black_box(soa.samples())
            })
        });

        let mut soa_p95 = CostMatrix::new(n, Reference::Percentile(95.0)).expect("valid size");
        group.bench_with_input(BenchmarkId::new("soa_p95", n), &n, |b, _| {
            b.iter(|| {
                soa_p95
                    .push_sample(black_box(&utils))
                    .expect("matching width");
                black_box(soa_p95.samples())
            })
        });

        let mut par = CostMatrix::new(n, Reference::Peak).expect("valid size");
        group.bench_with_input(BenchmarkId::new("soa_peak_par", n), &n, |b, _| {
            b.iter(|| {
                par.par_push_sample(black_box(&utils))
                    .expect("matching width");
                black_box(par.samples())
            })
        });

        if n <= 1024 {
            let mut seed = PairwiseCostMatrix::new(n, Reference::Peak).expect("valid size");
            group.bench_with_input(BenchmarkId::new("seed_peak", n), &n, |b, _| {
                b.iter(|| {
                    seed.push_sample(black_box(&utils)).expect("matching width");
                    black_box(seed.samples())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
