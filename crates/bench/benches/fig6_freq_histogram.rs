//! Fig 6 regenerator, scaled down: dynamic-DVFS replay (the mode with
//! per-minute level decisions) plus histogram extraction.

use cavm_bench::{mini_fleet, run_setup2};
use cavm_core::dvfs::DvfsMode;
use cavm_sim::Policy;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fleet = mini_fleet(13, 12, 3.0);
    let mut group = c.benchmark_group("fig6_dynamic_12vms_3h");
    group.sample_size(10);
    for policy in [Policy::Bfd, Policy::Proposed(Default::default())] {
        group.bench_function(policy.name(), |b| {
            b.iter(|| {
                let report = run_setup2(
                    black_box(&fleet),
                    policy,
                    DvfsMode::Dynamic {
                        interval_samples: 12,
                    },
                );
                black_box(report.freq_distribution(0))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
