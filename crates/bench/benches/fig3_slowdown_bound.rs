//! Fig 3 regenerator, scaled down: cost-matrix construction plus
//! server-cost evaluation over random co-location sets.

use cavm_bench::mini_fleet;
use cavm_core::corr::CostMatrix;
use cavm_core::servercost::server_cost;
use cavm_trace::{Reference, SimRng};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fleet = mini_fleet(5, 16, 2.0);
    let traces = fleet.traces();

    c.bench_function("fig3_matrix_build_16vms_2h", |b| {
        b.iter(|| {
            black_box(
                CostMatrix::from_traces(black_box(&traces), Reference::Peak)
                    .expect("uniform traces"),
            )
        })
    });

    let matrix = CostMatrix::from_traces(&traces, Reference::Peak).expect("uniform traces");
    c.bench_function("fig3_server_cost_eval", |b| {
        let mut rng = SimRng::new(9);
        let members: Vec<(usize, f64)> = (0..5)
            .map(|_| (rng.below(16), rng.range_f64(0.5, 3.0)))
            .collect();
        b.iter(|| black_box(server_cost(black_box(&members), &matrix)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
