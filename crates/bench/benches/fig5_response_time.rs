//! Fig 5 regenerator, scaled down: one short web-search cluster DES run
//! per placement (Fig 4's utilization traces come from the same runs).

use cavm_cluster::experiment::{run_setup1, Setup1Config, Setup1Placement};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let config = Setup1Config {
        duration_s: 120.0,
        wave_period_s: 120.0,
        warmup_s: 10.0,
        ..Setup1Config::default()
    };
    let mut group = c.benchmark_group("fig5_response_time_120s");
    group.sample_size(10);
    for placement in [
        Setup1Placement::Segregated,
        Setup1Placement::SharedUncorrelated,
        Setup1Placement::SharedCorrelated,
    ] {
        group.bench_function(placement.label(), |b| {
            b.iter(|| black_box(run_setup1(placement, black_box(&config)).expect("runs")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
