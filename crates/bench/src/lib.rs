//! Shared scaffolding for the experiment binaries and criterion benches.
//!
//! Every table and figure of the paper has a regenerator binary in
//! `src/bin/` (run with `cargo run --release -p cavm-bench --bin exp_*`)
//! and a scaled-down criterion bench in `benches/`. The canonical
//! experiment parameters live here so binaries, benches and integration
//! tests agree.

use cavm_core::dvfs::DvfsMode;
use cavm_sim::{Policy, ScenarioBuilder, SimReport};
use cavm_workload::datacenter::{DatacenterTraceBuilder, VmFleet};

pub mod artifact;
pub mod env;
pub mod sweep;

/// Seed used by all Setup-2 experiments (reports are deterministic).
pub const SETUP2_SEED: u64 = 2013;

/// The paper's Table II PCP parameters as interpreted here: envelopes at
/// the 90th percentile, clusters merged on ≥10% containment.
pub const PCP_ENVELOPE_PERCENTILE: f64 = 90.0;

/// See [`PCP_ENVELOPE_PERCENTILE`].
pub const PCP_AFFINITY_THRESHOLD: f64 = 0.10;

/// Synthesizes the Setup-2 fleet: 120 candidate VMs in 10 correlated
/// groups over 24 h, of which the busiest 40 are kept — the paper
/// "selected the top 40 VMs in terms of CPU utilization" from a larger,
/// mostly idle population.
pub fn setup2_fleet(seed: u64) -> VmFleet {
    DatacenterTraceBuilder::new(120)
        .groups(10)
        .seed(seed)
        .idle_fraction(0.4)
        .vm_scale_range(0.35, 1.05)
        .build()
        .expect("static builder parameters are valid")
        .select_top(40)
}

/// A smaller fleet for criterion benches and smoke tests.
pub fn mini_fleet(seed: u64, vms: usize, hours: f64) -> VmFleet {
    DatacenterTraceBuilder::new(vms)
        .groups((vms / 4).max(2))
        .seed(seed)
        .duration_hours(hours)
        .vm_scale_range(0.35, 1.05)
        .build()
        .expect("static builder parameters are valid")
}

/// The three Table II policies in paper order.
pub fn table2_policies() -> Vec<Policy> {
    vec![
        Policy::Bfd,
        Policy::Pcp {
            envelope_percentile: PCP_ENVELOPE_PERCENTILE,
            affinity_threshold: PCP_AFFINITY_THRESHOLD,
        },
        Policy::Proposed(Default::default()),
    ]
}

/// Runs one Setup-2 scenario on 20 Xeon-E5410-like servers.
pub fn run_setup2(fleet: &VmFleet, policy: Policy, mode: DvfsMode) -> SimReport {
    ScenarioBuilder::new(fleet.clone())
        .servers(20)
        .policy(policy)
        .dvfs_mode(mode)
        .build()
        .expect("scenario parameters are valid")
        .run()
        .expect("scenario runs to completion")
}

/// Renders a horizontal ASCII bar of `fraction` (0..=1).
pub fn bar(fraction: f64, width: usize) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleets_have_expected_shape() {
        let fleet = setup2_fleet(1);
        assert_eq!(fleet.len(), 40);
        assert_eq!(fleet.traces()[0].len(), 24 * 720);
        let mini = mini_fleet(1, 8, 2.0);
        assert_eq!(mini.len(), 8);
    }

    #[test]
    fn policies_are_in_paper_order() {
        let names: Vec<&str> = table2_policies().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["BFD", "PCP", "Proposed"]);
    }

    #[test]
    fn bars_render() {
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(1.0, 4), "####");
        assert_eq!(bar(0.5, 4), "##..");
        assert_eq!(bar(7.0, 4), "####");
    }

    #[test]
    fn mini_scenario_runs() {
        let fleet = mini_fleet(3, 8, 2.0);
        let report = run_setup2(&fleet, Policy::Bfd, DvfsMode::Static);
        assert!(report.energy.joules() > 0.0);
    }
}
