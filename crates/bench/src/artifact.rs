//! Shared `BENCH_corr.json` artifact surgery.
//!
//! Every experiment binary owns one (or a few) top-level sections of
//! the artifact and must leave everyone else's sections untouched.
//! Historically each binary carried its own string-chopping splicer
//! keyed on an *allowlist* of known section names — which silently
//! dropped any section it had never heard of. This module replaces
//! those with one schema-agnostic scanner: the artifact is split into
//! `(key, raw-value)` pairs at the top level (tracking strings,
//! escapes, and brace/bracket depth — never a JSON tree), so unknown
//! sections survive verbatim, byte for byte.

/// Artifact path, relative to the working directory the experiment
/// binaries run from (the repo root).
pub const BENCH_JSON_PATH: &str = "BENCH_corr.json";

/// Schema tag stamped into a freshly created artifact.
pub const BENCH_SCHEMA: &str = "cavm-bench-corr/1";

/// Splits a JSON object document into its top-level `(key, raw value)`
/// pairs, in document order. Values are kept as raw text (inner
/// newlines and indentation preserved), so re-rendering a section that
/// is not being rewritten reproduces it byte-identically. Returns
/// `None` when the document is not a parseable object.
pub fn top_level_sections(doc: &str) -> Option<Vec<(String, String)>> {
    let bytes = doc.as_bytes();
    let mut i = skip_ws(bytes, 0);
    if bytes.get(i) != Some(&b'{') {
        return None;
    }
    i += 1;
    let mut sections = Vec::new();
    loop {
        i = skip_ws(bytes, i);
        match bytes.get(i)? {
            b'}' => return Some(sections),
            b'"' => {
                let key_end = end_of_string(bytes, i)?;
                let key = doc[i + 1..key_end - 1].to_string();
                i = skip_ws(bytes, key_end);
                if bytes.get(i) != Some(&b':') {
                    return None;
                }
                i = skip_ws(bytes, i + 1);
                let start = i;
                i = end_of_value(bytes, i)?;
                sections.push((key, doc[start..i].trim_end().to_string()));
                i = skip_ws(bytes, i);
                match bytes.get(i) {
                    Some(b',') => i += 1,
                    Some(b'}') => return Some(sections),
                    _ => return None,
                }
            }
            _ => return None,
        }
    }
}

/// Renders `(key, raw value)` pairs back into the artifact's document
/// shape: two-space-indented keys, sections separated by `,\n`.
pub fn render(sections: &[(String, String)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in sections.iter().enumerate() {
        out.push_str(&format!("  \"{key}\": {value}"));
        out.push_str(if i + 1 < sections.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Replaces-or-appends the `name` section of the artifact at
/// [`BENCH_JSON_PATH`], preserving every other section (known to this
/// workspace or not) byte-identically. A missing or unparseable
/// artifact is replaced by a fresh document holding the schema tag and
/// the new section.
pub fn splice_section(name: &str, value: &str) {
    let previous = std::fs::read_to_string(BENCH_JSON_PATH).unwrap_or_default();
    let mut sections = top_level_sections(&previous)
        .unwrap_or_else(|| vec![("schema".to_string(), format!("\"{BENCH_SCHEMA}\""))]);
    match sections.iter_mut().find(|(key, _)| key == name) {
        Some((_, existing)) => *existing = value.to_string(),
        None => sections.push((name.to_string(), value.to_string())),
    }
    std::fs::write(BENCH_JSON_PATH, render(&sections)).expect("write BENCH_corr.json");
    eprintln!("updated {BENCH_JSON_PATH} ({name} section)");
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while matches!(bytes.get(i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        i += 1;
    }
    i
}

/// Index just past the closing quote of the string starting at `i`.
fn end_of_string(bytes: &[u8], i: usize) -> Option<usize> {
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    let mut j = i + 1;
    loop {
        match bytes.get(j)? {
            b'\\' => j += 2,
            b'"' => return Some(j + 1),
            _ => j += 1,
        }
    }
}

/// Index just past the JSON value starting at `i` (object, array,
/// string, or scalar literal).
fn end_of_value(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i)? {
        b'"' => end_of_string(bytes, i),
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut j = i;
            loop {
                match bytes.get(j)? {
                    b'"' => j = end_of_string(bytes, j)?,
                    b'{' | b'[' => {
                        depth += 1;
                        j += 1;
                    }
                    b'}' | b']' => {
                        depth -= 1;
                        j += 1;
                        if depth == 0 {
                            return Some(j);
                        }
                    }
                    _ => j += 1,
                }
            }
        }
        // Number / true / false / null: runs to the next delimiter.
        _ => {
            let mut j = i;
            while let Some(c) = bytes.get(j) {
                if matches!(c, b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r') {
                    break;
                }
                j += 1;
            }
            (j > i).then_some(j)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "{\n  \"schema\": \"cavm-bench-corr/1\",\n  \"cores\": 8,\n  \"matrix_tick\": [\n    {\"n\": 64, \"note\": \"a {brace} in a string\"},\n    {\"n\": 256}\n  ],\n  \"online\": {\n    \"vms\": 40,\n    \"policies\": [\n      {\"policy\": \"BFD\"}\n    ]\n  }\n}\n";

    #[test]
    fn splits_and_rerenders_byte_identically() {
        let sections = top_level_sections(DOC).expect("parseable");
        let keys: Vec<&str> = sections.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["schema", "cores", "matrix_tick", "online"]);
        assert_eq!(sections[1].1, "8");
        assert_eq!(render(&sections), DOC);
    }

    #[test]
    fn braces_inside_strings_do_not_confuse_the_scanner() {
        let doc = "{\n  \"note\": \"weird } ] \\\" , text\",\n  \"next\": [1, 2]\n}\n";
        let sections = top_level_sections(doc).expect("parseable");
        assert_eq!(sections[0].1, "\"weird } ] \\\" , text\"");
        assert_eq!(sections[1].1, "[1, 2]");
    }

    #[test]
    fn unknown_sections_are_not_special() {
        // A section name no binary in this workspace has ever heard
        // of is carried exactly like the known ones.
        let doc = "{\n  \"from_the_future\": {\"x\": [1, {\"y\": 2}]},\n  \"scale\": 3\n}\n";
        let sections = top_level_sections(doc).expect("parseable");
        assert_eq!(sections[0].0, "from_the_future");
        assert_eq!(render(&sections), doc);
    }

    #[test]
    fn garbage_is_rejected_not_mangled() {
        assert!(top_level_sections("not json").is_none());
        assert!(top_level_sections("{\"unterminated\": ").is_none());
        assert!(top_level_sections("").is_none());
        assert_eq!(top_level_sections("{}").map(|s| s.len()), Some(0));
    }
}
