//! Declarative experiment grids: every evaluation in this workspace is
//! a cross-product of the same few axes, so build the grid once and
//! let one runner walk it.
//!
//! A [`SweepGrid`] is the cross-product of
//!
//! * **workloads** — a [`WorkloadCase`] per scenario input (closed
//!   fleet, open lifecycle, or anything behind the
//!   [`TraceDataset`] surface),
//! * **fault cases** — optional [`FaultPlan`]s,
//! * **server counts**,
//! * **policies**,
//! * **re-pack [`Schedule`]s** (trigger + optional QoS guard +
//!   optional adaptive-slack bound), and
//! * **DVFS modes**,
//!
//! and [`SweepGrid::run`] replays every cell through
//! [`ScenarioBuilder`], yielding one labelled [`SweepRow`] per cell in
//! a documented deterministic order (workload-major, then faults,
//! servers, policy, schedule, DVFS-minor). `exp_online`, `exp_faults`
//! and `exp_trace` are thin formatters over these rows.
//!
//! # Example
//!
//! ```
//! use cavm_bench::sweep::{Schedule, SweepGrid, WorkloadCase};
//! use cavm_sim::Policy;
//! use cavm_workload::DatacenterTraceBuilder;
//!
//! # fn main() -> Result<(), cavm_sim::SimError> {
//! let fleet = DatacenterTraceBuilder::new(6).seed(1).duration_hours(1.0).build()?;
//! let rows = SweepGrid::over(vec![WorkloadCase::closed("tiny", fleet)])
//!     .servers(vec![6])
//!     .policies(vec![Policy::Bfd, Policy::Proposed(Default::default())])
//!     .period_samples(360)
//!     .run()?;
//! assert_eq!(rows.len(), 2);
//! assert!(rows[1].report.energy.joules() <= rows[0].report.energy.joules() * 1.5);
//! # Ok(())
//! # }
//! ```

use cavm_core::dvfs::DvfsMode;
use cavm_sim::{
    OvercommitConfig, Policy, QosGuard, RepackTrigger, ScenarioBuilder, SimError, SimReport,
};
use cavm_workload::datacenter::VmFleet;
use cavm_workload::dataset::{assemble, TraceDataset};
use cavm_workload::faults::FaultPlan;
use cavm_workload::lifecycle::Lifecycle;

/// One re-pack schedule: a trigger plus the optional QoS guard and
/// adaptive-slack bound composed onto it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Schedule {
    /// Stable display name (used in reports and artifacts).
    pub name: &'static str,
    /// When the live placement is re-packed.
    pub trigger: RepackTrigger,
    /// QoS guard composed onto the trigger, if any.
    pub guard: Option<QosGuard>,
    /// Adaptive-slack upper bound, if the slack controller is on.
    pub slack_max: Option<u32>,
    /// Deliberate correlation-gap overcommit margins, if on (requires
    /// a guard).
    pub overcommit: Option<OvercommitConfig>,
}

impl Schedule {
    /// The paper's periodic-only re-pack clock.
    pub fn periodic() -> Self {
        Schedule {
            name: "periodic",
            trigger: RepackTrigger::Periodic,
            guard: None,
            slack_max: None,
            overcommit: None,
        }
    }

    /// The five canonical schedules of the adaptive-consolidation
    /// comparison: `periodic`, `fragmentation`, `guarded`
    /// (fragmentation + QoS guard), `hybrid`, and `hybrid-adaptive`
    /// (hybrid + the `SlackController` walking slack up to
    /// `slack_max`).
    pub fn standard(slack: u32, guard: QosGuard, slack_max: u32) -> [Schedule; 5] {
        [
            Schedule::periodic(),
            Schedule {
                name: "fragmentation",
                trigger: RepackTrigger::Fragmentation { slack },
                guard: None,
                slack_max: None,
                overcommit: None,
            },
            Schedule {
                name: "guarded",
                trigger: RepackTrigger::Fragmentation { slack },
                guard: Some(guard),
                slack_max: None,
                overcommit: None,
            },
            Schedule {
                name: "hybrid",
                trigger: RepackTrigger::Hybrid { slack },
                guard: None,
                slack_max: None,
                overcommit: None,
            },
            Schedule {
                name: "hybrid-adaptive",
                trigger: RepackTrigger::Hybrid { slack },
                guard: None,
                slack_max: Some(slack_max),
                overcommit: None,
            },
        ]
    }

    /// The guarded hybrid clock the fault-tolerance experiments run
    /// under: hybrid trigger, QoS guard on, adaptive slack bounded.
    pub fn guarded_hybrid(slack: u32, guard: QosGuard, slack_max: u32) -> Self {
        Schedule {
            name: "guarded-hybrid",
            trigger: RepackTrigger::Hybrid { slack },
            guard: Some(guard),
            slack_max: Some(slack_max),
            overcommit: None,
        }
    }

    /// The guarded fragmentation clock with deliberate
    /// correlation-gap overcommit on top: servers admit past plain
    /// capacity by an adaptive per-class margin when the Eqn (2) pair
    /// costs say the peaks anti-align, with the QoS guard as the
    /// reactive backstop.
    pub fn guarded_overcommit(slack: u32, guard: QosGuard, margin: f64, max_margin: f64) -> Self {
        Schedule {
            name: "guarded-overcommit",
            trigger: RepackTrigger::Fragmentation { slack },
            guard: Some(guard),
            slack_max: None,
            overcommit: Some(OvercommitConfig { margin, max_margin }),
        }
    }

    /// Looks a schedule up by name in [`Schedule::standard`] via an
    /// environment variable; unset falls back to `periodic`.
    ///
    /// # Panics
    ///
    /// Panics when the variable names no standard schedule — the env
    /// knobs are CI surface, and a typo must fail loudly.
    pub fn from_env(key: &str, slack: u32, guard: QosGuard, slack_max: u32) -> Self {
        let all = Schedule::standard(slack, guard, slack_max);
        match std::env::var(key) {
            Err(_) => all[0],
            Ok(v) => *all.iter().find(|s| s.name == v).unwrap_or_else(|| {
                panic!("{key}={v}: expected periodic|fragmentation|guarded|hybrid")
            }),
        }
    }

    /// Composes this schedule onto a scenario builder.
    pub fn apply(&self, builder: ScenarioBuilder) -> ScenarioBuilder {
        let mut builder = builder.repack_trigger(self.trigger);
        if let Some(guard) = self.guard {
            builder = builder.qos_guard(guard);
        }
        if let Some(max) = self.slack_max {
            builder = builder.adaptive_slack_max(max);
        }
        if let Some(oc) = self.overcommit {
            builder = builder.overcommit(oc.margin, oc.max_margin);
        }
        builder
    }
}

/// One workload axis entry: a fleet plus (for open systems) its
/// arrival/departure schedule.
#[derive(Debug, Clone)]
pub struct WorkloadCase {
    /// Stable display name (used in reports and artifacts).
    pub name: String,
    /// The VM demand traces.
    pub fleet: VmFleet,
    /// The lease schedule; `None` replays the closed-world batch
    /// setting.
    pub lifecycle: Option<Lifecycle>,
}

impl WorkloadCase {
    /// Closed-world batch case: every VM exists for the whole horizon.
    pub fn closed(name: impl Into<String>, fleet: VmFleet) -> Self {
        WorkloadCase {
            name: name.into(),
            fleet,
            lifecycle: None,
        }
    }

    /// Open-system case: VMs lease in and out per `lifecycle`.
    pub fn open(name: impl Into<String>, fleet: VmFleet, lifecycle: Lifecycle) -> Self {
        WorkloadCase {
            name: name.into(),
            fleet,
            lifecycle: Some(lifecycle),
        }
    }

    /// Drains any [`TraceDataset`] — a real-trace reader or a
    /// synthetic generator — into an open-system case.
    pub fn dataset<D>(name: impl Into<String>, dataset: &mut D) -> Result<Self, SimError>
    where
        D: TraceDataset + ?Sized,
    {
        let (fleet, lifecycle) = assemble(dataset)?;
        Ok(WorkloadCase::open(name, fleet, lifecycle))
    }
}

/// One fault axis entry.
#[derive(Debug, Clone)]
pub struct FaultCase {
    /// Stable display name (used in reports and artifacts).
    pub name: String,
    /// The failure schedule; `None` runs fault-free.
    pub plan: Option<FaultPlan>,
}

impl FaultCase {
    /// The fault-free case.
    pub fn none() -> Self {
        FaultCase {
            name: "fault-free".into(),
            plan: None,
        }
    }

    /// A named failure schedule.
    pub fn plan(name: impl Into<String>, plan: FaultPlan) -> Self {
        FaultCase {
            name: name.into(),
            plan: Some(plan),
        }
    }
}

/// The coordinates of one grid cell, handed to the per-cell callback
/// of [`SweepGrid::run_with`] alongside its finished report.
#[derive(Debug, Clone, Copy)]
pub struct SweepCell<'a> {
    /// Workload axis entry.
    pub workload: &'a WorkloadCase,
    /// Fault axis entry.
    pub faults: &'a FaultCase,
    /// Server-count axis entry.
    pub servers: usize,
    /// Policy axis entry.
    pub policy: &'a Policy,
    /// Schedule axis entry.
    pub schedule: &'a Schedule,
    /// DVFS axis entry.
    pub dvfs: DvfsMode,
}

/// One finished grid cell: its axis labels plus the run's report.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// [`WorkloadCase::name`] of the cell.
    pub workload: String,
    /// [`FaultCase::name`] of the cell.
    pub fault_case: String,
    /// Server count of the cell.
    pub servers: usize,
    /// [`Policy::name`] of the cell.
    pub policy: &'static str,
    /// [`Schedule::name`] of the cell.
    pub schedule: &'static str,
    /// The run's aggregated outcome.
    pub report: SimReport,
}

/// A declarative experiment grid; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct SweepGrid {
    workloads: Vec<WorkloadCase>,
    faults: Vec<FaultCase>,
    servers: Vec<usize>,
    policies: Vec<Policy>,
    schedules: Vec<Schedule>,
    dvfs: Vec<DvfsMode>,
    period_samples: Option<usize>,
}

impl SweepGrid {
    /// Starts a grid over the given workloads. Every other axis
    /// defaults to a singleton: fault-free, 20 servers, BFD, the
    /// periodic schedule, static DVFS.
    pub fn over(workloads: Vec<WorkloadCase>) -> Self {
        SweepGrid {
            workloads,
            faults: vec![FaultCase::none()],
            servers: vec![20],
            policies: vec![Policy::Bfd],
            schedules: vec![Schedule::periodic()],
            dvfs: vec![DvfsMode::Static],
            period_samples: None,
        }
    }

    /// Fault axis.
    pub fn faults(mut self, faults: Vec<FaultCase>) -> Self {
        self.faults = faults;
        self
    }

    /// Server-count axis.
    pub fn servers(mut self, servers: Vec<usize>) -> Self {
        self.servers = servers;
        self
    }

    /// Policy axis.
    pub fn policies(mut self, policies: Vec<Policy>) -> Self {
        self.policies = policies;
        self
    }

    /// Schedule axis.
    pub fn schedules(mut self, schedules: Vec<Schedule>) -> Self {
        self.schedules = schedules;
        self
    }

    /// DVFS axis.
    pub fn dvfs(mut self, dvfs: Vec<DvfsMode>) -> Self {
        self.dvfs = dvfs;
        self
    }

    /// Overrides the placement period for every cell (default: the
    /// scenario builder's paper-canonical 720 samples).
    pub fn period_samples(mut self, samples: usize) -> Self {
        self.period_samples = Some(samples);
        self
    }

    /// Number of cells the grid will run.
    pub fn len(&self) -> usize {
        self.workloads.len()
            * self.faults.len()
            * self.servers.len()
            * self.policies.len()
            * self.schedules.len()
            * self.dvfs.len()
    }

    /// `true` when some axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs every cell, returning one labelled row per cell.
    pub fn run(&self) -> Result<Vec<SweepRow>, SimError> {
        self.run_with(|_, _| {})
    }

    /// Runs every cell, invoking `each` with the cell's coordinates
    /// and report as it completes (progress printing, per-cell
    /// asserts). Iteration order is workload-major: workloads, then
    /// faults, servers, policies, schedules, DVFS-minor.
    pub fn run_with<F>(&self, mut each: F) -> Result<Vec<SweepRow>, SimError>
    where
        F: FnMut(&SweepCell<'_>, &SimReport),
    {
        let mut rows = Vec::with_capacity(self.len());
        for workload in &self.workloads {
            for faults in &self.faults {
                for &servers in &self.servers {
                    for policy in &self.policies {
                        for schedule in &self.schedules {
                            for &dvfs in &self.dvfs {
                                let cell = SweepCell {
                                    workload,
                                    faults,
                                    servers,
                                    policy,
                                    schedule,
                                    dvfs,
                                };
                                let report = self.run_cell(&cell)?;
                                each(&cell, &report);
                                rows.push(SweepRow {
                                    workload: workload.name.clone(),
                                    fault_case: faults.name.clone(),
                                    servers,
                                    policy: policy.name(),
                                    schedule: schedule.name,
                                    report,
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(rows)
    }

    fn run_cell(&self, cell: &SweepCell<'_>) -> Result<SimReport, SimError> {
        let mut builder = ScenarioBuilder::new(cell.workload.fleet.clone())
            .servers(cell.servers)
            .policy(*cell.policy)
            .dvfs_mode(cell.dvfs);
        if let Some(lifecycle) = &cell.workload.lifecycle {
            builder = builder.lifecycle(lifecycle.clone());
        }
        builder = cell.schedule.apply(builder);
        if let Some(plan) = &cell.faults.plan {
            builder = builder.faults(plan.clone());
        }
        if let Some(period) = self.period_samples {
            builder = builder.period_samples(period);
        }
        builder.build()?.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cavm_workload::lifecycle::{ArrivalProcess, LifecycleBuilder, LifetimeModel};
    use cavm_workload::DatacenterTraceBuilder;

    fn fleet(vms: usize) -> VmFleet {
        DatacenterTraceBuilder::new(vms)
            .groups(2)
            .seed(5)
            .duration_hours(1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn grid_rows_match_hand_rolled_loops_exactly() {
        let fleet = fleet(6);
        let horizon = fleet.vms()[0].fine.len();
        let lifecycle = LifecycleBuilder::new(6, horizon)
            .seed(5)
            .arrivals(ArrivalProcess::Poisson {
                mean_gap_samples: 60.0,
            })
            .lifetimes(LifetimeModel::Uniform {
                min_samples: 120,
                max_samples: 480,
            })
            .build()
            .unwrap();
        let policies = [Policy::Bfd, Policy::Proposed(Default::default())];
        let schedule = Schedule::standard(
            1,
            QosGuard {
                violation_ratio: 0.08,
            },
            4,
        )[2];

        // The hand-rolled loop every exp binary used to carry.
        let expected: Vec<SimReport> = policies
            .iter()
            .map(|&policy| {
                schedule
                    .apply(
                        ScenarioBuilder::new(fleet.clone())
                            .servers(6)
                            .policy(policy)
                            .dvfs_mode(DvfsMode::Static)
                            .lifecycle(lifecycle.clone())
                            .period_samples(360),
                    )
                    .build()
                    .unwrap()
                    .run()
                    .unwrap()
            })
            .collect();

        let mut seen = 0;
        let rows = SweepGrid::over(vec![WorkloadCase::open("churn", fleet, lifecycle)])
            .servers(vec![6])
            .policies(policies.to_vec())
            .schedules(vec![schedule])
            .period_samples(360)
            .run_with(|cell, report| {
                assert_eq!(cell.schedule.name, "guarded");
                assert!(report.energy.joules() > 0.0);
                seen += 1;
            })
            .unwrap();
        assert_eq!(seen, 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].policy, "BFD");
        assert_eq!(rows[1].policy, "Proposed");
        for (row, expected) in rows.iter().zip(&expected) {
            assert_eq!(&row.report, expected, "grid must reproduce the loop");
        }
    }

    #[test]
    fn axis_order_is_policy_major_over_schedules() {
        let rows = SweepGrid::over(vec![WorkloadCase::closed("batch", fleet(4))])
            .servers(vec![4])
            .policies(vec![Policy::Bfd, Policy::Ffd])
            .schedules(vec![
                Schedule::periodic(),
                Schedule {
                    name: "hybrid",
                    trigger: RepackTrigger::Hybrid { slack: 1 },
                    guard: None,
                    slack_max: None,
                    overcommit: None,
                },
            ])
            .period_samples(360)
            .run()
            .unwrap();
        let order: Vec<(&str, &str)> = rows.iter().map(|r| (r.policy, r.schedule)).collect();
        assert_eq!(
            order,
            [
                ("BFD", "periodic"),
                ("BFD", "hybrid"),
                ("FFD", "periodic"),
                ("FFD", "hybrid"),
            ]
        );
    }

    #[test]
    fn empty_axis_runs_nothing() {
        let grid = SweepGrid::over(vec![]).policies(vec![Policy::Bfd]);
        assert!(grid.is_empty());
        assert!(grid.run().unwrap().is_empty());
    }
}
