//! Trace replay experiment: the checked-in sample traces — one file
//! per supported CSV dialect — driven end-to-end through both
//! controller shapes.
//!
//! For each fixture (`crates/workload/testdata/azure_sample.csv`,
//! Azure-VM style readings; `crates/workload/testdata/huawei_sample.csv`,
//! Huawei-style create/delete events) the run:
//!
//! 1. ingests the file through its [`TraceDataset`] reader into a
//!    `(VmFleet, Lifecycle)` pair,
//! 2. replays it through the **flat guarded controller** as a
//!    [`SweepGrid`] of BFD vs the proposed policy — on the Azure trace
//!    (which carries real per-sample correlation structure) the run
//!    *asserts* proposed never burns more energy than BFD,
//! 3. replays the same workload through a cell-sharded
//!    [`ShardedController`] (default 16 cells), admitting every VM
//!    through sketch-routed admission,
//!
//! and splices a `"trace"` section (flat rows + sharded summary per
//! dialect) into `BENCH_corr.json`.
//!
//! ```text
//! cargo run --release -p cavm-bench --bin exp_trace
//! ```
//!
//! Environment knobs (for CI smoke runs and byo-trace replays):
//! `CAVM_TRACE_AZURE` / `CAVM_TRACE_HUAWEI` (fixture paths),
//! `CAVM_TRACE_DT_S` (sample period, default 300), `CAVM_TRACE_HORIZON`
//! (samples, default 48), `CAVM_TRACE_PERIOD_SAMPLES` (placement
//! period, default 12), `CAVM_TRACE_SERVERS` (default 24),
//! `CAVM_TRACE_CELLS` (default 16), `CAVM_TRACE_SLACK` (default 1),
//! `CAVM_TRACE_QOS` (default 0.08).
//!
//! [`TraceDataset`]: cavm_workload::dataset::TraceDataset
//! [`ShardedController`]: cavm_sim::ShardedController

use cavm_bench::env;
use cavm_bench::sweep::{Schedule, SweepGrid, SweepRow, WorkloadCase};
use cavm_bench::{artifact, bar};
use cavm_core::dvfs::DvfsMode;
use cavm_core::fleet::ServerFleet;
use cavm_power::LinearPowerModel;
use cavm_sim::{
    ControllerConfig, NullSink, Policy, QosGuard, RepackTrigger, ShardedController, SimReport,
};
use cavm_trace::Reference;
use cavm_workload::datacenter::VmFleet;
use cavm_workload::dataset::{assemble, AzureTraceReader, HuaweiTraceReader};
use cavm_workload::lifecycle::Lifecycle;
use std::fmt::Write as _;

struct Knobs {
    dt_s: f64,
    horizon: usize,
    period_samples: usize,
    servers: usize,
    cells: usize,
    slack: u32,
    qos: QosGuard,
}

/// Replays an assembled workload through the cell-sharded controller,
/// event for event: departures, then arrivals (trace sliced to the
/// live window, lease passed through), then the per-sample tick.
fn replay_sharded(fleet: &VmFleet, lifecycle: &Lifecycle, knobs: &Knobs) -> SimReport {
    let horizon = fleet.vms()[0].fine.len();
    // The partition needs servers per cell; sketch routing spreads a
    // small trace thinly, so give each cell a few slots (idle servers
    // stay powered off and cost nothing).
    let servers = knobs.servers.max(4 * knobs.cells);
    let mut arrivals_at: Vec<Vec<usize>> = vec![Vec::new(); horizon];
    let mut departures_at: Vec<Vec<usize>> = vec![Vec::new(); horizon];
    for entry in lifecycle.entries() {
        arrivals_at[entry.arrival_sample].push(entry.id);
        if let Some(d) = entry.departure_sample {
            if d < horizon {
                departures_at[d].push(entry.id);
            }
        }
    }

    let mut dc = ShardedController::new(
        ControllerConfig {
            server_fleet: ServerFleet::uniform(servers, 8.0, LinearPowerModel::xeon_e5410())
                .expect("valid fleet"),
            policy: Policy::Proposed(Default::default()),
            repack_trigger: RepackTrigger::Hybrid { slack: knobs.slack },
            qos_guard: Some(knobs.qos),
            adaptive_slack_max: None,
            overcommit: None,
            dvfs_mode: DvfsMode::Static,
            period_samples: knobs.period_samples,
            reference: Reference::Peak,
            dynamic_headroom: 0.25,
            default_demand: 1.0,
            sample_dt_s: knobs.dt_s,
            max_deferred: fleet.len().max(1),
        },
        knobs.cells,
    )
    .expect("valid sharded config");

    let mut sink = NullSink;
    for k in 0..horizon {
        for &id in &departures_at[k] {
            dc.depart(id).expect("scheduled departure");
        }
        for &id in &arrivals_at[k] {
            let entry = &lifecycle.entries()[lifecycle
                .entries()
                .iter()
                .position(|e| e.id == id)
                .expect("entry exists")];
            let end = entry.departure_sample.unwrap_or(horizon).min(horizon);
            let trace = fleet.vms()[id]
                .fine
                .slice(k, end)
                .expect("live window is in range");
            let lease = entry.departure_sample.map(|d| d - k);
            dc.arrive(id, trace, lease, &mut sink).expect("admission");
        }
        dc.tick(&mut sink).expect("tick");
    }
    dc.finish(&mut sink).expect("finish");
    dc.report()
}

struct DialectResult {
    name: &'static str,
    path: String,
    vms: usize,
    flat: Vec<SweepRow>,
    sharded: SimReport,
}

fn run_dialect(
    name: &'static str,
    path: String,
    fleet: VmFleet,
    lifecycle: Lifecycle,
    knobs: &Knobs,
) -> DialectResult {
    let vms = fleet.len();
    let schedule = Schedule {
        name: "guarded",
        trigger: RepackTrigger::Fragmentation { slack: knobs.slack },
        guard: Some(knobs.qos),
        slack_max: None,
        overcommit: None,
    };
    let flat = SweepGrid::over(vec![WorkloadCase::open(
        name,
        fleet.clone(),
        lifecycle.clone(),
    )])
    .servers(vec![knobs.servers])
    .policies(vec![Policy::Bfd, Policy::Proposed(Default::default())])
    .schedules(vec![schedule])
    .period_samples(knobs.period_samples)
    .run_with(|cell, report| {
        assert!(
            report.online_admissions + report.periods.len() > 0,
            "{name}/{}: replay produced no activity",
            cell.policy.name()
        );
    })
    .expect("flat replay runs to completion");

    let sharded = replay_sharded(&fleet, &lifecycle, knobs);
    // Arrivals on a period boundary are placed by the periodic re-pack;
    // every other arrival must have come through the sketch-routed
    // incremental admit path.
    let off_boundary = lifecycle
        .entries()
        .iter()
        .filter(|e| e.arrival_sample % knobs.period_samples != 0)
        .count();
    assert!(
        sharded.online_admissions >= off_boundary,
        "{name}: {} mid-period arrivals but only {} sketch-routed admissions",
        off_boundary,
        sharded.online_admissions,
    );
    assert!(
        sharded.energy.joules() > 0.0,
        "{name}: sharded replay must meter energy"
    );

    DialectResult {
        name,
        path,
        vms,
        flat,
        sharded,
    }
}

fn main() {
    let knobs = Knobs {
        dt_s: env::parse_or("CAVM_TRACE_DT_S", 300.0),
        horizon: env::parse_or("CAVM_TRACE_HORIZON", 48),
        period_samples: env::parse_or("CAVM_TRACE_PERIOD_SAMPLES", 12),
        servers: env::parse_or("CAVM_TRACE_SERVERS", 24),
        cells: env::parse_or("CAVM_TRACE_CELLS", 16),
        slack: env::parse_or("CAVM_TRACE_SLACK", 1) as u32,
        qos: QosGuard {
            violation_ratio: env::parse_or("CAVM_TRACE_QOS", 0.08),
        },
    };
    let azure_path = env::parse_or(
        "CAVM_TRACE_AZURE",
        "crates/workload/testdata/azure_sample.csv".to_string(),
    );
    let huawei_path = env::parse_or(
        "CAVM_TRACE_HUAWEI",
        "crates/workload/testdata/huawei_sample.csv".to_string(),
    );

    let mut azure_reader = AzureTraceReader::open(&azure_path, knobs.dt_s, knobs.horizon)
        .expect("azure fixture opens");
    let (azure_fleet, azure_lifecycle) =
        assemble(&mut azure_reader).expect("azure fixture assembles");
    let azure = run_dialect("azure", azure_path, azure_fleet, azure_lifecycle, &knobs);

    let mut huawei_reader = HuaweiTraceReader::open(&huawei_path, knobs.dt_s, knobs.horizon)
        .expect("huawei fixture opens");
    let (huawei_fleet, huawei_lifecycle) =
        assemble(&mut huawei_reader).expect("huawei fixture assembles");
    let huawei = run_dialect(
        "huawei",
        huawei_path,
        huawei_fleet,
        huawei_lifecycle,
        &knobs,
    );

    println!(
        "# Trace replay — guarded flat controller (slack {}, guard {:.0}%) + {}-cell sharded, {} servers, period {} samples @ {} s",
        knobs.slack,
        100.0 * knobs.qos.violation_ratio,
        knobs.cells,
        knobs.servers,
        knobs.period_samples,
        knobs.dt_s,
    );
    for dialect in [&azure, &huawei] {
        let bfd = &dialect.flat[0].report;
        println!();
        println!(
            "## {} — {} VMs from {}",
            dialect.name, dialect.vms, dialect.path
        );
        println!(
            "{:<10} {:>12} {:>10} {:>12} {:>8}  normalized bar",
            "policy", "energy kWh", "max viol%", "migrations", "admits"
        );
        for row in &dialect.flat {
            let r = &row.report;
            let norm = r.energy.normalized_to(&bfd.energy).expect("nonzero");
            println!(
                "{:<10} {:>12.3} {:>10.2} {:>12} {:>8}  {}",
                r.policy,
                r.energy.kilowatt_hours(),
                r.max_violation_percent,
                r.total_migrations(),
                r.online_admissions,
                bar(norm, 30),
            );
        }
        let s = &dialect.sharded;
        println!(
            "sharded    {:>12.3} {:>10.2} {:>12} {:>8}  ({} cells)",
            s.energy.kilowatt_hours(),
            s.max_violation_percent,
            s.total_migrations(),
            s.online_admissions,
            knobs.cells,
        );
    }

    // The point of ingesting a correlated trace: on the Azure-format
    // fixture (per-sample demand series with real group structure) the
    // correlation-aware policy must not lose to correlation-blind BFD.
    let azure_bfd = &azure.flat[0].report;
    let azure_proposed = &azure.flat[1].report;
    assert!(
        azure_proposed.energy.joules() <= azure_bfd.energy.joules(),
        "proposed must not burn more energy than BFD on the azure trace ({} J vs {} J)",
        azure_proposed.energy.joules(),
        azure_bfd.energy.joules(),
    );
    println!();
    println!(
        "(proposed <= BFD energy on the azure trace: {:.4} normalized — asserted)",
        azure_proposed
            .energy
            .normalized_to(&azure_bfd.energy)
            .expect("nonzero"),
    );

    let mut section = String::new();
    section.push_str("{\n");
    let _ = writeln!(section, "    \"sample_dt_s\": {},", knobs.dt_s);
    let _ = writeln!(section, "    \"horizon_samples\": {},", knobs.horizon);
    let _ = writeln!(section, "    \"period_samples\": {},", knobs.period_samples);
    let _ = writeln!(section, "    \"servers\": {},", knobs.servers);
    let _ = writeln!(section, "    \"cells\": {},", knobs.cells);
    for (d, dialect) in [&azure, &huawei].into_iter().enumerate() {
        let bfd = &dialect.flat[0].report;
        let _ = writeln!(section, "    \"{}\": {{", dialect.name);
        let _ = writeln!(section, "      \"path\": \"{}\",", dialect.path);
        let _ = writeln!(section, "      \"vms\": {},", dialect.vms);
        section.push_str("      \"flat\": [\n");
        for (i, row) in dialect.flat.iter().enumerate() {
            let r = &row.report;
            let _ = write!(
                section,
                "        {{\"policy\": \"{}\", \"energy_kwh\": {:.4}, \"normalized_power\": {:.4}, \"max_violation_percent\": {:.3}, \"migrations\": {}, \"online_admissions\": {}}}",
                r.policy,
                r.energy.kilowatt_hours(),
                r.energy.normalized_to(&bfd.energy).expect("nonzero"),
                r.max_violation_percent,
                r.total_migrations(),
                r.online_admissions,
            );
            section.push_str(if i + 1 < dialect.flat.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        section.push_str("      ],\n");
        let s = &dialect.sharded;
        let _ = writeln!(
            section,
            "      \"sharded\": {{\"cells\": {}, \"energy_kwh\": {:.4}, \"max_violation_percent\": {:.3}, \"migrations\": {}, \"online_admissions\": {}, \"deferred_peak\": {}}}",
            knobs.cells,
            s.energy.kilowatt_hours(),
            s.max_violation_percent,
            s.total_migrations(),
            s.online_admissions,
            s.deferred_peak,
        );
        section.push_str(if d == 0 { "    },\n" } else { "    }\n" });
    }
    section.push_str("  }");
    artifact::splice_section("trace", &section);
}
