//! Table I — web search co-located with PARSEC workloads.
//!
//! Regenerates the paper's Table I on the `cavm-microarch` substrate:
//! IPC, L2 MPKI and L2 miss rate of a web-search workload alone (in
//! parentheses in the paper) and next to each PARSEC co-runner on a
//! shared last-level cache. Also prints the contrast case the paper's
//! argument implies: a cache-resident workload IS hurt by co-location.

use cavm_bench::env;
use cavm_microarch::{machine::Machine, stream::StreamProfile};

const INSTRUCTIONS: u64 = 3_000_000;
const SEED: u64 = 1;

fn main() {
    // `CAVM_T1_INSTRUCTIONS` shrinks the run for CI smoke checks.
    let instructions = env::parse_or("CAVM_T1_INSTRUCTIONS", INSTRUCTIONS);
    let machine = Machine::opteron_like().expect("preset machine is valid");
    let (solo, paired) = machine
        .colocation_study(
            &StreamProfile::web_search(),
            &StreamProfile::parsec_corunners(),
            instructions,
            SEED,
        )
        .expect("study runs to completion");

    println!("# Table I — web search metrics, co-located vs alone (in parentheses)");
    println!(
        "{:<18} {:>16} {:>18} {:>20}",
        "co-runner", "IPC", "L2 MPKI", "L2 miss rate (%)"
    );
    for (name, m) in &paired {
        println!(
            "w/ {:<15} {:>8.2} ({:.2}) {:>10.2} ({:.2}) {:>12.2} ({:.2})",
            name,
            m.ipc,
            solo.ipc,
            m.l2_mpki,
            solo.l2_mpki,
            100.0 * m.l2_miss_rate,
            100.0 * solo.l2_miss_rate,
        );
    }

    let max_ipc_delta = paired
        .iter()
        .map(|(_, m)| (m.ipc - solo.ipc).abs() / solo.ipc)
        .fold(0.0, f64::max);
    println!();
    println!(
        "max IPC deviation under co-location: {:.1}%",
        100.0 * max_ipc_delta
    );
    println!("(paper: 'only negligible variations over all the metrics')");

    let resident_solo = machine
        .run_solo(&StreamProfile::cache_resident(), instructions, SEED)
        .expect("solo run succeeds");
    let (resident_paired, _) = machine
        .run_pair(
            &StreamProfile::cache_resident(),
            &StreamProfile::canneal(),
            instructions,
            SEED,
        )
        .expect("pair run succeeds");
    println!();
    println!("# Contrast: cache-resident workload w/ canneal (sharing is NOT free here)");
    println!(
        "IPC {:.2} ({:.2})  L3 miss {:.1}% ({:.1}%)  → IPC loss {:.0}%",
        resident_paired.ipc,
        resident_solo.ipc,
        100.0 * resident_paired.l3_miss_rate,
        100.0 * resident_solo.l3_miss_rate,
        100.0 * (resident_solo.ipc - resident_paired.ipc) / resident_solo.ipc,
    );
}
