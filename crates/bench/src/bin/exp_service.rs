//! Service experiment: many concurrent controller sessions behind a
//! [`SessionHost`], spliced into `BENCH_corr.json` as the `"service"`
//! section.
//!
//! Three measurements:
//!
//! 1. **A churn day across N sessions** (default 64 sessions of 12 VMs
//!    over 24h, cycling all five policies, guarded schedule on even
//!    sessions): the interleaved schedule is replayed once on 1 worker
//!    and once on the configured pool, the wall times of both are
//!    recorded, and the run *asserts* the two `ServiceReport`s are
//!    identical — the determinism contract, kept honest on every
//!    regeneration.
//! 2. **A what-if probe** — session 0 is replayed to mid-day, forked,
//!    and asked "what would an off-cycle re-pack free right now?";
//!    the delta (servers freed, migrations, energy estimate) lands in
//!    the artifact without the live session noticing.
//! 3. **`par_push_sample`** — the parallel monitoring tick at
//!    n ∈ {1024, 4096}, with `cores` recorded per row; on a 1-core
//!    host the parallel row is `null` (a "parallel" number from a
//!    serial machine is noise, not data). This finally gives the PR 1
//!    follow-up a standing artifact slot that fills in on a multi-core
//!    host.
//!
//! Knobs (all env, for CI-sized smokes): `CAVM_SERVICE_SESSIONS`,
//! `CAVM_SERVICE_WORKERS`, `CAVM_SERVICE_VMS`, `CAVM_SERVICE_HOURS`,
//! `CAVM_SERVICE_SEED`.
//!
//! ```text
//! cargo run --release -p cavm-bench --bin exp_service
//! ```
//!
//! [`SessionHost`]: cavm_sim::SessionHost

use cavm_bench::{env, mini_fleet};
use cavm_core::corr::CostMatrix;
use cavm_sim::service::{interleave, lifecycle_events, SessionHost};
use cavm_sim::{
    ControllerConfig, NullSink, Policy, QosGuard, RepackTrigger, Scenario, ScenarioBuilder,
    SessionEvent, WhatIfDelta,
};
use cavm_trace::Reference;
use cavm_workload::lifecycle::{ArrivalProcess, Lifecycle, LifecycleBuilder, LifetimeModel};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const PAR_SIZES: [usize; 2] = [1024, 4096];

/// Median ns of `reps` timed invocations of `f` (after one warm-up).
fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

fn five_policies() -> [Policy; 5] {
    [
        Policy::Bfd,
        Policy::Ffd,
        Policy::Pcp {
            envelope_percentile: 90.0,
            affinity_threshold: 0.2,
        },
        Policy::SuperVm {
            min_pair_cost: 1.25,
        },
        Policy::Proposed(Default::default()),
    ]
}

/// One tenant session: its own trace fleet, churn schedule and policy.
fn session_scenario(s: usize, vms: usize, hours: usize, seed: u64) -> (Scenario, Lifecycle) {
    let traces = mini_fleet(seed + s as u64, vms, hours as f64);
    let horizon = traces.vms()[0].fine.len();
    let lifecycle = LifecycleBuilder::new(vms, horizon)
        .seed(seed + 1000 + s as u64)
        .arrivals(ArrivalProcess::Poisson {
            mean_gap_samples: horizon as f64 / (2.0 * vms as f64),
        })
        .lifetimes(LifetimeModel::Exponential {
            mean_samples: horizon as f64 / 3.0,
        })
        .build()
        .expect("valid lifecycle");
    let mut builder = ScenarioBuilder::new(traces)
        .servers(2 * vms)
        .policy(five_policies()[s % 5])
        .repack_trigger(RepackTrigger::Hybrid { slack: 1 })
        .lifecycle(lifecycle.clone());
    if s.is_multiple_of(2) {
        builder = builder
            .qos_guard(QosGuard {
                violation_ratio: 0.05,
            })
            .adaptive_slack_max(4);
    }
    (builder.build().expect("valid scenario"), lifecycle)
}

struct Day {
    configs: Vec<ControllerConfig>,
    schedule: Vec<SessionEvent>,
    /// Session 0's raw event stream, kept for the what-if probe.
    probe_events: Vec<cavm_sim::VmEvent>,
}

fn build_day(sessions: usize, vms: usize, hours: usize, seed: u64) -> Day {
    let mut configs = Vec::with_capacity(sessions);
    let mut streams = Vec::with_capacity(sessions);
    for s in 0..sessions {
        let (scenario, lifecycle) = session_scenario(s, vms, hours, seed);
        let traces = mini_fleet(seed + s as u64, vms, hours as f64);
        let events = lifecycle_events(&traces, &lifecycle, scenario.period_samples())
            .expect("valid schedule");
        streams.push(events);
        configs.push(scenario.controller_config());
    }
    let probe_events = streams[0].clone();
    Day {
        configs,
        schedule: interleave(&streams),
        probe_events,
    }
}

/// Replays session 0 to mid-day and runs the speculative re-pack on a
/// fork, leaving the live session untouched.
fn what_if_probe(config: ControllerConfig, events: &[cavm_sim::VmEvent]) -> WhatIfDelta {
    let mut live = cavm_sim::DatacenterController::new(config).expect("valid session config");
    let k = events.len() / 2 + 1;
    for event in &events[..k] {
        live.apply(event.clone(), &mut NullSink).expect("replay");
    }
    let live_state = format!("{live:?}");
    let delta = live.what_if().repack().expect("speculative re-pack");
    assert_eq!(
        format!("{live:?}"),
        live_state,
        "what-if must never touch the live session"
    );
    delta
}

struct ParRow {
    n: usize,
    serial_ns: f64,
    par_ns: Option<f64>,
}

fn par_row(n: usize, cores: usize) -> ParRow {
    let utils: Vec<f64> = {
        let mut rng = cavm_trace::SimRng::new(n as u64);
        (0..n).map(|_| rng.f64() * 4.0).collect()
    };
    let reps = (2_000_000 / (n * n / 2)).clamp(5, 200);
    let mut serial = CostMatrix::new(n, Reference::Peak).expect("valid size");
    let serial_ns = median_ns(reps, || {
        serial.push_sample(black_box(&utils)).expect("width")
    });
    let par_ns = (cores > 1).then(|| {
        let mut par = CostMatrix::new(n, Reference::Peak).expect("valid size");
        median_ns(reps, || {
            par.par_push_sample(black_box(&utils)).expect("width")
        })
    });
    ParRow {
        n,
        serial_ns,
        par_ns,
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x:.0}"))
}

fn main() {
    let sessions = env::parse_or("CAVM_SERVICE_SESSIONS", 64);
    let workers = env::parse_or("CAVM_SERVICE_WORKERS", 8);
    let vms = env::parse_or("CAVM_SERVICE_VMS", 12);
    let hours = env::parse_or("CAVM_SERVICE_HOURS", 24);
    let seed = env::parse_or("CAVM_SERVICE_SEED", 2013);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    eprintln!("building {sessions} sessions x {vms} VMs over {hours}h (seed {seed}) ...");
    let day = build_day(sessions, vms, hours, seed);
    eprintln!("  schedule: {} events", day.schedule.len());

    let narrow = SessionHost::new(day.configs.clone(), 1).expect("valid host");
    let wide = SessionHost::new(day.configs.clone(), workers).expect("valid host");

    eprintln!("replaying on 1 worker ...");
    let started = Instant::now();
    let single = narrow.run(day.schedule.clone()).expect("single-worker run");
    let single_wall_s = started.elapsed().as_secs_f64();
    eprintln!("  {single_wall_s:.1}s");

    eprintln!("replaying on {workers} workers (cores: {cores}) ...");
    let started = Instant::now();
    let multi = wide.run(day.schedule.clone()).expect("multi-worker run");
    let multi_wall_s = started.elapsed().as_secs_f64();
    eprintln!("  {multi_wall_s:.1}s");

    // The determinism contract, enforced on every regeneration: the
    // worker pool must change wall time only, never a single bit of
    // any report.
    assert_eq!(single, multi, "1-worker and {workers}-worker runs diverged");
    let merged = &multi.merged;
    eprintln!(
        "  merged: {:.3e} J, worst violation {:.2}%, {} admissions, {} off-cycle re-packs",
        merged.energy_joules,
        merged.max_violation_percent,
        merged.online_admissions,
        merged.offcycle_repacks,
    );

    eprintln!("what-if probe on session 0 ...");
    let delta = what_if_probe(day.configs[0].clone(), &day.probe_events);
    eprintln!(
        "  re-pack now would free {} of {} servers with {} migrations ({:.1} J est.)",
        delta.servers_freed, delta.servers_before, delta.migrations, delta.energy_estimate,
    );

    eprintln!("par_push_sample (cores: {cores}) ...");
    let par_rows: Vec<ParRow> = PAR_SIZES.iter().map(|&n| par_row(n, cores)).collect();
    for row in &par_rows {
        eprintln!(
            "  n={:4}: serial {:>12.0} ns/tick  par {}",
            row.n,
            row.serial_ns,
            row.par_ns
                .map_or("skipped (1 core)".into(), |v| format!("{v:.0} ns/tick")),
        );
    }

    let mut section = String::new();
    section.push_str("{\n");
    let _ = writeln!(
        section,
        "    \"sessions\": {sessions}, \"workers\": {workers}, \"vms_per_session\": {vms}, \"hours\": {hours}, \"seed\": {seed}, \"cores\": {cores},"
    );
    let _ = writeln!(
        section,
        "    \"schedule_events\": {}, \"single_worker_wall_s\": {:.2}, \"multi_worker_wall_s\": {:.2}, \"deterministic\": true,",
        day.schedule.len(),
        single_wall_s,
        multi_wall_s,
    );
    let _ = writeln!(
        section,
        "    \"merged\": {{\"energy_joules\": {:.1}, \"max_violation_percent\": {:.3}, \"violation_instances\": {}, \"online_admissions\": {}, \"offcycle_repacks\": {}, \"migrations\": {}, \"sink_dropped_events\": {}}},",
        merged.energy_joules,
        merged.max_violation_percent,
        merged.violation_instances,
        merged.online_admissions,
        merged.offcycle_repacks,
        merged.migrations,
        merged.sink_dropped_events,
    );
    let _ = writeln!(
        section,
        "    \"what_if\": {{\"servers_before\": {}, \"servers_after\": {}, \"servers_freed\": {}, \"migrations\": {}, \"energy_estimate_joules\": {:.1}}},",
        delta.servers_before,
        delta.servers_after,
        delta.servers_freed,
        delta.migrations,
        delta.energy_estimate,
    );
    section.push_str("    \"par_push_sample\": [\n");
    for (i, row) in par_rows.iter().enumerate() {
        let speedup = row
            .par_ns
            .map(|par| format!("{:.2}", row.serial_ns / par))
            .unwrap_or_else(|| "null".to_string());
        let _ = write!(
            section,
            "      {{\"n\": {}, \"cores\": {}, \"serial_ns_per_tick\": {:.0}, \"par_ns_per_tick\": {}, \"par_speedup_vs_serial\": {}}}",
            row.n,
            cores,
            row.serial_ns,
            json_opt(row.par_ns),
            speedup,
        );
        section.push_str(if i + 1 < par_rows.len() { ",\n" } else { "\n" });
    }
    section.push_str("    ]\n  }");
    cavm_bench::artifact::splice_section("service", &section);
}
