//! Fig 1 — CPU utilization of two ISNs tracks the client population.
//!
//! Regenerates the paper's Fig 1: two index-serving nodes of one web
//! search cluster, driven by a sine-shaped client count, sampled every
//! second. The series are printed as CSV plus summary statistics: the
//! intra-cluster Pearson correlation (the phenomenon §III-C builds on)
//! and each ISN's correlation with the client signal.

use cavm_core::corr::{cost_of_traces, pearson_of_traces};
use cavm_trace::Reference;
use cavm_workload::{ClientWave, WebSearchCluster};

fn main() {
    let cluster = WebSearchCluster::paper_setup1().expect("paper preset is valid");
    let wave = ClientWave::sine(0.0, 300.0, 1200.0).expect("wave parameters are valid");
    let clients = wave.sample(1.0, 1200).expect("sampling succeeds");
    let mut rng = cavm_trace::SimRng::new(1);
    let isns = cluster
        .utilization_traces(&clients, &mut rng)
        .expect("trace generation succeeds");

    println!("# Fig 1 — ISN utilization vs clients (1 s samples, 20 min)");
    println!("t_s,clients,vm1_cores,vm2_cores");
    for k in (0..clients.len()).step_by(10) {
        println!(
            "{:.0},{:.1},{:.3},{:.3}",
            k as f64,
            clients.values()[k],
            isns[0].values()[k],
            isns[1].values()[k]
        );
    }

    let r_intra = pearson_of_traces(&isns[0], &isns[1])
        .expect("equal-length traces")
        .expect("non-degenerate variance");
    let r_c0 = pearson_of_traces(&isns[0], &clients)
        .expect("equal-length traces")
        .expect("non-degenerate variance");
    let r_c1 = pearson_of_traces(&isns[1], &clients)
        .expect("equal-length traces")
        .expect("non-degenerate variance");
    let cost =
        cost_of_traces(&isns[0], &isns[1], Reference::Peak).expect("cost evaluation succeeds");

    println!();
    println!("# Summary");
    println!("pearson(vm1, vm2)      = {r_intra:.3}   (paper: 'highly synchronized')");
    println!("pearson(vm1, clients)  = {r_c0:.3}");
    println!("pearson(vm2, clients)  = {r_c1:.3}");
    println!("eqn1 cost(vm1, vm2)    = {cost:.3}   (near 1 = strongly correlated)");
    println!(
        "peak load: vm1 {:.2} cores, vm2 {:.2} cores (imbalanced shards)",
        isns[0].peak(),
        isns[1].peak()
    );
}
