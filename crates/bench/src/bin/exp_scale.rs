//! Scale experiment: placement cells vs the O(n²) correlation wall.
//!
//! Two measurements, spliced into `BENCH_corr.json` as the `"scale"`
//! section:
//!
//! 1. **Tick microbench** — ns per fleet-wide monitoring tick for one
//!    dense `CostMatrix` over n VMs vs a [`CellFleet`] of the same VMs
//!    sharded into cells (default n = 4096, 16 cells). At the default
//!    full size the run *asserts* the sharded tick is ≥ 10× faster —
//!    the PR's headline claim, kept honest on every regeneration.
//! 2. **A synthetic datacenter day at 100k VMs** — Poisson arrivals
//!    (~100k over the first 80% of a 24h day at 30s samples),
//!    exponential leases (mean 1.5h), diurnal demand traces, driven
//!    through a [`ShardedController`] (default 256 cells over 1536
//!    8-core servers, hourly re-pack periods). Roughly one million
//!    events (arrivals + departures + per-cell ticks) — a fleet size
//!    the flat controller's dense matrix cannot touch (100k² pairs
//!    ≈ 40 GB at 8 B/pair; the cells hold ~0.15 GB total).
//!
//! Knobs (all env, for CI-sized smokes):
//! `CAVM_SCALE_TICK_N`, `CAVM_SCALE_TICK_CELLS`, `CAVM_SCALE_VMS`,
//! `CAVM_SCALE_CELLS`, `CAVM_SCALE_SERVERS`, `CAVM_SCALE_HOURS`,
//! `CAVM_SCALE_SEED`.
//!
//! ```text
//! cargo run --release -p cavm-bench --bin exp_scale
//! ```

use cavm_bench::env;
use cavm_core::cells::CellFleet;
use cavm_core::corr::CostMatrix;
use cavm_core::dvfs::DvfsMode;
use cavm_core::fleet::ServerFleet;
use cavm_power::LinearPowerModel;
use cavm_sim::{ControllerConfig, NullSink, Policy, ShardedController};
use cavm_trace::{Reference, SimRng, TimeSeries};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const SAMPLE_DT_S: f64 = 30.0;
const SAMPLES_PER_HOUR: usize = 120;
const PERIOD_SAMPLES: usize = SAMPLES_PER_HOUR; // hourly re-pack, as in the paper
const MEAN_LEASE_SAMPLES: f64 = 1.5 * SAMPLES_PER_HOUR as f64;
/// Arrivals land in the first 80% of the horizon so late VMs still live.
const ARRIVAL_WINDOW: f64 = 0.8;

/// Median ns of `reps` timed invocations of `f` (after one warm-up).
fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

struct TickBench {
    n: usize,
    cells: usize,
    dense_ns: f64,
    sharded_ns: f64,
    speedup: f64,
    pair_work: usize,
    dense_pair_work: usize,
}

/// Part 1: the per-tick cost of one dense matrix vs the same VMs
/// sharded into cells.
fn tick_bench(n: usize, cells: usize) -> TickBench {
    let mut rng = SimRng::new(n as u64);
    let utils: Vec<f64> = (0..n).map(|_| rng.f64() * 4.0).collect();
    let reps = (2_000_000 / (n * n / 2).max(1)).clamp(9, 200);

    let mut dense = CostMatrix::new(n, Reference::Peak).expect("valid size");
    let dense_ns = median_ns(reps, || {
        dense.push_sample(black_box(&utils)).expect("width")
    });

    let mut sharded = CellFleet::contiguous(n, cells, Reference::Peak).expect("valid shape");
    // The sharded tick is cells× cheaper; scale reps so both sides get
    // comparable total time under the median.
    let sharded_ns = median_ns(reps * cells.min(32), || {
        sharded.push_sample(black_box(&utils)).expect("width")
    });

    TickBench {
        n,
        cells,
        dense_ns,
        sharded_ns,
        speedup: dense_ns / sharded_ns,
        pair_work: sharded.pair_work(),
        dense_pair_work: sharded.dense_pair_work(),
    }
}

/// One VM's lifecycle in the synthetic day.
struct VmPlan {
    arrival: usize,
    /// Departure sample, when the lease ends inside the horizon.
    departure: Option<usize>,
}

fn draw_plans(rng: &mut SimRng, vms: usize, total: usize) -> Vec<VmPlan> {
    let window = (total as f64 * ARRIVAL_WINDOW).max(1.0);
    let mean_gap = window / vms as f64;
    let rate = 1.0 / mean_gap;
    let mut t = 0.0f64;
    (0..vms)
        .map(|_| {
            t += rng.exponential(rate).expect("positive rate");
            let arrival = (t as usize).min(total - 1);
            let life = 1
                + (rng
                    .exponential(1.0 / MEAN_LEASE_SAMPLES)
                    .expect("positive rate") as usize);
            let departure = (arrival + life < total).then_some(arrival + life);
            VmPlan { arrival, departure }
        })
        .collect()
}

/// A diurnal demand trace: base + daily sinusoid + noise, in cores.
fn draw_trace(rng: &mut SimRng, arrival: usize, len: usize, day_samples: usize) -> TimeSeries {
    let base = rng.range_f64(0.2, 0.8);
    let amp = rng.range_f64(0.1, 0.5);
    let phase = rng.range_f64(0.0, std::f64::consts::TAU);
    let noise: Vec<f64> = (0..len).map(|_| rng.normal(0.0, 0.05)).collect();
    TimeSeries::from_fn(SAMPLE_DT_S, len, |i| {
        let t = (arrival + i) as f64 / day_samples as f64 * std::f64::consts::TAU;
        (base + amp * (t + phase).sin() + noise[i]).max(0.05)
    })
    .expect("non-empty trace")
}

struct DayResult {
    vms: usize,
    cells: usize,
    servers: usize,
    samples: usize,
    events: usize,
    wall_s: f64,
    mean_tick_ms: f64,
    peak_live: usize,
    peak_servers: usize,
    violation_instances: usize,
    online_admissions: usize,
    deferred_peak: usize,
    pair_work: usize,
    dense_pair_work: usize,
}

/// Part 2: the 100k-VM synthetic day through the sharded controller.
#[allow(clippy::too_many_lines)]
fn run_day(vms: usize, cells: usize, servers: usize, hours: usize, seed: u64) -> DayResult {
    let total = hours * SAMPLES_PER_HOUR;
    let day_samples = 24 * SAMPLES_PER_HOUR;
    let mut rng = SimRng::new(seed);
    let plans = draw_plans(&mut rng, vms, total);

    // Pre-bucket the schedule so the replay loop is O(total + events).
    let mut arrivals_at: Vec<Vec<usize>> = vec![Vec::new(); total];
    let mut departures_at: Vec<Vec<usize>> = vec![Vec::new(); total];
    for (id, plan) in plans.iter().enumerate() {
        arrivals_at[plan.arrival].push(id);
        if let Some(d) = plan.departure {
            departures_at[d].push(id);
        }
    }

    let mut dc = ShardedController::new(
        ControllerConfig {
            server_fleet: ServerFleet::uniform(servers, 8.0, LinearPowerModel::xeon_e5410())
                .expect("valid fleet"),
            policy: Policy::Proposed(Default::default()),
            repack_trigger: Default::default(),
            qos_guard: None,
            adaptive_slack_max: None,
            overcommit: None,
            dvfs_mode: DvfsMode::Static,
            period_samples: PERIOD_SAMPLES,
            reference: Reference::Peak,
            dynamic_headroom: 0.1,
            default_demand: 0.6,
            sample_dt_s: SAMPLE_DT_S,
            max_deferred: vms.max(1),
        },
        cells,
    )
    .expect("valid sharded config");

    let mut sink = NullSink;
    let mut events = 0usize;
    let mut peak_live = 0usize;
    let started = Instant::now();
    for k in 0..total {
        for &id in &departures_at[k] {
            dc.depart(id).expect("scheduled departure");
            events += 1;
        }
        for &id in &arrivals_at[k] {
            let plan = &plans[id];
            let horizon = plan.departure.unwrap_or(total);
            let trace = draw_trace(&mut rng, k, horizon - k, day_samples);
            let lease = plan.departure.map(|d| d - k);
            dc.arrive(id, trace, lease, &mut sink).expect("admission");
            events += 1;
        }
        dc.tick(&mut sink).expect("tick");
        events += cells; // one matrix tick per cell
        peak_live = peak_live.max(dc.live_vms());
        if (k + 1) % (total / 10).max(1) == 0 {
            eprintln!(
                "  sample {:>6}/{}: live {:>7}, {:>9} events, {:>6.1}s",
                k + 1,
                total,
                dc.live_vms(),
                events,
                started.elapsed().as_secs_f64(),
            );
        }
    }
    dc.finish(&mut sink).expect("finish");
    let wall_s = started.elapsed().as_secs_f64();
    let report = dc.report();

    // Pair work of the realized routing vs the dense matrix the flat
    // controller would have kept over every id ever seen.
    let mut per_cell = vec![0usize; cells.max(1)];
    for id in 0..vms {
        if let Some(c) = dc.cell_of_vm(id) {
            per_cell[c] += 1;
        }
    }
    let pair_work: usize = per_cell.iter().map(|&m| m * m.saturating_sub(1) / 2).sum();
    let routed: usize = per_cell.iter().sum();
    let dense_pair_work = routed * routed.saturating_sub(1) / 2;

    DayResult {
        vms,
        cells,
        servers,
        samples: total,
        events,
        wall_s,
        mean_tick_ms: wall_s * 1e3 / total as f64,
        peak_live,
        peak_servers: report
            .periods
            .iter()
            .map(|p| p.servers_used)
            .max()
            .unwrap_or(0),
        violation_instances: report.violation_instances,
        online_admissions: report.online_admissions,
        deferred_peak: report.deferred_peak,
        pair_work,
        dense_pair_work,
    }
}

fn main() {
    let tick_n = env::parse_or("CAVM_SCALE_TICK_N", 4096);
    let tick_cells = env::parse_or("CAVM_SCALE_TICK_CELLS", 16);
    let vms = env::parse_or("CAVM_SCALE_VMS", 100_000);
    let cells = env::parse_or("CAVM_SCALE_CELLS", 256);
    let servers = env::parse_or("CAVM_SCALE_SERVERS", 1536);
    let hours = env::parse_or("CAVM_SCALE_HOURS", 24);
    let seed = env::parse_or("CAVM_SCALE_SEED", 2013);

    eprintln!("tick microbench: dense n={tick_n} vs {tick_cells} cells ...");
    let bench = tick_bench(tick_n, tick_cells);
    eprintln!(
        "  dense {:>12.0} ns/tick   sharded {:>12.0} ns/tick   speedup {:.1}x (pair work {} -> {})",
        bench.dense_ns, bench.sharded_ns, bench.speedup, bench.dense_pair_work, bench.pair_work,
    );
    // The PR's headline claim, enforced at the full benchmark size
    // (CI smokes run reduced sizes where constant overheads dominate).
    if tick_n >= 4096 && tick_cells >= 16 {
        assert!(
            bench.speedup >= 10.0,
            "cell-sharded tick must be >= 10x faster than the dense matrix at n={} ({}x measured)",
            tick_n,
            bench.speedup,
        );
    }

    eprintln!(
        "synthetic day: {vms} VMs, {cells} cells, {servers} servers, {hours}h @ {SAMPLE_DT_S}s samples ..."
    );
    let day = run_day(vms, cells, servers, hours, seed);
    eprintln!(
        "  done in {:.1}s: {} events, peak {} live VMs on {} servers, {} violations",
        day.wall_s, day.events, day.peak_live, day.peak_servers, day.violation_instances,
    );

    let mut section = String::new();
    section.push_str("{\n");
    let _ = writeln!(
        section,
        "    \"tick_bench\": {{\"n\": {}, \"cells\": {}, \"dense_ns_per_tick\": {:.0}, \"sharded_ns_per_tick\": {:.0}, \"speedup\": {:.2}, \"pair_work\": {}, \"dense_pair_work\": {}}},",
        bench.n,
        bench.cells,
        bench.dense_ns,
        bench.sharded_ns,
        bench.speedup,
        bench.pair_work,
        bench.dense_pair_work,
    );
    let _ = writeln!(
        section,
        "    \"day\": {{\"vms\": {}, \"cells\": {}, \"servers\": {}, \"samples\": {}, \"events\": {}, \"wall_s\": {:.1}, \"mean_tick_ms\": {:.2}, \"peak_live_vms\": {}, \"peak_servers_used\": {}, \"violation_instances\": {}, \"online_admissions\": {}, \"deferred_peak\": {}, \"pair_work\": {}, \"dense_pair_work\": {}}}",
        day.vms,
        day.cells,
        day.servers,
        day.samples,
        day.events,
        day.wall_s,
        day.mean_tick_ms,
        day.peak_live,
        day.peak_servers,
        day.violation_instances,
        day.online_admissions,
        day.deferred_peak,
        day.pair_work,
        day.dense_pair_work,
    );
    section.push_str("  }");
    cavm_bench::artifact::splice_section("scale", &section);
}
