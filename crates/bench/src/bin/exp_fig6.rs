//! Fig 6 — frequency-level distributions of BFD vs Proposed.
//!
//! Regenerates the paper's Fig 6: histograms of the frequency levels two
//! representative servers used over the day, under static v/f scaling.
//! The proposed policy's correlation discount (Eqn 4) shifts the mass to
//! the lower level; BFD must provision for coincident peaks and lives at
//! the top level.

use cavm_bench::{bar, run_setup2, setup2_fleet, SETUP2_SEED};
use cavm_core::dvfs::DvfsMode;
use cavm_sim::Policy;

fn main() {
    let fleet = setup2_fleet(SETUP2_SEED);
    let bfd = run_setup2(&fleet, Policy::Bfd, DvfsMode::Static);
    let proposed = run_setup2(
        &fleet,
        Policy::Proposed(Default::default()),
        DvfsMode::Static,
    );

    // The paper shows Server1 and Server3; print those two (indices 0
    // and 2) plus the fleet-wide aggregate.
    for server in [0, 2] {
        println!("# Fig 6 — frequency distribution, Server{}", server + 1);
        for report in [&bfd, &proposed] {
            let dist = report
                .freq_distribution(server)
                .expect("servers 1 and 3 are active all day");
            print!("{:<10}", report.policy);
            for (level, share) in report.freq_levels_ghz.iter().zip(&dist) {
                print!(
                    "  {level:.1} GHz: {:>5.1}% {} ",
                    100.0 * share,
                    bar(*share, 20)
                );
            }
            println!();
        }
        println!();
    }

    println!("# Fleet-wide level usage (all servers, all samples)");
    for report in [&bfd, &proposed] {
        let mut totals = vec![0u64; report.freq_levels_ghz.len()];
        for row in &report.freq_histogram {
            for (i, c) in row.iter().enumerate() {
                totals[i] += c;
            }
        }
        let sum: u64 = totals.iter().sum::<u64>().max(1);
        print!("{:<10}", report.policy);
        for (level, count) in report.freq_levels_ghz.iter().zip(&totals) {
            let share = *count as f64 / sum as f64;
            print!(
                "  {level:.1} GHz: {:>5.1}% {} ",
                100.0 * share,
                bar(share, 20)
            );
        }
        println!();
    }
    println!();
    println!("(paper: 'the proposed solution uses the lower frequency levels more");
    println!(" frequently' — the source of Table II(a)'s 13.7% power saving)");
}
