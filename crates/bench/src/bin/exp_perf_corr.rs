//! Perf baseline artifact for the M_cost hot path.
//!
//! Measures, with plain `Instant` timing (no external harness):
//!
//! * **matrix tick** — ns per fleet-wide `push_sample` for the SoA
//!   kernel (Peak and P95, serial and parallel) and for the seed
//!   per-pair path, at n ∈ {64, 256, 1024, 4096} (seed capped at 1024:
//!   its ~640 B/pair layout would need ~5 GB at 4096);
//! * **allocation** — ns per full ALLOCATE pass of the proposed policy
//!   (incremental server-cost scan with the per-candidate (dw, dp)
//!   index) plus BFD as the correlation-blind yardstick, at
//!   n ∈ {64, 256, 1024}, both on the uniform 8-core fleet (`alloc`)
//!   and on a 3-class 4/8/16-core heterogeneous fleet (`alloc_hetero`).
//!   Each row carries the previous artifact's timing as
//!   `prev_proposed_ns_per_placement`, so an optimization PR records
//!   its own before/after in one regeneration.
//!
//! Every row also records the core count it was measured on; on a
//! 1-core host the parallel kernel is not measured at all (the row
//! reads `null`) — a "parallel" number from a serial machine is noise,
//! not data.
//!
//! Rewrites only its own sections of `BENCH_corr.json` (repo root when
//! run from there): every other top-level section — appended by the
//! other experiments, or by binaries this one has never heard of — is
//! preserved verbatim via the schema-agnostic
//! [`artifact`] scanner.
//!
//! ```text
//! cargo run --release -p cavm-bench --bin exp_perf_corr
//! ```

use cavm_bench::artifact;
use cavm_core::alloc::{AllocationPolicy, BfdPolicy, ProposedPolicy, VmDescriptor};
use cavm_core::corr::baseline::PairwiseCostMatrix;
use cavm_core::corr::CostMatrix;
use cavm_core::fleet::{ServerFleet, UNBOUNDED};
use cavm_power::LinearPowerModel;
use cavm_trace::{Reference, SimRng};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const MATRIX_SIZES: [usize; 4] = [64, 256, 1024, 4096];
const SEED_MATRIX_CAP: usize = 1024;
const ALLOC_SIZES: [usize; 3] = [64, 256, 1024];

fn sample(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::new(seed);
    (0..n).map(|_| rng.f64() * 4.0).collect()
}

/// Median ns of `reps` timed invocations of `f` (after one warm-up).
fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Repetition count scaled so small sizes average more runs.
fn reps_for(n: usize) -> usize {
    (2_000_000 / (n * n / 2)).clamp(5, 400)
}

struct MatrixRow {
    n: usize,
    soa_peak_ns: f64,
    soa_p95_ns: f64,
    soa_peak_par_ns: Option<f64>,
    seed_peak_ns: Option<f64>,
}

struct AllocRow {
    n: usize,
    proposed_ns: f64,
    bfd_ns: f64,
    servers: usize,
    /// The previous artifact's `proposed_ns_per_placement` for this n
    /// — the "before" of whatever allocator change this run measures.
    prev_proposed_ns: Option<f64>,
}

fn measure_matrix(n: usize, cores: usize) -> MatrixRow {
    let utils = sample(n, n as u64);
    let reps = reps_for(n);

    let mut soa = CostMatrix::new(n, Reference::Peak).expect("valid size");
    let soa_peak_ns = median_ns(reps, || soa.push_sample(black_box(&utils)).expect("width"));

    let mut p95 = CostMatrix::new(n, Reference::Percentile(95.0)).expect("valid size");
    let soa_p95_ns = median_ns(reps, || p95.push_sample(black_box(&utils)).expect("width"));

    // On a 1-core host the parallel kernel degenerates to the serial
    // one plus thread overhead: skip the measurement entirely.
    let soa_peak_par_ns = (cores > 1).then(|| {
        let mut par = CostMatrix::new(n, Reference::Peak).expect("valid size");
        median_ns(reps, || {
            par.par_push_sample(black_box(&utils)).expect("width")
        })
    });

    let seed_peak_ns = (n <= SEED_MATRIX_CAP).then(|| {
        let mut seed = PairwiseCostMatrix::new(n, Reference::Peak).expect("valid size");
        median_ns(reps.min(40), || {
            seed.push_sample(black_box(&utils)).expect("width")
        })
    });

    MatrixRow {
        n,
        soa_peak_ns,
        soa_p95_ns,
        soa_peak_par_ns,
        seed_peak_ns,
    }
}

/// The uniform fleet (classic 8-core servers, unbounded supply).
fn uniform_fleet() -> ServerFleet {
    ServerFleet::uniform(UNBOUNDED, 8.0, LinearPowerModel::xeon_e5410()).expect("valid fleet")
}

/// Pulls `proposed_ns_per_placement` values, in row order, out of one
/// array section of the previous artifact (hand-rolled: the artifact
/// is written by this binary, so the shape is known).
fn previous_proposed_ns(artifact: &str, section: &str) -> Vec<f64> {
    const KEY: &str = "\"proposed_ns_per_placement\": ";
    let Some(start) = artifact.find(&format!("\"{section}\": [")) else {
        return Vec::new();
    };
    let body = &artifact[start..];
    let end = body.find(']').unwrap_or(body.len());
    let mut out = Vec::new();
    let mut rest = &body[..end];
    while let Some(at) = rest.find(KEY) {
        rest = &rest[at + KEY.len()..];
        let digits: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(v) = digits.parse::<f64>() {
            out.push(v);
        }
    }
    out
}

fn measure_alloc(n: usize, fleet: &ServerFleet) -> AllocRow {
    let mut rng = SimRng::new(n as u64);
    let vms: Vec<VmDescriptor> = (0..n)
        .map(|i| VmDescriptor::new(i, rng.range_f64(0.3, 3.5)))
        .collect();
    let mut matrix = CostMatrix::new(n, Reference::Peak).expect("valid size");
    for _ in 0..64 {
        let s: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 3.5)).collect();
        matrix.push_sample(&s).expect("width");
    }
    let reps = (2_000.0 / (n as f64 / 64.0).powi(2)).clamp(3.0, 200.0) as usize;
    let policy = ProposedPolicy::default();
    let mut servers = 0;
    let proposed_ns = median_ns(reps, || {
        servers = policy
            .place(black_box(&vms), &matrix, fleet)
            .expect("feasible")
            .server_count();
    });
    let bfd_ns = median_ns(reps, || {
        black_box(
            BfdPolicy
                .place(black_box(&vms), &matrix, fleet)
                .expect("feasible"),
        );
    });
    AllocRow {
        n,
        proposed_ns,
        bfd_ns,
        servers,
        prev_proposed_ns: None,
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x:.0}"))
}

/// The top-level sections this binary owns (rewrites from scratch).
const OWN_SECTIONS: [&str; 6] = [
    "schema",
    "cores",
    "note",
    "matrix_tick",
    "alloc",
    "alloc_hetero",
];

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let previous = std::fs::read_to_string(artifact::BENCH_JSON_PATH).unwrap_or_default();
    // Every section owned by another experiment — known to this binary
    // or not — survives the rewrite verbatim.
    let tail: Vec<(String, String)> = artifact::top_level_sections(&previous)
        .unwrap_or_default()
        .into_iter()
        .filter(|(key, _)| !OWN_SECTIONS.contains(&key.as_str()))
        .collect();

    eprintln!("measuring matrix ticks (cores: {cores}) ...");
    let matrix_rows: Vec<MatrixRow> = MATRIX_SIZES
        .iter()
        .map(|&n| {
            let row = measure_matrix(n, cores);
            eprintln!(
                "  n={:4}: soa {:>12.0} ns/tick  p95 {:>12.0} ns/tick  par {}  seed {}",
                n,
                row.soa_peak_ns,
                row.soa_p95_ns,
                row.soa_peak_par_ns
                    .map_or("skipped (1 core)".into(), |v| format!("{v:.0} ns/tick")),
                row.seed_peak_ns
                    .map_or("-".into(), |v| format!("{v:.0} ns/tick")),
            );
            row
        })
        .collect();

    eprintln!("measuring allocation (uniform 8-core fleet) ...");
    let uniform = uniform_fleet();
    let measure_rows = |fleet_of: &dyn Fn(usize) -> ServerFleet, section: &str| -> Vec<AllocRow> {
        let prev = previous_proposed_ns(&previous, section);
        ALLOC_SIZES
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let mut row = measure_alloc(n, &fleet_of(n));
                row.prev_proposed_ns = prev.get(i).copied();
                let delta = row.prev_proposed_ns.map_or(String::new(), |p| {
                    format!("  ({:.2}x vs prev)", p / row.proposed_ns)
                });
                eprintln!(
                    "  n={:4}: proposed {:>12.0} ns/placement ({} servers)  bfd {:>12.0} ns{}",
                    n, row.proposed_ns, row.servers, row.bfd_ns, delta
                );
                row
            })
            .collect()
    };
    let alloc_rows = measure_rows(&|_| uniform.clone(), "alloc");
    eprintln!("measuring allocation (3-class 4/8/16-core fleet) ...");
    let hetero_rows = measure_rows(
        &|n| ServerFleet::mixed_4_8_16(n, n, n).expect("valid counts"),
        "alloc_hetero",
    );

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"cavm-bench-corr/1\",");
    let _ = writeln!(out, "  \"cores\": {cores},");
    let _ = writeln!(
        out,
        "  \"note\": \"seed_peak is the retained per-pair baseline (PairwiseCostMatrix); null above n={SEED_MATRIX_CAP}. par uses std::thread chunked rows; not measured (null) on 1-core hosts. prev_proposed_ns_per_placement is the previous artifact's timing (before/after across allocator changes).\","
    );
    out.push_str("  \"matrix_tick\": [\n");
    for (i, r) in matrix_rows.iter().enumerate() {
        let speedup = r
            .seed_peak_ns
            .map(|seed| format!("{:.2}", seed / r.soa_peak_ns))
            .unwrap_or_else(|| "null".to_string());
        let par_speedup = r
            .soa_peak_par_ns
            .map(|par| format!("{:.2}", r.soa_peak_ns / par))
            .unwrap_or_else(|| "null".to_string());
        let _ = write!(
            out,
            "    {{\"n\": {}, \"cores\": {}, \"soa_peak_ns_per_tick\": {:.0}, \"soa_p95_ns_per_tick\": {:.0}, \"soa_peak_par_ns_per_tick\": {}, \"seed_peak_ns_per_tick\": {}, \"speedup_vs_seed\": {}, \"par_speedup_vs_serial\": {}}}",
            r.n,
            cores,
            r.soa_peak_ns,
            r.soa_p95_ns,
            json_opt(r.soa_peak_par_ns),
            json_opt(r.seed_peak_ns),
            speedup,
            par_speedup,
        );
        out.push_str(if i + 1 < matrix_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    for (key, rows) in [("alloc", &alloc_rows), ("alloc_hetero", &hetero_rows)] {
        let _ = write!(out, "  ],\n  \"{key}\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"n\": {}, \"cores\": {}, \"proposed_ns_per_placement\": {:.0}, \"prev_proposed_ns_per_placement\": {}, \"bfd_ns_per_placement\": {:.0}, \"servers\": {}}}",
                r.n,
                cores,
                r.proposed_ns,
                json_opt(r.prev_proposed_ns),
                r.bfd_ns,
                r.servers
            );
            out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
    }
    out.push_str("  ]");
    for (key, value) in &tail {
        let _ = write!(out, ",\n  \"{key}\": {value}");
    }
    out.push_str("\n}\n");

    std::fs::write(artifact::BENCH_JSON_PATH, &out).expect("write BENCH_corr.json");
    println!("{out}");
    eprintln!(
        "wrote {} (trailing sections preserved: {})",
        artifact::BENCH_JSON_PATH,
        tail.len()
    );
}
