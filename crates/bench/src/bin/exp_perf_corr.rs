//! Perf baseline artifact for the M_cost hot path.
//!
//! Measures, with plain `Instant` timing (no external harness):
//!
//! * **matrix tick** — ns per fleet-wide `push_sample` for the SoA
//!   kernel (Peak and P95, serial and parallel) and for the seed
//!   per-pair path, at n ∈ {64, 256, 1024, 4096} (seed capped at 1024:
//!   its ~640 B/pair layout would need ~5 GB at 4096);
//! * **allocation** — ns per full ALLOCATE pass of the proposed policy
//!   (incremental server-cost scan) plus BFD as the correlation-blind
//!   yardstick, at n ∈ {64, 256, 1024}, both on the uniform 8-core
//!   fleet (`alloc`) and on a 3-class 4/8/16-core heterogeneous fleet
//!   (`alloc_hetero`).
//!
//! Writes `BENCH_corr.json` (repo root when run from there) so future
//! PRs have a trajectory to compare against — rewriting the whole
//! artifact, so re-run `exp_online` afterwards to restore its
//! `"online"` section:
//!
//! ```text
//! cargo run --release -p cavm-bench --bin exp_perf_corr
//! ```

use cavm_core::alloc::{AllocationPolicy, BfdPolicy, ProposedPolicy, VmDescriptor};
use cavm_core::corr::baseline::PairwiseCostMatrix;
use cavm_core::corr::CostMatrix;
use cavm_core::fleet::{ServerFleet, UNBOUNDED};
use cavm_power::LinearPowerModel;
use cavm_trace::{Reference, SimRng};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const MATRIX_SIZES: [usize; 4] = [64, 256, 1024, 4096];
const SEED_MATRIX_CAP: usize = 1024;
const ALLOC_SIZES: [usize; 3] = [64, 256, 1024];

fn sample(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::new(seed);
    (0..n).map(|_| rng.f64() * 4.0).collect()
}

/// Median ns of `reps` timed invocations of `f` (after one warm-up).
fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Repetition count scaled so small sizes average more runs.
fn reps_for(n: usize) -> usize {
    (2_000_000 / (n * n / 2)).clamp(5, 400)
}

struct MatrixRow {
    n: usize,
    soa_peak_ns: f64,
    soa_p95_ns: f64,
    soa_peak_par_ns: f64,
    seed_peak_ns: Option<f64>,
}

struct AllocRow {
    n: usize,
    proposed_ns: f64,
    bfd_ns: f64,
    servers: usize,
}

fn measure_matrix(n: usize) -> MatrixRow {
    let utils = sample(n, n as u64);
    let reps = reps_for(n);

    let mut soa = CostMatrix::new(n, Reference::Peak).expect("valid size");
    let soa_peak_ns = median_ns(reps, || soa.push_sample(black_box(&utils)).expect("width"));

    let mut p95 = CostMatrix::new(n, Reference::Percentile(95.0)).expect("valid size");
    let soa_p95_ns = median_ns(reps, || p95.push_sample(black_box(&utils)).expect("width"));

    let mut par = CostMatrix::new(n, Reference::Peak).expect("valid size");
    let soa_peak_par_ns = median_ns(reps, || {
        par.par_push_sample(black_box(&utils)).expect("width")
    });

    let seed_peak_ns = (n <= SEED_MATRIX_CAP).then(|| {
        let mut seed = PairwiseCostMatrix::new(n, Reference::Peak).expect("valid size");
        median_ns(reps.min(40), || {
            seed.push_sample(black_box(&utils)).expect("width")
        })
    });

    MatrixRow {
        n,
        soa_peak_ns,
        soa_p95_ns,
        soa_peak_par_ns,
        seed_peak_ns,
    }
}

/// The uniform fleet (classic 8-core servers, unbounded supply).
fn uniform_fleet() -> ServerFleet {
    ServerFleet::uniform(UNBOUNDED, 8.0, LinearPowerModel::xeon_e5410()).expect("valid fleet")
}

fn measure_alloc(n: usize, fleet: &ServerFleet) -> AllocRow {
    let mut rng = SimRng::new(n as u64);
    let vms: Vec<VmDescriptor> = (0..n)
        .map(|i| VmDescriptor::new(i, rng.range_f64(0.3, 3.5)))
        .collect();
    let mut matrix = CostMatrix::new(n, Reference::Peak).expect("valid size");
    for _ in 0..64 {
        let s: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 3.5)).collect();
        matrix.push_sample(&s).expect("width");
    }
    let reps = (2_000.0 / (n as f64 / 64.0).powi(2)).clamp(3.0, 200.0) as usize;
    let policy = ProposedPolicy::default();
    let mut servers = 0;
    let proposed_ns = median_ns(reps, || {
        servers = policy
            .place(black_box(&vms), &matrix, fleet)
            .expect("feasible")
            .server_count();
    });
    let bfd_ns = median_ns(reps, || {
        black_box(
            BfdPolicy
                .place(black_box(&vms), &matrix, fleet)
                .expect("feasible"),
        );
    });
    AllocRow {
        n,
        proposed_ns,
        bfd_ns,
        servers,
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x:.0}"))
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    eprintln!("measuring matrix ticks (cores: {cores}) ...");
    let matrix_rows: Vec<MatrixRow> = MATRIX_SIZES
        .iter()
        .map(|&n| {
            let row = measure_matrix(n);
            eprintln!(
            "  n={:4}: soa {:>12.0} ns/tick  p95 {:>12.0} ns/tick  par {:>12.0} ns/tick  seed {}",
            n,
            row.soa_peak_ns,
            row.soa_p95_ns,
            row.soa_peak_par_ns,
            row.seed_peak_ns.map_or("-".into(), |v| format!("{v:.0} ns/tick")),
        );
            row
        })
        .collect();

    eprintln!("measuring allocation (uniform 8-core fleet) ...");
    let uniform = uniform_fleet();
    let alloc_rows: Vec<AllocRow> = ALLOC_SIZES
        .iter()
        .map(|&n| {
            let row = measure_alloc(n, &uniform);
            eprintln!(
                "  n={:4}: proposed {:>12.0} ns/placement ({} servers)  bfd {:>12.0} ns",
                n, row.proposed_ns, row.servers, row.bfd_ns
            );
            row
        })
        .collect();

    eprintln!("measuring allocation (3-class 4/8/16-core fleet) ...");
    let hetero_rows: Vec<AllocRow> = ALLOC_SIZES
        .iter()
        .map(|&n| {
            let row = measure_alloc(
                n,
                &ServerFleet::mixed_4_8_16(n, n, n).expect("valid counts"),
            );
            eprintln!(
                "  n={:4}: proposed {:>12.0} ns/placement ({} servers)  bfd {:>12.0} ns",
                n, row.proposed_ns, row.servers, row.bfd_ns
            );
            row
        })
        .collect();

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"cavm-bench-corr/1\",");
    let _ = writeln!(out, "  \"cores\": {cores},");
    let _ = writeln!(
        out,
        "  \"note\": \"seed_peak is the retained per-pair baseline (PairwiseCostMatrix); null above n={SEED_MATRIX_CAP}. par uses std::thread chunked rows; speedup requires >1 core.\","
    );
    out.push_str("  \"matrix_tick\": [\n");
    for (i, r) in matrix_rows.iter().enumerate() {
        let speedup = r
            .seed_peak_ns
            .map(|seed| format!("{:.2}", seed / r.soa_peak_ns))
            .unwrap_or_else(|| "null".to_string());
        // On a single-core host the parallel path degenerates to the
        // serial kernel; a "speedup" there is measurement noise, not a
        // claim — record null.
        let par_speedup = if cores > 1 {
            format!("{:.2}", r.soa_peak_ns / r.soa_peak_par_ns)
        } else {
            "null".to_string()
        };
        let _ = write!(
            out,
            "    {{\"n\": {}, \"soa_peak_ns_per_tick\": {:.0}, \"soa_p95_ns_per_tick\": {:.0}, \"soa_peak_par_ns_per_tick\": {:.0}, \"seed_peak_ns_per_tick\": {}, \"speedup_vs_seed\": {}, \"par_speedup_vs_serial\": {}}}",
            r.n,
            r.soa_peak_ns,
            r.soa_p95_ns,
            r.soa_peak_par_ns,
            json_opt(r.seed_peak_ns),
            speedup,
            par_speedup,
        );
        out.push_str(if i + 1 < matrix_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    for (key, rows) in [("alloc", &alloc_rows), ("alloc_hetero", &hetero_rows)] {
        let _ = write!(out, "  ],\n  \"{key}\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"n\": {}, \"proposed_ns_per_placement\": {:.0}, \"bfd_ns_per_placement\": {:.0}, \"servers\": {}}}",
                r.n, r.proposed_ns, r.bfd_ns, r.servers
            );
            out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
    }
    out.push_str("  ]\n}\n");

    std::fs::write("BENCH_corr.json", &out).expect("write BENCH_corr.json");
    println!("{out}");
    eprintln!("wrote BENCH_corr.json");
}
