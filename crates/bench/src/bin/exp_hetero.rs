//! Heterogeneous-fleet experiment: all five policies on a 3-class
//! datacenter (4/8/16-core server classes with scaled power models).
//!
//! The paper's testbed is uniform; related work (Esfandiarpoor et al.,
//! Akhter et al.) treats mixed server generations as the baseline
//! setting. This experiment replays the Setup-2-style trace fleet
//! against such a mix: the correlation-aware policy keeps its edge
//! because the Eqn (2)/(3) machinery is evaluated per class (largest,
//! most efficient boxes fill first) and Eqn (4) discounts each server's
//! frequency on its own class ladder.
//!
//! ```text
//! cargo run --release -p cavm-bench --bin exp_hetero
//! ```
//!
//! Environment knobs (for CI smoke runs): `CAVM_HETERO_VMS` (default
//! 40), `CAVM_HETERO_HOURS` (default 24).

use cavm_bench::env;
use cavm_bench::{bar, PCP_AFFINITY_THRESHOLD, PCP_ENVELOPE_PERCENTILE};
use cavm_core::dvfs::DvfsMode;
use cavm_core::fleet::ServerFleet;
use cavm_sim::{Policy, ScenarioBuilder, SimReport};
use cavm_workload::datacenter::DatacenterTraceBuilder;

fn main() {
    let vms = env::parse_or("CAVM_HETERO_VMS", 40);
    let hours = env::parse_or("CAVM_HETERO_HOURS", 24.0);
    let fleet = DatacenterTraceBuilder::new((vms * 3).max(vms))
        .groups((vms / 4).max(2))
        .seed(2013)
        .idle_fraction(0.4)
        .vm_scale_range(0.35, 1.05)
        .duration_hours(hours)
        .build()
        .expect("static builder parameters are valid")
        .select_top(vms);
    let server_fleet = ServerFleet::mixed_4_8_16(24, 16, 4).expect("valid counts");

    let policies = [
        Policy::Bfd,
        Policy::Ffd,
        Policy::Pcp {
            envelope_percentile: PCP_ENVELOPE_PERCENTILE,
            affinity_threshold: PCP_AFFINITY_THRESHOLD,
        },
        Policy::SuperVm {
            min_pair_cost: 1.25,
        },
        Policy::Proposed(Default::default()),
    ];
    let reports: Vec<SimReport> = policies
        .iter()
        .map(|&policy| {
            ScenarioBuilder::new(fleet.clone())
                .server_fleet(server_fleet.clone())
                .policy(policy)
                .dvfs_mode(DvfsMode::Static)
                .build()
                .expect("scenario parameters are valid")
                .run()
                .expect("scenario runs to completion")
        })
        .collect();
    let baseline = reports
        .iter()
        .find(|r| r.policy == "BFD")
        .expect("BFD is in the policy set")
        .energy;

    println!("# Heterogeneous 3-class fleet — {vms} VMs over {hours} h, static DVFS");
    println!(
        "  fleet: {}",
        server_fleet
            .classes()
            .iter()
            .map(|c| format!("{}×{} ({} cores)", c.count(), c.name(), c.cores()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!();
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>12}  normalized bar",
        "policy", "energy kWh", "norm. power", "max viol%", "migrations"
    );
    for r in &reports {
        let norm = r.energy.normalized_to(&baseline).expect("baseline > 0");
        println!(
            "{:<10} {:>12.2} {:>12.3} {:>10.2} {:>12}  {}",
            r.policy,
            r.energy.kilowatt_hours(),
            norm,
            r.max_violation_percent,
            r.total_migrations(),
            bar(norm, 30),
        );
    }

    println!();
    println!("# Per-class breakdown (energy share / peak servers used / migrations in)");
    for r in &reports {
        let total = r.energy.joules().max(f64::MIN_POSITIVE);
        let cells: Vec<String> = r
            .classes
            .iter()
            .map(|c| {
                format!(
                    "{}: {:>4.1}% of energy, {}/{} servers, {} migr",
                    c.name,
                    100.0 * c.energy.joules() / total,
                    c.peak_servers_used,
                    c.servers_available,
                    c.migrations_in,
                )
            })
            .collect();
        println!("{:<10} {}", r.policy, cells.join(" | "));
    }

    let proposed = &reports[4];
    let bfd = &reports[0];
    let ffd = &reports[1];
    println!();
    println!(
        "proposed vs BFD: {:.1}% energy, vs FFD: {:.1}%",
        100.0 * proposed.energy.normalized_to(&bfd.energy).expect("nonzero"),
        100.0 * proposed.energy.normalized_to(&ffd.energy).expect("nonzero"),
    );
    assert!(
        proposed.energy.joules() <= bfd.energy.joules()
            && proposed.energy.joules() <= ffd.energy.joules(),
        "the correlation-aware policy must not lose to the blind baselines here"
    );
    println!("(proposed ≤ both correlation-blind baselines — asserted)");
    // At the canonical size, pin the headline ratio so the class-aware
    // open-server scoring (watts-per-served-core tie-break) can only
    // improve on the ≈89% the fleet PR landed at, never regress past
    // 92%.
    if vms == 40 && (hours - 24.0).abs() < 1e-9 {
        let ratio = proposed
            .energy
            .normalized_to(&bfd.energy)
            .expect("nonzero baseline");
        assert!(
            ratio <= 0.92,
            "proposed/BFD hetero energy regressed to {ratio:.4} (> 0.92)"
        );
        println!("(proposed/BFD ratio {ratio:.4} ≤ 0.92 — asserted)");
    }
}
