//! Fig 4 — per-server utilization traces of the three placements.
//!
//! Regenerates the paper's Fig 4: the normalized aggregate CPU
//! utilization of both servers under (a) Segregated, (b) Shared-UnCorr
//! and (c) Shared-Corr, plus the peak utilizations the text discusses
//! (≈0.88 for Shared-UnCorr vs ≈0.6 for Shared-Corr in the paper).

use cavm_bench::bar;
use cavm_cluster::experiment::{run_setup1, Setup1Config, Setup1Placement};

fn main() {
    let config = Setup1Config::default();
    for placement in [
        Setup1Placement::Segregated,
        Setup1Placement::SharedUncorrelated,
        Setup1Placement::SharedCorrelated,
    ] {
        let out = run_setup1(placement, &config).expect("scenario runs");
        println!(
            "# Fig 4 ({}) — normalized server utilization, 30 s resolution",
            out.placement.label()
        );
        println!(
            "{:>6} {:>8} {:<26} {:>8} {:<26}",
            "t_s", "srv1", "", "srv2", ""
        );
        let s1 = &out.result.server_utilization[0];
        let s2 = &out.result.server_utilization[1];
        for k in (0..s1.len()).step_by(30) {
            let (u1, u2) = (s1.values()[k], s2.values()[k]);
            println!(
                "{:>6} {:>8.2} {:<26} {:>8.2} {:<26}",
                k,
                u1,
                bar(u1, 25),
                u2,
                bar(u2, 25)
            );
        }
        // Peaks of the 30 s-averaged signal: what one reads off the
        // paper's figure (1 s Poisson noise momentarily saturates any
        // busy server and would hide the placement difference).
        let p30: Vec<f64> = [s1, s2]
            .iter()
            .map(|t| t.coarsen_mean(30).expect("factor >= 1").peak())
            .collect();
        println!(
            "peak utilization (30 s avg): server1 {:.2}, server2 {:.2}   (1 s peaks {:.2}/{:.2})",
            p30[0], p30[1], out.peak_server_util[0], out.peak_server_util[1]
        );
        // Per-VM imbalance visible in the Segregated panel (Fig 4(a)).
        if placement == Setup1Placement::Segregated {
            for (v, t) in out.result.vm_utilization.iter().enumerate() {
                println!(
                    "  vm{} mean {:.2} / peak {:.2} cores",
                    v + 1,
                    t.mean(),
                    t.peak()
                );
            }
        }
        println!();
    }
    println!("(paper: Shared-UnCorr peaks near 0.88 because cluster-mates peak together;");
    println!(" Shared-Corr flattens both servers — the reduction Eqn 4 converts to power)");
}
