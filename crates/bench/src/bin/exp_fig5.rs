//! Fig 5 — 90th-percentile response times of the three placements.
//!
//! Regenerates the paper's Fig 5: per-cluster 90th-percentile response
//! time for Segregated, Shared-UnCorr and Shared-Corr at full clock
//! (2.1 GHz) plus Shared-Corr down-clocked to 1.9 GHz — the punchline
//! being that the correlation-aware placement at the LOW clock matches
//! the correlation-blind placement at the HIGH clock, which is where the
//! ~12% power saving comes from.

use cavm_cluster::experiment::{run_setup1, Setup1Config, Setup1Placement};
use cavm_power::{Frequency, LinearPowerModel, PowerModel};

fn main() {
    let mut rows = Vec::new();
    for closed_loop in [false, true] {
        let full = Setup1Config {
            closed_loop,
            ..Setup1Config::default()
        };
        let low = Setup1Config {
            frequency_scale: 1.9 / 2.1,
            ..full
        };

        println!(
            "# Fig 5 — 90th percentile response time (s), {} clients",
            if closed_loop {
                "closed-loop (Faban-like)"
            } else {
                "open-loop Poisson"
            }
        );
        println!("{:<24} {:>10} {:>10}", "placement", "cluster1", "cluster2");

        for (label, placement, config) in [
            ("Segregated", Setup1Placement::Segregated, &full),
            (
                "Shared-UnCorr (2.1G)",
                Setup1Placement::SharedUncorrelated,
                &full,
            ),
            (
                "Shared-Corr (2.1G)",
                Setup1Placement::SharedCorrelated,
                &full,
            ),
            (
                "Shared-Corr (1.9G)",
                Setup1Placement::SharedCorrelated,
                &low,
            ),
        ] {
            let out = run_setup1(placement, config).expect("scenario runs");
            println!(
                "{:<24} {:>10.3} {:>10.3}",
                label, out.p90_response[0], out.p90_response[1]
            );
            if closed_loop {
                rows.push((label, out));
            }
        }
        println!();
    }

    // The paper's power argument: Shared-Corr@1.9G ≈ Shared-UnCorr@2.1G
    // QoS at ~12% lower power.
    let model = LinearPowerModel::opteron_6174();
    let (f_hi, f_lo) = (Frequency::from_ghz(2.1), Frequency::from_ghz(1.9));
    let u_hi = rows[1].1.result.server_utilization[0].mean();
    let u_lo = rows[3].1.result.server_utilization[0].mean() * (1.9 / 2.1); // same work at lower clock = higher busy fraction, util recorded in fmax cores
    let p_hi = model
        .power(u_hi.clamp(0.0, 1.0), f_hi)
        .expect("level exists");
    let p_lo = model
        .power((u_lo / (1.9 / 2.1)).clamp(0.0, 1.0), f_lo)
        .expect("level exists");
    println!();
    println!(
        "estimated per-server power: {:.0} W @2.1 GHz vs {:.0} W @1.9 GHz → {:.1}% saving",
        p_hi,
        p_lo,
        100.0 * (p_hi - p_lo) / p_hi
    );
    println!("(paper: 'approximately 12% power savings' at near-equal response time)");
}
