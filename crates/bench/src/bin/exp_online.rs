//! Online-churn experiment: all five policies as a long-running
//! allocation service under continuous VM arrivals and departures —
//! the open-system setting the paper never measured (its Setup-2 is a
//! closed world where every VM exists for the whole horizon).
//!
//! VMs arrive by a Poisson process over the day and hold bounded
//! (uniform) leases, so placement periods see mid-period arrivals that
//! must be admitted through the **incremental single-VM placement**
//! (`AllocationPolicy::place_one` — no re-pack, lease-aware) and
//! departures that power servers off. Both comparisons are declared as
//! [`SweepGrid`]s: policies × the env-selected schedule on the churn
//! workload, then the proposed policy × the five standard re-pack
//! schedules (`periodic`, `fragmentation`, QoS-**guarded**
//! fragmentation, `hybrid`, `hybrid-adaptive`) on a departure-heavy
//! schedule. The run asserts that every policy exercised the
//! incremental admit path, that `hybrid` never burns more energy than
//! the paper's periodic-only clock, and that `guarded` recovers the
//! pure fragmentation schedule's violation drift (worst-period ratio ≤
//! periodic's) while keeping energy ≤ 0.95× periodic — and splices an
//! `"online"` section (comparison + adaptive rows) into
//! `BENCH_corr.json`.
//!
//! ```text
//! cargo run --release -p cavm-bench --bin exp_online
//! ```
//!
//! Environment knobs (for CI smoke runs): `CAVM_ONLINE_VMS` (default
//! 40), `CAVM_ONLINE_HOURS` (default 24), `CAVM_ONLINE_TRIGGER`
//! (`periodic` | `fragmentation` | `guarded` | `hybrid`; schedule of
//! the main comparison, default `periodic`), `CAVM_ONLINE_SLACK`
//! (default 1), `CAVM_ONLINE_QOS` (guard violation-ratio threshold,
//! default 0.08), `CAVM_ONLINE_SLACK_MAX` (adaptive-slack upper bound
//! of the `hybrid-adaptive` schedule, default slack + 3),
//! `CAVM_ONLINE_OVERCOMMIT` (starting deliberate-overcommit margin of
//! the `guarded-overcommit` schedule, default 0.25) and
//! `CAVM_ONLINE_OVERCOMMIT_MAX` (its adaptive ceiling, default 0.35).

use cavm_bench::env;
use cavm_bench::sweep::{Schedule, SweepGrid, SweepRow, WorkloadCase};
use cavm_bench::{artifact, bar, PCP_AFFINITY_THRESHOLD, PCP_ENVELOPE_PERCENTILE};
use cavm_sim::{Policy, QosGuard};
use cavm_workload::datacenter::DatacenterTraceBuilder;
use cavm_workload::lifecycle::{ArrivalProcess, Lifecycle, LifecycleBuilder, LifetimeModel};
use std::fmt::Write as _;

fn main() {
    let vms = env::parse_or("CAVM_ONLINE_VMS", 40);
    let hours = env::parse_or("CAVM_ONLINE_HOURS", 24.0);
    let fleet = DatacenterTraceBuilder::new((vms * 3).max(vms))
        .groups((vms / 4).max(2))
        .seed(2013)
        .idle_fraction(0.4)
        .vm_scale_range(0.35, 1.05)
        .duration_hours(hours)
        .build()
        .expect("static builder parameters are valid")
        .select_top(vms);
    let horizon = fleet.vms()[0].fine.len();

    // Churn: arrivals spread over the first ~60% of the horizon (so
    // late arrivals still run for a while), leases of 30–80% of the
    // horizon. Both are deterministic given the seed.
    let lifecycle: Lifecycle = LifecycleBuilder::new(vms, horizon)
        .seed(2013)
        .arrivals(ArrivalProcess::Poisson {
            mean_gap_samples: horizon as f64 * 0.6 / vms as f64,
        })
        .lifetimes(LifetimeModel::Uniform {
            min_samples: (horizon * 3) / 10,
            max_samples: (horizon * 8) / 10,
        })
        .build()
        .expect("static lifecycle parameters are valid");
    assert!(
        lifecycle.entries().iter().any(|e| e.arrival_sample > 0),
        "churn schedule must contain mid-horizon arrivals"
    );

    let slack = env::parse_or("CAVM_ONLINE_SLACK", 1) as u32;
    let qos_guard = QosGuard {
        violation_ratio: env::parse_or("CAVM_ONLINE_QOS", 0.08),
    };
    let slack_max = env::parse_or("CAVM_ONLINE_SLACK_MAX", slack as usize + 3) as u32;
    let schedule = Schedule::from_env("CAVM_ONLINE_TRIGGER", slack, qos_guard, slack_max);

    let policies = vec![
        Policy::Bfd,
        Policy::Ffd,
        Policy::Pcp {
            envelope_percentile: PCP_ENVELOPE_PERCENTILE,
            affinity_threshold: PCP_AFFINITY_THRESHOLD,
        },
        Policy::SuperVm {
            min_pair_cost: 1.25,
        },
        Policy::Proposed(Default::default()),
    ];
    let rows: Vec<SweepRow> = SweepGrid::over(vec![WorkloadCase::open(
        "churn",
        fleet.clone(),
        lifecycle.clone(),
    )])
    .servers(vec![vms.max(4)])
    .policies(policies)
    .schedules(vec![schedule])
    .run_with(|cell, report| {
        assert!(
            report.online_admissions > 0,
            "{}: mid-horizon arrivals must go through the incremental admit path",
            cell.policy.name()
        );
    })
    .expect("churn grid runs to completion");
    let baseline = rows
        .iter()
        .find(|r| r.policy == "BFD")
        .expect("BFD is in the policy set")
        .report
        .energy;

    println!(
        "# Online churn — {} of {} VMs scheduled over {hours} h ({} peak concurrent), static DVFS, {} re-packs",
        lifecycle.len(),
        vms,
        lifecycle.max_concurrent(),
        schedule.name,
    );
    println!();
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>12} {:>8}  normalized bar",
        "policy", "energy kWh", "norm. power", "max viol%", "migrations", "admits"
    );
    for row in &rows {
        let r = &row.report;
        let norm = r.energy.normalized_to(&baseline).expect("baseline > 0");
        println!(
            "{:<10} {:>12.2} {:>12.3} {:>10.2} {:>12} {:>8}  {}",
            r.policy,
            r.energy.kilowatt_hours(),
            norm,
            r.max_violation_percent,
            r.total_migrations(),
            r.online_admissions,
            bar(norm, 30),
        );
    }

    let proposed = &rows[4].report;
    let bfd = &rows[0].report;
    println!();
    println!(
        "proposed vs BFD under churn: {:.1}% energy, {} vs {} violation instances",
        100.0 * proposed.energy.normalized_to(&bfd.energy).expect("nonzero"),
        proposed.violation_instances,
        bfd.violation_instances,
    );

    // ---- Adaptive consolidation under a departure-heavy schedule:
    // short leases (8–25% of the day) arriving over the first ~70%
    // keep servers emptying out mid-period all day long, so the
    // periodic clock spends up to an hour hosting half-empty servers
    // after every departure wave — the consolidation opportunity the
    // off-cycle triggers exist for — while its last-period predictions
    // chronically trail the churn (a sizable violation budget the
    // guarded schedule must stay under).
    let horizon_f = horizon as f64;
    let departure_heavy: Lifecycle = LifecycleBuilder::new(vms, horizon)
        .seed(7)
        .arrivals(ArrivalProcess::Poisson {
            mean_gap_samples: horizon_f * 0.7 / vms as f64,
        })
        .lifetimes(LifetimeModel::Uniform {
            min_samples: (horizon * 8 / 100).max(1),
            max_samples: (horizon / 4).max(2),
        })
        .build()
        .expect("static lifecycle parameters are valid");
    let departed_in_run = departure_heavy
        .entries()
        .iter()
        .filter(|e| e.departure_sample.is_some())
        .count();
    assert!(
        departed_in_run * 2 >= departure_heavy.len(),
        "departure-heavy schedule must retire most leases mid-run"
    );

    let margin = env::parse_or("CAVM_ONLINE_OVERCOMMIT", 0.25);
    let max_margin = env::parse_or("CAVM_ONLINE_OVERCOMMIT_MAX", 0.35);
    let mut adaptive_schedules = Schedule::standard(slack, qos_guard, slack_max).to_vec();
    adaptive_schedules.push(Schedule::guarded_overcommit(
        slack, qos_guard, margin, max_margin,
    ));
    let adaptive: Vec<SweepRow> = SweepGrid::over(vec![WorkloadCase::open(
        "departure-heavy",
        fleet,
        departure_heavy.clone(),
    )])
    .servers(vec![vms.max(4)])
    .policies(vec![Policy::Proposed(Default::default())])
    .schedules(adaptive_schedules)
    .run()
    .expect("adaptive grid runs to completion");
    let periodic_energy = adaptive[0].report.energy;

    println!();
    println!(
        "# Adaptive consolidation — proposed policy, departure-heavy day ({} of {} leases end mid-run, slack {slack}, guard {:.0}%, adaptive slack ≤ {slack_max})",
        departed_in_run,
        departure_heavy.len(),
        100.0 * qos_guard.violation_ratio,
    );
    println!();
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>12} {:>9}  vs periodic",
        "schedule", "energy kWh", "norm. power", "max viol%", "migrations", "re-packs"
    );
    for row in &adaptive {
        let r = &row.report;
        let norm = r.energy.normalized_to(&periodic_energy).expect("nonzero");
        println!(
            "{:<14} {:>12.2} {:>12.3} {:>10.2} {:>12} {:>9}  {}",
            row.schedule,
            r.energy.kilowatt_hours(),
            norm,
            r.max_violation_percent,
            r.total_migrations(),
            r.offcycle_repacks,
            bar(norm, 30),
        );
    }
    let periodic = &adaptive[0].report;
    let guarded = &adaptive[2].report;
    let hybrid = &adaptive[3].report;
    let hybrid_adaptive = &adaptive[4].report;
    let overcommit = &adaptive
        .iter()
        .find(|r| r.schedule == "guarded-overcommit")
        .expect("the overcommit schedule is in the grid")
        .report;
    assert!(
        hybrid.offcycle_repacks > 0,
        "the departure-heavy schedule must fire off-cycle re-packs"
    );
    assert!(
        hybrid.energy.joules() <= periodic_energy.joules(),
        "hybrid re-packs must not burn more energy than the periodic-only clock \
         ({} J vs {} J)",
        hybrid.energy.joules(),
        periodic_energy.joules(),
    );
    // The headline of the guarded schedule: the QoS guard recovers the
    // pure fragmentation schedule's violation drift to (at worst) the
    // periodic clock's level, without ever costing energy over it.
    assert!(
        guarded.max_violation_percent <= periodic.max_violation_percent + 1e-9,
        "the QoS guard must recover violations to periodic level \
         ({}% vs {}%)",
        guarded.max_violation_percent,
        periodic.max_violation_percent,
    );
    assert!(
        guarded.energy.joules() <= periodic_energy.joules(),
        "guarded fragmentation must not burn more energy than periodic \
         ({} J vs {} J)",
        guarded.energy.joules(),
        periodic_energy.joules(),
    );
    // The deliberate overcommit bets only on anti-aligned peaks, so
    // the guard must not see more violation pressure than the paper's
    // periodic clock leaves behind.
    assert!(
        overcommit.max_violation_percent <= periodic.max_violation_percent + 1e-9,
        "guarded-overcommit must stay within the periodic clock's worst-period violations          ({}% vs {}%)",
        overcommit.max_violation_percent,
        periodic.max_violation_percent,
    );
    // At the canonical size the headroom is real: pin the ≥5% energy
    // win over periodic (measured 0.933 at 40 VMs / 24 h) and the
    // adaptive slack's migration savings. Reduced smoke sizes leave
    // too little churn for the margins to be meaningful.
    if vms >= 40 && hours >= 24.0 {
        assert!(
            guarded.energy.joules() <= 0.95 * periodic_energy.joules(),
            "guarded fragmentation must keep at least a 5% energy win over periodic \
             ({} J vs {} J)",
            guarded.energy.joules(),
            periodic_energy.joules(),
        );
        // The adaptive slack exists to cut the hybrid clock's
        // migration bill; it must never spend *more* migrations than
        // static slack.
        assert!(
            hybrid_adaptive.total_migrations() <= hybrid.total_migrations(),
            "adaptive slack must not out-migrate the static hybrid schedule \
             ({} vs {})",
            hybrid_adaptive.total_migrations(),
            hybrid.total_migrations(),
        );
        // The deliberate-overcommit headline: packing into the
        // correlation gap beats even the guarded schedule by ≥5%
        // energy at no worse QoS than periodic.
        assert!(
            overcommit.energy.joules() <= 0.95 * guarded.energy.joules(),
            "guarded-overcommit must keep at least a 5% energy win over guarded              ({} J vs {} J)",
            overcommit.energy.joules(),
            guarded.energy.joules(),
        );
        println!();
        println!(
            "(guarded ≤ 0.95× periodic energy at ≤ periodic QoS, adaptive ≤ hybrid migrations,              guarded-overcommit ≤ 0.95× guarded energy — asserted)"
        );
    }

    let mut section = String::new();
    section.push_str("{\n");
    let _ = writeln!(section, "    \"vms\": {vms},");
    let _ = writeln!(section, "    \"hours\": {hours},");
    let _ = writeln!(section, "    \"scheduled\": {},", lifecycle.len());
    let _ = writeln!(
        section,
        "    \"peak_concurrent\": {},",
        lifecycle.max_concurrent()
    );
    let _ = writeln!(section, "    \"trigger\": \"{}\",", schedule.name);
    section.push_str("    \"policies\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let r = &row.report;
        let _ = write!(
            section,
            "      {{\"policy\": \"{}\", \"energy_kwh\": {:.3}, \"normalized_power\": {:.4}, \"max_violation_percent\": {:.3}, \"migrations\": {}, \"online_admissions\": {}}}",
            r.policy,
            r.energy.kilowatt_hours(),
            r.energy.normalized_to(&baseline).expect("baseline > 0"),
            r.max_violation_percent,
            r.total_migrations(),
            r.online_admissions,
        );
        section.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    section.push_str("    ],\n");
    let _ = writeln!(section, "    \"adaptive\": {{");
    let _ = writeln!(section, "      \"policy\": \"Proposed\",");
    let _ = writeln!(section, "      \"slack\": {slack},");
    let _ = writeln!(
        section,
        "      \"qos_guard_ratio\": {},",
        qos_guard.violation_ratio
    );
    let _ = writeln!(section, "      \"adaptive_slack_max\": {slack_max},");
    let _ = writeln!(section, "      \"overcommit_margin\": {margin},");
    let _ = writeln!(section, "      \"overcommit_max_margin\": {max_margin},");
    let _ = writeln!(section, "      \"departed_leases\": {departed_in_run},");
    section.push_str("      \"triggers\": [\n");
    for (i, row) in adaptive.iter().enumerate() {
        let r = &row.report;
        let _ = write!(
            section,
            "        {{\"trigger\": \"{}\", \"energy_kwh\": {:.3}, \"normalized_power\": {:.4}, \"max_violation_percent\": {:.3}, \"migrations\": {}, \"offcycle_repacks\": {}}}",
            row.schedule,
            r.energy.kilowatt_hours(),
            r.energy.normalized_to(&periodic_energy).expect("nonzero"),
            r.max_violation_percent,
            r.total_migrations(),
            r.offcycle_repacks,
        );
        section.push_str(if i + 1 < adaptive.len() { ",\n" } else { "\n" });
    }
    section.push_str("      ]\n    }\n  }");
    artifact::splice_section("online", &section);
}
