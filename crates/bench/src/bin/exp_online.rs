//! Online-churn experiment: all five policies as a long-running
//! allocation service under continuous VM arrivals and departures —
//! the open-system setting the paper never measured (its Setup-2 is a
//! closed world where every VM exists for the whole horizon).
//!
//! VMs arrive by a Poisson process over the day and hold bounded
//! (uniform) leases, so placement periods see mid-period arrivals that
//! must be admitted through the **incremental single-VM placement**
//! (`AllocationPolicy::place_one` — no re-pack, lease-aware) and
//! departures that power servers off. The run asserts that every
//! policy exercised the incremental admit path, prints the
//! Table II-style comparison, then re-runs the proposed policy on a
//! **departure-heavy** schedule under all three `RepackTrigger`s —
//! asserting the adaptive `Hybrid` schedule never burns more energy
//! than the paper's periodic-only clock — and appends an `"online"`
//! section (comparison + adaptive rows) to `BENCH_corr.json`.
//!
//! ```text
//! cargo run --release -p cavm-bench --bin exp_online
//! ```
//!
//! Environment knobs (for CI smoke runs): `CAVM_ONLINE_VMS` (default
//! 40), `CAVM_ONLINE_HOURS` (default 24), `CAVM_ONLINE_TRIGGER`
//! (`periodic` | `fragmentation` | `hybrid`; trigger of the main
//! comparison, default `periodic`), `CAVM_ONLINE_SLACK` (default 1).

use cavm_bench::{bar, PCP_AFFINITY_THRESHOLD, PCP_ENVELOPE_PERCENTILE};
use cavm_core::dvfs::DvfsMode;
use cavm_sim::{Policy, RepackTrigger, ReportSink, ScenarioBuilder, SimReport};
use cavm_workload::datacenter::DatacenterTraceBuilder;
use cavm_workload::lifecycle::{ArrivalProcess, Lifecycle, LifecycleBuilder, LifetimeModel};
use std::fmt::Write as _;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_trigger(key: &str, slack: u32) -> RepackTrigger {
    match std::env::var(key).as_deref() {
        Ok("fragmentation") => RepackTrigger::Fragmentation { slack },
        Ok("hybrid") => RepackTrigger::Hybrid { slack },
        Ok("periodic") | Err(_) => RepackTrigger::Periodic,
        Ok(other) => panic!("{key}={other}: expected periodic|fragmentation|hybrid"),
    }
}

/// Splices the `"online"` section into an existing `BENCH_corr.json`
/// (replacing a previous online section) or wraps it in a fresh
/// document when the perf artifact does not exist yet.
fn write_bench_json(section: &str) {
    const PATH: &str = "BENCH_corr.json";
    let body = match std::fs::read_to_string(PATH) {
        Ok(existing) => {
            // Drop a previously appended online section, then the
            // closing brace, and re-append.
            let head = match existing.find(",\n  \"online\":") {
                Some(idx) => existing[..idx].to_string(),
                None => {
                    let idx = existing.rfind('}').expect("valid json artifact");
                    existing[..idx].trim_end().to_string()
                }
            };
            format!("{head},\n  \"online\": {section}\n}}\n")
        }
        Err(_) => {
            format!("{{\n  \"schema\": \"cavm-bench-corr/1\",\n  \"online\": {section}\n}}\n")
        }
    };
    std::fs::write(PATH, body).expect("write BENCH_corr.json");
    eprintln!("updated {PATH} (online section)");
}

fn main() {
    let vms = env_usize("CAVM_ONLINE_VMS", 40);
    let hours = env_f64("CAVM_ONLINE_HOURS", 24.0);
    let fleet = DatacenterTraceBuilder::new((vms * 3).max(vms))
        .groups((vms / 4).max(2))
        .seed(2013)
        .idle_fraction(0.4)
        .vm_scale_range(0.35, 1.05)
        .duration_hours(hours)
        .build()
        .expect("static builder parameters are valid")
        .select_top(vms);
    let horizon = fleet.vms()[0].fine.len();

    // Churn: arrivals spread over the first ~60% of the horizon (so
    // late arrivals still run for a while), leases of 30–80% of the
    // horizon. Both are deterministic given the seed.
    let lifecycle: Lifecycle = LifecycleBuilder::new(vms, horizon)
        .seed(2013)
        .arrivals(ArrivalProcess::Poisson {
            mean_gap_samples: horizon as f64 * 0.6 / vms as f64,
        })
        .lifetimes(LifetimeModel::Uniform {
            min_samples: (horizon * 3) / 10,
            max_samples: (horizon * 8) / 10,
        })
        .build()
        .expect("static lifecycle parameters are valid");
    assert!(
        lifecycle.entries().iter().any(|e| e.arrival_sample > 0),
        "churn schedule must contain mid-horizon arrivals"
    );

    let slack = env_usize("CAVM_ONLINE_SLACK", 1) as u32;
    let trigger = env_trigger("CAVM_ONLINE_TRIGGER", slack);

    let policies = [
        Policy::Bfd,
        Policy::Ffd,
        Policy::Pcp {
            envelope_percentile: PCP_ENVELOPE_PERCENTILE,
            affinity_threshold: PCP_AFFINITY_THRESHOLD,
        },
        Policy::SuperVm {
            min_pair_cost: 1.25,
        },
        Policy::Proposed(Default::default()),
    ];
    let reports: Vec<SimReport> = policies
        .iter()
        .map(|&policy| {
            let mut sink = ReportSink::new();
            ScenarioBuilder::new(fleet.clone())
                .servers(vms.max(4))
                .policy(policy)
                .repack_trigger(trigger)
                .dvfs_mode(DvfsMode::Static)
                .lifecycle(lifecycle.clone())
                .build()
                .expect("scenario parameters are valid")
                .run_with_sink(&mut sink)
                .expect("scenario runs to completion");
            let report = sink.into_report().expect("summary fired");
            assert!(
                report.online_admissions > 0,
                "{}: mid-horizon arrivals must go through the incremental admit path",
                report.policy
            );
            report
        })
        .collect();
    let baseline = reports
        .iter()
        .find(|r| r.policy == "BFD")
        .expect("BFD is in the policy set")
        .energy;

    println!(
        "# Online churn — {} of {} VMs scheduled over {hours} h ({} peak concurrent), static DVFS, {} re-packs",
        lifecycle.len(),
        vms,
        lifecycle.max_concurrent(),
        trigger.name(),
    );
    println!();
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>12} {:>8}  normalized bar",
        "policy", "energy kWh", "norm. power", "max viol%", "migrations", "admits"
    );
    for r in &reports {
        let norm = r.energy.normalized_to(&baseline).expect("baseline > 0");
        println!(
            "{:<10} {:>12.2} {:>12.3} {:>10.2} {:>12} {:>8}  {}",
            r.policy,
            r.energy.kilowatt_hours(),
            norm,
            r.max_violation_percent,
            r.total_migrations(),
            r.online_admissions,
            bar(norm, 30),
        );
    }

    let proposed = &reports[4];
    let bfd = &reports[0];
    println!();
    println!(
        "proposed vs BFD under churn: {:.1}% energy, {} vs {} violation instances",
        100.0 * proposed.energy.normalized_to(&bfd.energy).expect("nonzero"),
        proposed.violation_instances,
        bfd.violation_instances,
    );

    // ---- Adaptive consolidation under a departure-heavy schedule:
    // every lease arrives in the first quarter of the day and ends
    // well before it does, so the closing hours are dominated by
    // fragmented, half-empty servers that only an off-cycle re-pack
    // can consolidate before the next period boundary.
    let horizon_f = horizon as f64;
    let departure_heavy: Lifecycle = LifecycleBuilder::new(vms, horizon)
        .seed(4027)
        .arrivals(ArrivalProcess::Poisson {
            mean_gap_samples: horizon_f * 0.25 / vms as f64,
        })
        .lifetimes(LifetimeModel::Uniform {
            min_samples: (horizon / 4).max(1),
            max_samples: (horizon * 55 / 100).max(2),
        })
        .build()
        .expect("static lifecycle parameters are valid");
    let departed_in_run = departure_heavy
        .entries()
        .iter()
        .filter(|e| e.departure_sample.is_some())
        .count();
    assert!(
        departed_in_run * 2 >= departure_heavy.len(),
        "departure-heavy schedule must retire most leases mid-run"
    );

    let triggers = [
        RepackTrigger::Periodic,
        RepackTrigger::Fragmentation { slack },
        RepackTrigger::Hybrid { slack },
    ];
    let adaptive: Vec<SimReport> = triggers
        .iter()
        .map(|&t| {
            ScenarioBuilder::new(fleet.clone())
                .servers(vms.max(4))
                .policy(Policy::Proposed(Default::default()))
                .repack_trigger(t)
                .dvfs_mode(DvfsMode::Static)
                .lifecycle(departure_heavy.clone())
                .build()
                .expect("scenario parameters are valid")
                .run()
                .expect("scenario runs to completion")
        })
        .collect();
    let periodic_energy = adaptive[0].energy;

    println!();
    println!(
        "# Adaptive consolidation — proposed policy, departure-heavy day ({} of {} leases end mid-run, slack {slack})",
        departed_in_run,
        departure_heavy.len(),
    );
    println!();
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>12} {:>9}  vs periodic",
        "trigger", "energy kWh", "norm. power", "max viol%", "migrations", "re-packs"
    );
    for (t, r) in triggers.iter().zip(&adaptive) {
        let norm = r.energy.normalized_to(&periodic_energy).expect("nonzero");
        println!(
            "{:<14} {:>12.2} {:>12.3} {:>10.2} {:>12} {:>9}  {}",
            t.name(),
            r.energy.kilowatt_hours(),
            norm,
            r.max_violation_percent,
            r.total_migrations(),
            r.offcycle_repacks,
            bar(norm, 30),
        );
    }
    let hybrid = &adaptive[2];
    assert!(
        hybrid.offcycle_repacks > 0,
        "the departure-heavy schedule must fire off-cycle re-packs"
    );
    assert!(
        hybrid.energy.joules() <= periodic_energy.joules(),
        "hybrid re-packs must not burn more energy than the periodic-only clock \
         ({} J vs {} J)",
        hybrid.energy.joules(),
        periodic_energy.joules(),
    );

    let mut section = String::new();
    section.push_str("{\n");
    let _ = writeln!(section, "    \"vms\": {vms},");
    let _ = writeln!(section, "    \"hours\": {hours},");
    let _ = writeln!(section, "    \"scheduled\": {},", lifecycle.len());
    let _ = writeln!(
        section,
        "    \"peak_concurrent\": {},",
        lifecycle.max_concurrent()
    );
    let _ = writeln!(section, "    \"trigger\": \"{}\",", trigger.name());
    section.push_str("    \"policies\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let _ = write!(
            section,
            "      {{\"policy\": \"{}\", \"energy_kwh\": {:.3}, \"normalized_power\": {:.4}, \"max_violation_percent\": {:.3}, \"migrations\": {}, \"online_admissions\": {}}}",
            r.policy,
            r.energy.kilowatt_hours(),
            r.energy.normalized_to(&baseline).expect("baseline > 0"),
            r.max_violation_percent,
            r.total_migrations(),
            r.online_admissions,
        );
        section.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    section.push_str("    ],\n");
    let _ = writeln!(section, "    \"adaptive\": {{");
    let _ = writeln!(section, "      \"policy\": \"Proposed\",");
    let _ = writeln!(section, "      \"slack\": {slack},");
    let _ = writeln!(section, "      \"departed_leases\": {departed_in_run},");
    section.push_str("      \"triggers\": [\n");
    for (i, (t, r)) in triggers.iter().zip(&adaptive).enumerate() {
        let _ = write!(
            section,
            "        {{\"trigger\": \"{}\", \"energy_kwh\": {:.3}, \"normalized_power\": {:.4}, \"max_violation_percent\": {:.3}, \"migrations\": {}, \"offcycle_repacks\": {}}}",
            t.name(),
            r.energy.kilowatt_hours(),
            r.energy.normalized_to(&periodic_energy).expect("nonzero"),
            r.max_violation_percent,
            r.total_migrations(),
            r.offcycle_repacks,
        );
        section.push_str(if i + 1 < triggers.len() { ",\n" } else { "\n" });
    }
    section.push_str("      ]\n    }\n  }");
    write_bench_json(&section);
}
