//! Table II — normalized power and maximum violations, static and
//! dynamic v/f scaling.
//!
//! Regenerates the paper's Table II on the trace-driven Setup-2
//! simulator: 40 busiest VMs of a synthetic datacenter, 20 Xeon-E5410
//! servers (8 cores, 2.0/2.3 GHz), hourly re-placement with a last-value
//! predictor, 24 hours. Power is normalized to BFD; the violation metric
//! is the maximum per-period ratio of over-utilized 5 s instances.

use cavm_bench::{run_setup2, setup2_fleet, table2_policies, SETUP2_SEED};
use cavm_core::dvfs::DvfsMode;

fn main() {
    let fleet = setup2_fleet(SETUP2_SEED);
    for (label, mode, paper) in [
        (
            "(a) static v/f scaling",
            DvfsMode::Static,
            [(1.000, 18.2), (0.999, 18.2), (0.863, 2.6)],
        ),
        (
            "(b) dynamic v/f scaling (re-planned every 12 samples = 1 min)",
            DvfsMode::Dynamic {
                interval_samples: 12,
            },
            [(1.000, 20.3), (0.997, 20.3), (0.958, 3.1)],
        ),
    ] {
        println!("# Table II {label}");
        println!(
            "{:<10} {:>18} {:>22} {:>14} {:>12}",
            "policy", "normalized power", "max violations (%)", "paper power", "paper viol"
        );
        let mut baseline = None;
        for (policy, (paper_power, paper_viol)) in table2_policies().into_iter().zip(paper) {
            let report = run_setup2(&fleet, policy, mode);
            let normalized = match &baseline {
                None => 1.0,
                Some(base) => report
                    .energy
                    .normalized_to(base)
                    .expect("baseline non-zero"),
            };
            if baseline.is_none() {
                baseline = Some(report.energy);
            }
            print!(
                "{:<10} {:>18.3} {:>22.1} {:>14.3} {:>12.1}",
                report.policy, normalized, report.max_violation_percent, paper_power, paper_viol
            );
            if let Some(single) = report.pcp_single_cluster_periods() {
                print!(
                    "   [PCP degenerate in {single}/{} periods]",
                    report.periods.len()
                );
            }
            println!();
        }
        // Extension row: the second related-work baseline (Meng et al.
        // [7], joint-VM sizing), which the paper discusses but does not
        // plot. Its once-per-period pairing overcommits when the fused
        // correlation shifts — the critique of §II, quantified.
        let supervm = run_setup2(
            &fleet,
            cavm_sim::Policy::SuperVm {
                min_pair_cost: 1.25,
            },
            mode,
        );
        println!(
            "{:<10} {:>18.3} {:>22.1} {:>14} {:>12}   [extension, not in the paper's table]",
            supervm.policy,
            supervm
                .energy
                .normalized_to(baseline.as_ref().expect("bfd ran first"))
                .expect("baseline non-zero"),
            supervm.max_violation_percent,
            "-",
            "-"
        );
        println!();
    }
    println!("(paper headline: up to 13.7% power savings and 15.6% fewer violations");
    println!(" vs BFD/PCP; PCP ≈ BFD because envelopes collapse to one cluster)");
}
