//! Fault-tolerance experiment: the guarded consolidation schedule of
//! the online experiment re-run with servers actually dying under it.
//!
//! An MTBF sweep injects per-server Poisson failures (plus a
//! correlated whole-fleet outage process) into the departure-heavy
//! day the adaptive-consolidation section measures: every failure
//! triggers an **emergency evacuation** through the live policy's
//! incremental placement, capacity loss beyond what the shrunken
//! fleet can host flows into the bounded **deferred-admission queue**
//! (graceful degradation), and recoveries drain it back. The sweep is
//! declared as a [`SweepGrid`] over the fault axis: one fault-free
//! cell (plus an empty-plan cell asserted bit-identical to it), then
//! one cell per MTBF. The run prints one row per MTBF against the
//! fault-free baseline and asserts the robustness headline: even at
//! the harshest point of the sweep the QoS-guarded schedule keeps the
//! worst-period violation ratio bounded, every deferred VM is
//! eventually admitted (none lost), and the fault-free row reproduces
//! the no-fault run bit-for-bit. A `"faults"` section lands in
//! `BENCH_corr.json`.
//!
//! ```text
//! cargo run --release -p cavm-bench --bin exp_faults
//! ```
//!
//! Environment knobs (for CI smoke runs): `CAVM_FAULTS_VMS` (default
//! 40), `CAVM_FAULTS_HOURS` (default 24), `CAVM_FAULTS_MTBFS`
//! (comma-separated per-server MTBF hours to sweep, default
//! `12,6,3`), `CAVM_FAULTS_MTTR_MIN` (mean repair minutes, default
//! 20), `CAVM_FAULTS_QOS` (guard violation-ratio threshold, default
//! 0.08), `CAVM_FAULTS_SLACK` (default 1), `CAVM_FAULTS_BOUND`
//! (worst-period violation-percent ceiling asserted across the sweep,
//! default 25).

use cavm_bench::env;
use cavm_bench::sweep::{FaultCase, Schedule, SweepGrid, WorkloadCase};
use cavm_bench::{artifact, bar};
use cavm_sim::{Policy, QosGuard, SimReport};
use cavm_workload::datacenter::DatacenterTraceBuilder;
use cavm_workload::faults::{FaultModel, FaultPlan, FaultPlanBuilder};
use cavm_workload::lifecycle::{ArrivalProcess, Lifecycle, LifecycleBuilder, LifetimeModel};
use std::fmt::Write as _;

/// Fine samples per hour (5 s sampling).
const SAMPLES_PER_HOUR: f64 = 720.0;

/// One row of the sweep: the plan's MTBF (`None` = fault-free
/// baseline) and the resulting report.
struct Row {
    mtbf_hours: Option<f64>,
    scheduled_failures: usize,
    report: SimReport,
}

fn main() {
    let vms = env::parse_or("CAVM_FAULTS_VMS", 40);
    let hours = env::parse_or("CAVM_FAULTS_HOURS", 24.0);
    let mtbfs = env::parse_list_or("CAVM_FAULTS_MTBFS", &[12.0, 6.0, 3.0]);
    let mttr_min = env::parse_or("CAVM_FAULTS_MTTR_MIN", 20.0);
    let slack = env::parse_or("CAVM_FAULTS_SLACK", 1) as u32;
    let qos_guard = QosGuard {
        violation_ratio: env::parse_or("CAVM_FAULTS_QOS", 0.08),
    };
    let violation_bound = env::parse_or("CAVM_FAULTS_BOUND", 25.0);
    let servers = vms.max(4);

    let fleet = DatacenterTraceBuilder::new((vms * 3).max(vms))
        .groups((vms / 4).max(2))
        .seed(2013)
        .idle_fraction(0.4)
        .vm_scale_range(0.35, 1.05)
        .duration_hours(hours)
        .build()
        .expect("static builder parameters are valid")
        .select_top(vms);
    let horizon = fleet.vms()[0].fine.len();

    // The departure-heavy day of the adaptive-consolidation section:
    // short leases keep servers emptying out all day, so failures land
    // on a fleet that is constantly consolidating.
    let lifecycle: Lifecycle = LifecycleBuilder::new(vms, horizon)
        .seed(7)
        .arrivals(ArrivalProcess::Poisson {
            mean_gap_samples: horizon as f64 * 0.7 / vms as f64,
        })
        .lifetimes(LifetimeModel::Uniform {
            min_samples: (horizon * 8 / 100).max(1),
            max_samples: (horizon / 4).max(2),
        })
        .build()
        .expect("static lifecycle parameters are valid");

    let schedule = Schedule::guarded_hybrid(slack, qos_guard, slack + 3);
    let grid = |faults: Vec<FaultCase>| {
        SweepGrid::over(vec![WorkloadCase::open(
            "departure-heavy",
            fleet.clone(),
            lifecycle.clone(),
        )])
        .servers(vec![servers])
        .policies(vec![Policy::Proposed(Default::default())])
        .schedules(vec![schedule])
        .faults(faults)
        .run()
        .expect("fault grid runs to completion")
    };

    let plan_for = |mtbf_hours: f64, band: usize| -> FaultPlan {
        FaultPlanBuilder::new(horizon)
            .seed(2013)
            .block(
                0,
                band,
                FaultModel {
                    mtbf_samples: mtbf_hours * SAMPLES_PER_HOUR,
                    mttr_samples: mttr_min * SAMPLES_PER_HOUR / 60.0,
                    // A correlated whole-fleet outage about once per
                    // five mean server lifetimes, repaired in half the
                    // per-server time.
                    outage_mtbf_samples: Some(5.0 * mtbf_hours * SAMPLES_PER_HOUR),
                    outage_mttr_samples: mttr_min * SAMPLES_PER_HOUR / 120.0,
                },
            )
            .build()
            .expect("static fault parameters are valid")
    };

    // Fault-free baseline — and the no-fault path is bit-identical to
    // a scenario that never heard of fault plans.
    let mut baseline_rows = grid(vec![
        FaultCase::none(),
        FaultCase::plan("empty-plan", FaultPlan::empty()),
    ]);
    let empty_plan = baseline_rows.pop().expect("grid ran two cells").report;
    let baseline = baseline_rows.pop().expect("grid ran two cells").report;
    assert_eq!(
        baseline, empty_plan,
        "an empty fault plan must be bit-identical to no plan at all"
    );
    assert_eq!(baseline.server_failures, 0);
    assert_eq!(baseline.deferred_peak, 0);
    let baseline_energy = baseline.energy;
    // Consolidation keeps the fleet packed into its first few
    // fill-order slots; faults aimed past them would hit servers the
    // run never provisions (the replay skips those). Target the band
    // the baseline actually lives in.
    let fault_band = baseline.peak_servers_used().clamp(2, servers);

    let plans: Vec<(f64, FaultPlan)> = mtbfs
        .iter()
        .map(|&mtbf| (mtbf, plan_for(mtbf, fault_band)))
        .collect();
    let mut rows = vec![Row {
        mtbf_hours: None,
        scheduled_failures: 0,
        report: baseline,
    }];
    let swept = grid(
        plans
            .iter()
            .map(|(mtbf, plan)| FaultCase::plan(format!("mtbf {mtbf} h"), plan.clone()))
            .collect(),
    );
    for ((mtbf, plan), row) in plans.iter().zip(swept) {
        rows.push(Row {
            mtbf_hours: Some(*mtbf),
            scheduled_failures: plan.failures(),
            report: row.report,
        });
    }

    println!(
        "# Fault tolerance — proposed policy, guarded hybrid (slack {slack}, guard {:.0}%, adaptive ≤ {}), {} VMs over {hours} h on {servers} servers, faults on the {fault_band} hot slots, MTTR {mttr_min} min",
        100.0 * qos_guard.violation_ratio,
        slack + 3,
        vms,
    );
    println!();
    println!(
        "{:<12} {:>12} {:>10} {:>9} {:>12} {:>9} {:>10} {:>12}  energy vs fault-free",
        "mtbf",
        "energy kWh",
        "max viol%",
        "failures",
        "evacuations",
        "deferred",
        "re-packs",
        "migrations"
    );
    for row in &rows {
        let r = &row.report;
        let label = row
            .mtbf_hours
            .map_or_else(|| "fault-free".to_string(), |m| format!("{m} h"));
        let norm = r.energy.normalized_to(&baseline_energy).expect("nonzero");
        println!(
            "{:<12} {:>12.2} {:>10.2} {:>9} {:>12} {:>9} {:>10} {:>12}  {}",
            label,
            r.energy.kilowatt_hours(),
            r.max_violation_percent,
            r.server_failures,
            r.evacuations,
            r.deferred_peak,
            r.offcycle_repacks,
            r.total_migrations(),
            bar(norm, 30),
        );
    }

    // The robustness headline: even at the harshest MTBF the guarded
    // schedule keeps the worst-period violation ratio bounded, and the
    // faults really happened (otherwise the sweep proves nothing).
    for row in rows.iter().skip(1) {
        let r = &row.report;
        assert!(
            r.max_violation_percent <= violation_bound,
            "mtbf {:?}: worst-period violations {}% exceed the {}% bound",
            row.mtbf_hours,
            r.max_violation_percent,
            violation_bound,
        );
    }
    let harshest = rows.last().expect("sweep has a baseline row");
    if harshest.mtbf_hours.is_some() {
        // Scheduled transitions can miss momentarily-unprovisioned
        // slots, but the harshest point of the sweep must actually
        // exercise the fault path — otherwise the bound above proves
        // nothing.
        assert!(
            harshest.report.server_failures > 0,
            "mtbf {:?}: no scheduled fault ever reached a provisioned server",
            harshest.mtbf_hours
        );
        println!();
        println!(
            "(worst-period violations ≤ {violation_bound}% across the sweep; {} failures absorbed at the harshest point — asserted)",
            harshest.report.server_failures
        );
    }

    let mut section = String::new();
    section.push_str("{\n");
    let _ = writeln!(section, "    \"vms\": {vms},");
    let _ = writeln!(section, "    \"hours\": {hours},");
    let _ = writeln!(section, "    \"servers\": {servers},");
    let _ = writeln!(section, "    \"fault_band\": {fault_band},");
    let _ = writeln!(section, "    \"mttr_minutes\": {mttr_min},");
    let _ = writeln!(section, "    \"slack\": {slack},");
    let _ = writeln!(
        section,
        "    \"qos_guard_ratio\": {},",
        qos_guard.violation_ratio
    );
    let _ = writeln!(
        section,
        "    \"violation_bound_percent\": {violation_bound},"
    );
    section.push_str("    \"sweep\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let r = &row.report;
        let mtbf = row
            .mtbf_hours
            .map_or_else(|| "null".to_string(), |m| format!("{m}"));
        let _ = write!(
            section,
            "      {{\"mtbf_hours\": {mtbf}, \"scheduled_failures\": {}, \"energy_kwh\": {:.3}, \"normalized_power\": {:.4}, \"max_violation_percent\": {:.3}, \"server_failures\": {}, \"evacuations\": {}, \"deferred_peak\": {}, \"offcycle_repacks\": {}, \"migrations\": {}}}",
            row.scheduled_failures,
            r.energy.kilowatt_hours(),
            r.energy.normalized_to(&baseline_energy).expect("nonzero"),
            r.max_violation_percent,
            r.server_failures,
            r.evacuations,
            r.deferred_peak,
            r.offcycle_repacks,
            r.total_migrations(),
        );
        section.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    section.push_str("    ]\n  }");
    artifact::splice_section("faults", &section);
}
