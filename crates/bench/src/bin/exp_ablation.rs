//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Correlation metric** — drive the proposed allocator with the
//!    paper's cost function vs Pearson correlation mapped into the same
//!    `[1, 2]` range (cost ≈ 2 − (r+1)/2·... strictly: `1.5 − r/2`), on
//!    the same fleet. The cost function measures peak coincidence — what
//!    capacity planning actually needs — so it should win on violations.
//! 2. **Threshold schedule** — sweep `TH_init` and `α` of the
//!    ALLOCATE phase and report the violation/power trade-off.
//! 3. **Predictor** — last-value (the paper's) vs moving-average vs
//!    EWMA for the per-period peak prediction, scored by mean relative
//!    error and under-prediction rate on the Setup-2 fleet.

use cavm_bench::{run_setup2, setup2_fleet, SETUP2_SEED};
use cavm_core::alloc::proposed::ProposedConfig;
use cavm_core::alloc::{AllocationPolicy, ProposedPolicy, VmDescriptor};
use cavm_core::corr::{pearson_of_traces, CostMatrix};
use cavm_core::dvfs::DvfsMode;
use cavm_core::predict::{
    EwmaPredictor, LastValuePredictor, MovingAveragePredictor, PredictionScore, Predictor,
};
use cavm_sim::Policy;
use cavm_trace::{Reference, TimeSeries};

fn main() {
    metric_ablation();
    threshold_ablation();
    predictor_ablation();
}

/// Places one period's worth of VMs with both metrics and compares the
/// resulting *actual* worst-server peak (lower = better placement).
fn metric_ablation() {
    println!("# Ablation 1 — Eqn 1 cost metric vs Pearson correlation as the pair score");
    let fleet = setup2_fleet(SETUP2_SEED);
    let traces = fleet.traces();
    let n = traces.len();

    let cost_matrix = CostMatrix::from_traces(&traces, Reference::Peak).expect("uniform traces");
    // Pearson mapped into [1, 2]: r = +1 → 1.0 (correlated, avoid),
    // r = −1 → 2.0 (anti-correlated, prefer).
    let mut pearson_costs = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let r = pearson_of_traces(traces[i], traces[j])
                .expect("uniform traces")
                .unwrap_or(0.0);
            pearson_costs.push(1.5 - r / 2.0);
        }
    }
    let pearson_matrix =
        CostMatrix::from_costs(n, pearson_costs).expect("triangle length is correct");

    let vms = VmDescriptor::from_traces(&traces, Reference::Peak).expect("non-empty traces");
    let policy = ProposedPolicy::default();
    println!(
        "{:<18} {:>10} {:>22} {:>18}",
        "pair score", "servers", "worst actual peak", "mean actual peak"
    );
    for (label, matrix) in [("Eqn 1 cost", &cost_matrix), ("Pearson", &pearson_matrix)] {
        let placement = policy
            .place_uniform(&vms, matrix, 8.0)
            .expect("instance is feasible");
        let mut worst: f64 = 0.0;
        let mut sum = 0.0;
        for members in placement.servers() {
            let set: Vec<&TimeSeries> = members.iter().map(|&id| traces[id]).collect();
            let peak = TimeSeries::sum_of(&set).expect("uniform traces").peak();
            worst = worst.max(peak);
            sum += peak;
        }
        println!(
            "{label:<18} {:>10} {:>22.2} {:>18.2}",
            placement.server_count(),
            worst,
            sum / placement.server_count() as f64
        );
    }
    println!("(placement quality is comparable on full-day traces; Eqn 1's advantage");
    println!(" is operational — O(1) streaming updates with no stored samples, and it");
    println!(" scores exactly the peak coincidence that capacity planning cares about —");
    println!(" see the corr_throughput bench for the cost side of the argument)");
    println!();
}

fn threshold_ablation() {
    println!("# Ablation 2 — ALLOCATE threshold schedule (TH_init, α)");
    let fleet = setup2_fleet(SETUP2_SEED);
    println!(
        "{:<22} {:>18} {:>20}",
        "(TH_init, alpha)", "normalized power", "max violations (%)"
    );
    let baseline = run_setup2(&fleet, Policy::Bfd, DvfsMode::Static);
    for (th, alpha) in [
        (1.8, 0.92),
        (1.9, 0.98),
        (1.5, 0.92),
        (1.2, 0.92),
        (1.0, 0.5),
    ] {
        let config = ProposedConfig {
            th_init: th,
            alpha,
            ..Default::default()
        };
        let report = run_setup2(&fleet, Policy::Proposed(config), DvfsMode::Static);
        println!(
            "({th:.1}, {alpha:.2})           {:>18.3} {:>20.1}",
            report
                .energy
                .normalized_to(&baseline.energy)
                .expect("baseline non-zero"),
            report.max_violation_percent
        );
    }
    println!("(TH_init near 1 disables correlation screening; the schedule is robust)");
    println!();
}

fn predictor_ablation() {
    println!("# Ablation 3 — per-period peak predictors on the Setup-2 fleet");
    let fleet = setup2_fleet(SETUP2_SEED);
    let period = 720; // 1 h of 5 s samples
    let n = fleet.len();

    let mut predictors: Vec<(&str, Box<dyn Predictor>)> = vec![
        ("last-value (paper)", Box::new(LastValuePredictor::new(n))),
        (
            "moving-average(3)",
            Box::new(MovingAveragePredictor::new(n, 3).expect("window >= 1")),
        ),
        (
            "ewma(0.5)",
            Box::new(EwmaPredictor::new(n, 0.5).expect("alpha in range")),
        ),
    ];
    let mut scores: Vec<PredictionScore> = (0..predictors.len())
        .map(|_| PredictionScore::new())
        .collect();

    let periods = fleet.traces()[0].len() / period;
    for p in 0..periods {
        for (v, trace) in fleet.traces().iter().enumerate() {
            let slice = &trace.values()[p * period..(p + 1) * period];
            let actual = Reference::Peak.of(slice).expect("non-empty slice");
            for ((_, predictor), score) in predictors.iter_mut().zip(scores.iter_mut()) {
                if let Some(predicted) = predictor.predict(v).expect("vm id in range") {
                    score.record(predicted, actual);
                }
                predictor.observe(v, actual).expect("vm id in range");
            }
        }
    }

    println!(
        "{:<22} {:>22} {:>24}",
        "predictor", "mean relative error", "under-prediction rate"
    );
    for ((label, _), score) in predictors.iter().zip(&scores) {
        println!(
            "{label:<22} {:>21.1}% {:>23.1}%",
            100.0 * score.mean_relative_error(),
            100.0 * score.under_prediction_rate()
        );
    }
    println!("(under-predictions are the dangerous direction — they become violations)");
}
