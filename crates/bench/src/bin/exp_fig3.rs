//! Fig 3 — server cost (Eqn 2) vs achievable v/f slowdown.
//!
//! The paper justifies Eqn (4) empirically: scatter the weighted average
//! pairwise cost of co-located VM sets (X) against the *true* peak
//! aggregation ratio `Σ û_j / û(Σ VMs)` (Y) and observe that Y is
//! lower-bounded, approximately linearly, by X (all points at or above
//! the Y=X line). This binary regenerates that scatter from synthetic
//! datacenter traces and random co-location sets, prints the series and
//! verifies the bound.

use cavm_bench::{setup2_fleet, SETUP2_SEED};
use cavm_core::corr::CostMatrix;
use cavm_core::servercost::server_cost;
use cavm_trace::{Reference, SimRng, TimeSeries};

fn main() {
    let fleet = setup2_fleet(SETUP2_SEED);
    let traces = fleet.traces();
    let matrix =
        CostMatrix::from_traces(&traces, Reference::Peak).expect("fleet traces are uniform");
    let mut rng = SimRng::new(42);

    println!("# Fig 3 — Cost_server (Eqn 2, X) vs true slowdown ratio (Y); Y >= X expected");
    println!("set_size,cost_server,true_ratio");

    let mut points = Vec::new();
    for _ in 0..250 {
        let size = 2 + rng.below(5); // 2..=6 VMs per server
        let mut ids: Vec<usize> = (0..traces.len()).collect();
        rng.shuffle(&mut ids);
        ids.truncate(size);

        let members: Vec<(usize, f64)> = ids
            .iter()
            .map(|&id| {
                (
                    id,
                    Reference::Peak.of_series(traces[id]).expect("non-empty"),
                )
            })
            .collect();
        let x = server_cost(&members, &matrix);

        let sum_of_peaks: f64 = members.iter().map(|&(_, u)| u).sum();
        let set: Vec<&TimeSeries> = ids.iter().map(|&id| traces[id]).collect();
        let aggregate = TimeSeries::sum_of(&set).expect("uniform sampling");
        let y = sum_of_peaks / aggregate.peak().max(1e-12);

        println!("{},{:.4},{:.4}", size, x, y);
        points.push((x, y));
    }

    let below: usize = points.iter().filter(|&&(x, y)| y < x - 0.02).count();
    let min_margin = points
        .iter()
        .map(|&(x, y)| y - x)
        .fold(f64::INFINITY, f64::min);
    // Least-squares fit of Y on X to expose the (approximately linear)
    // relationship the paper reads off this plot.
    let n = points.len() as f64;
    let (sx, sy): (f64, f64) = points
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
    let (sxx, sxy): (f64, f64) = points
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x * x, b + x * y));
    let slope = (sxy - sx * sy / n) / (sxx - sx * sx / n);
    let intercept = sy / n - slope * sx / n;

    println!();
    println!("# Summary over {} random co-location sets", points.len());
    println!("points below Y = X (beyond tolerance): {below}");
    println!("minimum margin  min(Y - X) = {min_margin:.4}");
    println!("linear fit      Y ≈ {slope:.3}·X + {intercept:+.3}");
    println!("(paper: 'the lower bound of the possible v/f scaling factor has linear");
    println!(" relationship with Cost_server' — dividing by Cost_server in Eqn 4 is safe)");
}
