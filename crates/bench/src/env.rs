//! Strict parsing for the `CAVM_*` environment knobs of the
//! experiment binaries.
//!
//! Every knob is CI surface: a typo like `CAVM_ONLINE_VMS=4O` must
//! abort naming the variable and the rejected value — not silently
//! fall back to the default, run the wrong-sized experiment, and
//! splice its numbers into the artifact as if they were the requested
//! ones. Only an *unset* variable means "use the default".

use std::any::type_name;
use std::str::FromStr;

/// Parses an explicitly-set knob value, panicking with the variable
/// name, the offending value, and the expected type on failure.
fn parse_value<T: FromStr>(key: &str, raw: &str) -> T {
    raw.trim().parse().unwrap_or_else(|_| {
        panic!(
            "{key}={raw:?}: not a valid {}",
            type_name::<T>().rsplit("::").next().expect("nonempty")
        )
    })
}

/// Reads `key` as a `T` (`usize`, `f64`, `u64`, `String`, …), falling
/// back to `default` only when the variable is **unset**.
///
/// # Panics
///
/// Panics — naming the variable and the rejected value — when the
/// variable is set but does not parse, or is not unicode.
pub fn parse_or<T: FromStr>(key: &str, default: T) -> T {
    match std::env::var(key) {
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(raw)) => {
            panic!("{key}={raw:?}: not unicode")
        }
        Ok(raw) => parse_value(key, &raw),
    }
}

/// Reads `key` as a comma-separated `f64` list, falling back to
/// `default` only when the variable is **unset**.
///
/// # Panics
///
/// Panics — naming the variable and the rejected element — when any
/// element does not parse (an empty element counts as malformed).
pub fn parse_list_or(key: &str, default: &[f64]) -> Vec<f64> {
    match std::env::var(key) {
        Err(std::env::VarError::NotPresent) => default.to_vec(),
        Err(std::env::VarError::NotUnicode(raw)) => {
            panic!("{key}={raw:?}: not unicode")
        }
        Ok(raw) => raw.split(',').map(|s| parse_value(key, s)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test owns a unique variable name: the test harness runs
    // tests in parallel and the environment is process-global.

    #[test]
    fn unset_means_default() {
        assert_eq!(parse_or("CAVM_ENVTEST_UNSET", 40usize), 40);
        assert_eq!(parse_or("CAVM_ENVTEST_UNSET", 0.08f64), 0.08);
        assert_eq!(parse_list_or("CAVM_ENVTEST_UNSET", &[1.0, 2.0]), [1.0, 2.0]);
    }

    #[test]
    fn set_values_parse() {
        std::env::set_var("CAVM_ENVTEST_OK_USIZE", "12");
        assert_eq!(parse_or("CAVM_ENVTEST_OK_USIZE", 40usize), 12);
        std::env::set_var("CAVM_ENVTEST_OK_F64", " 0.25 ");
        assert_eq!(parse_or("CAVM_ENVTEST_OK_F64", 0.08f64), 0.25);
        std::env::set_var("CAVM_ENVTEST_OK_STR", "azure.csv");
        assert_eq!(
            parse_or("CAVM_ENVTEST_OK_STR", String::from("default")),
            "azure.csv"
        );
        std::env::set_var("CAVM_ENVTEST_OK_LIST", "4, 8,16.5");
        assert_eq!(
            parse_list_or("CAVM_ENVTEST_OK_LIST", &[1.0]),
            [4.0, 8.0, 16.5]
        );
    }

    #[test]
    #[should_panic(expected = "CAVM_ENVTEST_BAD_USIZE=\"4O\": not a valid usize")]
    fn malformed_scalar_names_variable_and_value() {
        std::env::set_var("CAVM_ENVTEST_BAD_USIZE", "4O");
        parse_or("CAVM_ENVTEST_BAD_USIZE", 40usize);
    }

    #[test]
    #[should_panic(expected = "CAVM_ENVTEST_BAD_F64=\"fast\": not a valid f64")]
    fn malformed_float_names_variable_and_value() {
        std::env::set_var("CAVM_ENVTEST_BAD_F64", "fast");
        parse_or("CAVM_ENVTEST_BAD_F64", 0.08f64);
    }

    #[test]
    #[should_panic(expected = "CAVM_ENVTEST_BAD_LIST=\"\": not a valid f64")]
    fn malformed_list_element_names_variable_and_value() {
        std::env::set_var("CAVM_ENVTEST_BAD_LIST", "1.0,,3");
        parse_list_or("CAVM_ENVTEST_BAD_LIST", &[1.0]);
    }
}
