//! Property-based tests for the workload generators.

use cavm_workload::clients::{ClientWave, WaveShape};
use cavm_workload::datacenter::DatacenterTraceBuilder;
use cavm_workload::websearch::{WebSearchCluster, WebSearchClusterConfig};
use proptest::prelude::*;

proptest! {
    /// Waves stay inside their [min, max] band for every shape.
    #[test]
    fn waves_stay_in_band(
        min in 0.0f64..100.0,
        span in 0.1f64..400.0,
        period in 1.0f64..5000.0,
        shape_idx in 0usize..4,
        t in 0.0f64..10_000.0
    ) {
        let shape = [WaveShape::Sine, WaveShape::Cosine, WaveShape::Square, WaveShape::Triangle][shape_idx];
        let w = ClientWave::new(shape, min, min + span, period).unwrap();
        let v = w.value_at(t);
        prop_assert!(v >= min - 1e-9 && v <= min + span + 1e-9, "value {} outside band", v);
    }

    /// Waves are periodic: value_at(t) == value_at(t + period).
    #[test]
    fn waves_are_periodic(
        period in 1.0f64..1000.0,
        t in 0.0f64..1000.0,
        shape_idx in 0usize..4
    ) {
        let shape = [WaveShape::Sine, WaveShape::Cosine, WaveShape::Square, WaveShape::Triangle][shape_idx];
        let w = ClientWave::new(shape, 0.0, 10.0, period).unwrap();
        prop_assert!((w.value_at(t) - w.value_at(t + period)).abs() < 1e-6);
    }

    /// Shard shares normalize to mean 1 whatever the raw weights.
    #[test]
    fn shares_normalize(raw in prop::collection::vec(0.01f64..10.0, 1..6)) {
        let cfg = WebSearchClusterConfig {
            isns: raw.len(),
            isn_shares: raw.clone(),
            ..WebSearchClusterConfig::default()
        };
        let cluster = WebSearchCluster::new(cfg).unwrap();
        let mean: f64 = cluster.config().isn_shares.iter().sum::<f64>()
            / cluster.config().isn_shares.len() as f64;
        prop_assert!((mean - 1.0).abs() < 1e-9);
        // Ordering of shares is preserved by normalization.
        for i in 1..raw.len() {
            let before = raw[i].partial_cmp(&raw[i - 1]).unwrap();
            let after = cluster.config().isn_shares[i]
                .partial_cmp(&cluster.config().isn_shares[i - 1])
                .unwrap();
            prop_assert_eq!(before, after);
        }
    }

    /// Offered load scales linearly in the client count for every ISN.
    #[test]
    fn offered_load_linear(clients in 0.0f64..500.0, scale in 0.1f64..4.0) {
        let c = WebSearchCluster::paper_setup1().unwrap();
        for isn in 0..c.isns() {
            let a = c.expected_isn_load(clients, isn);
            let b = c.expected_isn_load(clients * scale, isn);
            prop_assert!((b - a * scale).abs() < 1e-9);
        }
    }

    /// Fleets are deterministic in the seed and respect the VM cap.
    #[test]
    fn fleet_deterministic_and_capped(
        seed in any::<u64>(),
        vms in 1usize..8,
        cap in 1.0f64..6.0
    ) {
        let build = || {
            DatacenterTraceBuilder::new(vms)
                .groups(2)
                .seed(seed)
                .duration_hours(1.0)
                .vm_cap_cores(cap)
                .build()
                .unwrap()
        };
        let a = build();
        let b = build();
        prop_assert_eq!(&a, &b);
        for vm in a.vms() {
            prop_assert!(vm.fine.peak() <= cap + 1e-9);
            prop_assert!(vm.fine.min() >= 0.0);
            prop_assert!(vm.coarse.peak() <= cap + 1e-9);
        }
    }

    /// select_top returns a fleet sorted by descending mean utilization.
    #[test]
    fn select_top_sorted(seed in any::<u64>(), n in 2usize..10, keep in 1usize..10) {
        let fleet = DatacenterTraceBuilder::new(n)
            .groups(2)
            .seed(seed)
            .duration_hours(1.0)
            .build()
            .unwrap();
        let top = fleet.select_top(keep);
        prop_assert_eq!(top.len(), keep.min(n));
        let means: Vec<f64> = top.vms().iter().map(|v| v.fine.mean()).collect();
        for pair in means.windows(2) {
            prop_assert!(pair[0] >= pair[1] - 1e-12);
        }
    }
}
