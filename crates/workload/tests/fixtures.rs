//! Checked-in trace fixtures under `testdata/` and the generators that
//! produced them.
//!
//! The fixtures are deterministic renders of `SyntheticTrace`
//! workloads through the two CSV writers, so the repo carries real
//! parse targets for CI (and `exp_trace` replays them end-to-end)
//! without shipping megabytes of real cloud traces. The plain tests
//! assert the checked-in bytes still match the generators and that the
//! readers ingest them; run the `#[ignore]`d regeneration tests after
//! changing a generator:
//!
//! ```text
//! cargo test -p cavm-workload --test fixtures -- --ignored
//! ```

use cavm_workload::datacenter::DailyArchetype;
use cavm_workload::dataset::{
    assemble, write_azure_csv, write_huawei_csv, AzureTraceReader, DemandModel, HuaweiTraceReader,
    SyntheticApp, SyntheticTrace, SyntheticTraceBuilder, TraceDataset, TraceRecord,
};
use cavm_workload::lifecycle::{ArrivalProcess, LifetimeModel};

const AZURE_PATH: &str = "testdata/azure_sample.csv";
const HUAWEI_PATH: &str = "testdata/huawei_sample.csv";

/// Fixture grid: 5-minute samples over a 4-hour horizon.
const SAMPLE_DT_S: f64 = 300.0;
const HORIZON: usize = 48;

/// The Azure-format fixture's source workload: ten VMs in three apps —
/// two correlated diurnal groups peaking at different hours plus an
/// uncorrelated batch group — so a correlation-aware policy has
/// structure to exploit when `exp_trace` replays the file.
fn azure_source() -> SyntheticTrace {
    SyntheticTraceBuilder::new(HORIZON)
        .sample_dt_s(SAMPLE_DT_S)
        .seed(2013)
        .app(SyntheticApp {
            name: "web".into(),
            vm_count: 4,
            arrivals: ArrivalProcess::Poisson {
                mean_gap_samples: 3.0,
            },
            lifetimes: LifetimeModel::Uniform {
                min_samples: 28,
                max_samples: 44,
            },
            demand: DemandModel::Archetype {
                archetype: DailyArchetype::Diurnal {
                    base: 0.4,
                    peak: 2.4,
                    peak_hour: 1.2,
                    width_h: 0.7,
                },
                cv: 0.15,
            },
        })
        .app(SyntheticApp {
            name: "analytics".into(),
            vm_count: 3,
            arrivals: ArrivalProcess::Poisson {
                mean_gap_samples: 4.0,
            },
            lifetimes: LifetimeModel::Uniform {
                min_samples: 24,
                max_samples: 40,
            },
            demand: DemandModel::Archetype {
                archetype: DailyArchetype::Diurnal {
                    base: 0.3,
                    peak: 2.0,
                    peak_hour: 3.0,
                    width_h: 0.6,
                },
                cv: 0.15,
            },
        })
        .app(SyntheticApp {
            name: "batch".into(),
            vm_count: 3,
            arrivals: ArrivalProcess::Poisson {
                mean_gap_samples: 5.0,
            },
            lifetimes: LifetimeModel::Uniform {
                min_samples: 18,
                max_samples: 36,
            },
            demand: DemandModel::Uniform { lo: 0.2, hi: 1.2 },
        })
        .build()
        .expect("fixture parameters are valid")
}

fn azure_fixture_csv() -> String {
    let (fleet, lifecycle) = assemble(&mut azure_source()).expect("fixture assembles");
    write_azure_csv(&fleet, &lifecycle).expect("fixture exports")
}

/// The Huawei-format fixture's source: ~100 short-lease VMs in two
/// apps with flat demand (the format carries one cpu level per VM), so
/// the file is dominated by create/delete lifecycle events.
fn huawei_source() -> SyntheticTrace {
    SyntheticTraceBuilder::new(HORIZON)
        .sample_dt_s(SAMPLE_DT_S)
        .seed(4021)
        .app(SyntheticApp {
            name: "svc".into(),
            vm_count: 60,
            arrivals: ArrivalProcess::Poisson {
                mean_gap_samples: 0.55,
            },
            lifetimes: LifetimeModel::Uniform {
                min_samples: 6,
                max_samples: 30,
            },
            demand: DemandModel::Uniform { lo: 0.1, hi: 1.6 },
        })
        .app(SyntheticApp {
            name: "job".into(),
            vm_count: 40,
            arrivals: ArrivalProcess::Poisson {
                mean_gap_samples: 0.8,
            },
            lifetimes: LifetimeModel::Uniform {
                min_samples: 4,
                max_samples: 16,
            },
            demand: DemandModel::Constant { cores: 0.5 },
        })
        .build()
        .expect("fixture parameters are valid")
}

fn huawei_fixture_csv() -> String {
    let mut source = huawei_source();
    let mut records: Vec<TraceRecord> = Vec::new();
    while let Some(record) = source.next_record() {
        records.push(record.expect("generator records are valid"));
    }
    write_huawei_csv(&records, SAMPLE_DT_S).expect("fixture exports")
}

#[test]
fn azure_fixture_matches_its_generator() {
    let on_disk = std::fs::read_to_string(AZURE_PATH).expect("fixture is checked in");
    assert_eq!(
        on_disk,
        azure_fixture_csv(),
        "regenerate with: cargo test -p cavm-workload --test fixtures -- --ignored"
    );
}

#[test]
fn huawei_fixture_matches_its_generator() {
    let on_disk = std::fs::read_to_string(HUAWEI_PATH).expect("fixture is checked in");
    assert_eq!(
        on_disk,
        huawei_fixture_csv(),
        "regenerate with: cargo test -p cavm-workload --test fixtures -- --ignored"
    );
}

#[test]
fn azure_fixture_ingests_end_to_end() {
    let mut reader =
        AzureTraceReader::open(AZURE_PATH, SAMPLE_DT_S, HORIZON).expect("fixture opens");
    let (fleet, lifecycle) = assemble(&mut reader).expect("fixture assembles");
    assert_eq!(fleet.len(), 10);
    assert_eq!(lifecycle.len(), 10);
    assert_eq!(fleet.vms()[0].fine.len(), HORIZON);
    assert!(lifecycle.entries().iter().any(|e| e.arrival_sample > 0));
    assert!(lifecycle
        .entries()
        .iter()
        .any(|e| e.departure_sample.is_some()));
}

#[test]
fn huawei_fixture_ingests_end_to_end() {
    let mut reader =
        HuaweiTraceReader::open(HUAWEI_PATH, SAMPLE_DT_S, HORIZON).expect("fixture opens");
    let (fleet, lifecycle) = assemble(&mut reader).expect("fixture assembles");
    assert_eq!(fleet.len(), 100);
    assert_eq!(lifecycle.len(), 100);
    assert!(lifecycle
        .entries()
        .iter()
        .filter(|e| e.departure_sample.is_some())
        .count()
        .ge(&50));
}

#[test]
#[ignore = "writes testdata/azure_sample.csv from the generator"]
fn regenerate_azure_fixture() {
    std::fs::write(AZURE_PATH, azure_fixture_csv()).expect("write fixture");
}

#[test]
#[ignore = "writes testdata/huawei_sample.csv from the generator"]
fn regenerate_huawei_fixture() {
    std::fs::write(HUAWEI_PATH, huawei_fixture_csv()).expect("write fixture");
}
