//! Web-search cluster demand model (paper Setup-1).
//!
//! A CloudSuite-style web-search cluster is a front-end plus several
//! index-serving nodes (ISNs). Every query fans out to *all* ISNs; each
//! ISN scans its shard of the index and the front-end replies only after
//! the **last** ISN answers. Consequences the paper leans on:
//!
//! * per-ISN CPU demand tracks the client population closely (Fig 1) —
//!   *intra-cluster correlation*;
//! * shards are not perfectly balanced, so one ISN of a cluster runs
//!   hotter than its sibling (the over/under-utilization visible in
//!   Fig 4(a));
//! * response time is governed by the slowest ISN.
//!
//! [`WebSearchCluster`] captures the demand side of that model: per-query
//! CPU demand per ISN (a static shard share × a lognormal per-query
//! jitter) under a Poisson arrival process driven by a client waveform.
//! The queueing side (what response times result) lives in
//! `cavm-cluster`, which consumes the samplers defined here.

use crate::WorkloadError;
use cavm_trace::{SimRng, TimeSeries};
use serde::{Deserialize, Serialize};

/// Parameters of a web-search cluster's demand model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebSearchClusterConfig {
    /// Number of index-serving nodes (each one is a VM).
    pub isns: usize,
    /// Mean per-client think time between queries, seconds. The cluster
    /// arrival rate is `clients / think_time_s`.
    pub think_time_s: f64,
    /// Mean CPU demand one query imposes on one (balanced) ISN,
    /// core-seconds, at the machine's maximum frequency.
    pub base_demand_core_s: f64,
    /// Coefficient of variation of the per-query demand jitter
    /// (lognormal, mean 1): queries matching many documents cost more.
    pub demand_cv: f64,
    /// Relative shard weights, one per ISN; normalized to mean 1 at
    /// construction. Unequal weights model imbalanced index shards.
    pub isn_shares: Vec<f64>,
    /// CPU demand of the front-end gather/merge step per query,
    /// core-seconds (small; the paper notes the front-end utilization is
    /// "quite low compared to ISNs").
    pub frontend_demand_core_s: f64,
}

impl Default for WebSearchClusterConfig {
    /// Calibration reproducing Setup-1's mechanism: with 300 clients
    /// and 10 s think time the cluster offers 30 queries/s; the hot ISN
    /// then demands ≈ 4.2 cores at the wave peak — *briefly* exceeding a
    /// 4-core partition ("needs more than 4 cores", Fig 4(a)) without
    /// driving the queue into divergence — while a whole cluster peaks
    /// near 0.81 of an 8-core server.
    fn default() -> Self {
        Self {
            isns: 2,
            think_time_s: 10.0,
            base_demand_core_s: 0.1067,
            demand_cv: 0.3,
            isn_shares: vec![1.25, 0.75],
            frontend_demand_core_s: 0.005,
        }
    }
}

/// A validated web-search cluster demand model.
///
/// # Example
///
/// ```
/// use cavm_workload::websearch::WebSearchCluster;
///
/// # fn main() -> Result<(), cavm_workload::WorkloadError> {
/// let cluster = WebSearchCluster::paper_setup1()?;
/// // 300 clients → 30 queries/s; the hot ISN needs > 4 cores.
/// assert!((cluster.arrival_rate(300.0) - 30.0).abs() < 1e-9);
/// assert!(cluster.expected_isn_load(300.0, 0) > 4.0);
/// assert!(cluster.expected_isn_load(300.0, 1) < 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebSearchCluster {
    config: WebSearchClusterConfig,
}

impl WebSearchCluster {
    /// Validates a configuration and normalizes the shard shares to
    /// mean 1.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] when any count, time
    /// or demand is non-positive, the share vector length disagrees with
    /// `isns`, or any share is non-positive.
    pub fn new(mut config: WebSearchClusterConfig) -> crate::Result<Self> {
        if config.isns == 0 {
            return Err(WorkloadError::InvalidParameter(
                "cluster needs at least one ISN",
            ));
        }
        if !(config.think_time_s.is_finite() && config.think_time_s > 0.0) {
            return Err(WorkloadError::InvalidParameter("think time must be > 0"));
        }
        if !(config.base_demand_core_s.is_finite() && config.base_demand_core_s > 0.0) {
            return Err(WorkloadError::InvalidParameter("base demand must be > 0"));
        }
        if !(config.demand_cv.is_finite() && config.demand_cv >= 0.0) {
            return Err(WorkloadError::InvalidParameter("demand cv must be >= 0"));
        }
        if !(config.frontend_demand_core_s.is_finite() && config.frontend_demand_core_s >= 0.0) {
            return Err(WorkloadError::InvalidParameter(
                "frontend demand must be >= 0",
            ));
        }
        if config.isn_shares.len() != config.isns {
            return Err(WorkloadError::InvalidParameter(
                "one shard share per ISN required",
            ));
        }
        if config
            .isn_shares
            .iter()
            .any(|&s| !(s.is_finite() && s > 0.0))
        {
            return Err(WorkloadError::InvalidParameter("shard shares must be > 0"));
        }
        let mean: f64 = config.isn_shares.iter().sum::<f64>() / config.isn_shares.len() as f64;
        for s in &mut config.isn_shares {
            *s /= mean;
        }
        Ok(Self { config })
    }

    /// The paper's Setup-1 calibration (see
    /// [`WebSearchClusterConfig::default`]).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`Self::new`].
    pub fn paper_setup1() -> crate::Result<Self> {
        Self::new(WebSearchClusterConfig::default())
    }

    /// The validated configuration (shares normalized to mean 1).
    pub fn config(&self) -> &WebSearchClusterConfig {
        &self.config
    }

    /// Number of ISNs.
    pub fn isns(&self) -> usize {
        self.config.isns
    }

    /// Cluster query arrival rate for a client population, queries/s.
    pub fn arrival_rate(&self, clients: f64) -> f64 {
        clients.max(0.0) / self.config.think_time_s
    }

    /// Mean CPU demand of one query on the given ISN, core-seconds.
    ///
    /// # Panics
    ///
    /// Panics if `isn` is out of range.
    pub fn expected_isn_demand(&self, isn: usize) -> f64 {
        self.config.base_demand_core_s * self.config.isn_shares[isn]
    }

    /// Expected offered load on an ISN for a client population, in
    /// cores: `arrival_rate × per-query demand`.
    ///
    /// # Panics
    ///
    /// Panics if `isn` is out of range.
    pub fn expected_isn_load(&self, clients: f64, isn: usize) -> f64 {
        self.arrival_rate(clients) * self.expected_isn_demand(isn)
    }

    /// Draws the per-ISN CPU demands of a single query, core-seconds.
    /// Index `i` of the result is the demand on ISN `i`.
    pub fn sample_query_demands(&self, rng: &mut SimRng) -> Vec<f64> {
        (0..self.config.isns)
            .map(|i| {
                let jitter = rng.lognormal_mean_cv(1.0, self.config.demand_cv);
                self.expected_isn_demand(i) * jitter
            })
            .collect()
    }

    /// Deterministic expected per-ISN utilization traces (cores) for a
    /// client-count trace — the smooth curves of Fig 1.
    ///
    /// # Errors
    ///
    /// Propagates series-construction errors.
    pub fn offered_load_traces(&self, clients: &TimeSeries) -> crate::Result<Vec<TimeSeries>> {
        (0..self.config.isns)
            .map(|i| {
                Ok(TimeSeries::new(
                    clients.dt(),
                    clients
                        .values()
                        .iter()
                        .map(|&c| self.expected_isn_load(c, i))
                        .collect(),
                )?)
            })
            .collect()
    }

    /// Stochastic per-ISN utilization traces (cores): per sample window,
    /// a Poisson number of queries arrives and each contributes a
    /// jittered demand. This is what a 1 s `xenstat` monitor would record
    /// on an uncapped VM (Fig 1's wiggly lines).
    ///
    /// # Errors
    ///
    /// Propagates series-construction errors.
    pub fn utilization_traces(
        &self,
        clients: &TimeSeries,
        rng: &mut SimRng,
    ) -> crate::Result<Vec<TimeSeries>> {
        let dt = clients.dt();
        let n = clients.len();
        let mut per_isn: Vec<Vec<f64>> = vec![Vec::with_capacity(n); self.config.isns];
        for &c in clients.values() {
            let lambda = self.arrival_rate(c) * dt;
            let queries = rng.poisson(lambda).map_err(WorkloadError::Trace)?;
            let mut totals = vec![0.0; self.config.isns];
            for _ in 0..queries {
                for (i, total) in totals.iter_mut().enumerate() {
                    let jitter = rng.lognormal_mean_cv(1.0, self.config.demand_cv);
                    *total += self.expected_isn_demand(i) * jitter;
                }
            }
            for (i, total) in totals.into_iter().enumerate() {
                per_isn[i].push(total / dt);
            }
        }
        per_isn
            .into_iter()
            .map(|v| Ok(TimeSeries::new(dt, v)?))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::ClientWave;

    #[test]
    fn validation_rejects_bad_configs() {
        let base = WebSearchClusterConfig::default();
        let bad = |f: fn(&mut WebSearchClusterConfig)| {
            let mut c = base.clone();
            f(&mut c);
            WebSearchCluster::new(c)
        };
        assert!(bad(|c| c.isns = 0).is_err());
        assert!(bad(|c| c.think_time_s = 0.0).is_err());
        assert!(bad(|c| c.base_demand_core_s = -1.0).is_err());
        assert!(bad(|c| c.demand_cv = -0.1).is_err());
        assert!(bad(|c| c.frontend_demand_core_s = -0.1).is_err());
        assert!(bad(|c| c.isn_shares = vec![1.0]).is_err());
        assert!(bad(|c| c.isn_shares = vec![1.0, 0.0]).is_err());
    }

    #[test]
    fn shares_are_normalized_to_mean_one() {
        let cfg = WebSearchClusterConfig {
            isn_shares: vec![2.6, 1.4],
            ..Default::default()
        };
        let cluster = WebSearchCluster::new(cfg).unwrap();
        let shares = &cluster.config().isn_shares;
        assert!((shares.iter().sum::<f64>() - 2.0).abs() < 1e-12);
        assert!((shares[0] - 1.3).abs() < 1e-12);
    }

    #[test]
    fn arrival_rate_clamps_negative_clients() {
        let c = WebSearchCluster::paper_setup1().unwrap();
        assert_eq!(c.arrival_rate(-5.0), 0.0);
    }

    #[test]
    fn expected_load_scales_linearly_with_clients() {
        let c = WebSearchCluster::paper_setup1().unwrap();
        let at_150 = c.expected_isn_load(150.0, 0);
        let at_300 = c.expected_isn_load(300.0, 0);
        assert!((at_300 - 2.0 * at_150).abs() < 1e-9);
    }

    #[test]
    fn setup1_calibration_saturates_a_4_core_partition() {
        let c = WebSearchCluster::paper_setup1().unwrap();
        // Hot ISN just above 4 cores at peak (brief partition overload),
        // cold well below; cluster total near 0.81 × 8 cores.
        let hot = c.expected_isn_load(300.0, 0);
        let cold = c.expected_isn_load(300.0, 1);
        assert!(hot > 4.0 && hot < 4.5, "hot {hot}");
        assert!(cold < 4.0, "cold {cold}");
        let total = hot + cold;
        assert!(
            (total / 8.0 - 0.81).abs() < 0.02,
            "cluster peak {}",
            total / 8.0
        );
    }

    #[test]
    fn offered_load_tracks_clients() {
        let c = WebSearchCluster::paper_setup1().unwrap();
        let wave = ClientWave::sine(0.0, 300.0, 1200.0).unwrap();
        let clients = wave.sample(1.0, 1200).unwrap();
        let loads = c.offered_load_traces(&clients).unwrap();
        assert_eq!(loads.len(), 2);
        // Correlation with the client signal is exact (linear map).
        let peak_idx = clients
            .values()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let load_peak_idx = loads[0]
            .values()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak_idx, load_peak_idx);
    }

    #[test]
    fn stochastic_trace_mean_matches_offered_load() {
        let c = WebSearchCluster::paper_setup1().unwrap();
        let clients = TimeSeries::constant(1.0, 2_000, 300.0).unwrap();
        let mut rng = SimRng::new(11);
        let traces = c.utilization_traces(&clients, &mut rng).unwrap();
        for (i, t) in traces.iter().enumerate() {
            let expected = c.expected_isn_load(300.0, i);
            let got = t.mean();
            assert!(
                (got - expected).abs() / expected < 0.05,
                "isn {i}: mean {got} vs expected {expected}"
            );
        }
    }

    #[test]
    fn query_demand_sampler_is_positive_with_correct_mean() {
        let c = WebSearchCluster::paper_setup1().unwrap();
        let mut rng = SimRng::new(13);
        let mut sums = vec![0.0; c.isns()];
        let n = 20_000;
        for _ in 0..n {
            for (i, d) in c.sample_query_demands(&mut rng).into_iter().enumerate() {
                assert!(d > 0.0);
                sums[i] += d;
            }
        }
        for (i, sum) in sums.iter().enumerate() {
            let mean = sum / n as f64;
            let expected = c.expected_isn_demand(i);
            assert!(
                (mean - expected).abs() / expected < 0.03,
                "isn {i}: {mean} vs {expected}"
            );
        }
    }

    #[test]
    fn intra_cluster_correlation_is_high() {
        // The substrate must exhibit the paper's Fig 1 phenomenon: two
        // ISNs of one cluster are strongly correlated through the shared
        // client signal.
        let c = WebSearchCluster::paper_setup1().unwrap();
        let wave = ClientWave::sine(0.0, 300.0, 600.0).unwrap();
        let clients = wave.sample(1.0, 1800).unwrap();
        let mut rng = SimRng::new(17);
        let traces = c.utilization_traces(&clients, &mut rng).unwrap();
        let (a, b) = (traces[0].values(), traces[1].values());
        let ma = traces[0].mean();
        let mb = traces[1].mean();
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for i in 0..a.len() {
            cov += (a[i] - ma) * (b[i] - mb);
            va += (a[i] - ma).powi(2);
            vb += (b[i] - mb).powi(2);
        }
        let pearson = cov / (va.sqrt() * vb.sqrt());
        assert!(pearson > 0.8, "intra-cluster Pearson correlation {pearson}");
    }
}
