//! Datacenter utilization-trace synthesis (paper Setup-2).
//!
//! The paper's large-scale evaluation uses one day of per-VM CPU
//! utilization from a production datacenter: 5-minute samples, refined to
//! 5-second samples "with a lognormal random number generator whose mean
//! is the same as the collected value for the corresponding 5-minute
//! sample" (citing Benson et al. for the lognormality of datacenter
//! traffic). The original traces are proprietary (Credit Suisse), so this
//! module synthesizes statistically equivalent ones:
//!
//! * each **group** of VMs (a service / cluster) follows a shared daily
//!   [`DailyArchetype`] — diurnal bumps, flat lines, bursty services, or
//!   abrupt surges. Sharing the profile is what creates the high
//!   *intra-cluster correlation* the paper exploits;
//! * each VM scales its group profile (siblings of one service are
//!   near-identical in size) and adds idiosyncratic smooth noise (AR(1)
//!   on the 5-minute grid);
//! * the 5-minute means are then refined to 5-second samples with the
//!   paper's own lognormal procedure, modulated by two-state **Markov
//!   burst chains** (multi-minute durations), with a configurable
//!   fraction of bursts *synchronized* within a group — group-mates
//!   surge together, which is what makes correlation-blind co-location
//!   dangerous.
//!
//! The result intentionally has the property that makes the PCP baseline
//! degenerate in the paper ("PCP classifies VMs into only 1 cluster
//! during most of the time periods"): burst activity scatters every
//! VM's 90th-percentile envelope across the whole hour, so envelopes
//! always overlap.

use crate::WorkloadError;
use cavm_trace::{SimRng, TimeSeries};
use serde::{Deserialize, Serialize};

/// Shape of a group's daily 5-minute mean-utilization profile.
///
/// Utilization values are in units of physical cores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DailyArchetype {
    /// A smooth diurnal bump: `base` outside working hours, rising to
    /// `peak` around `peak_hour` with Gaussian width `width_h` hours
    /// (circular in the 24 h day).
    Diurnal {
        /// Off-hours level, cores.
        base: f64,
        /// Peak level, cores.
        peak: f64,
        /// Hour of the day (0–24) of the peak.
        peak_hour: f64,
        /// Gaussian width of the bump, hours.
        width_h: f64,
    },
    /// A constant level (idle background services).
    Flat {
        /// Constant level, cores.
        level: f64,
    },
    /// `base` plus several short bumps at random hours (batch jobs).
    Bursty {
        /// Background level, cores.
        base: f64,
        /// Additional height of each burst, cores.
        burst_height: f64,
        /// Expected number of bursts per day.
        bursts_per_day: f64,
    },
    /// A step function: `base`, jumping abruptly to `surge_level` during
    /// `[start_hour, start_hour + duration_h)`. Abrupt steps are what
    /// defeat the last-value predictor and cause the violations of
    /// Table II.
    Surge {
        /// Pre/post-surge level, cores.
        base: f64,
        /// Level during the surge, cores.
        surge_level: f64,
        /// Hour the surge starts.
        start_hour: f64,
        /// Surge duration in hours.
        duration_h: f64,
    },
}

impl DailyArchetype {
    /// Mean utilization (cores) of this archetype at `hour ∈ [0, 24)`,
    /// with bursts materialized at `burst_hours`. Shared with the
    /// `dataset::SyntheticTrace` demand models.
    pub(crate) fn mean_at(&self, hour: f64, burst_hours: &[f64]) -> f64 {
        match *self {
            DailyArchetype::Diurnal {
                base,
                peak,
                peak_hour,
                width_h,
            } => {
                // Circular distance within the 24 h day.
                let mut d = (hour - peak_hour).abs();
                d = d.min(24.0 - d);
                base + (peak - base) * (-0.5 * (d / width_h).powi(2)).exp()
            }
            DailyArchetype::Flat { level } => level,
            DailyArchetype::Bursty {
                base, burst_height, ..
            } => {
                let mut v = base;
                for &b in burst_hours {
                    let mut d = (hour - b).abs();
                    d = d.min(24.0 - d);
                    // Each burst is a narrow bump (~20 minutes wide).
                    v += burst_height * (-0.5 * (d / 0.33f64).powi(2)).exp();
                }
                v
            }
            DailyArchetype::Surge {
                base,
                surge_level,
                start_hour,
                duration_h,
            } => {
                if hour >= start_hour && hour < start_hour + duration_h {
                    surge_level
                } else {
                    base
                }
            }
        }
    }

    /// Validates the archetype's numeric ranges.
    pub(crate) fn validate(&self) -> crate::Result<()> {
        let ok = match *self {
            DailyArchetype::Diurnal {
                base,
                peak,
                peak_hour,
                width_h,
            } => base >= 0.0 && peak >= base && (0.0..24.0).contains(&peak_hour) && width_h > 0.0,
            DailyArchetype::Flat { level } => level >= 0.0,
            DailyArchetype::Bursty {
                base,
                burst_height,
                bursts_per_day,
            } => base >= 0.0 && burst_height >= 0.0 && bursts_per_day >= 0.0,
            DailyArchetype::Surge {
                base,
                surge_level,
                start_hour,
                duration_h,
            } => {
                base >= 0.0
                    && surge_level >= 0.0
                    && (0.0..24.0).contains(&start_hour)
                    && duration_h > 0.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(WorkloadError::InvalidParameter(
                "archetype parameters out of range",
            ))
        }
    }
}

/// One synthesized VM: its coarse (5-minute) and fine (5-second) demand
/// traces, in cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmTrace {
    /// Stable identifier (index in the fleet at generation time).
    pub id: usize,
    /// Human-readable name, e.g. `"vm07"`.
    pub name: String,
    /// Index of the correlated group (service) this VM belongs to.
    pub group: usize,
    /// 5-minute mean samples.
    pub coarse: TimeSeries,
    /// Lognormal-refined fine samples.
    pub fine: TimeSeries,
}

/// A set of synthesized VM traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmFleet {
    vms: Vec<VmTrace>,
    groups: usize,
}

impl VmFleet {
    /// Builds a fleet directly from per-VM traces (the
    /// [`dataset`](crate::dataset) ingestion path; synthetic fleets
    /// come from [`DatacenterTraceBuilder`]).
    ///
    /// Ids are reassigned to positional order — the replay engine
    /// indexes fleets positionally — and every trace must share one
    /// fine sampling grid. The group count is inferred from the
    /// largest group index present.
    pub fn from_traces(mut vms: Vec<VmTrace>) -> crate::Result<VmFleet> {
        let first = vms.first().ok_or(WorkloadError::InvalidParameter(
            "fleet needs at least one VM",
        ))?;
        let (len, dt) = (first.fine.len(), first.fine.dt());
        if vms.iter().any(|v| v.fine.len() != len || v.fine.dt() != dt) {
            return Err(WorkloadError::InvalidParameter(
                "all fleet traces must share one fine sampling grid",
            ));
        }
        let groups = vms.iter().map(|v| v.group + 1).max().unwrap_or(1);
        for (id, vm) in vms.iter_mut().enumerate() {
            vm.id = id;
        }
        Ok(VmFleet { vms, groups })
    }

    /// The VMs, in id order.
    pub fn vms(&self) -> &[VmTrace] {
        &self.vms
    }

    /// Number of VMs.
    pub fn len(&self) -> usize {
        self.vms.len()
    }

    /// `true` when the fleet holds no VMs.
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    /// Number of correlated groups the fleet was generated with.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Fine-grained traces, in VM order.
    pub fn traces(&self) -> Vec<&TimeSeries> {
        self.vms.iter().map(|v| &v.fine).collect()
    }

    /// Coarse traces, in VM order.
    pub fn coarse_traces(&self) -> Vec<&TimeSeries> {
        self.vms.iter().map(|v| &v.coarse).collect()
    }

    /// The paper keeps only the busiest VMs: "we selected the top 40 VMs
    /// in terms of CPU utilization". Returns a new fleet with the `n`
    /// VMs of largest mean fine utilization (ids preserved), in
    /// descending order of mean utilization.
    pub fn select_top(&self, n: usize) -> VmFleet {
        let mut order: Vec<usize> = (0..self.vms.len()).collect();
        order.sort_by(|&a, &b| {
            self.vms[b]
                .fine
                .mean()
                .partial_cmp(&self.vms[a].fine.mean())
                .expect("finite means")
        });
        let vms = order
            .into_iter()
            .take(n)
            .map(|i| self.vms[i].clone())
            .collect();
        VmFleet {
            vms,
            groups: self.groups,
        }
    }
}

/// Builder for synthetic datacenter fleets.
///
/// # Example
///
/// ```
/// use cavm_workload::datacenter::DatacenterTraceBuilder;
///
/// # fn main() -> Result<(), cavm_workload::WorkloadError> {
/// let fleet = DatacenterTraceBuilder::new(12)
///     .groups(3)
///     .seed(42)
///     .duration_hours(24.0)
///     .build()?;
/// assert_eq!(fleet.len(), 12);
/// // 24 h of 5 s samples.
/// assert_eq!(fleet.traces()[0].len(), 24 * 720);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatacenterTraceBuilder {
    vm_count: usize,
    groups: usize,
    seed: u64,
    duration_hours: f64,
    coarse_dt_s: f64,
    fine_dt_s: f64,
    refine_cv: f64,
    group_spike_sync: f64,
    idio_noise: f64,
    vm_scale_range: (f64, f64),
    vm_cap_cores: f64,
    idle_fraction: f64,
    burst_amplitude: f64,
    burst_on_fraction: f64,
    burst_duration_samples: usize,
    archetypes: Option<Vec<DailyArchetype>>,
}

impl DatacenterTraceBuilder {
    /// Starts a builder for `vm_count` VMs with the paper-flavoured
    /// defaults: 24 h, 5-minute coarse grid, 5-second fine grid,
    /// lognormal refinement CV 0.45, 8 correlated groups.
    pub fn new(vm_count: usize) -> Self {
        Self {
            vm_count,
            groups: 8,
            seed: 0,
            duration_hours: 24.0,
            coarse_dt_s: 300.0,
            fine_dt_s: 5.0,
            refine_cv: 0.15,
            group_spike_sync: 0.6,
            idio_noise: 0.10,
            vm_scale_range: (0.6, 1.6),
            vm_cap_cores: 8.0,
            idle_fraction: 0.0,
            burst_amplitude: 0.5,
            burst_on_fraction: 0.15,
            burst_duration_samples: 36,
            archetypes: None,
        }
    }

    /// Number of correlated groups (services). VMs are dealt to groups
    /// round-robin. Clamped to at least 1 and at most the VM count at
    /// build time.
    pub fn groups(mut self, groups: usize) -> Self {
        self.groups = groups;
        self
    }

    /// RNG seed; every build with the same parameters and seed yields
    /// identical traces.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Trace duration in hours (default 24).
    pub fn duration_hours(mut self, hours: f64) -> Self {
        self.duration_hours = hours;
        self
    }

    /// Coarse sampling interval in seconds (default 300 = 5 min).
    pub fn coarse_dt_s(mut self, dt: f64) -> Self {
        self.coarse_dt_s = dt;
        self
    }

    /// Fine sampling interval in seconds (default 5).
    pub fn fine_dt_s(mut self, dt: f64) -> Self {
        self.fine_dt_s = dt;
        self
    }

    /// Coefficient of variation of the lognormal refinement (default
    /// 0.45, in the range Benson et al. report for datacenter traffic).
    pub fn refine_cv(mut self, cv: f64) -> Self {
        self.refine_cv = cv;
        self
    }

    /// Probability that a VM's fine-grained burst/spike in a given 5 s
    /// slot is *shared* with its group (default 0.6). Shared bursts are
    /// what make naive co-location of group-mates violate capacity
    /// together.
    pub fn group_spike_sync(mut self, w: f64) -> Self {
        self.group_spike_sync = w;
        self
    }

    /// Relative height of sustained bursts (default 0.5: a bursting VM
    /// runs 50% above its smoothed level). Bursts follow a two-state
    /// Markov chain so that over-utilization episodes last minutes, as
    /// in real traces, instead of isolated 5 s samples.
    pub fn burst_amplitude(mut self, amplitude: f64) -> Self {
        self.burst_amplitude = amplitude;
        self
    }

    /// Stationary fraction of time spent bursting (default 0.15).
    pub fn burst_on_fraction(mut self, fraction: f64) -> Self {
        self.burst_on_fraction = fraction;
        self
    }

    /// Mean burst duration in fine samples (default 36 = 3 min of 5 s
    /// samples).
    pub fn burst_duration_samples(mut self, samples: usize) -> Self {
        self.burst_duration_samples = samples;
        self
    }

    /// Amplitude of per-VM smooth idiosyncratic noise on the coarse grid
    /// (default 0.10 = ±10%).
    pub fn idio_noise(mut self, amplitude: f64) -> Self {
        self.idio_noise = amplitude;
        self
    }

    /// Range of per-VM scale factors applied to the group profile
    /// (default 0.6–1.6: group members are siblings, not clones).
    pub fn vm_scale_range(mut self, lo: f64, hi: f64) -> Self {
        self.vm_scale_range = (lo, hi);
        self
    }

    /// Per-VM utilization cap in cores (default 8: a VM cannot use more
    /// cores than its host exposes).
    pub fn vm_cap_cores(mut self, cap: f64) -> Self {
        self.vm_cap_cores = cap;
        self
    }

    /// Fraction of VMs that are severely under-utilized background noise
    /// (default 0.0). Set this above zero and use
    /// [`VmFleet::select_top`] to reproduce the paper's "top 40 VMs"
    /// selection from a larger population.
    pub fn idle_fraction(mut self, fraction: f64) -> Self {
        self.idle_fraction = fraction;
        self
    }

    /// Overrides the archetype palette (cycled over groups). By default
    /// a mixed palette of diurnal, surge, bursty and flat profiles is
    /// used.
    pub fn archetypes(mut self, archetypes: Vec<DailyArchetype>) -> Self {
        self.archetypes = Some(archetypes);
        self
    }

    /// Generates a two-state Markov burst chain with the configured
    /// stationary on-fraction and mean burst duration.
    fn burst_chain(&self, len: usize, rng: &mut SimRng) -> Vec<bool> {
        if self.burst_amplitude == 0.0 || self.burst_on_fraction == 0.0 {
            return vec![false; len];
        }
        let p_on = self.burst_on_fraction;
        let exit = 1.0 / self.burst_duration_samples as f64;
        // Stationarity: p_on · exit = (1 - p_on) · enter.
        let enter = p_on * exit / (1.0 - p_on);
        let mut state = rng.bernoulli(p_on);
        let mut chain = Vec::with_capacity(len);
        for _ in 0..len {
            chain.push(state);
            state = if state {
                !rng.bernoulli(exit)
            } else {
                rng.bernoulli(enter)
            };
        }
        chain
    }

    fn default_palette(rng: &mut SimRng) -> Vec<DailyArchetype> {
        vec![
            DailyArchetype::Diurnal {
                base: 0.4,
                peak: 2.6,
                peak_hour: 10.0 + rng.range_f64(-1.0, 1.0),
                width_h: 3.0,
            },
            DailyArchetype::Diurnal {
                base: 0.5,
                peak: 2.2,
                peak_hour: 14.5 + rng.range_f64(-1.0, 1.0),
                width_h: 2.5,
            },
            DailyArchetype::Surge {
                base: 0.7,
                surge_level: 1.7,
                start_hour: 8.0 + rng.range_f64(0.0, 4.0),
                duration_h: 2.0,
            },
            DailyArchetype::Bursty {
                base: 0.7,
                burst_height: 0.9,
                bursts_per_day: 5.0,
            },
            DailyArchetype::Diurnal {
                base: 0.4,
                peak: 2.4,
                peak_hour: 20.0 + rng.range_f64(-1.5, 1.5),
                width_h: 3.5,
            },
            DailyArchetype::Surge {
                base: 0.6,
                surge_level: 1.5,
                start_hour: 15.0 + rng.range_f64(0.0, 3.0),
                duration_h: 1.5,
            },
            DailyArchetype::Flat { level: 1.1 },
            DailyArchetype::Bursty {
                base: 0.5,
                burst_height: 1.1,
                bursts_per_day: 3.0,
            },
        ]
    }

    /// Synthesizes the fleet.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for inconsistent
    /// builder settings (zero VMs, non-positive intervals, fine interval
    /// not dividing the coarse one, bad ranges) and propagates trace
    /// errors.
    pub fn build(&self) -> crate::Result<VmFleet> {
        if self.vm_count == 0 {
            return Err(WorkloadError::InvalidParameter(
                "fleet needs at least one VM",
            ));
        }
        if !(self.duration_hours > 0.0 && self.duration_hours.is_finite()) {
            return Err(WorkloadError::InvalidParameter("duration must be > 0"));
        }
        if !(self.coarse_dt_s > 0.0 && self.fine_dt_s > 0.0) {
            return Err(WorkloadError::InvalidParameter(
                "sampling intervals must be > 0",
            ));
        }
        let refine_factor = self.coarse_dt_s / self.fine_dt_s;
        if refine_factor.fract().abs() > 1e-9 || refine_factor < 1.0 {
            return Err(WorkloadError::InvalidParameter(
                "fine interval must evenly divide the coarse interval",
            ));
        }
        let refine_factor = refine_factor as usize;
        if !(self.refine_cv >= 0.0 && self.refine_cv.is_finite()) {
            return Err(WorkloadError::InvalidParameter("refine cv must be >= 0"));
        }
        if !(0.0..=1.0).contains(&self.group_spike_sync) {
            return Err(WorkloadError::InvalidParameter(
                "spike sync must be in [0, 1]",
            ));
        }
        if !(self.burst_amplitude.is_finite() && self.burst_amplitude >= 0.0) {
            return Err(WorkloadError::InvalidParameter(
                "burst amplitude must be >= 0",
            ));
        }
        if !(0.0..1.0).contains(&self.burst_on_fraction) {
            return Err(WorkloadError::InvalidParameter(
                "burst on-fraction must be in [0, 1)",
            ));
        }
        if self.burst_duration_samples == 0 {
            return Err(WorkloadError::InvalidParameter(
                "burst duration must be >= 1 sample",
            ));
        }
        if !(0.0..=1.0).contains(&self.idle_fraction) {
            return Err(WorkloadError::InvalidParameter(
                "idle fraction must be in [0, 1]",
            ));
        }
        let (scale_lo, scale_hi) = self.vm_scale_range;
        if !(scale_lo > 0.0 && scale_hi >= scale_lo) {
            return Err(WorkloadError::InvalidParameter(
                "vm scale range must be 0 < lo <= hi",
            ));
        }
        if self.vm_cap_cores <= 0.0 || self.vm_cap_cores.is_nan() {
            return Err(WorkloadError::InvalidParameter("vm cap must be > 0"));
        }

        let groups = self.groups.clamp(1, self.vm_count);
        let mut root = SimRng::new(self.seed);
        let palette = match &self.archetypes {
            Some(a) if a.is_empty() => {
                return Err(WorkloadError::InvalidParameter(
                    "archetype palette is empty",
                ))
            }
            Some(a) => {
                for arch in a {
                    arch.validate()?;
                }
                a.clone()
            }
            None => Self::default_palette(&mut root),
        };

        let coarse_samples = (self.duration_hours * 3600.0 / self.coarse_dt_s).round() as usize;
        if coarse_samples == 0 {
            return Err(WorkloadError::InvalidParameter(
                "duration shorter than one coarse sample",
            ));
        }

        // Per-group: archetype, burst times, a common size scale (the
        // VMs of one service are siblings — near-identical nodes behind
        // the same load balancer), and the *shared* fine burst chains.
        let mut group_archetype = Vec::with_capacity(groups);
        let mut group_bursts: Vec<Vec<f64>> = Vec::with_capacity(groups);
        let mut group_scale: Vec<f64> = Vec::with_capacity(groups);
        let mut group_rngs: Vec<SimRng> = Vec::with_capacity(groups);
        for g in 0..groups {
            let arch = palette[g % palette.len()];
            let mut grng = root.fork(1000 + g as u64);
            let bursts = match arch {
                DailyArchetype::Bursty { bursts_per_day, .. } => {
                    let k = grng.poisson(bursts_per_day).map_err(WorkloadError::Trace)?;
                    (0..k).map(|_| grng.range_f64(0.0, 24.0)).collect()
                }
                _ => Vec::new(),
            };
            group_archetype.push(arch);
            group_bursts.push(bursts);
            group_scale.push(grng.range_f64(scale_lo, scale_hi));
            group_rngs.push(grng);
        }

        // Pre-draw the shared (group-level) burst chains per fine slot.
        let fine_samples = coarse_samples * refine_factor;
        let mut group_bursts_fine: Vec<Vec<bool>> = Vec::with_capacity(groups);
        for grng in group_rngs.iter_mut() {
            group_bursts_fine.push(self.burst_chain(fine_samples, grng));
        }
        // Burst factors are normalized so the per-slot mean stays 1 and
        // the paper's "lognormal with matching mean" property holds.
        let burst_norm = 1.0 + self.burst_amplitude * self.burst_on_fraction;

        let mut vms = Vec::with_capacity(self.vm_count);
        for id in 0..self.vm_count {
            let group = id % groups;
            let mut vrng = root.fork(2_000_000 + id as u64);
            let idle = vrng.f64() < self.idle_fraction;
            let scale = if idle {
                vrng.range_f64(0.01, 0.08)
            } else {
                // Sibling nodes of one service are near-identical in
                // size: group scale ± 10%.
                group_scale[group] * vrng.range_f64(0.9, 1.1)
            };

            // Coarse profile: group archetype × VM scale × AR(1) noise.
            let mut coarse = Vec::with_capacity(coarse_samples);
            let mut ar = 0.0;
            for s in 0..coarse_samples {
                let hour = (s as f64 * self.coarse_dt_s / 3600.0) % 24.0;
                let base = group_archetype[group].mean_at(hour, &group_bursts[group]);
                ar = 0.8 * ar + 0.2 * vrng.normal(0.0, self.idio_noise);
                let v = (base * scale * (1.0 + ar)).max(0.0).min(self.vm_cap_cores);
                coarse.push(v);
            }

            // Fine refinement: sustained Markov bursts (shared with the
            // group with probability `group_spike_sync`, so group-mates
            // surge together) modulated by an i.i.d. lognormal whose
            // mean matches the coarse sample — the paper's refinement
            // with realistic multi-minute burst durations.
            let own_bursts = self.burst_chain(fine_samples, &mut vrng);
            let mut fine = Vec::with_capacity(fine_samples);
            for (s, &mean) in coarse.iter().enumerate() {
                for sub in 0..refine_factor {
                    let slot = s * refine_factor + sub;
                    let bursting = if vrng.bernoulli(self.group_spike_sync) {
                        group_bursts_fine[group][slot]
                    } else {
                        own_bursts[slot]
                    };
                    let burst_factor = if bursting {
                        (1.0 + self.burst_amplitude) / burst_norm
                    } else {
                        1.0 / burst_norm
                    };
                    let noise = vrng.lognormal_mean_cv(1.0, self.refine_cv);
                    fine.push((mean * burst_factor * noise).min(self.vm_cap_cores));
                }
            }

            vms.push(VmTrace {
                id,
                name: format!("vm{id:03}"),
                group,
                coarse: TimeSeries::new(self.coarse_dt_s, coarse)?,
                fine: TimeSeries::new(self.fine_dt_s, fine)?,
            });
        }
        Ok(VmFleet { vms, groups })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet(seed: u64) -> VmFleet {
        DatacenterTraceBuilder::new(12)
            .groups(3)
            .seed(seed)
            .duration_hours(4.0)
            .build()
            .unwrap()
    }

    #[test]
    fn build_validates_parameters() {
        assert!(DatacenterTraceBuilder::new(0).build().is_err());
        assert!(DatacenterTraceBuilder::new(2)
            .duration_hours(0.0)
            .build()
            .is_err());
        assert!(DatacenterTraceBuilder::new(2)
            .fine_dt_s(7.0)
            .build()
            .is_err());
        assert!(DatacenterTraceBuilder::new(2)
            .refine_cv(-1.0)
            .build()
            .is_err());
        assert!(DatacenterTraceBuilder::new(2)
            .group_spike_sync(1.5)
            .build()
            .is_err());
        assert!(DatacenterTraceBuilder::new(2)
            .vm_scale_range(0.0, 1.0)
            .build()
            .is_err());
        assert!(DatacenterTraceBuilder::new(2)
            .vm_cap_cores(0.0)
            .build()
            .is_err());
        assert!(DatacenterTraceBuilder::new(2)
            .idle_fraction(2.0)
            .build()
            .is_err());
        assert!(DatacenterTraceBuilder::new(2)
            .archetypes(vec![])
            .build()
            .is_err());
        assert!(DatacenterTraceBuilder::new(2)
            .archetypes(vec![DailyArchetype::Flat { level: -1.0 }])
            .build()
            .is_err());
    }

    #[test]
    fn build_is_deterministic() {
        let a = small_fleet(7);
        let b = small_fleet(7);
        assert_eq!(a, b);
        let c = small_fleet(8);
        assert_ne!(a, c);
    }

    #[test]
    fn dimensions_are_consistent() {
        let fleet = small_fleet(1);
        assert_eq!(fleet.len(), 12);
        assert_eq!(fleet.groups(), 3);
        for vm in fleet.vms() {
            assert_eq!(vm.coarse.len(), 4 * 12); // 4 h of 5-min samples
            assert_eq!(vm.fine.len(), 4 * 720); // 4 h of 5-s samples
            assert_eq!(vm.fine.len(), vm.coarse.len() * 60);
        }
    }

    #[test]
    fn traces_are_nonnegative_and_capped() {
        let fleet = DatacenterTraceBuilder::new(6)
            .seed(3)
            .duration_hours(6.0)
            .vm_cap_cores(4.0)
            .build()
            .unwrap();
        for vm in fleet.vms() {
            assert!(vm.fine.min() >= 0.0);
            assert!(vm.fine.peak() <= 4.0 + 1e-12);
        }
    }

    #[test]
    fn refinement_preserves_coarse_means() {
        let fleet = DatacenterTraceBuilder::new(4)
            .groups(2)
            .seed(11)
            .duration_hours(24.0)
            .build()
            .unwrap();
        for vm in fleet.vms() {
            // Compare means over the whole day; lognormal refinement is
            // mean-preserving in expectation.
            let coarse_mean = vm.coarse.mean();
            let fine_mean = vm.fine.mean();
            assert!(
                (fine_mean - coarse_mean).abs() / coarse_mean.max(0.05) < 0.1,
                "vm {}: coarse {coarse_mean} vs fine {fine_mean}",
                vm.id
            );
        }
    }

    #[test]
    fn group_members_are_correlated_on_coarse_grid() {
        let fleet = DatacenterTraceBuilder::new(8)
            .groups(4)
            .seed(21)
            .duration_hours(24.0)
            .build()
            .unwrap();
        // VMs 0 and 4 share group 0; 1 and 5 share group 1; etc.
        for g in 0..4 {
            let a = &fleet.vms()[g].coarse;
            let b = &fleet.vms()[g + 4].coarse;
            assert_eq!(fleet.vms()[g].group, fleet.vms()[g + 4].group);
            let pearson = pearson(a.values(), b.values());
            assert!(pearson > 0.6, "group {g} coarse correlation {pearson}");
        }
    }

    #[test]
    fn select_top_keeps_busiest() {
        let fleet = DatacenterTraceBuilder::new(30)
            .groups(5)
            .seed(33)
            .duration_hours(2.0)
            .idle_fraction(0.5)
            .build()
            .unwrap();
        let top = fleet.select_top(10);
        assert_eq!(top.len(), 10);
        let min_top = top
            .vms()
            .iter()
            .map(|v| v.fine.mean())
            .fold(f64::INFINITY, f64::min);
        // Every non-selected VM has mean <= the smallest selected mean.
        let selected: std::collections::HashSet<usize> = top.vms().iter().map(|v| v.id).collect();
        for vm in fleet.vms() {
            if !selected.contains(&vm.id) {
                assert!(vm.fine.mean() <= min_top + 1e-12);
            }
        }
        // Oversized request returns everything.
        assert_eq!(fleet.select_top(100).len(), 30);
    }

    #[test]
    fn surge_archetype_is_a_step() {
        let arch = DailyArchetype::Surge {
            base: 0.5,
            surge_level: 3.0,
            start_hour: 10.0,
            duration_h: 2.0,
        };
        assert_eq!(arch.mean_at(9.9, &[]), 0.5);
        assert_eq!(arch.mean_at(10.0, &[]), 3.0);
        assert_eq!(arch.mean_at(11.9, &[]), 3.0);
        assert_eq!(arch.mean_at(12.0, &[]), 0.5);
    }

    #[test]
    fn diurnal_peaks_at_peak_hour_circularly() {
        let arch = DailyArchetype::Diurnal {
            base: 0.2,
            peak: 2.0,
            peak_hour: 23.0,
            width_h: 2.0,
        };
        let at_peak = arch.mean_at(23.0, &[]);
        assert!((at_peak - 2.0).abs() < 1e-9);
        // 0.5 h after midnight is 1.5 h from the peak, circularly.
        let wrapped = arch.mean_at(0.5, &[]);
        let direct = arch.mean_at(21.5, &[]);
        assert!((wrapped - direct).abs() < 1e-9);
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for i in 0..a.len() {
            cov += (a[i] - ma) * (b[i] - mb);
            va += (a[i] - ma).powi(2);
            vb += (b[i] - mb).powi(2);
        }
        cov / (va.sqrt() * vb.sqrt())
    }
}
