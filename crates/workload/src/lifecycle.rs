//! VM lifecycle schedules — when each VM of a fleet arrives and
//! departs.
//!
//! The paper's Setup-2 (and the batch simulator built from it) is a
//! *closed* system: every VM exists for the whole horizon. Real
//! datacenters are open — leases start and end continuously (cf.
//! Quang-Hung et al., *Energy-Aware Lease Scheduling*) — and the online
//! controller consumes exactly that: a [`Lifecycle`] maps each VM id of
//! a trace fleet to an arrival sample and an optional departure sample
//! on the fine (5 s) grid.
//!
//! [`LifecycleBuilder`] synthesizes schedules deterministically from a
//! seed: Poisson or diurnally-modulated arrival processes, bounded
//! lifetimes (fixed / uniform / exponential), or the degenerate
//! everything-at-t-0 schedule that reproduces the batch semantics.
//! Trace-driven schedules (e.g. replayed from a real cluster log) enter
//! through [`Lifecycle::from_entries`].
//!
//! # Example
//!
//! A day of 5-second samples with leases arriving by a Poisson process
//! and holding exponentially-distributed lifetimes — identical seeds
//! reproduce identical schedules:
//!
//! ```
//! use cavm_workload::lifecycle::{ArrivalProcess, LifecycleBuilder, LifetimeModel};
//!
//! # fn main() -> Result<(), cavm_workload::WorkloadError> {
//! let horizon = 24 * 720; // 24 h of 5 s samples
//! let build = || {
//!     LifecycleBuilder::new(16, horizon)
//!         .seed(42)
//!         .arrivals(ArrivalProcess::Poisson {
//!             mean_gap_samples: 400.0,
//!         })
//!         .lifetimes(LifetimeModel::Exponential {
//!             mean_samples: 2000.0,
//!         })
//!         .build()
//! };
//! let schedule = build()?;
//! assert_eq!(schedule, build()?, "seeded schedules are deterministic");
//! assert!(schedule.len() <= 16);
//! assert!(schedule.max_concurrent() >= 1);
//! // Every entry lives inside the horizon, departures after arrivals.
//! for entry in schedule.entries() {
//!     assert!(entry.arrival_sample < horizon);
//!     if let Some(d) = entry.departure_sample {
//!         assert!(d > entry.arrival_sample);
//!     }
//! }
//! # Ok(())
//! # }
//! ```

use crate::WorkloadError;
use cavm_trace::SimRng;
use serde::{Deserialize, Serialize};

/// One VM's lease window on the fine sample grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifecycleEntry {
    /// VM id (index into the trace fleet the schedule accompanies).
    pub id: usize,
    /// Fine sample index at which the VM arrives (inclusive).
    pub arrival_sample: usize,
    /// Fine sample index at which the VM departs (exclusive), or
    /// `None` when it stays to the end of the horizon.
    pub departure_sample: Option<usize>,
}

impl LifecycleEntry {
    /// Whether the VM is live at `sample`.
    pub fn live_at(&self, sample: usize) -> bool {
        sample >= self.arrival_sample && self.departure_sample.is_none_or(|d| sample < d)
    }
}

/// A validated arrival/departure schedule over a fixed horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lifecycle {
    entries: Vec<LifecycleEntry>,
    horizon_samples: usize,
}

impl Lifecycle {
    /// Wraps explicit entries (trace-driven schedules). Entries are
    /// kept in `(arrival, id)` order.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for a zero horizon,
    /// duplicate ids, an arrival at or past the horizon, or a
    /// departure at or before its arrival.
    pub fn from_entries(
        mut entries: Vec<LifecycleEntry>,
        horizon_samples: usize,
    ) -> crate::Result<Self> {
        if horizon_samples == 0 {
            return Err(WorkloadError::InvalidParameter(
                "lifecycle horizon must be at least one sample",
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for e in &entries {
            if !seen.insert(e.id) {
                return Err(WorkloadError::InvalidParameter(
                    "duplicate vm id in lifecycle",
                ));
            }
            if e.arrival_sample >= horizon_samples {
                return Err(WorkloadError::InvalidParameter(
                    "lifecycle arrival past the horizon",
                ));
            }
            if let Some(d) = e.departure_sample {
                if d <= e.arrival_sample {
                    return Err(WorkloadError::InvalidParameter(
                        "lifecycle departure must follow its arrival",
                    ));
                }
            }
        }
        entries.sort_by_key(|e| (e.arrival_sample, e.id));
        Ok(Self {
            entries,
            horizon_samples,
        })
    }

    /// The batch-equivalent schedule: every VM of `vm_count` arrives at
    /// sample 0 and never departs.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for a zero horizon.
    pub fn all_at_start(vm_count: usize, horizon_samples: usize) -> crate::Result<Self> {
        Self::from_entries(
            (0..vm_count)
                .map(|id| LifecycleEntry {
                    id,
                    arrival_sample: 0,
                    departure_sample: None,
                })
                .collect(),
            horizon_samples,
        )
    }

    /// The entries, sorted by `(arrival, id)`.
    pub fn entries(&self) -> &[LifecycleEntry] {
        &self.entries
    }

    /// The schedule's horizon in fine samples.
    pub fn horizon_samples(&self) -> usize {
        self.horizon_samples
    }

    /// Number of scheduled VMs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no VM is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of VMs live at `sample`.
    pub fn live_count_at(&self, sample: usize) -> usize {
        self.entries.iter().filter(|e| e.live_at(sample)).count()
    }

    /// The peak number of simultaneously live VMs over the horizon —
    /// the capacity a server fleet must actually cover under churn.
    pub fn max_concurrent(&self) -> usize {
        // Sweep the arrival/departure breakpoints.
        let mut events: Vec<(usize, i64)> = Vec::with_capacity(self.entries.len() * 2);
        for e in &self.entries {
            events.push((e.arrival_sample, 1));
            if let Some(d) = e.departure_sample {
                events.push((d, -1));
            }
        }
        events.sort_by_key(|&(s, delta)| (s, delta));
        let mut live = 0i64;
        let mut peak = 0i64;
        for (_, delta) in events {
            live += delta;
            peak = peak.max(live);
        }
        peak.max(0) as usize
    }

    /// Whether every VM arrives at sample 0 and never departs — the
    /// schedule whose online replay is provably identical to the batch
    /// engine.
    pub fn is_batch_equivalent(&self) -> bool {
        self.entries
            .iter()
            .all(|e| e.arrival_sample == 0 && e.departure_sample.is_none())
    }
}

/// How arrival instants are drawn over the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Every VM arrives at sample 0 (the closed-world batch setting).
    AtStart,
    /// Homogeneous Poisson process: i.i.d. exponential inter-arrival
    /// gaps with the given mean, in fine samples. VMs whose arrival
    /// falls past the horizon are dropped from the schedule.
    Poisson {
        /// Mean gap between consecutive arrivals, in fine samples.
        mean_gap_samples: f64,
    },
    /// Inhomogeneous Poisson process with a diurnal rate (thinning):
    /// the base rate `1 / mean_gap_samples` is scaled up to
    /// `1 + amplitude` in a Gaussian bump around `peak_hour`
    /// (circular in the 24 h day).
    Diurnal {
        /// Mean gap at the *base* rate, in fine samples.
        mean_gap_samples: f64,
        /// Hour of day (0–24) of the arrival rush.
        peak_hour: f64,
        /// Gaussian width of the rush, hours.
        width_h: f64,
        /// Peak rate multiplier above base (0 = homogeneous).
        amplitude: f64,
    },
}

/// How long an arrived VM stays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LifetimeModel {
    /// Leases never end within the horizon.
    Unbounded,
    /// Every lease lasts exactly this many fine samples.
    Fixed {
        /// Lease length, fine samples.
        samples: usize,
    },
    /// Lease lengths uniform in `[min_samples, max_samples]`.
    Uniform {
        /// Shortest lease, fine samples.
        min_samples: usize,
        /// Longest lease, fine samples.
        max_samples: usize,
    },
    /// Exponentially distributed lease lengths.
    Exponential {
        /// Mean lease length, fine samples.
        mean_samples: f64,
    },
}

/// Deterministic lifecycle synthesis over a fleet of `vm_count` VMs.
///
/// # Example
///
/// ```
/// use cavm_workload::lifecycle::{ArrivalProcess, LifecycleBuilder, LifetimeModel};
///
/// # fn main() -> Result<(), cavm_workload::WorkloadError> {
/// // 24 h of 5 s samples; VMs trickle in every ~20 min and stay ~8 h.
/// let lifecycle = LifecycleBuilder::new(40, 24 * 720)
///     .seed(7)
///     .arrivals(ArrivalProcess::Poisson { mean_gap_samples: 240.0 })
///     .lifetimes(LifetimeModel::Exponential { mean_samples: 8.0 * 720.0 })
///     .sample_dt_s(5.0)
///     .build()?;
/// assert!(lifecycle.max_concurrent() <= lifecycle.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleBuilder {
    vm_count: usize,
    horizon_samples: usize,
    sample_dt_s: f64,
    seed: u64,
    arrivals: ArrivalProcess,
    lifetimes: LifetimeModel,
}

impl LifecycleBuilder {
    /// Starts a builder for `vm_count` VMs over `horizon_samples` fine
    /// samples, defaulting to the closed-world schedule (all at start,
    /// unbounded) on a 5 s grid.
    pub fn new(vm_count: usize, horizon_samples: usize) -> Self {
        Self {
            vm_count,
            horizon_samples,
            sample_dt_s: 5.0,
            seed: 0,
            arrivals: ArrivalProcess::AtStart,
            lifetimes: LifetimeModel::Unbounded,
        }
    }

    /// RNG seed; identical settings and seed give identical schedules.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fine sample interval in seconds (default 5; only the diurnal
    /// arrival process consults it, to convert samples to hours).
    pub fn sample_dt_s(mut self, dt: f64) -> Self {
        self.sample_dt_s = dt;
        self
    }

    /// The arrival process (default: all at start).
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// The lifetime model (default: unbounded).
    pub fn lifetimes(mut self, lifetimes: LifetimeModel) -> Self {
        self.lifetimes = lifetimes;
        self
    }

    /// Synthesizes the schedule. VM ids are assigned in arrival order
    /// (`0..vm_count`); VMs whose drawn arrival falls past the horizon
    /// are dropped, so the result may hold fewer than `vm_count`
    /// entries.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for a zero VM count
    /// or horizon, non-positive gaps/means/ranges, or an out-of-range
    /// diurnal shape.
    pub fn build(&self) -> crate::Result<Lifecycle> {
        if self.vm_count == 0 {
            return Err(WorkloadError::InvalidParameter(
                "lifecycle needs at least one VM",
            ));
        }
        if self.horizon_samples == 0 {
            return Err(WorkloadError::InvalidParameter(
                "lifecycle horizon must be at least one sample",
            ));
        }
        if !(self.sample_dt_s > 0.0 && self.sample_dt_s.is_finite()) {
            return Err(WorkloadError::InvalidParameter(
                "sample interval must be finite and > 0",
            ));
        }
        self.validate_processes()?;
        let mut rng = SimRng::new(self.seed);
        let mut entries = Vec::with_capacity(self.vm_count);
        let mut clock = 0.0f64;
        for id in 0..self.vm_count {
            let arrival = match self.arrivals {
                ArrivalProcess::AtStart => 0,
                ArrivalProcess::Poisson { mean_gap_samples } => {
                    if id > 0 {
                        clock += rng
                            .exponential(1.0 / mean_gap_samples)
                            .map_err(WorkloadError::Trace)?;
                    }
                    clock.round() as usize
                }
                ArrivalProcess::Diurnal {
                    mean_gap_samples,
                    peak_hour,
                    width_h,
                    amplitude,
                } => {
                    if id > 0 {
                        // Thinning: draw at the peak rate, accept with
                        // probability rate(t) / peak_rate.
                        let peak_gap = mean_gap_samples / (1.0 + amplitude);
                        loop {
                            clock += rng
                                .exponential(1.0 / peak_gap)
                                .map_err(WorkloadError::Trace)?;
                            if clock >= self.horizon_samples as f64 {
                                break;
                            }
                            let hour = (clock * self.sample_dt_s / 3600.0) % 24.0;
                            let mut d = (hour - peak_hour).abs();
                            d = d.min(24.0 - d);
                            let rate = 1.0 + amplitude * (-0.5 * (d / width_h).powi(2)).exp();
                            if rng.f64() < rate / (1.0 + amplitude) {
                                break;
                            }
                        }
                    }
                    clock.round() as usize
                }
            };
            if arrival >= self.horizon_samples {
                // This and (for monotone processes) all later arrivals
                // fall past the horizon.
                break;
            }
            let lifetime = match self.lifetimes {
                LifetimeModel::Unbounded => None,
                LifetimeModel::Fixed { samples } => Some(samples),
                LifetimeModel::Uniform {
                    min_samples,
                    max_samples,
                } => Some(
                    rng.range_f64(min_samples as f64, max_samples as f64 + 1.0)
                        .floor() as usize,
                ),
                LifetimeModel::Exponential { mean_samples } => Some(
                    rng.exponential(1.0 / mean_samples)
                        .map_err(WorkloadError::Trace)?
                        .round() as usize,
                ),
            };
            let departure_sample = lifetime.and_then(|life| {
                let d = arrival + life.max(1);
                (d < self.horizon_samples).then_some(d)
            });
            entries.push(LifecycleEntry {
                id,
                arrival_sample: arrival,
                departure_sample,
            });
        }
        Lifecycle::from_entries(entries, self.horizon_samples)
    }

    fn validate_processes(&self) -> crate::Result<()> {
        match self.arrivals {
            ArrivalProcess::AtStart => {}
            ArrivalProcess::Poisson { mean_gap_samples } => {
                if !(mean_gap_samples > 0.0 && mean_gap_samples.is_finite()) {
                    return Err(WorkloadError::InvalidParameter(
                        "poisson mean gap must be finite and > 0",
                    ));
                }
            }
            ArrivalProcess::Diurnal {
                mean_gap_samples,
                peak_hour,
                width_h,
                amplitude,
            } => {
                if !(mean_gap_samples > 0.0 && mean_gap_samples.is_finite()) {
                    return Err(WorkloadError::InvalidParameter(
                        "diurnal mean gap must be finite and > 0",
                    ));
                }
                let width_ok = width_h.is_finite() && width_h > 0.0;
                let amplitude_ok = amplitude.is_finite() && amplitude >= 0.0;
                if !(0.0..24.0).contains(&peak_hour) || !width_ok || !amplitude_ok {
                    return Err(WorkloadError::InvalidParameter(
                        "diurnal shape out of range",
                    ));
                }
            }
        }
        match self.lifetimes {
            LifetimeModel::Unbounded => {}
            LifetimeModel::Fixed { samples } => {
                if samples == 0 {
                    return Err(WorkloadError::InvalidParameter(
                        "fixed lifetime must be at least one sample",
                    ));
                }
            }
            LifetimeModel::Uniform {
                min_samples,
                max_samples,
            } => {
                if min_samples == 0 || max_samples < min_samples {
                    return Err(WorkloadError::InvalidParameter(
                        "uniform lifetime range must be 1 <= min <= max",
                    ));
                }
            }
            LifetimeModel::Exponential { mean_samples } => {
                if !(mean_samples > 0.0 && mean_samples.is_finite()) {
                    return Err(WorkloadError::InvalidParameter(
                        "exponential lifetime mean must be finite and > 0",
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_entries_validates() {
        let e = |id, a, d| LifecycleEntry {
            id,
            arrival_sample: a,
            departure_sample: d,
        };
        assert!(Lifecycle::from_entries(vec![], 0).is_err());
        assert!(Lifecycle::from_entries(vec![e(0, 0, None), e(0, 1, None)], 10).is_err());
        assert!(Lifecycle::from_entries(vec![e(0, 10, None)], 10).is_err());
        assert!(Lifecycle::from_entries(vec![e(0, 5, Some(5))], 10).is_err());
        let lc = Lifecycle::from_entries(vec![e(1, 4, Some(8)), e(0, 2, None)], 10).unwrap();
        // Sorted by arrival.
        assert_eq!(lc.entries()[0].id, 0);
        assert_eq!(lc.len(), 2);
        assert!(!lc.is_empty());
        assert_eq!(lc.horizon_samples(), 10);
    }

    #[test]
    fn live_accounting() {
        let lc = Lifecycle::from_entries(
            vec![
                LifecycleEntry {
                    id: 0,
                    arrival_sample: 0,
                    departure_sample: Some(6),
                },
                LifecycleEntry {
                    id: 1,
                    arrival_sample: 4,
                    departure_sample: None,
                },
            ],
            12,
        )
        .unwrap();
        assert_eq!(lc.live_count_at(0), 1);
        assert_eq!(lc.live_count_at(5), 2);
        assert_eq!(lc.live_count_at(6), 1);
        assert_eq!(lc.max_concurrent(), 2);
        assert!(!lc.is_batch_equivalent());
    }

    #[test]
    fn all_at_start_is_batch_equivalent() {
        let lc = Lifecycle::all_at_start(5, 100).unwrap();
        assert_eq!(lc.len(), 5);
        assert!(lc.is_batch_equivalent());
        assert_eq!(lc.max_concurrent(), 5);
        let built = LifecycleBuilder::new(5, 100).build().unwrap();
        assert_eq!(built, lc);
    }

    #[test]
    fn builder_validates() {
        assert!(LifecycleBuilder::new(0, 100).build().is_err());
        assert!(LifecycleBuilder::new(4, 0).build().is_err());
        assert!(LifecycleBuilder::new(4, 100)
            .sample_dt_s(0.0)
            .build()
            .is_err());
        assert!(LifecycleBuilder::new(4, 100)
            .arrivals(ArrivalProcess::Poisson {
                mean_gap_samples: 0.0
            })
            .build()
            .is_err());
        assert!(LifecycleBuilder::new(4, 100)
            .arrivals(ArrivalProcess::Diurnal {
                mean_gap_samples: 10.0,
                peak_hour: 25.0,
                width_h: 2.0,
                amplitude: 1.0
            })
            .build()
            .is_err());
        assert!(LifecycleBuilder::new(4, 100)
            .lifetimes(LifetimeModel::Fixed { samples: 0 })
            .build()
            .is_err());
        assert!(LifecycleBuilder::new(4, 100)
            .lifetimes(LifetimeModel::Uniform {
                min_samples: 5,
                max_samples: 2
            })
            .build()
            .is_err());
        assert!(LifecycleBuilder::new(4, 100)
            .lifetimes(LifetimeModel::Exponential { mean_samples: 0.0 })
            .build()
            .is_err());
    }

    #[test]
    fn zero_length_lease_draws_are_clamped_to_one_sample() {
        // An exponential lifetime with a tiny mean rounds almost every
        // draw to 0; the builder must clamp each lease to at least one
        // sample so no departure lands at (or before) its arrival.
        let lc = LifecycleBuilder::new(50, 2000)
            .seed(23)
            .arrivals(ArrivalProcess::Poisson {
                mean_gap_samples: 10.0,
            })
            .lifetimes(LifetimeModel::Exponential { mean_samples: 1e-6 })
            .build()
            .unwrap();
        assert!(!lc.is_empty());
        for e in lc.entries() {
            let d = e.departure_sample.expect("tiny leases all end in-horizon");
            assert!(
                d > e.arrival_sample,
                "vm {} departs at {} on/before its arrival {}",
                e.id,
                d,
                e.arrival_sample
            );
            assert_eq!(d, e.arrival_sample + 1, "clamped to exactly one sample");
            // A one-sample lease is live for exactly its arrival tick.
            assert!(e.live_at(e.arrival_sample));
            assert!(!e.live_at(d));
        }
        // Uniform leases degenerate to the same clamp at min == max == 1.
        let lc = LifecycleBuilder::new(5, 100)
            .lifetimes(LifetimeModel::Uniform {
                min_samples: 1,
                max_samples: 1,
            })
            .build()
            .unwrap();
        for e in lc.entries() {
            assert_eq!(e.departure_sample, Some(e.arrival_sample + 1));
        }
    }

    #[test]
    fn max_concurrent_saturates_and_handles_back_to_back_leases() {
        let e = |id, a, d| LifecycleEntry {
            id,
            arrival_sample: a,
            departure_sample: d,
        };
        // Total overlap: the sweep saturates at the fleet size.
        let lc = Lifecycle::from_entries((0..7).map(|id| e(id, 3, Some(40 + id))).collect(), 100)
            .unwrap();
        assert_eq!(lc.max_concurrent(), 7);
        assert_eq!(lc.max_concurrent(), lc.len());
        // Back-to-back handover at the same sample: the departure's -1
        // sorts before the arrival's +1, so the peak is 1, not 2 —
        // matching the replay engine, which applies departures before
        // arrivals at each sample.
        let lc = Lifecycle::from_entries(vec![e(0, 0, Some(10)), e(1, 10, None)], 100).unwrap();
        assert_eq!(lc.max_concurrent(), 1);
        assert_eq!(lc.live_count_at(10), 1);
        // Chains of handovers stay flat too.
        let lc = Lifecycle::from_entries(
            (0..5)
                .map(|id| e(id, id * 10, Some((id + 1) * 10)))
                .collect(),
            100,
        )
        .unwrap();
        assert_eq!(lc.max_concurrent(), 1);
    }

    #[test]
    fn departures_on_period_boundaries_are_exclusive() {
        // A departure scheduled exactly at a period boundary (sample
        // 720 on the paper's 1-hour grid) ends the lease *before* that
        // sample is replayed: live_at is half-open at the departure.
        let entry = LifecycleEntry {
            id: 0,
            arrival_sample: 0,
            departure_sample: Some(720),
        };
        assert!(entry.live_at(719));
        assert!(!entry.live_at(720));
        // A departure exactly at the horizon is valid (the lease fills
        // the run) — the builder only drops departures *past* it.
        let lc = Lifecycle::from_entries(vec![entry], 720).unwrap();
        assert_eq!(lc.live_count_at(719), 1);
        // Builder-side: a fixed lifetime landing exactly on the
        // horizon is recorded as an in-horizon departure only when it
        // is strictly inside it.
        let lc = LifecycleBuilder::new(1, 720)
            .lifetimes(LifetimeModel::Fixed { samples: 720 })
            .build()
            .unwrap();
        assert_eq!(
            lc.entries()[0].departure_sample,
            None,
            "a lease spanning the whole horizon never departs within it"
        );
        let lc = LifecycleBuilder::new(1, 721)
            .lifetimes(LifetimeModel::Fixed { samples: 720 })
            .build()
            .unwrap();
        assert_eq!(lc.entries()[0].departure_sample, Some(720));
    }

    #[test]
    fn poisson_schedules_are_deterministic_and_ordered() {
        let build = || {
            LifecycleBuilder::new(30, 17280)
                .seed(11)
                .arrivals(ArrivalProcess::Poisson {
                    mean_gap_samples: 300.0,
                })
                .lifetimes(LifetimeModel::Uniform {
                    min_samples: 720,
                    max_samples: 4320,
                })
                .build()
                .unwrap()
        };
        let a = build();
        assert_eq!(a, build());
        // Arrivals are non-decreasing and within the horizon; every
        // departure follows its arrival.
        let mut prev = 0;
        for e in a.entries() {
            assert!(e.arrival_sample >= prev);
            assert!(e.arrival_sample < 17280);
            prev = e.arrival_sample;
            if let Some(d) = e.departure_sample {
                assert!(d > e.arrival_sample && d < 17280);
            }
        }
        // Churn really happens: someone arrives after t = 0.
        assert!(a.entries().iter().any(|e| e.arrival_sample > 0));
        assert!(a.max_concurrent() < a.len());
    }

    #[test]
    fn diurnal_arrivals_cluster_around_the_peak() {
        let lc = LifecycleBuilder::new(200, 24 * 720)
            .seed(3)
            .arrivals(ArrivalProcess::Diurnal {
                mean_gap_samples: 200.0,
                peak_hour: 12.0,
                width_h: 3.0,
                amplitude: 4.0,
            })
            .build()
            .unwrap();
        // Count arrivals near the peak (9h–15h) vs the night (21h–3h).
        let hour_of = |s: usize| (s as f64 * 5.0 / 3600.0) % 24.0;
        let near = lc
            .entries()
            .iter()
            .filter(|e| (9.0..15.0).contains(&hour_of(e.arrival_sample)))
            .count();
        let night = lc
            .entries()
            .iter()
            .filter(|e| {
                let h = hour_of(e.arrival_sample);
                !(3.0..21.0).contains(&h)
            })
            .count();
        assert!(
            near > night,
            "diurnal process should rush the peak ({near} near vs {night} night)"
        );
    }
}
