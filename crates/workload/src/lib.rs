//! Workload generators for the `cavm` workspace.
//!
//! The paper evaluates on two kinds of input, and this crate synthesizes
//! both:
//!
//! * **Setup-1** — distributed web-search clusters (CloudSuite) driven by
//!   a client emulator whose population swings between 0 and 300 "with
//!   the form of sine and cosine waves". [`clients::ClientWave`] produces
//!   those drive signals and [`websearch::WebSearchCluster`] converts
//!   them into per-ISN (index-serving-node) CPU demand — including the
//!   load imbalance between ISNs that makes the Segregated placement of
//!   Fig 4(a) saturate.
//! * **Setup-2** — one day of per-VM CPU utilization traces from a real
//!   datacenter, sampled every 5 minutes and refined to 5-second samples
//!   "with a lognormal random number generator whose mean is the same as
//!   the collected value". [`datacenter::DatacenterTraceBuilder`]
//!   synthesizes archetype-based daily profiles with correlated VM
//!   groups and performs exactly that refinement.
//!
//! Everything is deterministic given a seed (see
//! [`cavm_trace::SimRng`]).
//!
//! # Example
//!
//! ```
//! use cavm_workload::clients::ClientWave;
//!
//! # fn main() -> Result<(), cavm_workload::WorkloadError> {
//! // 0..300 clients over a 20-minute period, sampled each second.
//! let wave = ClientWave::sine(0.0, 300.0, 1200.0)?;
//! let trace = wave.sample(1.0, 1200)?;
//! assert!(trace.peak() <= 300.0 + 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clients;
pub mod datacenter;
pub mod dataset;
mod error;
pub mod faults;
pub mod lifecycle;
pub mod websearch;

pub use clients::ClientWave;
pub use datacenter::{DailyArchetype, DatacenterTraceBuilder, VmFleet, VmTrace};
pub use dataset::{
    AzureTraceReader, DemandModel, HuaweiTraceReader, SyntheticApp, SyntheticTrace,
    SyntheticTraceBuilder, TraceDataset, TraceRecord,
};
pub use error::WorkloadError;
pub use faults::{FaultEntry, FaultKind, FaultModel, FaultPlan, FaultPlanBuilder};
pub use lifecycle::{ArrivalProcess, Lifecycle, LifecycleBuilder, LifecycleEntry, LifetimeModel};
pub use websearch::{WebSearchCluster, WebSearchClusterConfig};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WorkloadError>;
