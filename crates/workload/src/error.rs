use cavm_trace::TraceError;
use std::fmt;

/// Errors produced by the workload generators.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// An underlying time-series operation failed.
    Trace(TraceError),
    /// A generator parameter was out of range.
    InvalidParameter(&'static str),
    /// A dataset file's header is missing a required column.
    MissingColumn {
        /// Name of the column the format requires.
        column: &'static str,
    },
    /// A dataset row has the wrong number of fields (truncated or
    /// overlong relative to the header).
    BadColumnCount {
        /// 1-based line number in the file.
        line: usize,
        /// Field count the header promised.
        expected: usize,
        /// Field count actually present.
        got: usize,
    },
    /// A dataset field failed to parse as its expected type.
    BadField {
        /// 1-based line number in the file.
        line: usize,
        /// Column the field belongs to.
        column: &'static str,
        /// The offending raw text.
        value: String,
    },
    /// Reading a dataset file failed at the I/O layer.
    Io {
        /// Human-readable description (path and OS error).
        context: String,
    },
    /// A trace-driven demand sample was NaN or negative.
    InvalidDemand {
        /// VM (record index in stream order) the sample belongs to.
        vm: usize,
        /// Offset of the sample within the VM's live window.
        sample: usize,
        /// The offending value.
        value: f64,
    },
    /// Trace records arrived with a backwards clock: arrivals must be
    /// non-decreasing in stream order.
    NonMonotoneClock {
        /// Arrival sample of the offending record.
        sample: usize,
        /// Arrival sample of the record before it.
        previous: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Trace(e) => write!(f, "trace error: {e}"),
            WorkloadError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            WorkloadError::MissingColumn { column } => {
                write!(f, "dataset header is missing required column `{column}`")
            }
            WorkloadError::BadColumnCount {
                line,
                expected,
                got,
            } => write!(f, "line {line}: expected {expected} fields, got {got}"),
            WorkloadError::BadField {
                line,
                column,
                value,
            } => write!(
                f,
                "line {line}: column `{column}` has unparseable value `{value}`"
            ),
            WorkloadError::Io { context } => write!(f, "dataset i/o error: {context}"),
            WorkloadError::InvalidDemand { vm, sample, value } => write!(
                f,
                "vm {vm}: demand sample {sample} is {value}; demand must be finite and >= 0"
            ),
            WorkloadError::NonMonotoneClock { sample, previous } => write!(
                f,
                "arrival clock went backwards: sample {sample} after {previous}"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for WorkloadError {
    fn from(e: TraceError) -> Self {
        WorkloadError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = WorkloadError::from(TraceError::EmptyInput);
        assert!(e.to_string().contains("trace error"));
        assert!(std::error::Error::source(&e).is_some());
        let p = WorkloadError::InvalidParameter("bad");
        assert!(p.to_string().contains("bad"));
        assert!(std::error::Error::source(&p).is_none());
    }
}
