use cavm_trace::TraceError;
use std::fmt;

/// Errors produced by the workload generators.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// An underlying time-series operation failed.
    Trace(TraceError),
    /// A generator parameter was out of range.
    InvalidParameter(&'static str),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Trace(e) => write!(f, "trace error: {e}"),
            WorkloadError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Trace(e) => Some(e),
            WorkloadError::InvalidParameter(_) => None,
        }
    }
}

impl From<TraceError> for WorkloadError {
    fn from(e: TraceError) -> Self {
        WorkloadError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = WorkloadError::from(TraceError::EmptyInput);
        assert!(e.to_string().contains("trace error"));
        assert!(std::error::Error::source(&e).is_some());
        let p = WorkloadError::InvalidParameter("bad");
        assert!(p.to_string().contains("bad"));
        assert!(std::error::Error::source(&p).is_none());
    }
}
