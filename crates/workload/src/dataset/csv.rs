//! A hand-rolled, zero-dependency streaming CSV reader.
//!
//! The container this workspace builds in has no registry access, so —
//! in the same spirit as the `crates/compat` stubs — the dataset
//! readers parse CSV themselves rather than pulling in the `csv`
//! crate. The dialect is deliberately small: comma-separated fields,
//! one record per line, a mandatory header row, no quoting (the public
//! trace schemas we target are purely numeric plus bare identifiers).
//!
//! The reader streams row by row over any [`BufRead`], so a multi-GB
//! trace file is never resident in memory, and every error carries the
//! 1-based physical line number it was found on.

use crate::WorkloadError;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Streaming CSV reader with header-based column mapping.
#[derive(Debug)]
pub struct CsvReader<R> {
    input: R,
    header: Vec<String>,
    /// 1-based line number of the most recently read row.
    line: usize,
}

impl CsvReader<BufReader<File>> {
    /// Opens `path` and reads its header row.
    pub fn open<P: AsRef<Path>>(path: P) -> crate::Result<Self> {
        let path = path.as_ref();
        let file = File::open(path).map_err(|e| WorkloadError::Io {
            context: format!("{}: {e}", path.display()),
        })?;
        Self::new(BufReader::new(file))
    }
}

impl<R: BufRead> CsvReader<R> {
    /// Wraps an already-open reader and consumes the header row.
    pub fn new(mut input: R) -> crate::Result<Self> {
        let mut first = String::new();
        let n = input.read_line(&mut first).map_err(|e| WorkloadError::Io {
            context: e.to_string(),
        })?;
        if n == 0 || first.trim().is_empty() {
            return Err(WorkloadError::InvalidParameter(
                "dataset file has no header row",
            ));
        }
        let header = split_fields(&first).map(str::to_owned).collect();
        Ok(CsvReader {
            input,
            header,
            line: 1,
        })
    }

    /// The header fields, in file order.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Index of the header column named `name`, if present.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.header.iter().position(|h| h == name)
    }

    /// Index of the header column named `name`, or a typed error.
    pub fn require_column(&self, name: &'static str) -> crate::Result<usize> {
        self.column(name)
            .ok_or(WorkloadError::MissingColumn { column: name })
    }

    /// Next data row, or `None` at end of input. Blank lines are
    /// skipped; a row whose field count differs from the header's is a
    /// typed error (this is how a truncated final line surfaces).
    pub fn next_row(&mut self) -> Option<crate::Result<Row>> {
        loop {
            let mut raw = String::new();
            match self.input.read_line(&mut raw) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    return Some(Err(WorkloadError::Io {
                        context: e.to_string(),
                    }))
                }
            }
            self.line += 1;
            if raw.trim().is_empty() {
                continue;
            }
            let fields: Vec<String> = split_fields(&raw).map(str::to_owned).collect();
            if fields.len() != self.header.len() {
                return Some(Err(WorkloadError::BadColumnCount {
                    line: self.line,
                    expected: self.header.len(),
                    got: fields.len(),
                }));
            }
            return Some(Ok(Row {
                line: self.line,
                fields,
            }));
        }
    }
}

/// One parsed data row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    line: usize,
    fields: Vec<String>,
}

impl Row {
    /// 1-based physical line number this row came from.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Raw text of field `idx` (panics if out of range — callers index
    /// with positions vetted against the header).
    pub fn field(&self, idx: usize) -> &str {
        &self.fields[idx]
    }

    /// Field `idx` parsed as `f64`, with a line-numbered typed error.
    pub fn parse_f64(&self, idx: usize, column: &'static str) -> crate::Result<f64> {
        self.fields[idx]
            .parse()
            .map_err(|_| WorkloadError::BadField {
                line: self.line,
                column,
                value: self.fields[idx].clone(),
            })
    }

    /// Field `idx` parsed as `usize`, with a line-numbered typed error.
    pub fn parse_usize(&self, idx: usize, column: &'static str) -> crate::Result<usize> {
        self.fields[idx]
            .parse()
            .map_err(|_| WorkloadError::BadField {
                line: self.line,
                column,
                value: self.fields[idx].clone(),
            })
    }
}

/// Splits one physical line into trimmed fields.
fn split_fields(line: &str) -> impl Iterator<Item = &str> {
    line.trim_end_matches(['\n', '\r'])
        .split(',')
        .map(str::trim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn reader(text: &str) -> CsvReader<Cursor<&[u8]>> {
        CsvReader::new(Cursor::new(text.as_bytes())).expect("header")
    }

    #[test]
    fn maps_header_and_streams_rows() {
        let mut r = reader("a,b,c\n1,2,3\n\n4,5,6\n");
        assert_eq!(r.header(), ["a", "b", "c"]);
        assert_eq!(r.column("b"), Some(1));
        assert_eq!(r.column("z"), None);
        let row = r.next_row().unwrap().unwrap();
        assert_eq!(row.line(), 2);
        assert_eq!(row.field(2), "3");
        // The blank line is skipped, not an error.
        let row = r.next_row().unwrap().unwrap();
        assert_eq!(row.line(), 4);
        assert_eq!(row.parse_f64(0, "a").unwrap(), 4.0);
        assert!(r.next_row().is_none());
    }

    #[test]
    fn empty_input_is_a_typed_error() {
        assert_eq!(
            CsvReader::new(Cursor::new(b"" as &[u8])).unwrap_err(),
            WorkloadError::InvalidParameter("dataset file has no header row")
        );
    }

    #[test]
    fn missing_column_is_a_typed_error() {
        let r = reader("a,b\n");
        assert_eq!(
            r.require_column("cpu").unwrap_err(),
            WorkloadError::MissingColumn { column: "cpu" }
        );
    }

    #[test]
    fn truncated_row_reports_line_and_counts() {
        let mut r = reader("a,b,c\n1,2,3\n4,5\n");
        r.next_row().unwrap().unwrap();
        assert_eq!(
            r.next_row().unwrap().unwrap_err(),
            WorkloadError::BadColumnCount {
                line: 3,
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn overlong_row_reports_line_and_counts() {
        let mut r = reader("a,b\n1,2,3\n");
        assert_eq!(
            r.next_row().unwrap().unwrap_err(),
            WorkloadError::BadColumnCount {
                line: 2,
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn bad_field_reports_line_column_and_value() {
        let mut r = reader("t,cpu\n5,banana\n");
        let row = r.next_row().unwrap().unwrap();
        assert_eq!(
            row.parse_f64(1, "cpu").unwrap_err(),
            WorkloadError::BadField {
                line: 2,
                column: "cpu",
                value: "banana".into()
            }
        );
        assert_eq!(
            row.parse_usize(1, "cpu").unwrap_err(),
            WorkloadError::BadField {
                line: 2,
                column: "cpu",
                value: "banana".into()
            }
        );
    }

    #[test]
    fn crlf_and_padding_are_tolerated() {
        let mut r = reader("a, b\r\n 1 ,2\r\n");
        assert_eq!(r.header(), ["a", "b"]);
        let row = r.next_row().unwrap().unwrap();
        assert_eq!(row.parse_usize(0, "a").unwrap(), 1);
    }
}
