//! Readings-style trace CSV, in the shape of the Azure public VM
//! traces: one row per VM per sampling interval.
//!
//! Schema (header-mapped, extra columns such as `min_cpu`/`max_cpu`
//! are tolerated and ignored):
//!
//! ```csv
//! timestamp,vm_id,avg_cpu
//! 0,web-0,1.5
//! 300,web-0,2.25
//! 300,web-1,0.75
//! ```
//!
//! * `timestamp` — seconds since trace start, aligned to the sample
//!   grid (`timestamp = sample * dt`).
//! * `vm_id` — opaque VM identifier; all of a VM's rows must be
//!   contiguous in the file (the Azure per-VM readings dumps have this
//!   shape), which is what lets the reader stream one VM's window at a
//!   time instead of loading the file whole.
//! * `avg_cpu` — CPU demand in cores for that interval.
//!
//! A VM's first reading is its arrival, its last reading its
//! departure; a VM whose readings run to the final sample holds an
//! unbounded lease. VM groups must appear in non-decreasing arrival
//! order (guaranteed by [`write_azure_csv`], enforced by
//! [`assemble`](super::assemble)).

use super::csv::CsvReader;
use super::{TraceDataset, TraceRecord};
use crate::lifecycle::Lifecycle;
use crate::{VmFleet, WorkloadError};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Streaming reader for readings-style (Azure-format) trace CSV.
#[derive(Debug)]
pub struct AzureTraceReader<R> {
    csv: CsvReader<R>,
    sample_dt_s: f64,
    horizon_samples: usize,
    col_timestamp: usize,
    col_vm: usize,
    col_cpu: usize,
    /// First row of the next VM group, already consumed from the CSV.
    pending: Option<Reading>,
    /// VM ids whose groups have already been emitted.
    seen: HashSet<String>,
    done: bool,
}

#[derive(Debug)]
struct Reading {
    vm: String,
    sample: usize,
    cpu: f64,
}

impl AzureTraceReader<BufReader<File>> {
    /// Opens `path` and maps its header.
    pub fn open<P: AsRef<Path>>(
        path: P,
        sample_dt_s: f64,
        horizon_samples: usize,
    ) -> crate::Result<Self> {
        Self::with_csv(CsvReader::open(path)?, sample_dt_s, horizon_samples)
    }
}

impl<R: BufRead> AzureTraceReader<R> {
    /// Wraps an already-open reader and maps its header.
    pub fn new(input: R, sample_dt_s: f64, horizon_samples: usize) -> crate::Result<Self> {
        Self::with_csv(CsvReader::new(input)?, sample_dt_s, horizon_samples)
    }

    fn with_csv(
        csv: CsvReader<R>,
        sample_dt_s: f64,
        horizon_samples: usize,
    ) -> crate::Result<Self> {
        if !(sample_dt_s.is_finite() && sample_dt_s > 0.0) {
            return Err(WorkloadError::InvalidParameter(
                "sample interval must be positive and finite",
            ));
        }
        let col_timestamp = csv.require_column("timestamp")?;
        let col_vm = csv.require_column("vm_id")?;
        let col_cpu = csv.require_column("avg_cpu")?;
        Ok(AzureTraceReader {
            csv,
            sample_dt_s,
            horizon_samples,
            col_timestamp,
            col_vm,
            col_cpu,
            pending: None,
            seen: HashSet::new(),
            done: false,
        })
    }

    /// Parses the next data row into a grid-aligned reading.
    fn next_reading(&mut self) -> Option<crate::Result<Reading>> {
        let row = match self.csv.next_row()? {
            Ok(row) => row,
            Err(e) => return Some(Err(e)),
        };
        let timestamp = match row.parse_f64(self.col_timestamp, "timestamp") {
            Ok(t) => t,
            Err(e) => return Some(Err(e)),
        };
        let sample = timestamp / self.sample_dt_s;
        let rounded = sample.round();
        if !(timestamp.is_finite() && timestamp >= 0.0)
            || rounded * self.sample_dt_s != timestamp
            || rounded as usize >= self.horizon_samples
        {
            return Some(Err(WorkloadError::BadField {
                line: row.line(),
                column: "timestamp",
                value: row.field(self.col_timestamp).to_owned(),
            }));
        }
        let cpu = match row.parse_f64(self.col_cpu, "avg_cpu") {
            Ok(c) => c,
            Err(e) => return Some(Err(e)),
        };
        Some(Ok(Reading {
            vm: row.field(self.col_vm).to_owned(),
            sample: rounded as usize,
            cpu,
        }))
    }
}

impl<R: BufRead> TraceDataset for AzureTraceReader<R> {
    fn sample_dt_s(&self) -> f64 {
        self.sample_dt_s
    }

    fn horizon_samples(&self) -> usize {
        self.horizon_samples
    }

    fn next_record(&mut self) -> Option<crate::Result<TraceRecord>> {
        if self.done {
            return None;
        }
        // Start the group from the pending row (peeked while closing
        // the previous group) or the next row in the file.
        let first = match self.pending.take() {
            Some(r) => r,
            None => match self.next_reading()? {
                Ok(r) => r,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            },
        };
        if !self.seen.insert(first.vm.clone()) {
            self.done = true;
            return Some(Err(WorkloadError::InvalidParameter(
                "vm readings must be contiguous (vm_id reappears later in the file)",
            )));
        }
        let arrival = first.sample;
        let mut demand = vec![first.cpu];
        let mut last = first.sample;
        loop {
            match self.next_reading() {
                None => {
                    self.done = true;
                    break;
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e));
                }
                Some(Ok(r)) if r.vm == first.vm => {
                    if r.sample <= last {
                        self.done = true;
                        return Some(Err(WorkloadError::NonMonotoneClock {
                            sample: r.sample,
                            previous: last,
                        }));
                    }
                    if r.sample != last + 1 {
                        self.done = true;
                        return Some(Err(WorkloadError::InvalidParameter(
                            "vm readings must be contiguous (gap in timestamp run)",
                        )));
                    }
                    last = r.sample;
                    demand.push(r.cpu);
                }
                Some(Ok(r)) => {
                    self.pending = Some(r);
                    break;
                }
            }
        }
        let lease = if last + 1 == self.horizon_samples {
            None
        } else {
            Some(last + 1 - arrival)
        };
        Some(Ok(TraceRecord {
            name: first.vm,
            group: 0,
            arrival_sample: arrival,
            lease_samples: lease,
            demand,
        }))
    }
}

/// Serializes a fleet + lifecycle to readings-style (Azure-format)
/// CSV, the exact inverse of [`AzureTraceReader`].
///
/// One row is written per live sample per scheduled VM, VM groups in
/// lifecycle entry order (non-decreasing arrival), timestamps as
/// `sample * dt`. `f64` values are written with Rust's shortest
/// round-trip `Display`, so a write → read cycle reproduces every
/// demand sample bit-identically.
pub fn write_azure_csv(fleet: &VmFleet, lifecycle: &Lifecycle) -> crate::Result<String> {
    let horizon = lifecycle.horizon_samples();
    let mut out = String::from("timestamp,vm_id,avg_cpu\n");
    for entry in lifecycle.entries() {
        let vm = fleet
            .vms()
            .get(entry.id)
            .ok_or(WorkloadError::InvalidParameter(
                "lifecycle entry id outside the fleet",
            ))?;
        if vm.fine.len() < horizon {
            return Err(WorkloadError::InvalidParameter(
                "fleet trace shorter than the lifecycle horizon",
            ));
        }
        let dt = vm.fine.dt();
        let end = entry.departure_sample.unwrap_or(horizon).min(horizon);
        for sample in entry.arrival_sample..end {
            let ts = sample as f64 * dt;
            let cpu = vm.fine.values()[sample];
            // Errors are impossible when writing to a String.
            let _ = writeln!(out, "{ts},{},{cpu}", vm.name);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::assemble;
    use super::*;
    use std::io::Cursor;

    fn reader(text: &str, dt: f64, horizon: usize) -> AzureTraceReader<Cursor<Vec<u8>>> {
        AzureTraceReader::new(Cursor::new(text.as_bytes().to_vec()), dt, horizon).expect("header")
    }

    #[test]
    fn streams_vm_groups_into_records() {
        let csv = "timestamp,vm_id,avg_cpu\n\
                   0,a,1\n300,a,2\n\
                   300,b,0.5\n600,b,0.25\n900,b,0.125\n";
        let mut r = reader(csv, 300.0, 4);
        let a = r.next_record().unwrap().unwrap();
        assert_eq!(a.name, "a");
        assert_eq!(a.arrival_sample, 0);
        assert_eq!(a.lease_samples, Some(2));
        assert_eq!(a.demand, vec![1.0, 2.0]);
        let b = r.next_record().unwrap().unwrap();
        assert_eq!(b.arrival_sample, 1);
        // b's readings run to the final sample: unbounded lease.
        assert_eq!(b.lease_samples, None);
        assert_eq!(b.demand, vec![0.5, 0.25, 0.125]);
        assert!(r.next_record().is_none());
    }

    #[test]
    fn extra_columns_are_tolerated() {
        let csv = "vm_id,timestamp,min_cpu,avg_cpu,max_cpu\na,0,0,1.5,9\n";
        let mut r = reader(csv, 300.0, 2);
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.demand, vec![1.5]);
    }

    #[test]
    fn missing_required_column_is_a_typed_error() {
        let err = AzureTraceReader::new(Cursor::new(b"timestamp,vm_id,cpu\n".to_vec()), 300.0, 4)
            .unwrap_err();
        assert_eq!(err, WorkloadError::MissingColumn { column: "avg_cpu" });
    }

    #[test]
    fn off_grid_timestamp_is_a_typed_error() {
        let mut r = reader("timestamp,vm_id,avg_cpu\n150,a,1\n", 300.0, 4);
        assert_eq!(
            r.next_record().unwrap().unwrap_err(),
            WorkloadError::BadField {
                line: 2,
                column: "timestamp",
                value: "150".into()
            }
        );
    }

    #[test]
    fn timestamp_past_horizon_is_a_typed_error() {
        let mut r = reader("timestamp,vm_id,avg_cpu\n1200,a,1\n", 300.0, 4);
        assert!(matches!(
            r.next_record().unwrap().unwrap_err(),
            WorkloadError::BadField {
                line: 2,
                column: "timestamp",
                ..
            }
        ));
    }

    #[test]
    fn backwards_clock_within_a_vm_is_a_typed_error() {
        let mut r = reader("timestamp,vm_id,avg_cpu\n600,a,1\n300,a,1\n", 300.0, 4);
        assert_eq!(
            r.next_record().unwrap().unwrap_err(),
            WorkloadError::NonMonotoneClock {
                sample: 1,
                previous: 2
            }
        );
    }

    #[test]
    fn gap_within_a_vm_is_a_typed_error() {
        let mut r = reader("timestamp,vm_id,avg_cpu\n0,a,1\n600,a,1\n", 300.0, 4);
        assert!(r.next_record().unwrap().is_err());
    }

    #[test]
    fn split_vm_group_is_a_typed_error() {
        let csv = "timestamp,vm_id,avg_cpu\n0,a,1\n300,b,1\n600,a,1\n";
        let mut r = reader(csv, 300.0, 4);
        r.next_record().unwrap().unwrap();
        r.next_record().unwrap().unwrap();
        assert!(r.next_record().unwrap().is_err());
    }

    #[test]
    fn write_then_read_round_trips_exactly() {
        use crate::lifecycle::{ArrivalProcess, LifecycleBuilder, LifetimeModel};
        let fleet = crate::DatacenterTraceBuilder::new(5)
            .groups(2)
            .seed(11)
            .duration_hours(1.0)
            .build()
            .unwrap();
        let horizon = fleet.vms()[0].fine.len();
        let lifecycle = LifecycleBuilder::new(5, horizon)
            .seed(11)
            .arrivals(ArrivalProcess::Poisson {
                mean_gap_samples: 60.0,
            })
            .lifetimes(LifetimeModel::Uniform {
                min_samples: 120,
                max_samples: 480,
            })
            .build()
            .unwrap();
        let csv = write_azure_csv(&fleet, &lifecycle).unwrap();
        let dt = fleet.vms()[0].fine.dt();
        let mut r = AzureTraceReader::new(Cursor::new(csv.into_bytes()), dt, horizon).unwrap();
        let (fleet2, lifecycle2) = assemble(&mut r).unwrap();
        assert_eq!(lifecycle2.entries(), lifecycle.entries());
        for (entry, vm2) in lifecycle.entries().iter().zip(fleet2.vms()) {
            let original = &fleet.vms()[entry.id];
            assert_eq!(vm2.name, original.name);
            let end = entry.departure_sample.unwrap_or(horizon);
            // In-window demand is bit-identical; outside is zero.
            assert_eq!(
                &vm2.fine.values()[entry.arrival_sample..end],
                &original.fine.values()[entry.arrival_sample..end]
            );
            assert!(vm2.fine.values()[..entry.arrival_sample]
                .iter()
                .chain(&vm2.fine.values()[end..])
                .all(|&v| v == 0.0));
        }
    }
}
