//! Trace-dataset ingestion: one streaming surface for real and
//! synthetic workloads.
//!
//! Everything the simulator replays reduces to the same shape: a set
//! of VMs, each with an *arrival sample*, an optional *lease length*,
//! and a *demand series* covering its live window. [`TraceDataset`]
//! is that shape as a streaming trait — implementations yield one
//! [`TraceRecord`] at a time so a multi-gigabyte trace file is never
//! resident in memory — and [`assemble`] drains any implementation
//! into the simulator's native inputs: a [`VmFleet`]
//! plus a trace-driven [`Lifecycle`].
//!
//! Three implementations ship in this module:
//!
//! * [`AzureTraceReader`] — readings-style CSV (one row per VM per
//!   sampling interval), the shape of the Azure public VM traces.
//! * [`HuaweiTraceReader`] — request-log-style CSV (one `create` /
//!   `delete` event row per VM), the shape of the Huawei cloud
//!   request datasets.
//! * [`SyntheticTrace`] — per-app arrival/duration/demand
//!   distributions composed over [`SimRng`](cavm_trace::SimRng), in
//!   the style of dslab-faas' `synthetic_trace` generators.
//!
//! Demand is validated once, centrally, in [`assemble`]: NaN or
//! negative samples and backwards arrival clocks are typed errors
//! ([`WorkloadError::InvalidDemand`],
//! [`WorkloadError::NonMonotoneClock`]), never silently-degenerate
//! schedules.
//!
//! # Example
//!
//! ```
//! use cavm_workload::dataset::{assemble, AzureTraceReader};
//! use std::io::Cursor;
//!
//! # fn main() -> Result<(), cavm_workload::WorkloadError> {
//! let csv = "timestamp,vm_id,avg_cpu\n0,web-0,1.5\n300,web-0,2.5\n";
//! let mut reader = AzureTraceReader::new(Cursor::new(csv.as_bytes()), 300.0, 4)?;
//! let (fleet, lifecycle) = assemble(&mut reader)?;
//! assert_eq!(fleet.len(), 1);
//! assert_eq!(lifecycle.entries()[0].arrival_sample, 0);
//! assert_eq!(lifecycle.entries()[0].departure_sample, Some(2));
//! # Ok(())
//! # }
//! ```

mod azure;
mod csv;
mod huawei;
mod synthetic;

pub use azure::{write_azure_csv, AzureTraceReader};
pub use csv::{CsvReader, Row};
pub use huawei::{write_huawei_csv, HuaweiTraceReader};
pub use synthetic::{DemandModel, SyntheticApp, SyntheticTrace, SyntheticTraceBuilder};

use crate::lifecycle::{Lifecycle, LifecycleEntry};
use crate::{VmFleet, VmTrace, WorkloadError};
use cavm_trace::TimeSeries;

/// One VM's worth of trace data, as streamed out of a dataset.
///
/// `demand` covers exactly the live window: `lease_samples` values
/// when the lease is bounded, `horizon - arrival_sample` values when
/// the VM stays to the end (`lease_samples == None`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Human-readable VM name (dataset-native identifier).
    pub name: String,
    /// Correlated-group index (app/service id; `0` when the dataset
    /// has no grouping information).
    pub group: usize,
    /// Sample at which the VM arrives.
    pub arrival_sample: usize,
    /// Lease length in samples; `None` means the VM runs to the
    /// horizon.
    pub lease_samples: Option<usize>,
    /// CPU demand in cores over the live window.
    pub demand: Vec<f64>,
}

/// A streaming source of [`TraceRecord`]s.
///
/// Records must be yielded in non-decreasing `arrival_sample` order —
/// [`assemble`] assigns VM ids in stream order, which keeps dataset
/// ingestion bit-compatible with [`LifecycleBuilder`]'s
/// arrival-ordered id assignment (see the round-trip property test in
/// `cavm-sim`).
///
/// [`LifecycleBuilder`]: crate::LifecycleBuilder
pub trait TraceDataset {
    /// Seconds between consecutive demand samples.
    fn sample_dt_s(&self) -> f64;

    /// Length of the replay horizon, in samples.
    fn horizon_samples(&self) -> usize;

    /// Next record, or `None` when the dataset is exhausted.
    fn next_record(&mut self) -> Option<crate::Result<TraceRecord>>;
}

/// Drains a dataset into the simulator's native `(fleet, lifecycle)`
/// inputs.
///
/// Each record becomes one [`VmTrace`] (id = stream position) and one
/// trace-driven [`LifecycleEntry`]. Demand outside the live window is
/// zero-filled: the replay engine slices each VM's trace at its
/// arrival and stops reading at departure, so the padding is never
/// observed by the controller.
///
/// # Errors
///
/// * [`WorkloadError::InvalidDemand`] — a demand sample is NaN or
///   negative.
/// * [`WorkloadError::NonMonotoneClock`] — arrivals go backwards in
///   stream order.
/// * [`WorkloadError::InvalidParameter`] — empty dataset, zero
///   horizon, a record whose demand length disagrees with its lease,
///   or a lease extending past the horizon.
pub fn assemble<D: TraceDataset + ?Sized>(dataset: &mut D) -> crate::Result<(VmFleet, Lifecycle)> {
    let horizon = dataset.horizon_samples();
    let dt = dataset.sample_dt_s();
    if horizon == 0 {
        return Err(WorkloadError::InvalidParameter(
            "dataset horizon must be at least one sample",
        ));
    }
    if !(dt.is_finite() && dt > 0.0) {
        return Err(WorkloadError::InvalidParameter(
            "dataset sample interval must be positive and finite",
        ));
    }

    let mut vms = Vec::new();
    let mut entries = Vec::new();
    let mut previous_arrival = 0usize;
    while let Some(record) = dataset.next_record() {
        let record = record?;
        let id = vms.len();
        if record.arrival_sample < previous_arrival {
            return Err(WorkloadError::NonMonotoneClock {
                sample: record.arrival_sample,
                previous: previous_arrival,
            });
        }
        previous_arrival = record.arrival_sample;
        if record.arrival_sample >= horizon {
            return Err(WorkloadError::InvalidParameter(
                "record arrives at or after the horizon",
            ));
        }
        let departure = match record.lease_samples {
            Some(0) => {
                return Err(WorkloadError::InvalidParameter(
                    "record lease must be at least one sample",
                ))
            }
            Some(lease) => {
                let end = record.arrival_sample.checked_add(lease).ok_or(
                    WorkloadError::InvalidParameter("record lease overflows the sample clock"),
                )?;
                if end > horizon {
                    return Err(WorkloadError::InvalidParameter(
                        "record lease extends past the horizon",
                    ));
                }
                Some(end)
            }
            None => None,
        };
        let end = departure.unwrap_or(horizon);
        let window = end - record.arrival_sample;
        if record.demand.len() != window {
            return Err(WorkloadError::InvalidParameter(
                "record demand length disagrees with its live window",
            ));
        }
        for (offset, &value) in record.demand.iter().enumerate() {
            if !(value.is_finite() && value >= 0.0) {
                return Err(WorkloadError::InvalidDemand {
                    vm: id,
                    sample: offset,
                    value,
                });
            }
        }

        let mut values = vec![0.0; horizon];
        values[record.arrival_sample..end].copy_from_slice(&record.demand);
        let fine = TimeSeries::new(dt, values)?;
        vms.push(VmTrace {
            id,
            name: record.name,
            group: record.group,
            // Datasets carry a single sampling grid; the coarse view
            // is the same series (refinement factor 1).
            coarse: fine.clone(),
            fine,
        });
        entries.push(LifecycleEntry {
            id,
            arrival_sample: record.arrival_sample,
            departure_sample: departure,
        });
    }

    let fleet = VmFleet::from_traces(vms)?;
    let lifecycle = Lifecycle::from_entries(entries, horizon)?;
    Ok((fleet, lifecycle))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted in-memory dataset for exercising `assemble`.
    struct Scripted {
        dt: f64,
        horizon: usize,
        records: std::vec::IntoIter<crate::Result<TraceRecord>>,
    }

    impl Scripted {
        fn new(dt: f64, horizon: usize, records: Vec<crate::Result<TraceRecord>>) -> Self {
            Scripted {
                dt,
                horizon,
                records: records.into_iter(),
            }
        }
    }

    impl TraceDataset for Scripted {
        fn sample_dt_s(&self) -> f64 {
            self.dt
        }
        fn horizon_samples(&self) -> usize {
            self.horizon
        }
        fn next_record(&mut self) -> Option<crate::Result<TraceRecord>> {
            self.records.next()
        }
    }

    fn record(arrival: usize, lease: Option<usize>, demand: Vec<f64>) -> TraceRecord {
        TraceRecord {
            name: format!("vm-{arrival}"),
            group: 0,
            arrival_sample: arrival,
            lease_samples: lease,
            demand,
        }
    }

    #[test]
    fn assembles_fleet_and_lifecycle_with_zero_padding() {
        let mut ds = Scripted::new(
            300.0,
            6,
            vec![
                Ok(record(1, Some(2), vec![1.5, 2.5])),
                Ok(record(3, None, vec![0.5, 0.5, 0.5])),
            ],
        );
        let (fleet, lifecycle) = assemble(&mut ds).unwrap();
        assert_eq!(fleet.len(), 2);
        assert_eq!(
            fleet.vms()[0].fine.values(),
            &[0.0, 1.5, 2.5, 0.0, 0.0, 0.0]
        );
        assert_eq!(
            fleet.vms()[1].fine.values(),
            &[0.0, 0.0, 0.0, 0.5, 0.5, 0.5]
        );
        assert_eq!(fleet.vms()[0].fine.dt(), 300.0);
        assert_eq!(lifecycle.horizon_samples(), 6);
        assert_eq!(lifecycle.entries()[0].departure_sample, Some(3));
        assert_eq!(lifecycle.entries()[1].departure_sample, None);
    }

    #[test]
    fn nan_demand_is_a_typed_error() {
        let mut ds = Scripted::new(1.0, 4, vec![Ok(record(0, Some(2), vec![1.0, f64::NAN]))]);
        match assemble(&mut ds).unwrap_err() {
            WorkloadError::InvalidDemand {
                vm: 0,
                sample: 1,
                value,
            } => assert!(value.is_nan()),
            other => panic!("expected InvalidDemand, got {other:?}"),
        }
    }

    #[test]
    fn negative_demand_is_a_typed_error() {
        let mut ds = Scripted::new(1.0, 4, vec![Ok(record(0, Some(2), vec![1.0, -0.25]))]);
        assert_eq!(
            assemble(&mut ds).unwrap_err(),
            WorkloadError::InvalidDemand {
                vm: 0,
                sample: 1,
                value: -0.25
            }
        );
    }

    #[test]
    fn infinite_demand_is_a_typed_error() {
        let mut ds = Scripted::new(1.0, 4, vec![Ok(record(0, Some(1), vec![f64::INFINITY]))]);
        assert!(matches!(
            assemble(&mut ds).unwrap_err(),
            WorkloadError::InvalidDemand {
                vm: 0,
                sample: 0,
                ..
            }
        ));
    }

    #[test]
    fn backwards_arrival_clock_is_a_typed_error() {
        let mut ds = Scripted::new(
            1.0,
            8,
            vec![
                Ok(record(5, Some(1), vec![1.0])),
                Ok(record(2, Some(1), vec![1.0])),
            ],
        );
        assert_eq!(
            assemble(&mut ds).unwrap_err(),
            WorkloadError::NonMonotoneClock {
                sample: 2,
                previous: 5
            }
        );
    }

    #[test]
    fn lease_past_horizon_is_rejected() {
        let mut ds = Scripted::new(1.0, 4, vec![Ok(record(3, Some(2), vec![1.0, 1.0]))]);
        assert_eq!(
            assemble(&mut ds).unwrap_err(),
            WorkloadError::InvalidParameter("record lease extends past the horizon")
        );
    }

    #[test]
    fn zero_lease_and_length_mismatch_are_rejected() {
        let mut ds = Scripted::new(1.0, 4, vec![Ok(record(0, Some(0), vec![]))]);
        assert_eq!(
            assemble(&mut ds).unwrap_err(),
            WorkloadError::InvalidParameter("record lease must be at least one sample")
        );
        let mut ds = Scripted::new(1.0, 4, vec![Ok(record(0, Some(2), vec![1.0]))]);
        assert_eq!(
            assemble(&mut ds).unwrap_err(),
            WorkloadError::InvalidParameter("record demand length disagrees with its live window")
        );
    }

    #[test]
    fn empty_dataset_and_zero_horizon_are_rejected() {
        let mut ds = Scripted::new(1.0, 4, vec![]);
        assert!(assemble(&mut ds).is_err());
        let mut ds = Scripted::new(1.0, 0, vec![Ok(record(0, None, vec![]))]);
        assert_eq!(
            assemble(&mut ds).unwrap_err(),
            WorkloadError::InvalidParameter("dataset horizon must be at least one sample")
        );
    }

    #[test]
    fn record_errors_propagate() {
        let mut ds = Scripted::new(
            1.0,
            4,
            vec![Err(WorkloadError::BadColumnCount {
                line: 7,
                expected: 3,
                got: 2,
            })],
        );
        assert_eq!(
            assemble(&mut ds).unwrap_err(),
            WorkloadError::BadColumnCount {
                line: 7,
                expected: 3,
                got: 2
            }
        );
    }
}
