//! Synthetic scenario generators behind the [`TraceDataset`] surface.
//!
//! Where [`DatacenterTraceBuilder`](crate::DatacenterTraceBuilder)
//! synthesizes a *closed* fleet (every VM exists for the whole day),
//! [`SyntheticTrace`] generates an *open* scenario in the style of
//! dslab-faas' `synthetic_trace`: a list of application classes, each
//! with its own arrival process, lease-duration model, and demand
//! model, composed over the workspace's deterministic
//! [`SimRng`](cavm_trace::SimRng). The result streams through the
//! same [`TraceDataset`] trait as the real-trace readers, so a
//! generated scenario and an ingested CSV are interchangeable
//! downstream (`assemble`, `ScenarioBuilder::dataset`, the sweep
//! harness).
//!
//! # Example
//!
//! ```
//! use cavm_workload::dataset::{assemble, DemandModel, SyntheticApp, SyntheticTraceBuilder};
//! use cavm_workload::{ArrivalProcess, LifetimeModel};
//!
//! # fn main() -> Result<(), cavm_workload::WorkloadError> {
//! let mut dataset = SyntheticTraceBuilder::new(720)
//!     .seed(42)
//!     .app(SyntheticApp {
//!         name: "web".into(),
//!         vm_count: 6,
//!         arrivals: ArrivalProcess::Poisson { mean_gap_samples: 40.0 },
//!         lifetimes: LifetimeModel::Uniform { min_samples: 120, max_samples: 480 },
//!         demand: DemandModel::Uniform { lo: 0.5, hi: 2.0 },
//!     })
//!     .build()?;
//! let (fleet, lifecycle) = assemble(&mut dataset)?;
//! assert_eq!(fleet.len(), lifecycle.len());
//! # Ok(())
//! # }
//! ```

use super::{TraceDataset, TraceRecord};
use crate::datacenter::DailyArchetype;
use crate::lifecycle::{ArrivalProcess, LifecycleBuilder, LifetimeModel};
use crate::WorkloadError;
use cavm_trace::SimRng;
use std::collections::VecDeque;

/// How an application class's VMs consume CPU while leased.
#[derive(Debug, Clone, PartialEq)]
pub enum DemandModel {
    /// Every VM of the class runs flat at `cores`.
    Constant {
        /// Demand level, cores.
        cores: f64,
    },
    /// Each VM draws one flat level uniformly from `[lo, hi]` at
    /// arrival (request-sizing style, the shape of the Huawei logs).
    Uniform {
        /// Smallest level, cores.
        lo: f64,
        /// Largest level, cores.
        hi: f64,
    },
    /// Demand follows a daily-profile [`DailyArchetype`] mean with
    /// per-sample lognormal refinement of coefficient-of-variation
    /// `cv` — the paper's trace-refinement primitive (readings style,
    /// the shape of the Azure traces).
    Archetype {
        /// Daily mean-utilization profile.
        archetype: DailyArchetype,
        /// Per-sample lognormal coefficient of variation (0 = the
        /// smooth profile itself).
        cv: f64,
    },
}

impl DemandModel {
    fn validate(&self) -> crate::Result<()> {
        match *self {
            DemandModel::Constant { cores } => {
                if !(cores.is_finite() && cores >= 0.0) {
                    return Err(WorkloadError::InvalidParameter(
                        "constant demand must be finite and >= 0",
                    ));
                }
            }
            DemandModel::Uniform { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi) {
                    return Err(WorkloadError::InvalidParameter(
                        "uniform demand range must be 0 <= lo <= hi",
                    ));
                }
            }
            DemandModel::Archetype { archetype, cv } => {
                archetype.validate()?;
                if !(cv.is_finite() && cv >= 0.0) {
                    return Err(WorkloadError::InvalidParameter(
                        "demand cv must be finite and >= 0",
                    ));
                }
            }
        }
        Ok(())
    }
}

/// One application class of a synthetic scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticApp {
    /// Class name; VM names are derived as `"<name>-<id>"`.
    pub name: String,
    /// Number of VMs the class tries to schedule (arrivals falling
    /// past the horizon are dropped, as in [`LifecycleBuilder`]).
    pub vm_count: usize,
    /// When the class's VMs arrive.
    pub arrivals: ArrivalProcess,
    /// How long they stay.
    pub lifetimes: LifetimeModel,
    /// What they consume while live.
    pub demand: DemandModel,
}

/// Builder for [`SyntheticTrace`] scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTraceBuilder {
    horizon_samples: usize,
    sample_dt_s: f64,
    seed: u64,
    apps: Vec<SyntheticApp>,
}

impl SyntheticTraceBuilder {
    /// Starts a scenario over `horizon_samples` samples (5 s default
    /// grid).
    pub fn new(horizon_samples: usize) -> Self {
        SyntheticTraceBuilder {
            horizon_samples,
            sample_dt_s: 5.0,
            seed: 0,
            apps: Vec::new(),
        }
    }

    /// Seconds between samples (default 5).
    pub fn sample_dt_s(mut self, dt: f64) -> Self {
        self.sample_dt_s = dt;
        self
    }

    /// Master seed; every draw is deterministic given it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds an application class.
    pub fn app(mut self, app: SyntheticApp) -> Self {
        self.apps.push(app);
        self
    }

    /// Generates the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for a zero horizon,
    /// non-positive sample interval, no apps, an app with zero VMs, or
    /// out-of-range demand parameters, and propagates lifecycle/RNG
    /// errors.
    pub fn build(&self) -> crate::Result<SyntheticTrace> {
        if self.horizon_samples == 0 {
            return Err(WorkloadError::InvalidParameter(
                "scenario horizon must be at least one sample",
            ));
        }
        if !(self.sample_dt_s.is_finite() && self.sample_dt_s > 0.0) {
            return Err(WorkloadError::InvalidParameter(
                "sample interval must be positive and finite",
            ));
        }
        if self.apps.is_empty() {
            return Err(WorkloadError::InvalidParameter(
                "scenario needs at least one app",
            ));
        }

        let root = SimRng::new(self.seed);
        // (arrival, app index, per-app id) sorts records into the
        // arrival order assemble() requires.
        let mut keyed: Vec<(usize, usize, usize, TraceRecord)> = Vec::new();
        for (a, app) in self.apps.iter().enumerate() {
            if app.vm_count == 0 {
                return Err(WorkloadError::InvalidParameter(
                    "app must schedule at least one VM",
                ));
            }
            app.demand.validate()?;
            let schedule_seed = root.fork(1 + a as u64).next_u64();
            let schedule = LifecycleBuilder::new(app.vm_count, self.horizon_samples)
                .seed(schedule_seed)
                .sample_dt_s(self.sample_dt_s)
                .arrivals(app.arrivals)
                .lifetimes(app.lifetimes)
                .build()?;
            for entry in schedule.entries() {
                let end = entry.departure_sample.unwrap_or(self.horizon_samples);
                let window = end - entry.arrival_sample;
                let mut vrng = root.fork(10_000 + (a as u64) * 100_000 + entry.id as u64);
                let demand =
                    self.draw_demand(&app.demand, entry.arrival_sample, window, &mut vrng)?;
                keyed.push((
                    entry.arrival_sample,
                    a,
                    entry.id,
                    TraceRecord {
                        name: format!("{}-{:03}", app.name, entry.id),
                        group: a,
                        arrival_sample: entry.arrival_sample,
                        lease_samples: entry.departure_sample.map(|d| d - entry.arrival_sample),
                        demand,
                    },
                ));
            }
        }
        keyed.sort_by_key(|&(arrival, app, id, _)| (arrival, app, id));
        Ok(SyntheticTrace {
            sample_dt_s: self.sample_dt_s,
            horizon_samples: self.horizon_samples,
            records: keyed.into_iter().map(|(_, _, _, r)| r).collect(),
        })
    }

    fn draw_demand(
        &self,
        model: &DemandModel,
        arrival: usize,
        window: usize,
        vrng: &mut SimRng,
    ) -> crate::Result<Vec<f64>> {
        Ok(match *model {
            DemandModel::Constant { cores } => vec![cores; window],
            DemandModel::Uniform { lo, hi } => vec![vrng.range_f64(lo, hi); window],
            DemandModel::Archetype { archetype, cv } => {
                let burst_hours = match archetype {
                    DailyArchetype::Bursty { bursts_per_day, .. } => {
                        let k = vrng.poisson(bursts_per_day).map_err(WorkloadError::Trace)?;
                        (0..k).map(|_| vrng.range_f64(0.0, 24.0)).collect()
                    }
                    _ => Vec::new(),
                };
                (0..window)
                    .map(|offset| {
                        let t_s = (arrival + offset) as f64 * self.sample_dt_s;
                        let hour = (t_s / 3600.0) % 24.0;
                        let mean = archetype.mean_at(hour, &burst_hours);
                        vrng.lognormal_mean_cv(mean, cv)
                    })
                    .collect()
            }
        })
    }
}

/// A generated open scenario, streamed record by record.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTrace {
    sample_dt_s: f64,
    horizon_samples: usize,
    records: VecDeque<TraceRecord>,
}

impl TraceDataset for SyntheticTrace {
    fn sample_dt_s(&self) -> f64 {
        self.sample_dt_s
    }

    fn horizon_samples(&self) -> usize {
        self.horizon_samples
    }

    fn next_record(&mut self) -> Option<crate::Result<TraceRecord>> {
        self.records.pop_front().map(Ok)
    }
}

#[cfg(test)]
mod tests {
    use super::super::assemble;
    use super::*;

    fn web_app() -> SyntheticApp {
        SyntheticApp {
            name: "web".into(),
            vm_count: 6,
            arrivals: ArrivalProcess::Poisson {
                mean_gap_samples: 40.0,
            },
            lifetimes: LifetimeModel::Uniform {
                min_samples: 120,
                max_samples: 480,
            },
            demand: DemandModel::Archetype {
                archetype: DailyArchetype::Diurnal {
                    base: 0.3,
                    peak: 1.8,
                    peak_hour: 12.0,
                    width_h: 3.0,
                },
                cv: 0.25,
            },
        }
    }

    #[test]
    fn generates_deterministic_arrival_ordered_records() {
        let build = || {
            SyntheticTraceBuilder::new(720)
                .seed(7)
                .app(web_app())
                .app(SyntheticApp {
                    name: "batch".into(),
                    vm_count: 3,
                    arrivals: ArrivalProcess::AtStart,
                    lifetimes: LifetimeModel::Fixed { samples: 240 },
                    demand: DemandModel::Constant { cores: 1.5 },
                })
                .build()
                .unwrap()
        };
        let mut a = build();
        let b = build();
        assert_eq!(a, b);
        let mut previous = 0;
        let mut names = Vec::new();
        while let Some(r) = a.next_record() {
            let r = r.unwrap();
            assert!(r.arrival_sample >= previous);
            previous = r.arrival_sample;
            names.push(r.name);
        }
        // Batch VMs arrive at sample 0, ahead of most web leases.
        assert!(names.iter().any(|n| n.starts_with("batch-")));
        assert!(names.iter().any(|n| n.starts_with("web-")));
    }

    #[test]
    fn assembles_through_the_dataset_surface() {
        let mut ds = SyntheticTraceBuilder::new(720)
            .seed(7)
            .app(web_app())
            .build()
            .unwrap();
        let (fleet, lifecycle) = assemble(&mut ds).unwrap();
        assert_eq!(fleet.len(), lifecycle.len());
        assert_eq!(fleet.vms()[0].fine.len(), 720);
        assert!(lifecycle.max_concurrent() >= 1);
    }

    #[test]
    fn uniform_demand_is_flat_per_vm() {
        let mut ds = SyntheticTraceBuilder::new(240)
            .seed(3)
            .app(SyntheticApp {
                name: "db".into(),
                vm_count: 4,
                arrivals: ArrivalProcess::AtStart,
                lifetimes: LifetimeModel::Unbounded,
                demand: DemandModel::Uniform { lo: 0.5, hi: 2.0 },
            })
            .build()
            .unwrap();
        while let Some(r) = ds.next_record() {
            let r = r.unwrap();
            let level = r.demand[0];
            assert!((0.5..=2.0).contains(&level));
            assert!(r.demand.iter().all(|&v| v == level));
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(SyntheticTraceBuilder::new(0)
            .app(web_app())
            .build()
            .is_err());
        assert!(SyntheticTraceBuilder::new(100).build().is_err());
        let mut zero_vms = web_app();
        zero_vms.vm_count = 0;
        assert!(SyntheticTraceBuilder::new(100)
            .app(zero_vms)
            .build()
            .is_err());
        let mut bad_demand = web_app();
        bad_demand.demand = DemandModel::Uniform { lo: 2.0, hi: 1.0 };
        assert!(SyntheticTraceBuilder::new(100)
            .app(bad_demand)
            .build()
            .is_err());
        let mut nan_demand = web_app();
        nan_demand.demand = DemandModel::Constant { cores: f64::NAN };
        assert!(SyntheticTraceBuilder::new(100)
            .app(nan_demand)
            .build()
            .is_err());
    }
}
