//! Request-log-style trace CSV, in the shape of the Huawei cloud VM
//! request datasets: one `create` / `delete` event row per VM.
//!
//! Schema (header-mapped, extra columns tolerated and ignored):
//!
//! ```csv
//! time,vm_id,cpu,mem,kind
//! 0,req-0,2,4096,create
//! 600,req-1,0.5,1024,create
//! 1800,req-0,2,4096,delete
//! ```
//!
//! * `time` — seconds since trace start, aligned to the sample grid,
//!   non-decreasing over the file (request logs are time-ordered; a
//!   backwards clock is a typed error).
//! * `vm_id` — opaque VM identifier; exactly one `create`, at most
//!   one later `delete`.
//! * `cpu` — requested cores, held flat over the VM's whole lease
//!   (request logs carry sizing, not utilization).
//! * `mem` — requested memory; parsed for schema fidelity but unused
//!   (the simulator's demand model is scalar CPU, see ARCHITECTURE).
//! * `kind` — `create` or `delete`.
//!
//! A VM with no `delete` row holds an unbounded lease. Unlike the
//! readings format, a request log is two rows per VM, so the reader
//! ingests the whole (tiny) event stream up front, then emits records
//! sorted by arrival — memory is O(#VMs), never O(file samples).

use super::csv::CsvReader;
use super::{TraceDataset, TraceRecord};
use crate::WorkloadError;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Streaming reader for request-log-style (Huawei-format) trace CSV.
#[derive(Debug)]
pub struct HuaweiTraceReader<R> {
    csv: Option<CsvReader<R>>,
    sample_dt_s: f64,
    horizon_samples: usize,
    col_time: usize,
    col_vm: usize,
    col_cpu: usize,
    col_mem: usize,
    col_kind: usize,
    /// Records in arrival order, materialized on first pull.
    ready: VecDeque<crate::Result<TraceRecord>>,
}

impl HuaweiTraceReader<BufReader<File>> {
    /// Opens `path` and maps its header.
    pub fn open<P: AsRef<Path>>(
        path: P,
        sample_dt_s: f64,
        horizon_samples: usize,
    ) -> crate::Result<Self> {
        Self::with_csv(CsvReader::open(path)?, sample_dt_s, horizon_samples)
    }
}

impl<R: BufRead> HuaweiTraceReader<R> {
    /// Wraps an already-open reader and maps its header.
    pub fn new(input: R, sample_dt_s: f64, horizon_samples: usize) -> crate::Result<Self> {
        Self::with_csv(CsvReader::new(input)?, sample_dt_s, horizon_samples)
    }

    fn with_csv(
        csv: CsvReader<R>,
        sample_dt_s: f64,
        horizon_samples: usize,
    ) -> crate::Result<Self> {
        if !(sample_dt_s.is_finite() && sample_dt_s > 0.0) {
            return Err(WorkloadError::InvalidParameter(
                "sample interval must be positive and finite",
            ));
        }
        let col_time = csv.require_column("time")?;
        let col_vm = csv.require_column("vm_id")?;
        let col_cpu = csv.require_column("cpu")?;
        let col_mem = csv.require_column("mem")?;
        let col_kind = csv.require_column("kind")?;
        Ok(HuaweiTraceReader {
            csv: Some(csv),
            sample_dt_s,
            horizon_samples,
            col_time,
            col_vm,
            col_cpu,
            col_mem,
            col_kind,
            ready: VecDeque::new(),
        })
    }

    /// Reads the whole event log and sorts the resulting records by
    /// arrival. Called once, on the first [`next_record`] pull.
    ///
    /// [`next_record`]: TraceDataset::next_record
    fn ingest(&mut self, mut csv: CsvReader<R>) -> crate::Result<Vec<TraceRecord>> {
        // vm -> (insertion order, arrival sample, cores, departed?).
        let mut open: HashMap<String, (usize, usize, f64, Option<usize>)> = HashMap::new();
        let mut order = 0usize;
        let mut previous = 0usize;
        while let Some(row) = csv.next_row() {
            let row = row?;
            let time = row.parse_f64(self.col_time, "time")?;
            let sample = time / self.sample_dt_s;
            let rounded = sample.round();
            if !(time.is_finite() && time >= 0.0)
                || rounded * self.sample_dt_s != time
                || rounded as usize > self.horizon_samples
            {
                return Err(WorkloadError::BadField {
                    line: row.line(),
                    column: "time",
                    value: row.field(self.col_time).to_owned(),
                });
            }
            let sample = rounded as usize;
            if sample < previous {
                return Err(WorkloadError::NonMonotoneClock { sample, previous });
            }
            previous = sample;
            let cpu = row.parse_f64(self.col_cpu, "cpu")?;
            // Memory is schema-checked but unused: scalar-CPU demand.
            row.parse_f64(self.col_mem, "mem")?;
            let vm = row.field(self.col_vm);
            match row.field(self.col_kind) {
                "create" => {
                    if sample >= self.horizon_samples {
                        return Err(WorkloadError::BadField {
                            line: row.line(),
                            column: "time",
                            value: row.field(self.col_time).to_owned(),
                        });
                    }
                    if open
                        .insert(vm.to_owned(), (order, sample, cpu, None))
                        .is_some()
                    {
                        return Err(WorkloadError::InvalidParameter(
                            "duplicate create event for a vm_id",
                        ));
                    }
                    order += 1;
                }
                "delete" => match open.get_mut(vm) {
                    Some((_, arrival, _, departed @ None)) if sample > *arrival => {
                        *departed = Some(sample);
                    }
                    _ => {
                        return Err(WorkloadError::InvalidParameter(
                            "delete event without a live matching create",
                        ))
                    }
                },
                _ => {
                    return Err(WorkloadError::BadField {
                        line: row.line(),
                        column: "kind",
                        value: row.field(self.col_kind).to_owned(),
                    })
                }
            }
        }

        let mut vms: Vec<(usize, String, usize, f64, Option<usize>)> = open
            .into_iter()
            .map(|(name, (order, arrival, cpu, departed))| (order, name, arrival, cpu, departed))
            .collect();
        // Arrival order, creation order breaking ties — this is the id
        // order assemble() will assign.
        vms.sort_by_key(|&(order, _, arrival, _, _)| (arrival, order));
        Ok(vms
            .into_iter()
            .map(|(_, name, arrival, cpu, departed)| {
                let end = departed.unwrap_or(self.horizon_samples);
                let lease = match departed {
                    Some(d) if d < self.horizon_samples => Some(d - arrival),
                    _ => None,
                };
                TraceRecord {
                    name,
                    group: 0,
                    arrival_sample: arrival,
                    lease_samples: lease,
                    demand: vec![cpu; end - arrival],
                }
            })
            .collect())
    }
}

impl<R: BufRead> TraceDataset for HuaweiTraceReader<R> {
    fn sample_dt_s(&self) -> f64 {
        self.sample_dt_s
    }

    fn horizon_samples(&self) -> usize {
        self.horizon_samples
    }

    fn next_record(&mut self) -> Option<crate::Result<TraceRecord>> {
        if let Some(csv) = self.csv.take() {
            match self.ingest(csv) {
                Ok(records) => self.ready = records.into_iter().map(Ok).collect(),
                Err(e) => return Some(Err(e)),
            }
        }
        self.ready.pop_front()
    }
}

/// Serializes trace records to request-log-style (Huawei-format) CSV,
/// the inverse of [`HuaweiTraceReader`].
///
/// Each record contributes a `create` row at its arrival (cpu = the
/// record's mean demand, held flat; the format carries request sizing,
/// not a utilization series) and, for bounded leases, a `delete` row
/// at departure. Rows are time-sorted.
pub fn write_huawei_csv(records: &[TraceRecord], sample_dt_s: f64) -> crate::Result<String> {
    if !(sample_dt_s.is_finite() && sample_dt_s > 0.0) {
        return Err(WorkloadError::InvalidParameter(
            "sample interval must be positive and finite",
        ));
    }
    // (sample, kind: create=0 delete=1, record index)
    let mut events: Vec<(usize, u8, usize)> = Vec::new();
    for (i, record) in records.iter().enumerate() {
        if record.demand.is_empty() {
            return Err(WorkloadError::InvalidParameter(
                "record has an empty demand window",
            ));
        }
        events.push((record.arrival_sample, 0, i));
        if let Some(lease) = record.lease_samples {
            events.push((record.arrival_sample + lease, 1, i));
        }
    }
    events.sort_unstable();
    let mut out = String::from("time,vm_id,cpu,mem,kind\n");
    for (sample, kind, i) in events {
        let record = &records[i];
        let cpu = record.demand.iter().sum::<f64>() / record.demand.len() as f64;
        let time = sample as f64 * sample_dt_s;
        let kind = if kind == 0 { "create" } else { "delete" };
        let _ = writeln!(out, "{time},{},{cpu},1024,{kind}", record.name);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::assemble;
    use super::*;
    use std::io::Cursor;

    fn reader(text: &str, dt: f64, horizon: usize) -> HuaweiTraceReader<Cursor<Vec<u8>>> {
        HuaweiTraceReader::new(Cursor::new(text.as_bytes().to_vec()), dt, horizon).expect("header")
    }

    #[test]
    fn create_delete_pairs_become_flat_leases() {
        let csv = "time,vm_id,cpu,mem,kind\n\
                   0,a,2,4096,create\n\
                   300,b,0.5,1024,create\n\
                   900,a,2,4096,delete\n";
        let mut r = reader(csv, 300.0, 6);
        let a = r.next_record().unwrap().unwrap();
        assert_eq!((a.arrival_sample, a.lease_samples), (0, Some(3)));
        assert_eq!(a.demand, vec![2.0, 2.0, 2.0]);
        let b = r.next_record().unwrap().unwrap();
        // No delete row: b runs to the horizon.
        assert_eq!((b.arrival_sample, b.lease_samples), (1, None));
        assert_eq!(b.demand, vec![0.5; 5]);
        assert!(r.next_record().is_none());
    }

    #[test]
    fn records_emit_in_arrival_order_for_assemble() {
        // Deletes arrive in the opposite order of creates; records
        // must still stream by arrival so assemble() accepts them.
        let csv = "time,vm_id,cpu,mem,kind\n\
                   0,early,1,0,create\n\
                   300,late,1,0,create\n\
                   600,late,1,0,delete\n\
                   900,early,1,0,delete\n";
        let mut r = reader(csv, 300.0, 6);
        let (fleet, lifecycle) = assemble(&mut r).unwrap();
        assert_eq!(fleet.vms()[0].name, "early");
        assert_eq!(fleet.vms()[1].name, "late");
        assert_eq!(lifecycle.entries()[1].departure_sample, Some(2));
    }

    #[test]
    fn delete_at_the_horizon_is_an_unbounded_lease() {
        let csv = "time,vm_id,cpu,mem,kind\n0,a,1,0,create\n1800,a,1,0,delete\n";
        let mut r = reader(csv, 300.0, 6);
        let a = r.next_record().unwrap().unwrap();
        assert_eq!(a.lease_samples, None);
        assert_eq!(a.demand.len(), 6);
    }

    #[test]
    fn backwards_clock_is_a_typed_error() {
        let csv = "time,vm_id,cpu,mem,kind\n600,a,1,0,create\n300,b,1,0,create\n";
        let mut r = reader(csv, 300.0, 6);
        assert_eq!(
            r.next_record().unwrap().unwrap_err(),
            WorkloadError::NonMonotoneClock {
                sample: 1,
                previous: 2
            }
        );
    }

    #[test]
    fn unknown_kind_missing_header_and_orphan_delete_are_typed_errors() {
        let mut r = reader("time,vm_id,cpu,mem,kind\n0,a,1,0,resize\n", 300.0, 6);
        assert_eq!(
            r.next_record().unwrap().unwrap_err(),
            WorkloadError::BadField {
                line: 2,
                column: "kind",
                value: "resize".into()
            }
        );
        let err = HuaweiTraceReader::new(Cursor::new(b"time,vm_id,cpu,mem\n".to_vec()), 300.0, 6)
            .unwrap_err();
        assert_eq!(err, WorkloadError::MissingColumn { column: "kind" });
        let mut r = reader("time,vm_id,cpu,mem,kind\n0,a,1,0,delete\n", 300.0, 6);
        assert!(r.next_record().unwrap().is_err());
    }

    #[test]
    fn write_then_read_round_trips() {
        let records = vec![
            TraceRecord {
                name: "x".into(),
                group: 0,
                arrival_sample: 0,
                lease_samples: Some(4),
                demand: vec![1.25; 4],
            },
            TraceRecord {
                name: "y".into(),
                group: 0,
                arrival_sample: 2,
                lease_samples: None,
                demand: vec![0.75; 6],
            },
        ];
        let csv = write_huawei_csv(&records, 300.0).unwrap();
        let mut r = HuaweiTraceReader::new(Cursor::new(csv.into_bytes()), 300.0, 8).unwrap();
        let back: Vec<_> = std::iter::from_fn(|| r.next_record())
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(back, records);
    }
}
