//! Client-population drive signals.
//!
//! Setup-1 of the paper emulates clients with Faban and "varied the
//! number of clients from 0∼300 with the form of sine and cosine waves
//! for Cluster1 and Cluster2, respectively". [`ClientWave`] reproduces
//! those signals (plus a few extra shapes useful for ablations) as
//! deterministic or noisy [`TimeSeries`].

use crate::WorkloadError;
use cavm_trace::{SimRng, TimeSeries};
use serde::{Deserialize, Serialize};

/// Periodic waveform shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WaveShape {
    /// `mid + amp·sin(2πt/T)` — Cluster1's drive in the paper.
    Sine,
    /// `mid + amp·cos(2πt/T)` — Cluster2's drive in the paper.
    Cosine,
    /// Square wave between min and max (duty cycle 50%).
    Square,
    /// Symmetric triangle wave between min and max.
    Triangle,
}

/// A periodic client-count signal between a floor and a ceiling.
///
/// # Example
///
/// ```
/// use cavm_workload::clients::ClientWave;
///
/// # fn main() -> Result<(), cavm_workload::WorkloadError> {
/// let sine = ClientWave::sine(0.0, 300.0, 1200.0)?;
/// let cosine = ClientWave::cosine(0.0, 300.0, 1200.0)?;
/// // The two drives are 90° out of phase: when one peaks the other is
/// // at its midpoint.
/// assert!((sine.value_at(300.0) - 300.0).abs() < 1e-9);
/// assert!((cosine.value_at(0.0) - 300.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientWave {
    shape: WaveShape,
    min: f64,
    max: f64,
    period_s: f64,
    phase_rad: f64,
}

impl ClientWave {
    /// Creates a wave with the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] when `min > max`,
    /// bounds are non-finite, or the period is not positive.
    pub fn new(shape: WaveShape, min: f64, max: f64, period_s: f64) -> crate::Result<Self> {
        if !(min.is_finite() && max.is_finite() && min <= max) {
            return Err(WorkloadError::InvalidParameter(
                "wave bounds must be finite, min <= max",
            ));
        }
        if !(period_s.is_finite() && period_s > 0.0) {
            return Err(WorkloadError::InvalidParameter("wave period must be > 0"));
        }
        Ok(Self {
            shape,
            min,
            max,
            period_s,
            phase_rad: 0.0,
        })
    }

    /// Sine wave between `min` and `max` (paper's Cluster1 drive).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClientWave::new`].
    pub fn sine(min: f64, max: f64, period_s: f64) -> crate::Result<Self> {
        Self::new(WaveShape::Sine, min, max, period_s)
    }

    /// Cosine wave between `min` and `max` (paper's Cluster2 drive).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClientWave::new`].
    pub fn cosine(min: f64, max: f64, period_s: f64) -> crate::Result<Self> {
        Self::new(WaveShape::Cosine, min, max, period_s)
    }

    /// Returns the wave shifted by an additional phase (radians).
    pub fn with_phase(mut self, phase_rad: f64) -> Self {
        self.phase_rad += phase_rad;
        self
    }

    /// The waveform shape.
    pub fn shape(&self) -> WaveShape {
        self.shape
    }

    /// Floor of the signal.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Ceiling of the signal.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Period in seconds.
    pub fn period_s(&self) -> f64 {
        self.period_s
    }

    /// Instantaneous client count at time `t` seconds.
    pub fn value_at(&self, t: f64) -> f64 {
        let mid = (self.min + self.max) / 2.0;
        let amp = (self.max - self.min) / 2.0;
        let theta = 2.0 * std::f64::consts::PI * t / self.period_s + self.phase_rad;
        match self.shape {
            WaveShape::Sine => mid + amp * theta.sin(),
            WaveShape::Cosine => mid + amp * theta.cos(),
            WaveShape::Square => {
                if theta.sin() >= 0.0 {
                    self.max
                } else {
                    self.min
                }
            }
            WaveShape::Triangle => {
                // Triangle from the phase within the period, peak at T/2.
                let frac = (theta / (2.0 * std::f64::consts::PI)).rem_euclid(1.0);
                let tri = if frac < 0.5 {
                    2.0 * frac
                } else {
                    2.0 * (1.0 - frac)
                };
                self.min + (self.max - self.min) * tri
            }
        }
    }

    /// Samples `n` points every `dt` seconds, deterministically.
    ///
    /// # Errors
    ///
    /// Propagates series-construction errors (invalid `dt`).
    pub fn sample(&self, dt: f64, n: usize) -> crate::Result<TimeSeries> {
        Ok(TimeSeries::from_fn(dt, n, |i| {
            self.value_at(i as f64 * dt)
        })?)
    }

    /// Samples with additive Gaussian noise, clamped to `[min, max]`
    /// (client counts cannot exceed the emulated population or go
    /// negative).
    ///
    /// # Errors
    ///
    /// Propagates series-construction errors (invalid `dt`).
    pub fn sample_noisy(
        &self,
        dt: f64,
        n: usize,
        noise_std: f64,
        rng: &mut SimRng,
    ) -> crate::Result<TimeSeries> {
        Ok(TimeSeries::from_fn(dt, n, |i| {
            (self.value_at(i as f64 * dt) + rng.normal(0.0, noise_std)).clamp(self.min, self.max)
        })?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(ClientWave::sine(10.0, 5.0, 100.0).is_err());
        assert!(ClientWave::sine(0.0, 10.0, 0.0).is_err());
        assert!(ClientWave::sine(f64::NAN, 10.0, 100.0).is_err());
        assert!(ClientWave::sine(0.0, 10.0, -5.0).is_err());
    }

    #[test]
    fn sine_hits_extremes_and_midpoint() {
        let w = ClientWave::sine(0.0, 300.0, 1200.0).unwrap();
        assert!((w.value_at(0.0) - 150.0).abs() < 1e-9);
        assert!((w.value_at(300.0) - 300.0).abs() < 1e-9);
        assert!((w.value_at(900.0) - 0.0).abs() < 1e-9);
        assert_eq!(w.shape(), WaveShape::Sine);
        assert_eq!((w.min(), w.max(), w.period_s()), (0.0, 300.0, 1200.0));
    }

    #[test]
    fn cosine_is_sine_shifted_by_quarter_period() {
        let s = ClientWave::sine(0.0, 300.0, 1200.0).unwrap();
        let c = ClientWave::cosine(0.0, 300.0, 1200.0).unwrap();
        for &t in &[0.0, 123.0, 599.0, 1111.0] {
            assert!((c.value_at(t) - s.value_at(t + 300.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn with_phase_shifts() {
        let s = ClientWave::sine(0.0, 2.0, 100.0).unwrap();
        let shifted = s.with_phase(std::f64::consts::PI);
        assert!((s.value_at(25.0) - 2.0).abs() < 1e-9);
        assert!((shifted.value_at(25.0) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn square_and_triangle_stay_in_bounds() {
        for shape in [WaveShape::Square, WaveShape::Triangle] {
            let w = ClientWave::new(shape, 1.0, 9.0, 60.0).unwrap();
            for i in 0..600 {
                let v = w.value_at(i as f64 * 0.25);
                assert!((1.0..=9.0).contains(&v), "{shape:?} out of bounds: {v}");
            }
        }
    }

    #[test]
    fn triangle_peaks_mid_period() {
        let w = ClientWave::new(WaveShape::Triangle, 0.0, 10.0, 100.0).unwrap();
        assert!((w.value_at(0.0) - 0.0).abs() < 1e-9);
        assert!((w.value_at(50.0) - 10.0).abs() < 1e-9);
        assert!((w.value_at(25.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn sample_is_periodic() {
        let w = ClientWave::sine(0.0, 100.0, 50.0).unwrap();
        let t = w.sample(1.0, 100).unwrap();
        for i in 0..50 {
            assert!((t.values()[i] - t.values()[i + 50]).abs() < 1e-9);
        }
    }

    #[test]
    fn noisy_sample_is_clamped_and_deterministic() {
        let w = ClientWave::sine(0.0, 300.0, 1200.0).unwrap();
        let mut r1 = SimRng::new(5);
        let mut r2 = SimRng::new(5);
        let a = w.sample_noisy(1.0, 500, 30.0, &mut r1).unwrap();
        let b = w.sample_noisy(1.0, 500, 30.0, &mut r2).unwrap();
        assert_eq!(a, b);
        assert!(a.peak() <= 300.0);
        assert!(a.min() >= 0.0);
    }
}
