//! Server fault schedules — when each server of a fleet fails and
//! recovers.
//!
//! The consolidation policies this workspace reproduces deliberately
//! concentrate load onto few servers, which makes the resulting
//! schedule maximally exposed to hardware churn (cf. Nanduri et al.,
//! *Energy and SLA aware VM Scheduling*; Esfandiarpoor et al., *VM
//! Consolidation for Datacenter Energy Improvement*): aggressive
//! packing is only viable when the allocator can absorb capacity loss.
//! A [`FaultPlan`] is the injection side of that story — a
//! deterministic schedule of `ServerFail`/`ServerRecover` transitions
//! the replay engine interleaves with the VM lifecycle stream, built
//! from two classic ingredients:
//!
//! * **Per-server Poisson MTBF/MTTR** — each server alternates
//!   exponentially-distributed up and down intervals, independently of
//!   its neighbours.
//! * **Correlated whole-block outages** — an optional second process
//!   per server block (a rack, a power domain, a fleet class) that
//!   fails *every* server of the block at once and recovers them
//!   together, the failure mode independent per-server models cannot
//!   express.
//!
//! Everything is deterministic given a seed (see
//! [`cavm_trace::SimRng`]).
//!
//! # Example
//!
//! ```
//! use cavm_workload::faults::{FaultKind, FaultModel, FaultPlanBuilder};
//!
//! # fn main() -> Result<(), cavm_workload::WorkloadError> {
//! let horizon = 24 * 720; // 24 h of 5 s samples
//! let build = || {
//!     FaultPlanBuilder::new(horizon)
//!         .seed(13)
//!         .block(
//!             0,
//!             8,
//!             FaultModel {
//!                 mtbf_samples: 6_000.0,
//!                 mttr_samples: 400.0,
//!                 outage_mtbf_samples: Some(40_000.0),
//!                 outage_mttr_samples: 200.0,
//!             },
//!         )
//!         .build()
//! };
//! let plan = build()?;
//! assert_eq!(plan, build()?, "seeded plans are deterministic");
//! // Entries are globally ordered; every transition stays in range.
//! for pair in plan.entries().windows(2) {
//!     assert!(pair[0].sample <= pair[1].sample);
//! }
//! for entry in plan.entries() {
//!     assert!(entry.sample < horizon);
//!     assert!(entry.server < 8);
//!     let _ = matches!(entry.kind, FaultKind::Fail | FaultKind::Recover);
//! }
//! # Ok(())
//! # }
//! ```

use crate::WorkloadError;
use cavm_trace::SimRng;
use serde::{Deserialize, Serialize};

/// The direction of one server health transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The server goes down.
    Fail,
    /// The server comes back.
    Recover,
}

impl FaultKind {
    /// Within-sample delivery rank: recoveries apply before failures
    /// at the same instant, so a same-sample repair-then-refail
    /// sequence is expressible.
    fn rank(self) -> u8 {
        match self {
            FaultKind::Recover => 0,
            FaultKind::Fail => 1,
        }
    }
}

/// One scheduled health transition of one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEntry {
    /// Fine sample index at which the transition applies.
    pub sample: usize,
    /// What happens.
    pub kind: FaultKind,
    /// The affected server (fleet fill-order index).
    pub server: usize,
}

/// The failure behaviour of one server block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Mean samples between independent failures of one server
    /// (exponentially distributed). Must be finite and positive.
    pub mtbf_samples: f64,
    /// Mean samples one independent failure takes to repair
    /// (exponentially distributed). Must be finite and positive.
    pub mttr_samples: f64,
    /// Mean samples between correlated whole-block outages, or `None`
    /// to disable the correlated process for this block.
    pub outage_mtbf_samples: Option<f64>,
    /// Mean samples a whole-block outage lasts. Only read when
    /// [`FaultModel::outage_mtbf_samples`] is set.
    pub outage_mttr_samples: f64,
}

/// A schedule of server health transitions over a fixed horizon.
///
/// Builder-made plans are globally ordered by `(sample, kind, server)`
/// with recoveries ranked before same-sample failures;
/// [`FaultPlan::from_entries`] preserves the caller's order verbatim
/// (the scenario layer validates monotonicity before replay, so a
/// hand-built plan with a backwards clock is rejected there with a
/// typed error instead of replaying out of order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// Wraps explicit transitions (e.g. replayed from an incident
    /// log), preserving their order.
    pub fn from_entries(entries: Vec<FaultEntry>) -> Self {
        Self { entries }
    }

    /// A plan with no faults.
    pub fn empty() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// The transitions, in plan order.
    pub fn entries(&self) -> &[FaultEntry] {
        &self.entries
    }

    /// Number of transitions in the plan.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan schedules no transitions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The transitions scheduled at exactly `sample`. Requires a
    /// sample-ordered plan (which builder-made plans are; hand-built
    /// plans are validated at scenario construction).
    pub fn events_at(&self, sample: usize) -> &[FaultEntry] {
        let lo = self.entries.partition_point(|e| e.sample < sample);
        let hi = self.entries.partition_point(|e| e.sample <= sample);
        &self.entries[lo..hi]
    }

    /// The largest server index any transition touches.
    pub fn max_server(&self) -> Option<usize> {
        self.entries.iter().map(|e| e.server).max()
    }

    /// Scheduled `Fail` transitions (an idempotent replay may apply
    /// fewer — e.g. a correlated outage overlapping an independent
    /// failure).
    pub fn failures(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.kind == FaultKind::Fail)
            .count()
    }
}

/// One registered server block and its model.
#[derive(Debug, Clone, Copy)]
struct Block {
    first_server: usize,
    count: usize,
    model: FaultModel,
}

/// Deterministic [`FaultPlan`] synthesis. See the [module
/// docs](self).
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    horizon: usize,
    seed: u64,
    blocks: Vec<Block>,
}

impl FaultPlanBuilder {
    /// Starts a plan over `horizon` fine samples.
    pub fn new(horizon: usize) -> Self {
        Self {
            horizon,
            seed: 0,
            blocks: Vec::new(),
        }
    }

    /// Seeds the generator (default 0). Identical seeds and blocks
    /// produce identical plans.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Registers `count` servers starting at fill-order index
    /// `first_server`, all failing per `model`. Typically one block
    /// per fleet class (matching the fill order of the scenario's
    /// `ServerFleet`).
    pub fn block(mut self, first_server: usize, count: usize, model: FaultModel) -> Self {
        self.blocks.push(Block {
            first_server,
            count,
            model,
        });
        self
    }

    /// Builds the plan.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for a zero horizon,
    /// an empty or overlapping block, or a non-positive/non-finite
    /// MTBF or MTTR.
    pub fn build(self) -> crate::Result<FaultPlan> {
        if self.horizon == 0 {
            return Err(WorkloadError::InvalidParameter(
                "fault plan horizon must be at least one sample",
            ));
        }
        let positive = |v: f64| v.is_finite() && v > 0.0;
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for block in &self.blocks {
            if block.count == 0 {
                return Err(WorkloadError::InvalidParameter(
                    "fault block needs at least one server",
                ));
            }
            if !positive(block.model.mtbf_samples) || !positive(block.model.mttr_samples) {
                return Err(WorkloadError::InvalidParameter(
                    "fault mtbf/mttr must be finite and > 0",
                ));
            }
            if let Some(outage) = block.model.outage_mtbf_samples {
                if !positive(outage) || !positive(block.model.outage_mttr_samples) {
                    return Err(WorkloadError::InvalidParameter(
                        "outage mtbf/mttr must be finite and > 0",
                    ));
                }
            }
            spans.push((block.first_server, block.first_server + block.count));
        }
        spans.sort_unstable();
        if spans.windows(2).any(|w| w[1].0 < w[0].1) {
            return Err(WorkloadError::InvalidParameter(
                "fault blocks must not overlap",
            ));
        }

        let mut rng = SimRng::new(self.seed);
        let mut entries: Vec<FaultEntry> = Vec::new();
        // One alternating up/down renewal process; emits the
        // transitions that land inside the horizon.
        let renewal = |rng: &mut SimRng,
                       entries: &mut Vec<FaultEntry>,
                       servers: &[usize],
                       mtbf: f64,
                       mttr: f64|
         -> crate::Result<()> {
            let mut t = 0.0f64;
            loop {
                t += rng.exponential(1.0 / mtbf).map_err(WorkloadError::Trace)?;
                let fail_at = t.floor() as usize;
                if fail_at >= self.horizon {
                    return Ok(());
                }
                t += rng.exponential(1.0 / mttr).map_err(WorkloadError::Trace)?;
                // A repair must land strictly after its failure so the
                // down interval is visible on the sample grid.
                let recover_at = (t.floor() as usize).max(fail_at + 1);
                for &server in servers {
                    entries.push(FaultEntry {
                        sample: fail_at,
                        kind: FaultKind::Fail,
                        server,
                    });
                    if recover_at < self.horizon {
                        entries.push(FaultEntry {
                            sample: recover_at,
                            kind: FaultKind::Recover,
                            server,
                        });
                    }
                }
                if recover_at >= self.horizon {
                    return Ok(());
                }
                t = recover_at as f64;
            }
        };
        for block in &self.blocks {
            for server in block.first_server..block.first_server + block.count {
                renewal(
                    &mut rng,
                    &mut entries,
                    &[server],
                    block.model.mtbf_samples,
                    block.model.mttr_samples,
                )?;
            }
            if let Some(outage_mtbf) = block.model.outage_mtbf_samples {
                let servers: Vec<usize> =
                    (block.first_server..block.first_server + block.count).collect();
                renewal(
                    &mut rng,
                    &mut entries,
                    &servers,
                    outage_mtbf,
                    block.model.outage_mttr_samples,
                )?;
            }
        }
        // Global delivery order; recoveries precede same-sample
        // failures. Overlaps between the independent and correlated
        // processes are legitimate (the replay applies transitions
        // idempotently).
        entries.sort_by_key(|e| (e.sample, e.kind.rank(), e.server));
        Ok(FaultPlan { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FaultModel {
        FaultModel {
            mtbf_samples: 500.0,
            mttr_samples: 60.0,
            outage_mtbf_samples: None,
            outage_mttr_samples: 1.0,
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_ordered() {
        let build = || {
            FaultPlanBuilder::new(4_000)
                .seed(7)
                .block(0, 4, model())
                .build()
                .unwrap()
        };
        let plan = build();
        assert_eq!(plan, build());
        assert!(!plan.is_empty(), "4 servers over 8 MTBFs must fail");
        for pair in plan.entries().windows(2) {
            assert!(pair[0].sample <= pair[1].sample);
        }
        assert!(plan.max_server().unwrap() < 4);
        // Per server, transitions strictly alternate Fail → Recover.
        for server in 0..4 {
            let kinds: Vec<FaultKind> = plan
                .entries()
                .iter()
                .filter(|e| e.server == server)
                .map(|e| e.kind)
                .collect();
            for (i, kind) in kinds.iter().enumerate() {
                let expect = if i % 2 == 0 {
                    FaultKind::Fail
                } else {
                    FaultKind::Recover
                };
                assert_eq!(*kind, expect, "server {server} transition {i}");
            }
        }
    }

    #[test]
    fn correlated_outages_take_the_whole_block_down_together() {
        let plan = FaultPlanBuilder::new(50_000)
            .seed(3)
            .block(
                0,
                5,
                FaultModel {
                    // Independent failures effectively off (one MTBF
                    // far past the horizon), outages on.
                    mtbf_samples: 1e12,
                    mttr_samples: 1.0,
                    outage_mtbf_samples: Some(10_000.0),
                    outage_mttr_samples: 300.0,
                },
            )
            .build()
            .unwrap();
        assert!(!plan.is_empty(), "5 MTBFs of horizon must produce outages");
        // Every scheduled sample must carry transitions for all 5
        // servers of the block at once.
        let mut k = 0;
        while k < plan.len() {
            let sample = plan.entries()[k].sample;
            let batch = plan.events_at(sample);
            assert_eq!(batch.len() % 5, 0, "whole-block transitions at {sample}");
            k += batch.len();
        }
    }

    #[test]
    fn events_at_slices_by_sample() {
        let plan = FaultPlan::from_entries(vec![
            FaultEntry {
                sample: 3,
                kind: FaultKind::Fail,
                server: 0,
            },
            FaultEntry {
                sample: 3,
                kind: FaultKind::Fail,
                server: 1,
            },
            FaultEntry {
                sample: 9,
                kind: FaultKind::Recover,
                server: 0,
            },
        ]);
        assert_eq!(plan.events_at(0).len(), 0);
        assert_eq!(plan.events_at(3).len(), 2);
        assert_eq!(plan.events_at(9).len(), 1);
        assert_eq!(plan.failures(), 2);
        assert_eq!(plan.len(), 3);
        assert!(FaultPlan::empty().is_empty());
    }

    #[test]
    fn builder_rejects_bad_parameters() {
        assert!(FaultPlanBuilder::new(0).build().is_err(), "zero horizon");
        assert!(
            FaultPlanBuilder::new(100)
                .block(0, 0, model())
                .build()
                .is_err(),
            "empty block"
        );
        assert!(
            FaultPlanBuilder::new(100)
                .block(0, 4, model())
                .block(2, 4, model())
                .build()
                .is_err(),
            "overlapping blocks"
        );
        let bad = FaultModel {
            mtbf_samples: 0.0,
            ..model()
        };
        assert!(
            FaultPlanBuilder::new(100).block(0, 1, bad).build().is_err(),
            "zero mtbf"
        );
        let bad = FaultModel {
            outage_mtbf_samples: Some(f64::NAN),
            ..model()
        };
        assert!(
            FaultPlanBuilder::new(100).block(0, 1, bad).build().is_err(),
            "nan outage mtbf"
        );
        // An empty plan (no blocks) is valid — the no-fault default.
        assert!(FaultPlanBuilder::new(100).build().unwrap().is_empty());
    }
}
