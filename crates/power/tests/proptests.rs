//! Property-based tests for the power/DVFS models.

use cavm_power::{
    CubicPowerModel, DvfsLadder, DwellGuard, EnergyMeter, Frequency, LinearPowerModel, PowerModel,
};
use proptest::prelude::*;

proptest! {
    /// snap_up never selects a level below the request unless the request
    /// exceeds the top level, and always returns a ladder level.
    #[test]
    fn snap_up_sound(levels in prop::collection::vec(0.5f64..4.0, 1..6), req in 0.1f64..5.0) {
        let ladder = DvfsLadder::new(
            levels.iter().map(|&g| Frequency::from_ghz(g)).collect(),
        ).unwrap();
        let chosen = ladder.snap_up(Frequency::from_ghz(req));
        prop_assert!(ladder.index_of(chosen).is_some());
        if req <= ladder.max().as_ghz() {
            prop_assert!(chosen.as_ghz() >= req - 1e-12);
            // Minimality: no lower ladder level also satisfies the request.
            for &l in ladder.levels() {
                if l < chosen {
                    prop_assert!(l.as_ghz() < req);
                }
            }
        } else {
            prop_assert_eq!(chosen, ladder.max());
        }
    }

    /// Linear model power is monotone in utilization.
    #[test]
    fn linear_power_monotone_in_u(u1 in 0.0f64..=1.0, u2 in 0.0f64..=1.0) {
        let m = LinearPowerModel::xeon_e5410();
        let f = m.ladder().max();
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(m.power(lo, f).unwrap() <= m.power(hi, f).unwrap() + 1e-12);
    }

    /// Cubic model power is monotone in both utilization and frequency.
    #[test]
    fn cubic_power_monotone(
        u1 in 0.0f64..=1.0,
        u2 in 0.0f64..=1.0,
        stat in 0.0f64..300.0,
        dyn_w in 0.0f64..300.0,
        idle_frac in 0.0f64..=1.0,
    ) {
        let ladder = DvfsLadder::new(vec![
            Frequency::from_ghz(1.0),
            Frequency::from_ghz(1.7),
            Frequency::from_ghz(2.4),
        ]).unwrap();
        let m = CubicPowerModel::new(ladder, stat, dyn_w, idle_frac).unwrap();
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        for &f in m.ladder().levels() {
            prop_assert!(m.power(lo, f).unwrap() <= m.power(hi, f).unwrap() + 1e-12);
        }
        for fs in m.ladder().levels().windows(2) {
            prop_assert!(m.power(u1, fs[0]).unwrap() <= m.power(u1, fs[1]).unwrap() + 1e-12);
        }
    }

    /// EnergyMeter is additive: splitting an interval changes nothing.
    #[test]
    fn energy_meter_additive(w in 0.0f64..1000.0, dt in 0.0f64..100.0, split in 0.0f64..=1.0) {
        let mut whole = EnergyMeter::new();
        whole.add(w, dt);
        let mut parts = EnergyMeter::new();
        parts.add(w, dt * split);
        parts.add(w, dt * (1.0 - split));
        prop_assert!((whole.joules() - parts.joules()).abs() < 1e-6);
        prop_assert!((whole.seconds() - parts.seconds()).abs() < 1e-9);
    }

    /// DwellGuard output is always either the proposal or the held level,
    /// and up-switches always pass.
    #[test]
    fn dwell_guard_sound(dwell in 0u32..5, proposals in prop::collection::vec(0usize..4, 1..50)) {
        let mut g = DwellGuard::new(dwell);
        let mut held: Option<usize> = None;
        for &p in &proposals {
            let out = g.filter(p);
            match held {
                None => prop_assert_eq!(out, p),
                Some(h) => {
                    prop_assert!(out == p || out == h);
                    if p > h {
                        prop_assert_eq!(out, p, "up-switch must pass");
                    }
                }
            }
            held = Some(out);
        }
    }
}
