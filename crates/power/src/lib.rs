//! Server power and DVFS models for the `cavm` workspace.
//!
//! The paper saves power in two ways: switching servers off entirely
//! (consolidation) and running the remaining servers at a lower
//! voltage/frequency level (Eqn 4). This crate models the machinery both
//! require:
//!
//! * [`dvfs`] — discrete frequency ladders ([`DvfsLadder`]) with snap-up
//!   level selection and an anti-oscillation dwell guard. The paper's
//!   testbeds expose exactly two levels each (Opteron 6174: 1.9/2.1 GHz,
//!   Xeon E5410: 2.0/2.3 GHz).
//! * [`model`] — the [`PowerModel`] trait with a per-level linear model
//!   (idle/busy watts per frequency, the form used by Pedram et al. \[13\],
//!   which the paper adopts) and an analytic cubic-in-frequency model.
//! * [`energy`] — [`EnergyMeter`], integrating instantaneous power over
//!   sampled traces into joules, and normalized comparisons between
//!   policies (Table II reports power normalized to BFD).
//!
//! # Example
//!
//! ```
//! use cavm_power::{DvfsLadder, Frequency, LinearPowerModel, PowerModel};
//!
//! # fn main() -> Result<(), cavm_power::PowerError> {
//! let ladder = DvfsLadder::xeon_e5410();
//! // A server that must deliver 78% of its max-frequency capacity can
//! // run at the lower of the two levels (2.0/2.3 = 87%).
//! let f = ladder.snap_up_fraction(0.78)?;
//! assert_eq!(f, Frequency::from_ghz(2.0));
//!
//! let model = LinearPowerModel::xeon_e5410();
//! assert!(model.power(0.5, f)? < model.power(0.5, ladder.max())?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dvfs;
pub mod energy;
mod error;
pub mod model;

pub use dvfs::{DvfsLadder, DwellGuard, Frequency};
pub use energy::EnergyMeter;
pub use error::PowerError;
pub use model::{CubicPowerModel, LinearPowerModel, PowerModel};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PowerError>;
