//! Server power models.
//!
//! The paper's Setup-2 "used the power model proposed in \[13\]" (Pedram et
//! al., *Power and performance modeling in a virtualized server system*),
//! which expresses server power as an affine function of CPU utilization
//! with frequency-dependent coefficients. [`LinearPowerModel`] is exactly
//! that shape: per frequency level, an idle wattage and a busy wattage,
//! interpolated linearly in utilization. [`CubicPowerModel`] is an
//! analytic alternative (static + dynamic `∝ u·f³`) for sensitivity
//! studies with many-level ladders.
//!
//! Utilization here is the fraction `u ∈ [0, 1]` of the server's
//! capacity **at the given frequency** that is busy. Energy comparisons
//! in Table II only depend on power *ratios*, so absolute calibration is
//! not critical — the presets use plausible published figures for the two
//! testbed machines.

use crate::{DvfsLadder, Frequency, PowerError};
use serde::{Deserialize, Serialize};

/// Instantaneous server power as a function of utilization and frequency.
///
/// Implementors must be monotone: more utilization or a higher frequency
/// never consumes less power. The property tests in `cavm-power` pin this
/// for the provided models.
pub trait PowerModel {
    /// Power draw in watts at utilization `u ∈ [0, 1]` and frequency `f`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidUtilization`] when `u ∉ [0, 1]` and
    /// [`PowerError::UnknownLevel`] when `f` is not a level this model
    /// knows.
    fn power(&self, u: f64, f: Frequency) -> crate::Result<f64>;

    /// Power draw of a powered-off (or deep-sleep) server in watts.
    /// Defaults to zero — the consolidation literature and the paper
    /// count switched-off servers as free.
    fn off_power(&self) -> f64 {
        0.0
    }

    /// The frequency ladder this model is calibrated for.
    fn ladder(&self) -> &DvfsLadder;
}

/// Per-level idle/busy wattage pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelPower {
    /// Level frequency.
    pub frequency: Frequency,
    /// Watts drawn at `u = 0` (idle at this level).
    pub idle_watts: f64,
    /// Watts drawn at `u = 1` (fully busy at this level).
    pub busy_watts: f64,
}

/// Affine-in-utilization power model with per-frequency calibration
/// points (the Pedram et al. form used by the paper).
///
/// # Example
///
/// ```
/// use cavm_power::{Frequency, LinearPowerModel, PowerModel};
///
/// # fn main() -> Result<(), cavm_power::PowerError> {
/// let model = LinearPowerModel::xeon_e5410();
/// let f_low = Frequency::from_ghz(2.0);
/// let idle = model.power(0.0, f_low)?;
/// let busy = model.power(1.0, f_low)?;
/// let half = model.power(0.5, f_low)?;
/// assert!((half - (idle + busy) / 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearPowerModel {
    ladder: DvfsLadder,
    /// Aligned with `ladder.levels()`.
    points: Vec<LevelPower>,
}

impl LinearPowerModel {
    /// Builds a model from calibration points (one per level, any order).
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::EmptyLadder`] with no points,
    /// [`PowerError::InvalidParameter`] if wattages are negative,
    /// non-finite, busy < idle, or power is not monotone in frequency.
    pub fn new(mut points: Vec<LevelPower>) -> crate::Result<Self> {
        if points.is_empty() {
            return Err(PowerError::EmptyLadder);
        }
        for p in &points {
            let ok = p.idle_watts.is_finite()
                && p.busy_watts.is_finite()
                && p.idle_watts >= 0.0
                && p.busy_watts >= p.idle_watts;
            if !ok {
                return Err(PowerError::InvalidParameter(
                    "level power points require 0 <= idle <= busy, finite",
                ));
            }
        }
        points.sort_by(|a, b| {
            a.frequency
                .partial_cmp(&b.frequency)
                .expect("finite frequencies")
        });
        for pair in points.windows(2) {
            if pair[0].frequency == pair[1].frequency {
                return Err(PowerError::InvalidParameter("duplicate frequency level"));
            }
            if pair[0].idle_watts > pair[1].idle_watts || pair[0].busy_watts > pair[1].busy_watts {
                return Err(PowerError::InvalidParameter(
                    "power must be monotone non-decreasing in frequency",
                ));
            }
        }
        let ladder = DvfsLadder::new(points.iter().map(|p| p.frequency).collect())?;
        Ok(Self { ladder, points })
    }

    /// Preset for the Intel Xeon E5410 server of Setup-2 (2.0/2.3 GHz).
    ///
    /// Idle/busy figures follow typical published SPECpower-era numbers
    /// for dual-socket Harpertown boxes (the top level pays the higher
    /// core voltage across the whole envelope); only ratios matter for
    /// the normalized Table II comparison.
    pub fn xeon_e5410() -> Self {
        Self::new(vec![
            LevelPower {
                frequency: Frequency::from_ghz(2.0),
                idle_watts: 160.0,
                busy_watts: 250.0,
            },
            LevelPower {
                frequency: Frequency::from_ghz(2.3),
                idle_watts: 190.0,
                busy_watts: 300.0,
            },
        ])
        .expect("static preset is valid")
    }

    /// Preset for the AMD Opteron 6174 (DELL R815) server of Setup-1
    /// (1.9/2.1 GHz).
    pub fn opteron_6174() -> Self {
        Self::new(vec![
            LevelPower {
                frequency: Frequency::from_ghz(1.9),
                idle_watts: 210.0,
                busy_watts: 330.0,
            },
            LevelPower {
                frequency: Frequency::from_ghz(2.1),
                idle_watts: 225.0,
                busy_watts: 375.0,
            },
        ])
        .expect("static preset is valid")
    }

    /// Calibration points, ascending by frequency.
    pub fn points(&self) -> &[LevelPower] {
        &self.points
    }

    /// A copy with every idle/busy wattage multiplied by `factor` — a
    /// quick way to derive plausible models for bigger or smaller boxes
    /// of the same generation (e.g. a dual-board 16-core sibling at
    /// `factor = 2.0`) when building heterogeneous fleets.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a non-finite or
    /// non-positive factor.
    pub fn scaled(&self, factor: f64) -> crate::Result<Self> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(PowerError::InvalidParameter(
                "power scale factor must be finite and > 0",
            ));
        }
        Self::new(
            self.points
                .iter()
                .map(|p| LevelPower {
                    frequency: p.frequency,
                    idle_watts: p.idle_watts * factor,
                    busy_watts: p.busy_watts * factor,
                })
                .collect(),
        )
    }
}

impl PowerModel for LinearPowerModel {
    fn power(&self, u: f64, f: Frequency) -> crate::Result<f64> {
        if !(0.0..=1.0).contains(&u) || u.is_nan() {
            return Err(PowerError::InvalidUtilization(u));
        }
        let point = self
            .points
            .iter()
            .find(|p| p.frequency == f)
            .ok_or(PowerError::UnknownLevel(f))?;
        Ok(point.idle_watts + (point.busy_watts - point.idle_watts) * u)
    }

    fn ladder(&self) -> &DvfsLadder {
        &self.ladder
    }
}

/// Analytic model: `P(u, f) = P_static + C_dyn · (f/f_max)³ · (k + (1-k)·u)`.
///
/// `k ∈ [0, 1]` is the fraction of the dynamic power that is
/// utilization-independent (clock tree, uncore). Useful for studying
/// ladders with many levels, where hand calibration of a
/// [`LinearPowerModel`] would be tedious.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CubicPowerModel {
    ladder: DvfsLadder,
    static_watts: f64,
    dynamic_watts: f64,
    idle_fraction: f64,
}

impl CubicPowerModel {
    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for negative/non-finite
    /// wattages or `idle_fraction ∉ [0, 1]`.
    pub fn new(
        ladder: DvfsLadder,
        static_watts: f64,
        dynamic_watts: f64,
        idle_fraction: f64,
    ) -> crate::Result<Self> {
        let ok = static_watts.is_finite()
            && dynamic_watts.is_finite()
            && static_watts >= 0.0
            && dynamic_watts >= 0.0
            && (0.0..=1.0).contains(&idle_fraction);
        if !ok {
            return Err(PowerError::InvalidParameter(
                "cubic model requires finite non-negative watts and idle_fraction in [0,1]",
            ));
        }
        Ok(Self {
            ladder,
            static_watts,
            dynamic_watts,
            idle_fraction,
        })
    }
}

impl PowerModel for CubicPowerModel {
    fn power(&self, u: f64, f: Frequency) -> crate::Result<f64> {
        if !(0.0..=1.0).contains(&u) || u.is_nan() {
            return Err(PowerError::InvalidUtilization(u));
        }
        if self.ladder.index_of(f).is_none() {
            return Err(PowerError::UnknownLevel(f));
        }
        let scale = f.ratio_to(self.ladder.max()).powi(3);
        let activity = self.idle_fraction + (1.0 - self.idle_fraction) * u;
        Ok(self.static_watts + self.dynamic_watts * scale * activity)
    }

    fn ladder(&self) -> &DvfsLadder {
        &self.ladder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_model_interpolates() {
        let m = LinearPowerModel::xeon_e5410();
        let f = Frequency::from_ghz(2.3);
        assert_eq!(m.power(0.0, f).unwrap(), 190.0);
        assert_eq!(m.power(1.0, f).unwrap(), 300.0);
        assert!((m.power(0.25, f).unwrap() - (190.0 + 0.25 * 110.0)).abs() < 1e-9);
    }

    #[test]
    fn linear_model_validates_inputs() {
        let m = LinearPowerModel::xeon_e5410();
        let f = Frequency::from_ghz(2.3);
        assert!(matches!(
            m.power(-0.1, f),
            Err(PowerError::InvalidUtilization(_))
        ));
        assert!(matches!(
            m.power(1.1, f),
            Err(PowerError::InvalidUtilization(_))
        ));
        assert!(matches!(
            m.power(f64::NAN, f),
            Err(PowerError::InvalidUtilization(_))
        ));
        assert!(matches!(
            m.power(0.5, Frequency::from_ghz(3.0)),
            Err(PowerError::UnknownLevel(_))
        ));
    }

    #[test]
    fn linear_model_rejects_bad_points() {
        // busy < idle
        assert!(LinearPowerModel::new(vec![LevelPower {
            frequency: Frequency::from_ghz(1.0),
            idle_watts: 100.0,
            busy_watts: 50.0,
        }])
        .is_err());
        // duplicate level
        assert!(LinearPowerModel::new(vec![
            LevelPower {
                frequency: Frequency::from_ghz(1.0),
                idle_watts: 10.0,
                busy_watts: 20.0
            },
            LevelPower {
                frequency: Frequency::from_ghz(1.0),
                idle_watts: 11.0,
                busy_watts: 21.0
            },
        ])
        .is_err());
        // power decreasing in frequency
        assert!(LinearPowerModel::new(vec![
            LevelPower {
                frequency: Frequency::from_ghz(1.0),
                idle_watts: 50.0,
                busy_watts: 100.0
            },
            LevelPower {
                frequency: Frequency::from_ghz(2.0),
                idle_watts: 40.0,
                busy_watts: 90.0
            },
        ])
        .is_err());
        // empty
        assert!(matches!(
            LinearPowerModel::new(vec![]),
            Err(PowerError::EmptyLadder)
        ));
    }

    #[test]
    fn linear_model_monotone_in_frequency() {
        let m = LinearPowerModel::xeon_e5410();
        for &u in &[0.0, 0.3, 0.7, 1.0] {
            let lo = m.power(u, Frequency::from_ghz(2.0)).unwrap();
            let hi = m.power(u, Frequency::from_ghz(2.3)).unwrap();
            assert!(lo < hi, "u={u}: {lo} !< {hi}");
        }
    }

    #[test]
    fn scaled_model_multiplies_wattages() {
        let m = LinearPowerModel::xeon_e5410();
        let double = m.scaled(2.0).unwrap();
        let f = Frequency::from_ghz(2.0);
        assert_eq!(
            double.power(0.0, f).unwrap(),
            2.0 * m.power(0.0, f).unwrap()
        );
        assert_eq!(
            double.power(1.0, f).unwrap(),
            2.0 * m.power(1.0, f).unwrap()
        );
        assert_eq!(double.ladder(), m.ladder());
        assert!(m.scaled(0.0).is_err());
        assert!(m.scaled(f64::NAN).is_err());
    }

    #[test]
    fn presets_expose_ladders() {
        assert_eq!(LinearPowerModel::xeon_e5410().ladder().len(), 2);
        assert_eq!(LinearPowerModel::opteron_6174().ladder().len(), 2);
        assert_eq!(LinearPowerModel::xeon_e5410().points().len(), 2);
        assert_eq!(LinearPowerModel::xeon_e5410().off_power(), 0.0);
    }

    #[test]
    fn cubic_model_scales_with_f_cubed() {
        let ladder =
            DvfsLadder::new(vec![Frequency::from_ghz(1.0), Frequency::from_ghz(2.0)]).unwrap();
        let m = CubicPowerModel::new(ladder, 100.0, 200.0, 0.0).unwrap();
        let p_lo = m.power(1.0, Frequency::from_ghz(1.0)).unwrap();
        let p_hi = m.power(1.0, Frequency::from_ghz(2.0)).unwrap();
        // Dynamic part at f/2 is 1/8 of the part at f.
        assert!((p_lo - (100.0 + 200.0 / 8.0)).abs() < 1e-9);
        assert!((p_hi - 300.0).abs() < 1e-9);
    }

    #[test]
    fn cubic_model_validates() {
        let ladder = DvfsLadder::xeon_e5410();
        assert!(CubicPowerModel::new(ladder.clone(), -1.0, 10.0, 0.5).is_err());
        assert!(CubicPowerModel::new(ladder.clone(), 1.0, 10.0, 1.5).is_err());
        let m = CubicPowerModel::new(ladder, 10.0, 10.0, 0.3).unwrap();
        assert!(matches!(
            m.power(0.5, Frequency::from_ghz(9.0)),
            Err(PowerError::UnknownLevel(_))
        ));
        assert!(m.power(2.0, Frequency::from_ghz(2.0)).is_err());
    }

    #[test]
    fn models_are_object_safe() {
        let models: Vec<Box<dyn PowerModel>> = vec![
            Box::new(LinearPowerModel::xeon_e5410()),
            Box::new(CubicPowerModel::new(DvfsLadder::xeon_e5410(), 100.0, 150.0, 0.2).unwrap()),
        ];
        for m in &models {
            let p = m.power(0.5, m.ladder().max()).unwrap();
            assert!(p > 0.0);
        }
    }
}
