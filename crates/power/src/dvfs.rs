//! Discrete DVFS frequency ladders.
//!
//! Real servers expose a small set of voltage/frequency operating points;
//! both of the paper's testbeds expose exactly two. The frequency decided
//! by Eqn (4) is continuous, so the runtime must **snap up** to the
//! next-higher available level — rounding down would violate the
//! capacity the equation guarantees.

use crate::PowerError;
use serde::{Deserialize, Serialize};

/// A CPU core frequency, stored in GHz.
///
/// A thin newtype so frequencies cannot be confused with utilizations or
/// scaling fractions in APIs.
///
/// # Example
///
/// ```
/// use cavm_power::Frequency;
///
/// let f = Frequency::from_ghz(2.3);
/// assert_eq!(f.as_ghz(), 2.3);
/// assert!((Frequency::from_mhz(1900.0).as_ghz() - 1.9).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Frequency(f64);

impl Frequency {
    /// Creates a frequency from GHz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not finite and positive — construction from a
    /// constant is a programming decision, not runtime input.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "invalid frequency {ghz} GHz");
        Self(ghz)
    }

    /// Creates a frequency from MHz.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Frequency::from_ghz`].
    pub fn from_mhz(mhz: f64) -> Self {
        Self::from_ghz(mhz / 1000.0)
    }

    /// The frequency in GHz.
    pub fn as_ghz(&self) -> f64 {
        self.0
    }

    /// The frequency in MHz.
    pub fn as_mhz(&self) -> f64 {
        self.0 * 1000.0
    }

    /// `self / other`, the dimensionless scaling factor between two
    /// frequencies.
    pub fn ratio_to(&self, other: Frequency) -> f64 {
        self.0 / other.0
    }
}

impl std::fmt::Display for Frequency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} GHz", self.0)
    }
}

/// An ascending set of discrete frequency levels.
///
/// # Example
///
/// ```
/// use cavm_power::{DvfsLadder, Frequency};
///
/// # fn main() -> Result<(), cavm_power::PowerError> {
/// let ladder = DvfsLadder::new(vec![
///     Frequency::from_ghz(2.3),
///     Frequency::from_ghz(2.0),
/// ])?;
/// assert_eq!(ladder.min().as_ghz(), 2.0);
/// assert_eq!(ladder.max().as_ghz(), 2.3);
/// // Requests above the top level saturate at the top level.
/// assert_eq!(ladder.snap_up(Frequency::from_ghz(9.9)), ladder.max());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsLadder {
    /// Ascending, deduplicated levels.
    levels: Vec<Frequency>,
}

impl DvfsLadder {
    /// Builds a ladder from levels in any order; duplicates are merged.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::EmptyLadder`] when no level is given.
    pub fn new(mut levels: Vec<Frequency>) -> crate::Result<Self> {
        if levels.is_empty() {
            return Err(PowerError::EmptyLadder);
        }
        levels.sort_by(|a, b| a.partial_cmp(b).expect("finite frequencies"));
        levels.dedup();
        Ok(Self { levels })
    }

    /// The Intel Xeon E5410 ladder of the paper's Setup-2: 2.0 / 2.3 GHz.
    pub fn xeon_e5410() -> Self {
        Self::new(vec![Frequency::from_ghz(2.0), Frequency::from_ghz(2.3)])
            .expect("static ladder is non-empty")
    }

    /// The AMD Opteron 6174 ladder of the paper's Setup-1: 1.9 / 2.1 GHz.
    pub fn opteron_6174() -> Self {
        Self::new(vec![Frequency::from_ghz(1.9), Frequency::from_ghz(2.1)])
            .expect("static ladder is non-empty")
    }

    /// Ascending levels.
    pub fn levels(&self) -> &[Frequency] {
        &self.levels
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// `false` by construction (a ladder always has a level); provided
    /// for API completeness.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Lowest level.
    pub fn min(&self) -> Frequency {
        self.levels[0]
    }

    /// Highest level.
    pub fn max(&self) -> Frequency {
        self.levels[self.levels.len() - 1]
    }

    /// Index of an exact level, or `None`.
    pub fn index_of(&self, f: Frequency) -> Option<usize> {
        self.levels.iter().position(|&l| l == f)
    }

    /// Level at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<Frequency> {
        self.levels.get(index).copied()
    }

    /// Lowest level ≥ `required`; saturates at the top level when the
    /// request exceeds it (the caller must then accept reduced headroom —
    /// this mirrors a real governor pegged at `fmax`).
    pub fn snap_up(&self, required: Frequency) -> Frequency {
        for &level in &self.levels {
            if level >= required {
                return level;
            }
        }
        self.max()
    }

    /// Snap-up from a fraction of the maximum frequency: the form Eqn (4)
    /// produces (`f_i / f_max`). Fractions ≤ 0 yield the bottom level.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for non-finite fractions.
    pub fn snap_up_fraction(&self, fraction: f64) -> crate::Result<Frequency> {
        if !fraction.is_finite() {
            return Err(PowerError::InvalidParameter(
                "frequency fraction must be finite",
            ));
        }
        if fraction <= 0.0 {
            return Ok(self.min());
        }
        let required = self.max().as_ghz() * fraction;
        Ok(self.snap_up(Frequency::from_ghz(required.max(f64::MIN_POSITIVE))))
    }
}

/// Anti-oscillation guard for dynamic DVFS.
///
/// The paper re-evaluates the dynamic v/f level only every 12 samples
/// "to prevent frequent oscillations of v/f level (which affects server
/// reliability \[17\])". [`DwellGuard`] generalizes that: upward switches
/// (more capacity) pass immediately — they are safety-critical — while
/// downward switches are suppressed until the current level has dwelled
/// for a minimum number of samples.
///
/// # Example
///
/// ```
/// use cavm_power::DwellGuard;
///
/// let mut guard = DwellGuard::new(3);
/// assert_eq!(guard.filter(1), 1); // first decision passes
/// assert_eq!(guard.filter(0), 1); // down-switch suppressed (dwell)
/// assert_eq!(guard.filter(2), 2); // up-switch always passes
/// assert_eq!(guard.filter(0), 2);
/// assert_eq!(guard.filter(0), 2);
/// assert_eq!(guard.filter(0), 0); // dwell satisfied, down-switch passes
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DwellGuard {
    min_dwell: u32,
    current: Option<usize>,
    dwelled: u32,
}

impl DwellGuard {
    /// Creates a guard requiring `min_dwell` consecutive decisions at a
    /// level before a *downward* switch is honoured. `min_dwell == 0`
    /// disables the guard.
    pub fn new(min_dwell: u32) -> Self {
        Self {
            min_dwell,
            current: None,
            dwelled: 0,
        }
    }

    /// Filters a proposed level index; returns the level to actually use.
    pub fn filter(&mut self, proposed: usize) -> usize {
        let decided = match self.current {
            None => proposed,
            // Up-switches are safety-critical and always pass; a
            // down-switch must wait out the dwell.
            Some(current) if proposed > current => proposed,
            Some(current) if proposed < current && self.dwelled >= self.min_dwell => proposed,
            Some(current) => current,
        };
        if Some(decided) == self.current {
            self.dwelled = self.dwelled.saturating_add(1);
        } else {
            self.current = Some(decided);
            self.dwelled = 1;
        }
        decided
    }

    /// The level currently held, or `None` before the first decision.
    pub fn current(&self) -> Option<usize> {
        self.current
    }

    /// Forgets history (keeps the dwell requirement).
    pub fn reset(&mut self) {
        self.current = None;
        self.dwelled = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "invalid frequency")]
    fn frequency_rejects_zero() {
        Frequency::from_ghz(0.0);
    }

    #[test]
    #[should_panic(expected = "invalid frequency")]
    fn frequency_rejects_nan() {
        Frequency::from_ghz(f64::NAN);
    }

    #[test]
    fn frequency_conversions_and_ratio() {
        let f = Frequency::from_mhz(2300.0);
        assert!((f.as_ghz() - 2.3).abs() < 1e-12);
        assert!((f.as_mhz() - 2300.0).abs() < 1e-9);
        let g = Frequency::from_ghz(2.0);
        assert!((g.ratio_to(f) - 2.0 / 2.3).abs() < 1e-12);
        assert_eq!(format!("{f}"), "2.30 GHz");
    }

    #[test]
    fn ladder_sorts_and_dedups() {
        let l = DvfsLadder::new(vec![
            Frequency::from_ghz(2.0),
            Frequency::from_ghz(1.0),
            Frequency::from_ghz(2.0),
        ])
        .unwrap();
        assert_eq!(l.len(), 2);
        assert_eq!(l.min().as_ghz(), 1.0);
        assert_eq!(l.max().as_ghz(), 2.0);
        assert!(!l.is_empty());
        assert!(matches!(
            DvfsLadder::new(vec![]),
            Err(PowerError::EmptyLadder)
        ));
    }

    #[test]
    fn snap_up_selects_lowest_sufficient_level() {
        let l = DvfsLadder::new(vec![
            Frequency::from_ghz(1.0),
            Frequency::from_ghz(1.5),
            Frequency::from_ghz(2.0),
        ])
        .unwrap();
        assert_eq!(l.snap_up(Frequency::from_ghz(0.3)).as_ghz(), 1.0);
        assert_eq!(l.snap_up(Frequency::from_ghz(1.0)).as_ghz(), 1.0);
        assert_eq!(l.snap_up(Frequency::from_ghz(1.01)).as_ghz(), 1.5);
        assert_eq!(l.snap_up(Frequency::from_ghz(1.7)).as_ghz(), 2.0);
        assert_eq!(l.snap_up(Frequency::from_ghz(5.0)).as_ghz(), 2.0);
    }

    #[test]
    fn snap_up_fraction_handles_edges() {
        let l = DvfsLadder::xeon_e5410();
        assert_eq!(l.snap_up_fraction(0.0).unwrap(), l.min());
        assert_eq!(l.snap_up_fraction(-3.0).unwrap(), l.min());
        assert_eq!(l.snap_up_fraction(0.5).unwrap().as_ghz(), 2.0);
        // 2.0/2.3 ≈ 0.8696: anything above needs the top level.
        assert_eq!(l.snap_up_fraction(0.88).unwrap().as_ghz(), 2.3);
        assert_eq!(l.snap_up_fraction(1.0).unwrap().as_ghz(), 2.3);
        assert_eq!(l.snap_up_fraction(1.5).unwrap().as_ghz(), 2.3);
        assert!(l.snap_up_fraction(f64::NAN).is_err());
    }

    #[test]
    fn presets_match_paper() {
        let xeon = DvfsLadder::xeon_e5410();
        assert_eq!(xeon.levels().len(), 2);
        assert_eq!(xeon.min().as_ghz(), 2.0);
        assert_eq!(xeon.max().as_ghz(), 2.3);
        let opteron = DvfsLadder::opteron_6174();
        assert_eq!(opteron.min().as_ghz(), 1.9);
        assert_eq!(opteron.max().as_ghz(), 2.1);
    }

    #[test]
    fn index_and_get() {
        let l = DvfsLadder::xeon_e5410();
        assert_eq!(l.index_of(Frequency::from_ghz(2.0)), Some(0));
        assert_eq!(l.index_of(Frequency::from_ghz(2.3)), Some(1));
        assert_eq!(l.index_of(Frequency::from_ghz(2.1)), None);
        assert_eq!(l.get(1).unwrap().as_ghz(), 2.3);
        assert_eq!(l.get(2), None);
    }

    #[test]
    fn dwell_guard_zero_passes_everything() {
        let mut g = DwellGuard::new(0);
        assert_eq!(g.filter(2), 2);
        assert_eq!(g.filter(0), 0);
        assert_eq!(g.filter(1), 1);
    }

    #[test]
    fn dwell_guard_suppresses_flapping() {
        let mut g = DwellGuard::new(2);
        assert_eq!(g.filter(1), 1);
        // Immediate down-switch suppressed.
        assert_eq!(g.filter(0), 1);
        assert_eq!(g.current(), Some(1));
        // After enough dwell the down-switch goes through.
        assert_eq!(g.filter(0), 0);
        // Up-switch always goes through.
        assert_eq!(g.filter(3), 3);
        g.reset();
        assert_eq!(g.current(), None);
        assert_eq!(g.filter(0), 0);
    }
}
