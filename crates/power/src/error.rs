use crate::Frequency;
use std::fmt;

/// Errors produced by the power/DVFS models.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerError {
    /// A DVFS ladder needs at least one frequency level.
    EmptyLadder,
    /// A frequency was not finite and positive.
    InvalidFrequency(f64),
    /// The requested frequency is not a level of the ladder/model.
    UnknownLevel(Frequency),
    /// Utilization must lie in `[0, 1]` (fraction of capacity).
    InvalidUtilization(f64),
    /// A generic invalid parameter with a short description.
    InvalidParameter(&'static str),
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::EmptyLadder => write!(f, "dvfs ladder must have at least one level"),
            PowerError::InvalidFrequency(ghz) => {
                write!(f, "invalid frequency {ghz} GHz, must be finite and > 0")
            }
            PowerError::UnknownLevel(freq) => {
                write!(
                    f,
                    "frequency {} GHz is not a level of this model",
                    freq.as_ghz()
                )
            }
            PowerError::InvalidUtilization(u) => {
                write!(f, "utilization {u} outside [0, 1]")
            }
            PowerError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            PowerError::EmptyLadder,
            PowerError::InvalidFrequency(-1.0),
            PowerError::UnknownLevel(Frequency::from_ghz(1.0)),
            PowerError::InvalidUtilization(1.5),
            PowerError::InvalidParameter("x"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<PowerError>();
    }
}
