//! Energy accounting.
//!
//! Table II of the paper reports *normalized power*: the total energy a
//! policy consumes over the 24-hour trace divided by the BFD baseline's.
//! [`EnergyMeter`] integrates instantaneous power over sampled intervals
//! and exposes the totals that normalization needs.
//!
//! # Example
//!
//! The Table II quantity end to end — integrate two policies' draw,
//! then normalize one against the other:
//!
//! ```
//! use cavm_power::EnergyMeter;
//!
//! let mut bfd = EnergyMeter::new();
//! let mut proposed = EnergyMeter::new();
//! for _sample in 0..720 {
//!     bfd.add(400.0, 5.0); // three busy servers
//!     proposed.add(320.0, 5.0); // two, slightly hotter
//! }
//! let normalized = proposed.normalized_to(&bfd).expect("baseline > 0");
//! assert!((normalized - 0.8).abs() < 1e-12);
//! assert_eq!(bfd.seconds(), 3600.0);
//! ```

use crate::{Frequency, PowerModel};
use cavm_trace::TimeSeries;
use serde::{Deserialize, Serialize};

/// Accumulates energy (the time integral of power) over a simulation.
///
/// # Example
///
/// ```
/// use cavm_power::EnergyMeter;
///
/// let mut meter = EnergyMeter::new();
/// meter.add(250.0, 5.0); // 250 W for 5 s
/// meter.add(100.0, 5.0);
/// assert_eq!(meter.joules(), 1750.0);
/// assert!((meter.watt_hours() - 1750.0 / 3600.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    joules: f64,
    seconds: f64,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `watts` of draw sustained for `dt_seconds`.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite inputs — callers feed simulator
    /// output, so a bad value is a bug upstream, not recoverable input.
    pub fn add(&mut self, watts: f64, dt_seconds: f64) {
        assert!(watts.is_finite() && watts >= 0.0, "bad power {watts} W");
        assert!(
            dt_seconds.is_finite() && dt_seconds >= 0.0,
            "bad dt {dt_seconds} s"
        );
        self.joules += watts * dt_seconds;
        self.seconds += dt_seconds;
    }

    /// Merges another meter's accumulation into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        self.joules += other.joules;
        self.seconds += other.seconds;
    }

    /// Total accumulated energy in joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Total accumulated energy in watt-hours.
    pub fn watt_hours(&self) -> f64 {
        self.joules / 3600.0
    }

    /// Total accumulated energy in kilowatt-hours.
    pub fn kilowatt_hours(&self) -> f64 {
        self.joules / 3.6e6
    }

    /// Total covered time in seconds.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Mean power over the covered time, or 0.0 when nothing was added.
    pub fn mean_watts(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.joules / self.seconds
        }
    }

    /// This meter's energy as a fraction of `baseline`'s (the Table II
    /// "normalized power"), or `None` when the baseline accumulated
    /// nothing.
    pub fn normalized_to(&self, baseline: &EnergyMeter) -> Option<f64> {
        if baseline.joules == 0.0 {
            None
        } else {
            Some(self.joules / baseline.joules)
        }
    }
}

/// Integrates a power model over a utilization trace at a fixed
/// frequency.
///
/// `utilization` carries the fraction of server capacity in use at each
/// sample (values are clamped into `[0, 1]`, tolerating small numeric
/// overshoot from upstream aggregation).
///
/// # Errors
///
/// Propagates [`crate::PowerError::UnknownLevel`] from the model.
pub fn energy_of_trace<M: PowerModel + ?Sized>(
    model: &M,
    utilization: &TimeSeries,
    frequency: Frequency,
) -> crate::Result<EnergyMeter> {
    let mut meter = EnergyMeter::new();
    for &u in utilization.values() {
        let p = model.power(u.clamp(0.0, 1.0), frequency)?;
        meter.add(p, utilization.dt());
    }
    Ok(meter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearPowerModel;

    #[test]
    fn meter_accumulates_and_converts() {
        let mut m = EnergyMeter::new();
        assert_eq!(m.mean_watts(), 0.0);
        m.add(100.0, 36.0);
        assert_eq!(m.joules(), 3600.0);
        assert_eq!(m.watt_hours(), 1.0);
        assert!((m.kilowatt_hours() - 0.001).abs() < 1e-12);
        assert_eq!(m.seconds(), 36.0);
        assert_eq!(m.mean_watts(), 100.0);
    }

    #[test]
    fn meter_merge() {
        let mut a = EnergyMeter::new();
        a.add(10.0, 1.0);
        let mut b = EnergyMeter::new();
        b.add(20.0, 2.0);
        a.merge(&b);
        assert_eq!(a.joules(), 50.0);
        assert_eq!(a.seconds(), 3.0);
    }

    #[test]
    fn normalization() {
        let mut a = EnergyMeter::new();
        a.add(50.0, 10.0);
        let mut b = EnergyMeter::new();
        b.add(100.0, 10.0);
        assert_eq!(a.normalized_to(&b), Some(0.5));
        assert_eq!(a.normalized_to(&EnergyMeter::new()), None);
    }

    #[test]
    #[should_panic(expected = "bad power")]
    fn meter_rejects_negative_power() {
        EnergyMeter::new().add(-1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "bad dt")]
    fn meter_rejects_negative_dt() {
        EnergyMeter::new().add(1.0, -1.0);
    }

    #[test]
    fn trace_integration_matches_hand_computation() {
        let model = LinearPowerModel::xeon_e5410();
        let f = Frequency::from_ghz(2.0);
        let trace = TimeSeries::new(5.0, vec![0.0, 1.0]).unwrap();
        let meter = energy_of_trace(&model, &trace, f).unwrap();
        // 160 W idle for 5 s + 250 W busy for 5 s.
        assert!((meter.joules() - (160.0 * 5.0 + 250.0 * 5.0)).abs() < 1e-9);
    }

    #[test]
    fn trace_integration_clamps_overshoot() {
        let model = LinearPowerModel::xeon_e5410();
        let f = Frequency::from_ghz(2.0);
        let trace = TimeSeries::new(1.0, vec![1.2, -0.1]).unwrap();
        let meter = energy_of_trace(&model, &trace, f).unwrap();
        assert!((meter.joules() - (250.0 + 160.0)).abs() < 1e-9);
    }

    #[test]
    fn trace_integration_unknown_level_errors() {
        let model = LinearPowerModel::xeon_e5410();
        let trace = TimeSeries::new(1.0, vec![0.5]).unwrap();
        assert!(energy_of_trace(&model, &trace, Frequency::from_ghz(4.0)).is_err());
    }
}
