//! Invariant tests for the processor-sharing discrete-event engine.

use cavm_cluster::{ArrivalModel, ClusterSim, ClusterSimConfig, ServerSpec, VmAssignment};
use cavm_workload::{ClientWave, WebSearchCluster};

fn config(cores: usize, freq: f64, model: ArrivalModel, seed: u64) -> ClusterSimConfig {
    ClusterSimConfig {
        servers: vec![ServerSpec::new(cores, freq)],
        clusters: vec![WebSearchCluster::paper_setup1().unwrap()],
        waves: vec![ClientWave::sine(0.0, 150.0, 200.0).unwrap()],
        assignments: vec![
            VmAssignment {
                cluster: 0,
                isn: 0,
                server: 0,
                dedicated_cores: None,
            },
            VmAssignment {
                cluster: 0,
                isn: 1,
                server: 0,
                dedicated_cores: None,
            },
        ],
        duration_s: 200.0,
        sample_dt_s: 1.0,
        warmup_s: 20.0,
        arrival_model: model,
        seed,
    }
}

#[test]
fn per_vm_usage_never_exceeds_server_cores_times_frequency() {
    for model in [ArrivalModel::Open, ArrivalModel::Closed] {
        for &freq in &[1.0, 0.8] {
            let result = ClusterSim::new(config(8, freq, model, 3))
                .unwrap()
                .run()
                .unwrap();
            let total_cap = 8.0 * freq;
            for (v, t) in result.vm_utilization.iter().enumerate() {
                assert!(
                    t.peak() <= total_cap + 1e-6,
                    "{model:?} freq {freq}: vm{v} peak {} exceeds capacity {total_cap}",
                    t.peak()
                );
            }
            assert!(result.server_utilization[0].peak() <= 1.0 + 1e-9);
        }
    }
}

#[test]
fn work_conservation_completed_work_matches_busy_time() {
    // Total integrated core usage ≈ total demand of completed queries
    // (plus in-flight remainder): check usage is within the issued
    // demand envelope.
    let result = ClusterSim::new(config(8, 1.0, ArrivalModel::Open, 9))
        .unwrap()
        .run()
        .unwrap();
    let cluster = WebSearchCluster::paper_setup1().unwrap();
    let used: f64 = result
        .vm_utilization
        .iter()
        .map(|t| t.mean() * t.duration())
        .sum();
    let mean_demand_per_query: f64 = (0..cluster.isns())
        .map(|i| cluster.expected_isn_demand(i))
        .sum();
    let offered = result.queries_issued[0] as f64 * mean_demand_per_query;
    assert!(used > 0.0);
    assert!(
        used <= offered * 1.1,
        "used {used} core-s exceeds offered {offered} core-s by >10%"
    );
    assert!(
        used >= offered * 0.7,
        "used {used} core-s is implausibly below offered {offered} core-s"
    );
}

#[test]
fn responses_are_positive_and_ordered_by_load() {
    // Doubling the client population cannot reduce the p90.
    let mut light = config(8, 1.0, ArrivalModel::Open, 5);
    light.waves = vec![ClientWave::sine(0.0, 80.0, 200.0).unwrap()];
    let mut heavy = light.clone();
    heavy.waves = vec![ClientWave::sine(0.0, 240.0, 200.0).unwrap()];
    let l = ClusterSim::new(light).unwrap().run().unwrap();
    let h = ClusterSim::new(heavy).unwrap().run().unwrap();
    let (pl, ph) = (l.p90_response(0).unwrap(), h.p90_response(0).unwrap());
    assert!(pl > 0.0);
    assert!(ph >= pl * 0.9, "heavier load p90 {ph} below lighter {pl}");
}

#[test]
fn completed_never_exceeds_issued() {
    for model in [ArrivalModel::Open, ArrivalModel::Closed] {
        let result = ClusterSim::new(config(8, 1.0, model, 11))
            .unwrap()
            .run()
            .unwrap();
        assert!(result.queries_completed[0] <= result.queries_issued[0]);
        // And the vast majority complete in a stable system.
        assert!(result.queries_completed[0] as f64 >= 0.9 * result.queries_issued[0] as f64);
    }
}

#[test]
fn frequency_scale_reduces_throughput_capacity_not_correctness() {
    let slow = ClusterSim::new(config(2, 0.5, ArrivalModel::Closed, 13))
        .unwrap()
        .run()
        .unwrap();
    // Even badly overloaded, the closed-loop sim terminates and records
    // bounded responses.
    assert!(slow.queries_issued[0] > 0);
    if !slow.response_times[0].is_empty() {
        assert!(slow.p90_response(0).unwrap().is_finite());
    }
}
