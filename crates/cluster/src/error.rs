use cavm_trace::TraceError;
use cavm_workload::WorkloadError;
use std::fmt;

/// Errors produced by the cluster simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// An underlying time-series operation failed.
    Trace(TraceError),
    /// An underlying workload-generation operation failed.
    Workload(WorkloadError),
    /// A simulation parameter was out of range.
    InvalidParameter(&'static str),
    /// VM-to-server assignment is inconsistent (unknown server, core
    /// over-subscription, cluster/ISN mismatch).
    BadAssignment(&'static str),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Trace(e) => write!(f, "trace error: {e}"),
            ClusterError::Workload(e) => write!(f, "workload error: {e}"),
            ClusterError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            ClusterError::BadAssignment(what) => write!(f, "bad vm assignment: {what}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Trace(e) => Some(e),
            ClusterError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for ClusterError {
    fn from(e: TraceError) -> Self {
        ClusterError::Trace(e)
    }
}

impl From<WorkloadError> for ClusterError {
    fn from(e: WorkloadError) -> Self {
        ClusterError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ClusterError::from(TraceError::EmptyInput);
        assert!(e.to_string().contains("trace error"));
        assert!(std::error::Error::source(&e).is_some());
        let w = ClusterError::from(WorkloadError::InvalidParameter("x"));
        assert!(std::error::Error::source(&w).is_some());
        assert!(ClusterError::BadAssignment("y").to_string().contains("y"));
        assert!(std::error::Error::source(&ClusterError::InvalidParameter("z")).is_none());
    }
}
