//! Discrete-event simulation of distributed web-search clusters
//! (paper Setup-1).
//!
//! The paper's first testbed runs two CloudSuite web-search clusters on
//! two 8-core servers under Xen and measures 90th-percentile response
//! times for three VM placements (Fig 4/5). This crate reproduces that
//! testbed as a discrete-event **fan-out/join processor-sharing** model:
//!
//! * every query fans out to all index-serving nodes (ISNs) of its
//!   cluster and completes when the **last** ISN finishes (the front-end
//!   "sends results to clients only after collecting the search results
//!   from all ISNs");
//! * each ISN task occupies at most one core at a time; tasks sharing a
//!   scheduling domain (a VM's dedicated core partition, or the server's
//!   whole core pool) are processor-shared;
//! * CPU frequency scales every task's execution rate — the Setup-1
//!   servers offer 2.1 and 1.9 GHz.
//!
//! [`sim`] is the generic engine; [`experiment`] wires up the paper's
//! exact scenario: two clusters (sine- and cosine-driven clients,
//! 0–300), two servers, and the three placements *Segregated*,
//! *Shared-UnCorr* and *Shared-Corr*.
//!
//! # Example
//!
//! ```no_run
//! use cavm_cluster::experiment::{run_setup1, Setup1Config, Setup1Placement};
//!
//! # fn main() -> Result<(), cavm_cluster::ClusterError> {
//! let config = Setup1Config::default();
//! let shared = run_setup1(Setup1Placement::SharedCorrelated, &config)?;
//! let segregated = run_setup1(Setup1Placement::Segregated, &config)?;
//! // Core sharing beats static partitioning on tail latency.
//! assert!(shared.p90_response[0] < segregated.p90_response[0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod experiment;
pub mod sim;

pub use error::ClusterError;
pub use experiment::{run_setup1, Setup1Config, Setup1Outcome, Setup1Placement};
pub use sim::{
    ArrivalModel, ClusterSim, ClusterSimConfig, ClusterSimResult, ServerSpec, VmAssignment,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ClusterError>;
