//! The fan-out/join processor-sharing discrete-event engine.
//!
//! Model, mirroring the testbed of the paper's Setup-1:
//!
//! * Each **cluster** (a [`WebSearchCluster`]) receives queries as an
//!   inhomogeneous Poisson stream with rate `clients(t) / think_time`
//!   where `clients(t)` is a [`ClientWave`].
//! * A query spawns one CPU **task per ISN** with a sampled demand in
//!   core-seconds; the query completes when its *last* task finishes,
//!   plus a small front-end gather overhead.
//! * Tasks execute under **processor sharing** inside a scheduling
//!   domain: either the VM's dedicated core partition (the paper's
//!   *Segregated* placement pins 4 of 8 cores per VM) or the whole
//!   server pool (*Shared*). A single task never exceeds one core — the
//!   per-query work is single-threaded, parallelism comes from
//!   concurrent queries.
//! * The server frequency scales all execution rates (`1.9/2.1` in the
//!   paper's low-power configuration).
//!
//! Between events all rates are constant, so the engine advances
//! event-to-event exactly (no time-stepping error) and integrates
//! per-VM core usage for the utilization traces of Fig 4.

use crate::ClusterError;
use cavm_trace::{SimRng, TimeSeries};
use cavm_workload::{ClientWave, WebSearchCluster};
use serde::{Deserialize, Serialize};

/// A physical server: core count and DVFS speed factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Number of physical cores.
    pub cores: usize,
    /// Execution-rate multiplier, `f / f_max` (1.0 = full speed).
    pub frequency_scale: f64,
}

impl ServerSpec {
    /// Creates a spec.
    pub fn new(cores: usize, frequency_scale: f64) -> Self {
        Self {
            cores,
            frequency_scale,
        }
    }
}

/// How queries arrive at the clusters.
///
/// The paper's Faban client emulator is **closed-loop**: each emulated
/// client thinks, issues one query, and only thinks again after the
/// response returns — so a slow system throttles its own offered load.
/// The **open-loop** model issues a Poisson stream at the instantaneous
/// rate `clients(t)/think_time` regardless of backlog; it is simpler and
/// stresses overload harder (queues grow unboundedly past saturation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalModel {
    /// Time-varying Poisson arrivals, independent of response times.
    Open,
    /// Faban-style finite client population with think times.
    Closed,
}

/// Maps one ISN (a VM) onto a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmAssignment {
    /// Index of the cluster this VM belongs to.
    pub cluster: usize,
    /// ISN index within the cluster.
    pub isn: usize,
    /// Hosting server index.
    pub server: usize,
    /// `Some(k)` pins the VM to `k` dedicated cores (Segregated);
    /// `None` lets its tasks share the server's whole pool.
    pub dedicated_cores: Option<usize>,
}

/// Full scenario description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSimConfig {
    /// The physical servers.
    pub servers: Vec<ServerSpec>,
    /// The web-search clusters (demand models).
    pub clusters: Vec<WebSearchCluster>,
    /// One client wave per cluster.
    pub waves: Vec<ClientWave>,
    /// One assignment per (cluster, ISN) pair.
    pub assignments: Vec<VmAssignment>,
    /// Simulated wall-clock seconds.
    pub duration_s: f64,
    /// Utilization sampling interval (the paper's monitor used 1 s).
    pub sample_dt_s: f64,
    /// Response times of queries arriving before this instant are
    /// discarded (transient warm-up).
    pub warmup_s: f64,
    /// Open-loop Poisson or closed-loop finite-population clients.
    pub arrival_model: ArrivalModel,
    /// RNG seed: identical configs and seeds reproduce exactly.
    pub seed: u64,
}

/// Simulation output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSimResult {
    /// Average core usage per sampling window, one series per
    /// assignment (same order as `config.assignments`), in cores.
    pub vm_utilization: Vec<TimeSeries>,
    /// Aggregate utilization per server as a fraction of its cores.
    pub server_utilization: Vec<TimeSeries>,
    /// Response times (seconds) per cluster, post-warm-up, in
    /// completion order.
    pub response_times: Vec<Vec<f64>>,
    /// Queries issued per cluster over the whole run.
    pub queries_issued: Vec<usize>,
    /// Queries completed per cluster before the run ended.
    pub queries_completed: Vec<usize>,
}

impl ClusterSimResult {
    /// The 90th-percentile response time of a cluster — the paper's
    /// Fig 5 metric.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidParameter`] for a cluster index
    /// the simulation does not know, and a trace error when the
    /// cluster recorded no responses.
    pub fn p90_response(&self, cluster: usize) -> crate::Result<f64> {
        let responses = self
            .response_times
            .get(cluster)
            .ok_or(ClusterError::InvalidParameter(
                "cluster index outside the simulated clusters",
            ))?;
        Ok(cavm_trace::percentile(responses, 90.0)?)
    }

    /// Peak of a server's utilization trace (fraction of cores).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidParameter`] for a server index
    /// the simulation does not know.
    pub fn peak_server_utilization(&self, server: usize) -> crate::Result<f64> {
        Ok(self
            .server_utilization
            .get(server)
            .ok_or(ClusterError::InvalidParameter(
                "server index outside the simulated servers",
            ))?
            .peak())
    }
}

/// A validated, runnable scenario.
#[derive(Debug, Clone)]
pub struct ClusterSim {
    config: ClusterSimConfig,
}

/// Scheduling domain: a core pool with processor sharing.
#[derive(Debug, Clone, Copy)]
struct Domain {
    cores: f64,
    speed: f64,
    tasks: usize,
}

impl Domain {
    /// Rate (cores of max-frequency work per second) each task receives.
    fn task_rate(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            (self.cores / self.tasks as f64).min(1.0) * self.speed
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Task {
    domain: usize,
    vm: usize,
    query: usize,
    remaining: f64,
}

#[derive(Debug, Clone, Copy)]
struct Query {
    cluster: usize,
    arrival: f64,
    pending: usize,
}

/// Spawns one query's fan-out tasks (shared by both arrival models).
#[allow(clippy::too_many_arguments)]
fn issue_query(
    cluster: usize,
    arrival: f64,
    cfg: &ClusterSimConfig,
    qrng: &mut SimRng,
    queries: &mut Vec<Query>,
    tasks: &mut Vec<Task>,
    domains: &mut [Domain],
    vm_of: &std::collections::HashMap<(usize, usize), usize>,
    domain_of_vm: &[usize],
    issued: &mut [usize],
) {
    issued[cluster] += 1;
    let demands = cfg.clusters[cluster].sample_query_demands(qrng);
    let qid = queries.len();
    queries.push(Query {
        cluster,
        arrival,
        pending: demands.len(),
    });
    for (isn, demand) in demands.into_iter().enumerate() {
        let vm = vm_of[&(cluster, isn)];
        let domain = domain_of_vm[vm];
        domains[domain].tasks += 1;
        tasks.push(Task {
            domain,
            vm,
            query: qid,
            remaining: demand.max(1e-9),
        });
    }
}

/// A pending "client finishes thinking and issues a query" event.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ThinkEvent {
    time: f64,
    seq: u64,
    cluster: usize,
}

impl Eq for ThinkEvent {}

impl Ord for ThinkEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Finite times by construction; tie-break on sequence for
        // determinism. Reversed so BinaryHeap pops the earliest.
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite event times")
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ThinkEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Closed-loop client population of one cluster.
#[derive(Debug, Clone)]
struct ClientPool {
    /// Live clients (thinking or with a query in flight).
    live: usize,
    /// Clients scheduled to leave as soon as they next become idle.
    retire_pending: usize,
    rng: SimRng,
}

impl ClientPool {
    /// Brings the pool toward `target` live clients: cancels pending
    /// retirements first, then spawns (returning think events) or marks
    /// surplus clients for retirement.
    fn adjust(
        &mut self,
        target: usize,
        now: f64,
        think_time: f64,
        cluster: usize,
        seq: &mut u64,
        heap: &mut std::collections::BinaryHeap<ThinkEvent>,
    ) {
        let effective = self.live - self.retire_pending.min(self.live);
        if target > effective {
            let mut need = target - effective;
            let cancelled = need.min(self.retire_pending);
            self.retire_pending -= cancelled;
            need -= cancelled;
            for _ in 0..need {
                self.live += 1;
                let delay = self
                    .rng
                    .exponential(1.0 / think_time)
                    .expect("positive rate");
                *seq += 1;
                heap.push(ThinkEvent {
                    time: now + delay,
                    seq: *seq,
                    cluster,
                });
            }
        } else {
            self.retire_pending += effective - target;
        }
    }

    /// A client became idle: retire it if a retirement is pending,
    /// otherwise schedule its next query issue.
    fn client_idle(
        &mut self,
        now: f64,
        think_time: f64,
        cluster: usize,
        seq: &mut u64,
        heap: &mut std::collections::BinaryHeap<ThinkEvent>,
    ) {
        if self.retire_pending > 0 {
            self.retire_pending -= 1;
            self.live = self.live.saturating_sub(1);
        } else {
            let delay = self
                .rng
                .exponential(1.0 / think_time)
                .expect("positive rate");
            *seq += 1;
            heap.push(ThinkEvent {
                time: now + delay,
                seq: *seq,
                cluster,
            });
        }
    }
}

impl ClusterSim {
    /// Validates a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidParameter`] or
    /// [`ClusterError::BadAssignment`] describing the first problem.
    pub fn new(config: ClusterSimConfig) -> crate::Result<Self> {
        if config.servers.is_empty() {
            return Err(ClusterError::InvalidParameter(
                "at least one server required",
            ));
        }
        for s in &config.servers {
            if s.cores == 0 {
                return Err(ClusterError::InvalidParameter(
                    "servers need at least one core",
                ));
            }
            if !(s.frequency_scale.is_finite() && s.frequency_scale > 0.0) {
                return Err(ClusterError::InvalidParameter(
                    "frequency scale must be > 0",
                ));
            }
        }
        if config.clusters.is_empty() {
            return Err(ClusterError::InvalidParameter(
                "at least one cluster required",
            ));
        }
        if config.waves.len() != config.clusters.len() {
            return Err(ClusterError::InvalidParameter(
                "one client wave per cluster required",
            ));
        }
        if !(config.duration_s.is_finite() && config.duration_s > 0.0) {
            return Err(ClusterError::InvalidParameter("duration must be > 0"));
        }
        if !(config.sample_dt_s.is_finite() && config.sample_dt_s > 0.0) {
            return Err(ClusterError::InvalidParameter(
                "sample interval must be > 0",
            ));
        }
        if !(config.warmup_s.is_finite()
            && config.warmup_s >= 0.0
            && config.warmup_s < config.duration_s)
        {
            return Err(ClusterError::InvalidParameter(
                "warmup must lie within the run",
            ));
        }
        // Exactly one assignment per (cluster, isn).
        let mut expected: std::collections::HashSet<(usize, usize)> =
            std::collections::HashSet::new();
        for (c, cluster) in config.clusters.iter().enumerate() {
            for i in 0..cluster.isns() {
                expected.insert((c, i));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for a in &config.assignments {
            if a.server >= config.servers.len() {
                return Err(ClusterError::BadAssignment(
                    "assignment names an unknown server",
                ));
            }
            if !expected.contains(&(a.cluster, a.isn)) {
                return Err(ClusterError::BadAssignment(
                    "assignment names an unknown (cluster, isn) pair",
                ));
            }
            if !seen.insert((a.cluster, a.isn)) {
                return Err(ClusterError::BadAssignment("duplicate assignment for a vm"));
            }
        }
        if seen.len() != expected.len() {
            return Err(ClusterError::BadAssignment("every isn needs an assignment"));
        }
        // Per server: dedicated core budgets must fit, and dedicated /
        // shared VMs must not mix (the pool semantics would be ambiguous).
        for (s, spec) in config.servers.iter().enumerate() {
            let on_server: Vec<&VmAssignment> = config
                .assignments
                .iter()
                .filter(|a| a.server == s)
                .collect();
            let dedicated: usize = on_server
                .iter()
                .map(|a| a.dedicated_cores.unwrap_or(0))
                .sum();
            if dedicated > spec.cores {
                return Err(ClusterError::BadAssignment(
                    "dedicated cores exceed the server's core count",
                ));
            }
            let any_dedicated = on_server.iter().any(|a| a.dedicated_cores.is_some());
            let any_shared = on_server.iter().any(|a| a.dedicated_cores.is_none());
            if any_dedicated && any_shared {
                return Err(ClusterError::BadAssignment(
                    "mixing dedicated and pool vms on one server is not supported",
                ));
            }
            if on_server.iter().any(|a| a.dedicated_cores == Some(0)) {
                return Err(ClusterError::BadAssignment(
                    "dedicated vms need at least one core",
                ));
            }
        }
        Ok(Self { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &ClusterSimConfig {
        &self.config
    }

    /// Runs the scenario to completion.
    ///
    /// # Errors
    ///
    /// Propagates trace/workload errors from arrival generation; the
    /// event loop itself is total.
    pub fn run(&self) -> crate::Result<ClusterSimResult> {
        let cfg = &self.config;
        let rng = SimRng::new(cfg.seed);

        // --- Domains -------------------------------------------------
        // One domain per dedicated VM; one pooled domain per server that
        // hosts pool VMs.
        let mut domains: Vec<Domain> = Vec::new();
        let mut pool_domain_of_server: Vec<Option<usize>> = vec![None; cfg.servers.len()];
        let mut domain_of_vm: Vec<usize> = Vec::with_capacity(cfg.assignments.len());
        for a in &cfg.assignments {
            let spec = cfg.servers[a.server];
            let d = match a.dedicated_cores {
                Some(k) => {
                    domains.push(Domain {
                        cores: k as f64,
                        speed: spec.frequency_scale,
                        tasks: 0,
                    });
                    domains.len() - 1
                }
                None => match pool_domain_of_server[a.server] {
                    Some(d) => d,
                    None => {
                        domains.push(Domain {
                            cores: spec.cores as f64,
                            speed: spec.frequency_scale,
                            tasks: 0,
                        });
                        pool_domain_of_server[a.server] = Some(domains.len() - 1);
                        domains.len() - 1
                    }
                },
            };
            domain_of_vm.push(d);
        }
        // vm index lookup by (cluster, isn).
        let mut vm_of: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        for (v, a) in cfg.assignments.iter().enumerate() {
            vm_of.insert((a.cluster, a.isn), v);
        }

        // --- Arrivals: inhomogeneous Poisson by thinning ---------------
        let mut arrivals: Vec<(f64, usize)> = Vec::new();
        if cfg.arrival_model == ArrivalModel::Open {
            for (c, (cluster, wave)) in cfg.clusters.iter().zip(&cfg.waves).enumerate() {
                let lambda_max = cluster.arrival_rate(wave.max()).max(1e-9);
                let mut t = 0.0;
                let mut arng = rng.fork(10_000 + c as u64);
                loop {
                    t += arng.exponential(lambda_max).map_err(ClusterError::Trace)?;
                    if t >= cfg.duration_s {
                        break;
                    }
                    let accept = cluster.arrival_rate(wave.value_at(t)) / lambda_max;
                    if arng.bernoulli(accept) {
                        arrivals.push((t, c));
                    }
                }
            }
            arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        }

        // Closed-loop client pools (Faban-style): one per cluster, with
        // the population re-targeted to the wave at every sample tick.
        let mut think_heap: std::collections::BinaryHeap<ThinkEvent> =
            std::collections::BinaryHeap::new();
        let mut think_seq = 0u64;
        let mut pools: Vec<ClientPool> = (0..cfg.clusters.len())
            .map(|c| ClientPool {
                live: 0,
                retire_pending: 0,
                rng: rng.fork(20_000 + c as u64),
            })
            .collect();
        if cfg.arrival_model == ArrivalModel::Closed {
            for (c, wave) in cfg.waves.iter().enumerate() {
                let target = wave.value_at(0.0).round().max(0.0) as usize;
                let think = cfg.clusters[c].config().think_time_s;
                pools[c].adjust(target, 0.0, think, c, &mut think_seq, &mut think_heap);
            }
        }

        // --- Event loop ------------------------------------------------
        let n_vms = cfg.assignments.len();
        let n_samples = (cfg.duration_s / cfg.sample_dt_s).floor() as usize;
        let mut vm_samples: Vec<Vec<f64>> = vec![Vec::with_capacity(n_samples); n_vms];
        let mut vm_busy = vec![0.0f64; n_vms];
        let mut queries: Vec<Query> = Vec::new();
        let mut tasks: Vec<Task> = Vec::new();
        let mut responses: Vec<Vec<f64>> = vec![Vec::new(); cfg.clusters.len()];
        let mut issued = vec![0usize; cfg.clusters.len()];
        let mut completed = vec![0usize; cfg.clusters.len()];
        let mut qrng = rng.fork(77);

        let mut now = 0.0f64;
        let mut next_arrival_idx = 0usize;
        let mut next_sample = cfg.sample_dt_s;
        let mut samples_taken = 0usize;
        const EPS: f64 = 1e-9;

        while samples_taken < n_samples {
            // Next completion under current rates.
            let mut next_completion = f64::INFINITY;
            for task in &tasks {
                let rate = domains[task.domain].task_rate();
                if rate > 0.0 {
                    next_completion = next_completion.min(now + task.remaining / rate);
                }
            }
            let next_arrival = match cfg.arrival_model {
                ArrivalModel::Open => arrivals
                    .get(next_arrival_idx)
                    .map(|&(t, _)| t)
                    .unwrap_or(f64::INFINITY),
                ArrivalModel::Closed => think_heap.peek().map(|e| e.time).unwrap_or(f64::INFINITY),
            };
            let horizon = next_completion.min(next_arrival).min(next_sample);
            let dt = (horizon - now).max(0.0);

            // Advance work and usage integration.
            if dt > 0.0 {
                for task in tasks.iter_mut() {
                    let rate = domains[task.domain].task_rate();
                    task.remaining -= rate * dt;
                    vm_busy[task.vm] += rate * dt;
                }
                now = horizon;
            } else {
                now = horizon;
            }

            // 1. Completions (batch everything that just hit zero).
            let mut finished: Vec<usize> = Vec::new();
            for (i, task) in tasks.iter().enumerate() {
                if task.remaining <= EPS {
                    finished.push(i);
                }
            }
            for &i in finished.iter().rev() {
                let task = tasks.swap_remove(i);
                domains[task.domain].tasks -= 1;
                let q = &mut queries[task.query];
                q.pending -= 1;
                if q.pending == 0 {
                    let cluster = &cfg.clusters[q.cluster];
                    let response = now - q.arrival + cluster.config().frontend_demand_core_s;
                    completed[q.cluster] += 1;
                    if q.arrival >= cfg.warmup_s {
                        responses[q.cluster].push(response);
                    }
                    // Closed loop: the issuing client is idle again.
                    if cfg.arrival_model == ArrivalModel::Closed {
                        let think = cluster.config().think_time_s;
                        let c = q.cluster;
                        pools[c].client_idle(now, think, c, &mut think_seq, &mut think_heap);
                    }
                }
            }

            // 2a. Open-loop arrival.
            if cfg.arrival_model == ArrivalModel::Open
                && (next_arrival - now).abs() <= EPS
                && next_arrival_idx < arrivals.len()
            {
                let (t, c) = arrivals[next_arrival_idx];
                next_arrival_idx += 1;
                issue_query(
                    c,
                    t,
                    cfg,
                    &mut qrng,
                    &mut queries,
                    &mut tasks,
                    &mut domains,
                    &vm_of,
                    &domain_of_vm,
                    &mut issued,
                );
            }

            // 2b. Closed-loop think expiries (batch everything due now).
            if cfg.arrival_model == ArrivalModel::Closed {
                while think_heap.peek().is_some_and(|e| e.time <= now + EPS) {
                    let ev = think_heap.pop().expect("peeked entry exists");
                    let pool = &mut pools[ev.cluster];
                    if pool.retire_pending > 0 {
                        // The wave shrank: this client leaves instead of
                        // issuing another query.
                        pool.retire_pending -= 1;
                        pool.live = pool.live.saturating_sub(1);
                        continue;
                    }
                    issue_query(
                        ev.cluster,
                        now,
                        cfg,
                        &mut qrng,
                        &mut queries,
                        &mut tasks,
                        &mut domains,
                        &vm_of,
                        &domain_of_vm,
                        &mut issued,
                    );
                }
            }

            // 3. Sample boundary.
            if (next_sample - now).abs() <= EPS {
                for (vm, busy) in vm_busy.iter_mut().enumerate() {
                    vm_samples[vm].push(*busy / cfg.sample_dt_s);
                    *busy = 0.0;
                }
                samples_taken += 1;
                next_sample = (samples_taken + 1) as f64 * cfg.sample_dt_s;
                // Re-target the closed-loop populations to the wave.
                if cfg.arrival_model == ArrivalModel::Closed {
                    for (c, wave) in cfg.waves.iter().enumerate() {
                        let target = wave.value_at(now).round().max(0.0) as usize;
                        let think = cfg.clusters[c].config().think_time_s;
                        pools[c].adjust(target, now, think, c, &mut think_seq, &mut think_heap);
                    }
                }
            }
        }

        // --- Assemble results -------------------------------------------
        let vm_utilization: Vec<TimeSeries> = vm_samples
            .into_iter()
            .map(|v| TimeSeries::new(cfg.sample_dt_s, v))
            .collect::<std::result::Result<_, _>>()
            .map_err(ClusterError::Trace)?;
        let mut server_utilization = Vec::with_capacity(cfg.servers.len());
        for (s, spec) in cfg.servers.iter().enumerate() {
            let members: Vec<&TimeSeries> = cfg
                .assignments
                .iter()
                .enumerate()
                .filter(|(_, a)| a.server == s)
                .map(|(v, _)| &vm_utilization[v])
                .collect();
            let agg = if members.is_empty() {
                TimeSeries::constant(cfg.sample_dt_s, n_samples, 0.0)
                    .map_err(ClusterError::Trace)?
            } else {
                TimeSeries::sum_of(&members).map_err(ClusterError::Trace)?
            };
            server_utilization.push(
                agg.scale(1.0 / spec.cores as f64)
                    .map_err(ClusterError::Trace)?,
            );
        }
        Ok(ClusterSimResult {
            vm_utilization,
            server_utilization,
            response_times: responses,
            queries_issued: issued,
            queries_completed: completed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn one_cluster_config(dedicated: Option<usize>, freq: f64) -> ClusterSimConfig {
        let cluster = WebSearchCluster::paper_setup1().unwrap();
        ClusterSimConfig {
            servers: vec![ServerSpec::new(8, freq)],
            waves: vec![ClientWave::sine(0.0, 200.0, 300.0).unwrap()],
            assignments: vec![
                VmAssignment {
                    cluster: 0,
                    isn: 0,
                    server: 0,
                    dedicated_cores: dedicated,
                },
                VmAssignment {
                    cluster: 0,
                    isn: 1,
                    server: 0,
                    dedicated_cores: dedicated,
                },
            ],
            clusters: vec![cluster],
            duration_s: 300.0,
            sample_dt_s: 1.0,
            warmup_s: 30.0,
            arrival_model: ArrivalModel::Open,
            seed: 42,
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let ok = one_cluster_config(None, 1.0);
        assert!(ClusterSim::new(ok.clone()).is_ok());

        let mut c = ok.clone();
        c.servers.clear();
        assert!(ClusterSim::new(c).is_err());

        let mut c = ok.clone();
        c.servers[0].cores = 0;
        assert!(ClusterSim::new(c).is_err());

        let mut c = ok.clone();
        c.duration_s = 0.0;
        assert!(ClusterSim::new(c).is_err());

        let mut c = ok.clone();
        c.warmup_s = 400.0;
        assert!(ClusterSim::new(c).is_err());

        let mut c = ok.clone();
        c.assignments[0].server = 9;
        assert!(matches!(
            ClusterSim::new(c),
            Err(ClusterError::BadAssignment(_))
        ));

        let mut c = ok.clone();
        c.assignments[1].isn = 0;
        assert!(ClusterSim::new(c).is_err());

        let mut c = ok.clone();
        c.assignments.pop();
        assert!(ClusterSim::new(c).is_err());

        // Mixing dedicated and pool on one server.
        let mut c = ok.clone();
        c.assignments[0].dedicated_cores = Some(4);
        assert!(ClusterSim::new(c).is_err());

        // Core over-subscription.
        let mut c = ok;
        c.assignments[0].dedicated_cores = Some(5);
        c.assignments[1].dedicated_cores = Some(5);
        assert!(ClusterSim::new(c).is_err());
    }

    #[test]
    fn run_is_deterministic() {
        let cfg = one_cluster_config(None, 1.0);
        let a = ClusterSim::new(cfg.clone()).unwrap().run().unwrap();
        let b = ClusterSim::new(cfg).unwrap().run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_result_queries_error_instead_of_panicking() {
        let result = ClusterSim::new(one_cluster_config(None, 1.0))
            .unwrap()
            .run()
            .unwrap();
        assert!(result.p90_response(0).is_ok());
        assert!(matches!(
            result.p90_response(7),
            Err(ClusterError::InvalidParameter(_))
        ));
        assert!(result.peak_server_utilization(0).is_ok());
        assert!(matches!(
            result.peak_server_utilization(9),
            Err(ClusterError::InvalidParameter(_))
        ));
    }

    #[test]
    fn utilization_tracks_offered_load() {
        let cfg = one_cluster_config(None, 1.0);
        let result = ClusterSim::new(cfg.clone()).unwrap().run().unwrap();
        // Mean measured utilization ≈ mean offered load (stable system).
        let wave_mean: f64 = cfg.waves[0].sample(1.0, 300).unwrap().mean();
        let expected: f64 = (0..2)
            .map(|i| cfg.clusters[0].expected_isn_load(wave_mean, i))
            .sum();
        let measured: f64 = result.vm_utilization.iter().map(|t| t.mean()).sum();
        assert!(
            (measured - expected).abs() / expected < 0.1,
            "measured {measured} vs offered {expected}"
        );
    }

    #[test]
    fn server_utilization_is_fraction_of_cores() {
        let result = ClusterSim::new(one_cluster_config(None, 1.0))
            .unwrap()
            .run()
            .unwrap();
        assert!(result.server_utilization[0].peak() <= 1.0 + 1e-9);
        assert!(result.server_utilization[0].min() >= 0.0);
    }

    #[test]
    fn most_queries_complete() {
        let result = ClusterSim::new(one_cluster_config(None, 1.0))
            .unwrap()
            .run()
            .unwrap();
        assert!(result.queries_issued[0] > 1000);
        let completion_rate = result.queries_completed[0] as f64 / result.queries_issued[0] as f64;
        assert!(completion_rate > 0.95, "completion rate {completion_rate}");
        assert!(result.p90_response(0).unwrap() > 0.0);
    }

    #[test]
    fn lower_frequency_increases_response_time() {
        let fast = ClusterSim::new(one_cluster_config(None, 1.0))
            .unwrap()
            .run()
            .unwrap();
        let slow = ClusterSim::new(one_cluster_config(None, 0.6))
            .unwrap()
            .run()
            .unwrap();
        assert!(
            slow.p90_response(0).unwrap() > fast.p90_response(0).unwrap(),
            "slow {} vs fast {}",
            slow.p90_response(0).unwrap(),
            fast.p90_response(0).unwrap()
        );
    }

    #[test]
    fn segregation_hurts_under_imbalance() {
        // The hot ISN (share 1.3) saturates its 4-core partition at the
        // wave peak; pooling the 8 cores absorbs it.
        let pooled = ClusterSim::new(one_cluster_config(None, 1.0))
            .unwrap()
            .run()
            .unwrap();
        let segregated = ClusterSim::new(one_cluster_config(Some(4), 1.0))
            .unwrap()
            .run()
            .unwrap();
        assert!(
            segregated.p90_response(0).unwrap() > pooled.p90_response(0).unwrap(),
            "segregated {} vs pooled {}",
            segregated.p90_response(0).unwrap(),
            pooled.p90_response(0).unwrap()
        );
    }

    #[test]
    fn closed_loop_runs_and_throttles_overload() {
        // Closed-loop clients cannot push the queue to divergence: under
        // the same saturating load, their tail is bounded by the client
        // population, so it stays far below the open-loop tail.
        let mut open = one_cluster_config(Some(4), 1.0);
        open.waves = vec![ClientWave::sine(0.0, 320.0, 300.0).unwrap()];
        let mut closed = open.clone();
        closed.arrival_model = ArrivalModel::Closed;
        let open_result = ClusterSim::new(open).unwrap().run().unwrap();
        let closed_result = ClusterSim::new(closed).unwrap().run().unwrap();
        assert!(closed_result.queries_issued[0] > 500);
        assert!(
            closed_result.p90_response(0).unwrap() < open_result.p90_response(0).unwrap(),
            "closed {} !< open {}",
            closed_result.p90_response(0).unwrap(),
            open_result.p90_response(0).unwrap()
        );
    }

    #[test]
    fn closed_loop_matches_open_loop_throughput_when_underloaded() {
        // Far from saturation the two arrival models offer the same
        // load: each of N clients completes ≈ duration/think queries.
        let mut cfg = one_cluster_config(None, 1.0);
        cfg.waves = vec![ClientWave::sine(40.0, 60.0, 300.0).unwrap()];
        let open = ClusterSim::new(cfg.clone()).unwrap().run().unwrap();
        cfg.arrival_model = ArrivalModel::Closed;
        let closed = ClusterSim::new(cfg).unwrap().run().unwrap();
        let ratio = closed.queries_issued[0] as f64 / open.queries_issued[0] as f64;
        assert!(
            (0.85..1.15).contains(&ratio),
            "throughput ratio closed/open = {ratio}"
        );
    }

    #[test]
    fn closed_loop_is_deterministic() {
        let mut cfg = one_cluster_config(None, 1.0);
        cfg.arrival_model = ArrivalModel::Closed;
        let a = ClusterSim::new(cfg.clone()).unwrap().run().unwrap();
        let b = ClusterSim::new(cfg).unwrap().run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn response_time_at_least_service_demand() {
        // A query cannot finish faster than its largest ISN demand at
        // one core; the p90 must exceed the mean base demand.
        let cfg = one_cluster_config(None, 1.0);
        let base = cfg.clusters[0].config().base_demand_core_s;
        let result = ClusterSim::new(cfg).unwrap().run().unwrap();
        assert!(result.p90_response(0).unwrap() > base * 0.7);
    }
}
