//! The paper's Setup-1 scenario, pre-wired (Figs 4 and 5).
//!
//! Two web-search clusters of two ISNs each on two 8-core servers; the
//! client population of Cluster1 follows a sine wave and Cluster2 a
//! cosine wave, both 0–300. Three placements are compared:
//!
//! * **Segregated** — each ISN pinned to 4 dedicated cores (Fig 4(a));
//! * **Shared-UnCorr** — cluster-mates (highly *correlated* VMs) share
//!   one server's 8-core pool (Fig 4(b));
//! * **Shared-Corr** — VMs from *different* clusters (anti-phased, hence
//!   uncorrelated) share a pool, pairing each cluster's hot shard with
//!   the other's cold shard (Fig 4(c)).
//!
//! The frequency scale models the Opteron ladder of the testbed:
//! `1.0` ≡ 2.1 GHz, `1.9/2.1 ≈ 0.905` ≡ 1.9 GHz.

use crate::sim::{
    ArrivalModel, ClusterSim, ClusterSimConfig, ClusterSimResult, ServerSpec, VmAssignment,
};
use crate::ClusterError;
use cavm_trace::percentile;
use cavm_workload::{ClientWave, WebSearchCluster};
use serde::{Deserialize, Serialize};

/// The three VM placements of Fig 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Setup1Placement {
    /// Fig 4(a): every ISN on 4 dedicated cores.
    Segregated,
    /// Fig 4(b): cluster-mates share a server pool (correlation-blind).
    SharedUncorrelated,
    /// Fig 4(c): cross-cluster pairs share a server pool
    /// (correlation-aware).
    SharedCorrelated,
}

impl Setup1Placement {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Setup1Placement::Segregated => "Segregated",
            Setup1Placement::SharedUncorrelated => "Shared-UnCorr",
            Setup1Placement::SharedCorrelated => "Shared-Corr",
        }
    }
}

/// Scenario parameters with paper-matching defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Setup1Config {
    /// Execution-rate multiplier: 1.0 ≡ 2.1 GHz, `1.9/2.1` ≡ 1.9 GHz.
    pub frequency_scale: f64,
    /// Simulated seconds (default: one full client-wave period).
    pub duration_s: f64,
    /// Utilization sampling interval (paper: 1 s).
    pub sample_dt_s: f64,
    /// Warm-up cut for response-time statistics.
    pub warmup_s: f64,
    /// Peak client population (paper: 300).
    pub clients_max: f64,
    /// Client-wave period in seconds.
    pub wave_period_s: f64,
    /// Emulate Faban's closed-loop clients (each waits for its response
    /// before thinking again) instead of open-loop Poisson arrivals.
    /// Closed-loop self-throttles during overload, as the real testbed
    /// did; open-loop stresses saturation harder.
    pub closed_loop: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Setup1Config {
    fn default() -> Self {
        Self {
            frequency_scale: 1.0,
            duration_s: 1200.0,
            sample_dt_s: 1.0,
            warmup_s: 60.0,
            clients_max: 300.0,
            wave_period_s: 1200.0,
            closed_loop: false,
            seed: 2013,
        }
    }
}

/// Output of one Setup-1 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Setup1Outcome {
    /// Which placement ran.
    pub placement: Setup1Placement,
    /// Raw simulation result (per-VM traces, responses, counters).
    pub result: ClusterSimResult,
    /// 90th-percentile response time per cluster, seconds (Fig 5).
    pub p90_response: Vec<f64>,
    /// Peak aggregate utilization per server, fraction of cores (the
    /// 0.88 / 0.6 numbers discussed around Fig 4).
    pub peak_server_util: Vec<f64>,
}

/// Builds the `ClusterSimConfig` for a placement (exposed so ablations
/// can tweak it before running).
///
/// # Errors
///
/// Propagates workload validation errors.
pub fn setup1_sim_config(
    placement: Setup1Placement,
    config: &Setup1Config,
) -> crate::Result<ClusterSimConfig> {
    let cluster1 = WebSearchCluster::paper_setup1().map_err(ClusterError::Workload)?;
    let cluster2 = cluster1.clone();
    let wave1 = ClientWave::sine(0.0, config.clients_max, config.wave_period_s)
        .map_err(ClusterError::Workload)?;
    let wave2 = ClientWave::cosine(0.0, config.clients_max, config.wave_period_s)
        .map_err(ClusterError::Workload)?;

    let a = |cluster: usize, isn: usize, server: usize, dedicated: Option<usize>| VmAssignment {
        cluster,
        isn,
        server,
        dedicated_cores: dedicated,
    };
    let assignments = match placement {
        Setup1Placement::Segregated => vec![
            a(0, 0, 0, Some(4)),
            a(0, 1, 0, Some(4)),
            a(1, 0, 1, Some(4)),
            a(1, 1, 1, Some(4)),
        ],
        Setup1Placement::SharedUncorrelated => {
            vec![
                a(0, 0, 0, None),
                a(0, 1, 0, None),
                a(1, 0, 1, None),
                a(1, 1, 1, None),
            ]
        }
        // Hot shard of one cluster with the cold shard of the other:
        // anti-phased waves and complementary shard weights.
        Setup1Placement::SharedCorrelated => {
            vec![
                a(0, 0, 0, None),
                a(1, 1, 0, None),
                a(0, 1, 1, None),
                a(1, 0, 1, None),
            ]
        }
    };

    Ok(ClusterSimConfig {
        servers: vec![
            ServerSpec::new(8, config.frequency_scale),
            ServerSpec::new(8, config.frequency_scale),
        ],
        clusters: vec![cluster1, cluster2],
        waves: vec![wave1, wave2],
        assignments,
        duration_s: config.duration_s,
        sample_dt_s: config.sample_dt_s,
        warmup_s: config.warmup_s,
        arrival_model: if config.closed_loop {
            ArrivalModel::Closed
        } else {
            ArrivalModel::Open
        },
        seed: config.seed,
    })
}

/// Runs one placement and summarizes it.
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn run_setup1(
    placement: Setup1Placement,
    config: &Setup1Config,
) -> crate::Result<Setup1Outcome> {
    let sim_config = setup1_sim_config(placement, config)?;
    let result = ClusterSim::new(sim_config)?.run()?;
    let p90_response = (0..result.response_times.len())
        .map(|c| {
            if result.response_times[c].is_empty() {
                Ok(0.0)
            } else {
                Ok(percentile(&result.response_times[c], 90.0).map_err(ClusterError::Trace)?)
            }
        })
        .collect::<crate::Result<Vec<f64>>>()?;
    let peak_server_util = (0..result.server_utilization.len())
        .map(|s| result.peak_server_utilization(s))
        .collect::<crate::Result<Vec<f64>>>()?;
    Ok(Setup1Outcome {
        placement,
        result,
        p90_response,
        peak_server_util,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Setup1Config {
        // Shorter run for unit tests; the bench binaries run the full
        // period.
        Setup1Config {
            duration_s: 600.0,
            wave_period_s: 600.0,
            ..Setup1Config::default()
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Setup1Placement::Segregated.label(), "Segregated");
        assert_eq!(Setup1Placement::SharedUncorrelated.label(), "Shared-UnCorr");
        assert_eq!(Setup1Placement::SharedCorrelated.label(), "Shared-Corr");
    }

    #[test]
    fn all_placements_run_and_complete_queries() {
        for p in [
            Setup1Placement::Segregated,
            Setup1Placement::SharedUncorrelated,
            Setup1Placement::SharedCorrelated,
        ] {
            let out = run_setup1(p, &quick()).unwrap();
            assert_eq!(out.p90_response.len(), 2);
            assert!(out.p90_response.iter().all(|&t| t > 0.0), "{p:?}");
            assert!(out.result.queries_issued.iter().sum::<usize>() > 1000);
        }
    }

    #[test]
    fn fig5_ordering_shared_beats_segregated() {
        let seg = run_setup1(Setup1Placement::Segregated, &quick()).unwrap();
        let unc = run_setup1(Setup1Placement::SharedUncorrelated, &quick()).unwrap();
        for c in 0..2 {
            assert!(
                unc.p90_response[c] < seg.p90_response[c],
                "cluster {c}: shared {} !< segregated {}",
                unc.p90_response[c],
                seg.p90_response[c]
            );
        }
    }

    #[test]
    fn fig4_peak_utilization_drops_with_correlation_awareness() {
        let unc = run_setup1(Setup1Placement::SharedUncorrelated, &quick()).unwrap();
        let cor = run_setup1(Setup1Placement::SharedCorrelated, &quick()).unwrap();
        let unc_peak = unc.peak_server_util.iter().copied().fold(0.0, f64::max);
        let cor_peak = cor.peak_server_util.iter().copied().fold(0.0, f64::max);
        assert!(
            cor_peak < unc_peak,
            "corr-aware peak {cor_peak} !< corr-blind peak {unc_peak}"
        );
    }

    #[test]
    fn downclocked_corr_close_to_fullspeed_uncorr() {
        // The paper's punchline: Shared-Corr at 1.9 GHz ≈ Shared-UnCorr
        // at 2.1 GHz (0.160 vs 0.155 s), i.e. the correlation gain pays
        // for the frequency drop.
        let unc = run_setup1(Setup1Placement::SharedUncorrelated, &quick()).unwrap();
        let low = Setup1Config {
            frequency_scale: 1.9 / 2.1,
            ..quick()
        };
        let cor_low = run_setup1(Setup1Placement::SharedCorrelated, &low).unwrap();
        for c in 0..2 {
            assert!(
                cor_low.p90_response[c] < unc.p90_response[c] * 1.35,
                "cluster {c}: downclocked corr {} vs fullspeed uncorr {}",
                cor_low.p90_response[c],
                unc.p90_response[c]
            );
        }
    }
}
