//! Equivalence suite pinning the optimized hot path to the seed
//! semantics:
//!
//! * the struct-of-arrays [`CostMatrix`] must produce **bit-identical**
//!   `cost(i, j)` to the seed per-pair
//!   [`baseline::PairwiseCostMatrix`] under both `Reference::Peak` and
//!   `Reference::Percentile(95)`;
//! * the parallel tick (`par_push_sample`) and the batch window replay
//!   (`push_columns`) must be bit-identical to serial ticks;
//! * the incremental [`ServerCostAggregate`] must match the direct
//!   Eqn (2) evaluation, and the allocator built on it must emit the
//!   **same placements**.

use cavm_core::alloc::{AllocationPolicy, Placement, ProposedPolicy, VmDescriptor};
use cavm_core::corr::baseline::PairwiseCostMatrix;
use cavm_core::corr::CostMatrix;
use cavm_core::servercost::{server_cost, server_cost_with_candidate, ServerCostAggregate};
use cavm_trace::{Reference, TimeSeries};
use proptest::prelude::*;

/// Random fleet samples: `ticks × n` utilizations in [0, 8) cores.
fn fleet(n: usize, max_ticks: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..8.0, n), 1..max_ticks)
}

fn both_references() -> [Reference; 2] {
    [Reference::Peak, Reference::Percentile(95.0)]
}

fn assert_matrices_bit_identical(
    soa: &CostMatrix,
    seed: &PairwiseCostMatrix,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(soa.len(), seed.len());
    for i in 0..soa.len() {
        for j in 0..soa.len() {
            let a = soa.cost(i, j);
            let b = seed.cost(i, j);
            prop_assert_eq!(
                a.map(f64::to_bits),
                b.map(f64::to_bits),
                "{}: pair ({}, {}) diverged: soa={:?} seed={:?}",
                context,
                i,
                j,
                a,
                b
            );
        }
    }
    Ok(())
}

proptest! {
    /// The SoA matrix is bit-identical to the seed per-pair path under
    /// both reference utilizations, after every tick.
    #[test]
    fn soa_matrix_matches_seed_bitwise(samples in fleet(6, 40)) {
        for reference in both_references() {
            let mut soa = CostMatrix::new(6, reference).unwrap();
            let mut seed = PairwiseCostMatrix::new(6, reference).unwrap();
            for (tick, s) in samples.iter().enumerate() {
                soa.push_sample(s).unwrap();
                seed.push_sample(s).unwrap();
                assert_matrices_bit_identical(
                    &soa, &seed, &format!("{reference:?} tick {tick}"),
                )?;
            }
            prop_assert_eq!(soa.samples(), seed.samples());
        }
    }

    /// Serial ticks, parallel ticks and batch column replay all land on
    /// the same bits.
    #[test]
    fn tick_paths_are_interchangeable(samples in fleet(5, 30)) {
        for reference in both_references() {
            let mut serial = CostMatrix::new(5, reference).unwrap();
            let mut parallel = CostMatrix::new(5, reference).unwrap();
            for s in &samples {
                serial.push_sample(s).unwrap();
                parallel.par_push_sample_threads(s, 3).unwrap();
            }

            // Batch replay of the same ticks as two trace windows.
            let traces: Vec<TimeSeries> = (0..5)
                .map(|v| {
                    TimeSeries::new(1.0, samples.iter().map(|s| s[v]).collect()).unwrap()
                })
                .collect();
            let refs: Vec<&TimeSeries> = traces.iter().collect();
            let split = samples.len() / 2;
            let mut batch = CostMatrix::new(5, reference).unwrap();
            batch.push_columns(&refs, 0, split).unwrap();
            batch.par_push_columns_threads(&refs, split, samples.len(), 3).unwrap();

            for i in 0..5 {
                for j in 0..5 {
                    let s = serial.cost(i, j).map(f64::to_bits);
                    prop_assert_eq!(s, parallel.cost(i, j).map(f64::to_bits),
                        "parallel tick diverged at ({}, {}) under {:?}", i, j, reference);
                    prop_assert_eq!(s, batch.cost(i, j).map(f64::to_bits),
                        "batch replay diverged at ({}, {}) under {:?}", i, j, reference);
                }
            }
            prop_assert_eq!(serial.samples(), parallel.samples());
            prop_assert_eq!(serial.samples(), batch.samples());
        }
    }

    /// The incremental aggregate matches direct Eqn (2) evaluation for
    /// both committed members and hypothetical candidates, at every
    /// prefix of a growing server.
    #[test]
    fn incremental_server_cost_matches_direct(
        samples in fleet(7, 30),
        demands in prop::collection::vec(0.0f64..4.0, 7)
    ) {
        let mut matrix = CostMatrix::new(7, Reference::Peak).unwrap();
        for s in &samples {
            matrix.push_sample(s).unwrap();
        }
        let vms: Vec<VmDescriptor> = demands
            .iter()
            .enumerate()
            .map(|(id, &d)| VmDescriptor::new(id, d))
            .collect();
        let mut agg = ServerCostAggregate::new();
        let mut members: Vec<usize> = Vec::new();
        let mut weighted: Vec<(usize, f64)> = Vec::new();
        for id in 0..7 {
            let candidate = agg.candidate_cost(id, vms[id].demand, &matrix);
            let direct = server_cost_with_candidate(&members, id, &vms, &matrix);
            prop_assert!((candidate - direct).abs() <= 1e-9 * direct.abs().max(1.0),
                "candidate {} vs direct {} with {} members", candidate, direct, members.len());
            agg.push(id, vms[id].demand, &matrix);
            members.push(id);
            weighted.push((id, vms[id].demand));
            let direct_now = server_cost(&weighted, &matrix);
            prop_assert!((agg.cost() - direct_now).abs() <= 1e-9 * direct_now.abs().max(1.0),
                "aggregate {} vs direct {}", agg.cost(), direct_now);
        }
    }

    /// End to end: the allocator over the optimized matrix and the
    /// incremental scan produces exactly the placements the seed
    /// pipeline produced for the same inputs.
    #[test]
    fn allocator_reproduces_seed_placements(
        samples in fleet(12, 50),
        demands in prop::collection::vec(0.1f64..3.5, 12),
        capacity in 4.0f64..12.0
    ) {
        for reference in both_references() {
            let mut soa = CostMatrix::new(12, reference).unwrap();
            let mut seed = PairwiseCostMatrix::new(12, reference).unwrap();
            for s in &samples {
                soa.push_sample(s).unwrap();
                seed.push_sample(s).unwrap();
            }
            let vms: Vec<VmDescriptor> = demands
                .iter()
                .enumerate()
                .map(|(id, &d)| VmDescriptor::new(id, d))
                .collect();

            let optimized =
                ProposedPolicy::default().place_uniform(&vms, &soa, capacity).unwrap();
            let reference_placement =
                seed_reference_place(&vms, &seed, capacity);

            prop_assert_eq!(
                optimized.servers(),
                reference_placement.servers(),
                "placements diverged under {:?}", reference
            );
            optimized.validate(&vms, capacity).unwrap();
        }
    }
}

/// A verbatim re-implementation of the *seed* ALLOCATE phase (linear
/// candidate scan + full `server_cost_with_candidate` re-evaluation
/// over the per-pair baseline matrix), used as the placement oracle.
fn seed_reference_place(
    vms: &[VmDescriptor],
    matrix: &PairwiseCostMatrix,
    capacity: f64,
) -> Placement {
    const FIT_EPS: f64 = 1e-9;
    let config = ProposedPolicy::default();
    let (th_init, alpha, th_floor) = {
        let c = config.config();
        (c.th_init, c.alpha, c.th_floor)
    };

    let mut order: Vec<usize> = (0..vms.len()).collect();
    order.sort_by(|&a, &b| {
        vms[b]
            .demand
            .partial_cmp(&vms[a].demand)
            .unwrap()
            .then_with(|| vms[a].id.cmp(&vms[b].id))
    });
    let total: f64 = vms.iter().map(|d| d.demand).sum();
    let n_est = (((total / capacity) - FIT_EPS).ceil().max(1.0) as usize).max(1);

    struct Bin {
        members: Vec<usize>,
        used: f64,
    }
    let seed_cost = |members: &[usize], candidate: usize| -> f64 {
        let mut weighted: Vec<(usize, f64)> =
            members.iter().map(|&id| (id, vms[id].demand)).collect();
        weighted.push((candidate, vms[candidate].demand));
        let n = weighted.len();
        if n <= 1 {
            return 1.0;
        }
        let total: f64 = weighted.iter().map(|&(_, u)| u).sum();
        let mut cost = 0.0;
        for &(j, u_j) in &weighted {
            let w_j = if total > 0.0 {
                u_j / total
            } else {
                1.0 / n as f64
            };
            let mut pair_sum = 0.0;
            for &(k, _) in &weighted {
                if k != j {
                    pair_sum += matrix.cost_or_neutral(j, k);
                }
            }
            cost += w_j * pair_sum / (n - 1) as f64;
        }
        cost
    };

    let mut bins: Vec<Bin> = (0..n_est)
        .map(|_| Bin {
            members: Vec::new(),
            used: 0.0,
        })
        .collect();
    let mut unalloc = order;
    let mut th = th_init;

    while !unalloc.is_empty() {
        let bin_idx = bins
            .iter()
            .enumerate()
            .max_by(|a, b| {
                (capacity - a.1.used)
                    .partial_cmp(&(capacity - b.1.used))
                    .unwrap()
            })
            .map(|(i, _)| i)
            .unwrap();

        let mut placed = 0;
        loop {
            let rem = capacity - bins[bin_idx].used;
            let choice = if bins[bin_idx].members.is_empty() {
                match unalloc.iter().position(|&i| vms[i].demand <= rem + FIT_EPS) {
                    Some(pos) => Some(pos),
                    None if !unalloc.is_empty() => Some(0),
                    None => None,
                }
            } else {
                let mut best: Option<(usize, f64)> = None;
                for (pos, &idx) in unalloc.iter().enumerate() {
                    let vm = &vms[idx];
                    if vm.demand > rem + FIT_EPS {
                        continue;
                    }
                    let cost = seed_cost(&bins[bin_idx].members, vm.id);
                    if cost < th && th > th_floor {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some((_, best_cost)) => cost > best_cost + 1e-12,
                    };
                    if better {
                        best = Some((pos, cost));
                    }
                }
                best.map(|(pos, _)| pos)
            };
            match choice {
                Some(pos) => {
                    let idx = unalloc.remove(pos);
                    bins[bin_idx].used += vms[idx].demand;
                    bins[bin_idx].members.push(vms[idx].id);
                    placed += 1;
                }
                None => break,
            }
        }

        if unalloc.is_empty() {
            break;
        }
        if placed == 0 {
            if th > th_floor {
                th = (th * alpha).max(th_floor);
            } else {
                bins.push(Bin {
                    members: Vec::new(),
                    used: 0.0,
                });
            }
        }
    }

    Placement::from_servers(bins.into_iter().map(|b| b.members).collect())
}
