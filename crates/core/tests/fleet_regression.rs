//! Regression pins for the fleet refactor: a degenerate one-class
//! [`ServerFleet`] must reproduce the placements of the pre-fleet
//! scalar-capacity API **exactly**.
//!
//! The expected membership lists below were captured by running the
//! pre-refactor code (commit `3555b16`) on the same deterministic
//! instances. All five policies are pinned on three instance sizes,
//! through both the [`AllocationPolicy::place_uniform`] compatibility
//! path and an explicit bounded one-class fleet.

use cavm_core::alloc::{
    AllocationPolicy, BfdPolicy, FfdPolicy, PcpPolicy, ProposedPolicy, SuperVmPolicy, VmDescriptor,
};
use cavm_core::corr::CostMatrix;
use cavm_core::fleet::ServerFleet;
use cavm_power::LinearPowerModel;
use cavm_trace::SimRng;

fn instance(n: usize, seed: u64) -> (Vec<VmDescriptor>, CostMatrix) {
    let mut rng = SimRng::new(seed);
    let vms: Vec<VmDescriptor> = (0..n)
        .map(|i| {
            let d = rng.range_f64(0.3, 3.5);
            VmDescriptor::new(i, d).with_off_peak(d * 0.85)
        })
        .collect();
    let mut matrix = CostMatrix::new(n, cavm_trace::Reference::Peak).unwrap();
    for _ in 0..40 {
        let s: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 3.5)).collect();
        matrix.push_sample(&s).unwrap();
    }
    (vms, matrix)
}

fn policies(n: usize) -> Vec<(&'static str, Box<dyn AllocationPolicy>)> {
    vec![
        ("proposed", Box::new(ProposedPolicy::default())),
        ("bfd", Box::new(BfdPolicy)),
        ("ffd", Box::new(FfdPolicy)),
        (
            "pcp",
            Box::new(PcpPolicy::from_labels((0..n).map(|i| i % 3).collect()).unwrap()),
        ),
        ("supervm", Box::new(SuperVmPolicy::default())),
    ]
}

/// Pre-refactor membership lists per (n, seed, capacity, policy).
fn expected(n: usize, policy: &str) -> Vec<Vec<usize>> {
    match (n, policy) {
        (12, "proposed") => vec![vec![2, 8], vec![5, 9, 0, 7, 6], vec![3, 1, 10], vec![4, 11]],
        (12, "bfd") | (12, "ffd") => {
            vec![vec![4, 3, 9], vec![5, 2, 8], vec![11, 0, 10, 7], vec![1, 6]]
        }
        (12, "pcp") => vec![vec![2, 10, 1, 9, 7], vec![5, 11, 0, 6], vec![4, 3, 8]],
        (12, "supervm") => vec![vec![4, 3, 9, 6], vec![5, 2, 8], vec![11, 0, 10, 7], vec![1]],
        (25, "proposed") => vec![
            vec![12, 17, 9, 21, 2, 13, 22, 16],
            vec![23, 18, 10, 1, 4, 5, 14, 20],
            vec![24, 11, 3, 15],
            vec![19, 0, 6],
            vec![7, 8],
        ],
        (25, "bfd") | (25, "ffd") => vec![
            vec![7, 19, 12],
            vec![24, 23, 15],
            vec![8, 21, 6, 3, 14, 16],
            vec![11, 5, 22, 2, 9, 0, 18, 20, 17, 13],
            vec![1, 4, 10],
        ],
        (25, "pcp") => vec![
            vec![21, 11, 0, 18, 20, 1, 4, 13, 10],
            vec![15, 3, 14, 5, 22, 2, 9, 16],
            vec![19, 12, 8, 6],
            vec![7, 24, 23, 17],
        ],
        (25, "supervm") => vec![
            vec![24, 11, 7, 8, 16],
            vec![19, 23, 12],
            vec![15, 20, 21, 17, 6, 3, 5],
            vec![14, 22, 9, 10, 2, 0, 18, 1, 4, 13],
        ],
        (40, "proposed") => vec![
            vec![32, 11, 19],
            vec![4, 33, 24, 35, 38],
            vec![15, 1, 18, 2],
            vec![26, 22, 28, 0, 23],
            vec![8, 16, 39],
            vec![20, 6, 9, 3],
            vec![34, 25, 36, 30, 21],
            vec![29, 10, 17],
            vec![12, 14, 37],
            vec![7, 27, 31, 13],
            vec![5],
        ],
        (40, "bfd") => vec![
            vec![7, 12, 1],
            vec![29, 34, 11],
            vec![20, 8, 24],
            vec![26, 15, 39],
            vec![4, 32, 33],
            vec![14, 16, 10],
            vec![5, 9, 18, 27],
            vec![25, 17, 28, 37],
            vec![19, 31, 13, 6, 2, 30],
            vec![21, 36, 22, 0, 3, 35, 23, 38],
        ],
        (40, "ffd") => vec![
            vec![7, 12, 1],
            vec![29, 34, 37],
            vec![20, 8, 24],
            vec![26, 15, 39],
            vec![4, 32, 33],
            vec![14, 16, 10],
            vec![5, 9, 18, 27],
            vec![25, 17, 28, 11],
            vec![19, 31, 13, 6, 2, 30],
            vec![21, 36, 22, 0, 3, 35, 23, 38],
        ],
        (40, "pcp") => vec![
            vec![17, 31, 21, 0, 35, 27, 23, 30],
            vec![5, 19, 6, 2, 36, 3],
            vec![14, 28, 24, 13, 1],
            vec![32, 25, 39, 37, 38],
            vec![26, 10, 18, 22],
            vec![8, 16, 9],
            vec![20, 15, 4],
            vec![29, 34, 33],
            vec![7, 12, 11],
        ],
        (40, "supervm") => vec![
            vec![7, 33, 29],
            vec![8, 18, 12, 1, 30],
            vec![39, 31, 34, 37],
            vec![20, 26, 24],
            vec![15, 4, 25],
            vec![32, 10, 0, 5],
            vec![14, 16, 9],
            vec![17, 28, 19, 11, 38],
            vec![13, 6, 2, 21, 36, 22, 3],
            vec![35, 27, 23],
        ],
        _ => panic!("no golden for ({n}, {policy})"),
    }
}

#[test]
fn one_class_fleet_reproduces_pre_refactor_placements() {
    for (n, seed, cap) in [(12usize, 7u64, 8.0f64), (25, 11, 10.0), (40, 2013, 8.0)] {
        let (vms, matrix) = instance(n, seed);
        for (name, policy) in policies(n) {
            let want = expected(n, name);
            // The scalar-capacity compatibility path...
            let via_uniform = policy.place_uniform(&vms, &matrix, cap).unwrap();
            assert_eq!(
                via_uniform.servers(),
                want.as_slice(),
                "place_uniform diverged for {name} at n={n}"
            );
            // ...and an explicit bounded one-class fleet.
            let fleet = ServerFleet::uniform(n, cap, LinearPowerModel::xeon_e5410()).unwrap();
            let via_fleet = policy.place(&vms, &matrix, &fleet).unwrap();
            assert_eq!(
                via_fleet.servers(),
                want.as_slice(),
                "bounded one-class fleet diverged for {name} at n={n}"
            );
            // Every server of a one-class placement carries class 0.
            assert!(via_fleet.classes().iter().all(|&c| c == 0));
        }
    }
}
