//! Property-based tests for the correlation/allocation core.

use cavm_core::alloc::proposed::estimate_server_count;
use cavm_core::alloc::{
    AllocationPolicy, BfdPolicy, FfdPolicy, PcpPolicy, ProposedPolicy, SuperVmPolicy, VmDescriptor,
};
use cavm_core::corr::matrix::cost_of_slices;
use cavm_core::corr::CostMatrix;
use cavm_core::dvfs::FrequencyPlanner;
use cavm_core::fleet::{ServerClass, ServerFleet};
use cavm_core::servercost::server_cost;
use cavm_power::{DvfsLadder, LinearPowerModel};
use cavm_trace::Reference;
use proptest::prelude::*;

fn util_pairs(max_len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0f64..8.0, 0.0f64..8.0), 2..max_len)
}

proptest! {
    /// Eqn 1 under peak reference is symmetric and confined to [1, 2].
    #[test]
    fn cost_bounds_and_symmetry(pairs in util_pairs(120)) {
        let (xs, ys): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let ab = cost_of_slices(&xs, &ys, Reference::Peak).unwrap();
        let ba = cost_of_slices(&ys, &xs, Reference::Peak).unwrap();
        prop_assert_eq!(ab, ba);
        prop_assert!((1.0 - 1e-9..=2.0 + 1e-9).contains(&ab), "cost {}", ab);
    }

    /// The all-pairs matrix stays symmetric with unit diagonal under any
    /// sample stream.
    #[test]
    fn matrix_symmetry(
        samples in prop::collection::vec(
            prop::collection::vec(0.0f64..8.0, 4), 1..50
        )
    ) {
        let mut m = CostMatrix::new(4, Reference::Peak).unwrap();
        for s in &samples {
            m.push_sample(s).unwrap();
        }
        for i in 0..4 {
            prop_assert_eq!(m.cost(i, i), Some(1.0));
            for j in 0..4 {
                prop_assert_eq!(m.cost(i, j), m.cost(j, i));
            }
        }
    }

    /// Eqn 2 lies within the min/max pairwise cost of the member set.
    #[test]
    fn server_cost_within_pair_range(
        samples in prop::collection::vec(
            prop::collection::vec(0.0f64..8.0, 5), 2..40
        ),
        demands in prop::collection::vec(0.1f64..4.0, 5)
    ) {
        let mut m = CostMatrix::new(5, Reference::Peak).unwrap();
        for s in &samples {
            m.push_sample(s).unwrap();
        }
        let members: Vec<(usize, f64)> =
            demands.iter().enumerate().map(|(i, &d)| (i, d)).collect();
        let cost = server_cost(&members, &m);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..5 {
            for j in (i + 1)..5 {
                let c = m.cost(i, j).unwrap();
                lo = lo.min(c);
                hi = hi.max(c);
            }
        }
        prop_assert!(cost >= lo - 1e-9 && cost <= hi + 1e-9,
            "server cost {} outside pair range [{}, {}]", cost, lo, hi);
    }

    /// Every capacity-respecting policy covers all VMs exactly once,
    /// respects capacity, and meets the Eqn 3 lower bound.
    #[test]
    fn policies_produce_sound_placements(
        demands in prop::collection::vec(0.05f64..6.0, 1..30),
        capacity in 6.0f64..12.0
    ) {
        let vms: Vec<VmDescriptor> = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| VmDescriptor::new(i, d))
            .collect();
        let matrix = CostMatrix::new(vms.len(), Reference::Peak).unwrap();
        let lower = estimate_server_count(demands.iter().sum(), capacity);
        for policy in [
            &ProposedPolicy::default() as &dyn AllocationPolicy,
            &BfdPolicy,
            &FfdPolicy,
        ] {
            let placement = policy.place_uniform(&vms, &matrix, capacity).unwrap();
            placement.validate(&vms, capacity).unwrap();
            prop_assert!(placement.server_count() >= lower, "{} under Eqn 3", policy.name());
        }
    }

    /// PCP (multi-cluster mode) covers all VMs exactly once and honours
    /// its off-peak + shared-buffer capacity rule.
    #[test]
    fn pcp_placement_sound(
        demands in prop::collection::vec(0.5f64..4.0, 2..20),
        capacity in 6.0f64..12.0,
        cluster_stride in 2usize..4
    ) {
        let vms: Vec<VmDescriptor> = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| VmDescriptor::new(i, d).with_off_peak(d * 0.8))
            .collect();
        let labels: Vec<usize> = (0..vms.len()).map(|i| i % cluster_stride).collect();
        let pcp = PcpPolicy::from_labels(labels).unwrap();
        let matrix = CostMatrix::new(vms.len(), Reference::Peak).unwrap();
        let placement = pcp.place_uniform(&vms, &matrix, capacity).unwrap();
        placement.validate_structure(&vms).unwrap();
        for server in placement.servers() {
            if server.len() == 1 {
                continue; // lone oversized VMs are tolerated
            }
            let off: f64 = server.iter().map(|&id| vms[id].off_peak).sum();
            let buffer = server
                .iter()
                .map(|&id| vms[id].demand - vms[id].off_peak)
                .fold(0.0, f64::max);
            prop_assert!(off + buffer <= capacity + 1e-9);
        }
    }

    /// Eqn 4 with a larger server cost never selects a higher level, and
    /// the result is always a ladder level.
    #[test]
    fn eqn4_monotone_in_cost(
        demand in 0.0f64..16.0,
        cost_a in 1.0f64..2.0,
        cost_b in 1.0f64..2.0
    ) {
        let planner = FrequencyPlanner::new(DvfsLadder::xeon_e5410());
        let (lo, hi) = if cost_a <= cost_b { (cost_a, cost_b) } else { (cost_b, cost_a) };
        let f_lo_cost = planner.static_level_correlation_aware(demand, 8.0, lo).unwrap();
        let f_hi_cost = planner.static_level_correlation_aware(demand, 8.0, hi).unwrap();
        prop_assert!(f_hi_cost <= f_lo_cost);
        prop_assert!(planner.ladder().index_of(f_lo_cost).is_some());
        let worst = planner.static_level_worst_case(demand, 8.0).unwrap();
        prop_assert!(f_lo_cost <= worst);
    }

    /// Every policy on a random *heterogeneous* fleet yields a
    /// structurally valid placement that respects each assigned
    /// server's own class capacity (and per-class server counts).
    /// PCP provisions off-peak, so its capacity rule is checked
    /// separately below; here its structure and class bookkeeping are
    /// still validated.
    #[test]
    fn policies_respect_heterogeneous_fleets(
        demands in prop::collection::vec(0.05f64..6.0, 1..25),
        class_cores in prop::collection::vec(3.0f64..20.0, 1..4),
        scale in 0.5f64..2.5
    ) {
        let n = demands.len();
        let vms: Vec<VmDescriptor> = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| VmDescriptor::new(i, d).with_off_peak(d * 0.8))
            .collect();
        let matrix = CostMatrix::new(n, Reference::Peak).unwrap();
        // Per-class counts of 4n keep every policy clear of exhaustion:
        // the capacity-estimate pre-open can consume up to
        // ceil(Σdemand / min_cores) ≤ 2n slots before each remaining
        // (possibly oversized) VM opens its own server.
        let classes: Vec<ServerClass> = class_cores
            .iter()
            .enumerate()
            .map(|(i, &cores)| {
                let model = LinearPowerModel::xeon_e5410()
                    .scaled(scale * (1.0 + i as f64 * 0.3))
                    .unwrap();
                ServerClass::new(&format!("class{i}"), 4 * n, cores, model).unwrap()
            })
            .collect();
        let fleet = ServerFleet::new(classes).unwrap();
        let pcp = PcpPolicy::from_labels((0..n).map(|i| i % 2).collect()).unwrap();
        let policies: [&dyn AllocationPolicy; 5] = [
            &ProposedPolicy::default(),
            &BfdPolicy,
            &FfdPolicy,
            &pcp,
            &SuperVmPolicy::default(),
        ];
        for policy in policies {
            let placement = policy.place(&vms, &matrix, &fleet).unwrap();
            match policy.name() {
                // PCP (off-peak provisioning) and SuperVM (joint
                // sizing) legitimately pack beyond the sum-of-peaks
                // bound; their structure and class bookkeeping are
                // still exercised through validate_fleet's class
                // checks via a structure-only pass.
                "PCP" | "SuperVM" => {
                    placement.validate_structure(&vms).unwrap();
                    for (s, server) in placement.servers().iter().enumerate() {
                        let class = placement.class_of(s).unwrap();
                        prop_assert!(class < fleet.len(), "{}: bad class", policy.name());
                        if policy.name() == "PCP" && server.len() > 1 {
                            // PCP's own rule: off-peak sum + shared
                            // buffer within the class capacity.
                            let cores = fleet.classes()[class].cores();
                            let off: f64 = server.iter().map(|&id| vms[id].off_peak).sum();
                            let buffer = server
                                .iter()
                                .map(|&id| vms[id].demand - vms[id].off_peak)
                                .fold(0.0, f64::max);
                            prop_assert!(
                                off + buffer <= cores + 1e-9,
                                "PCP overcommits class {class} ({off} + {buffer} > {cores})"
                            );
                        }
                    }
                }
                _ => placement.validate_fleet(&vms, &fleet).unwrap(),
            }
        }
    }

    /// The fill-order-prefix Eqn (3) estimate is a true lower bound on
    /// the server count of every capacity-respecting policy, on any
    /// heterogeneous fleet — provided no VM overflows even the
    /// smallest class (an oversized VM overcommits its lone server and
    /// voids the capacity argument), which the generator guarantees by
    /// scaling demands below the smallest class capacity.
    #[test]
    fn hetero_estimate_is_a_server_count_lower_bound(
        raw_demands in prop::collection::vec(0.05f64..1.0, 1..25),
        class_cores in prop::collection::vec(3.0f64..20.0, 1..4),
        scale in 0.5f64..2.5
    ) {
        let min_cores = class_cores.iter().cloned().fold(f64::INFINITY, f64::min);
        let demands: Vec<f64> = raw_demands.iter().map(|d| d * min_cores * 0.99).collect();
        let vms: Vec<VmDescriptor> = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| VmDescriptor::new(i, d))
            .collect();
        let matrix = CostMatrix::new(vms.len(), Reference::Peak).unwrap();
        let n = vms.len();
        let classes: Vec<ServerClass> = class_cores
            .iter()
            .enumerate()
            .map(|(i, &cores)| {
                let model = LinearPowerModel::xeon_e5410()
                    .scaled(scale * (1.0 + i as f64 * 0.3))
                    .unwrap();
                ServerClass::new(&format!("class{i}"), 4 * n, cores, model).unwrap()
            })
            .collect();
        let fleet = ServerFleet::new(classes).unwrap();
        let lower = fleet.estimate_server_count(demands.iter().sum());
        for policy in [
            &ProposedPolicy::default() as &dyn AllocationPolicy,
            &BfdPolicy,
            &FfdPolicy,
        ] {
            let placement = policy.place(&vms, &matrix, &fleet).unwrap();
            placement.validate_fleet(&vms, &fleet).unwrap();
            prop_assert!(
                placement.server_count() >= lower,
                "{}: {} servers under the fleet Eqn 3 bound {}",
                policy.name(), placement.server_count(), lower
            );
        }
    }

    /// The ALLOCATE heuristic is insensitive to descriptor order
    /// (it re-sorts internally): permuted inputs give placements with
    /// the same server count.
    #[test]
    fn proposed_order_invariant(
        demands in prop::collection::vec(0.1f64..4.0, 2..15),
        seed in any::<u64>()
    ) {
        let vms: Vec<VmDescriptor> = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| VmDescriptor::new(i, d))
            .collect();
        let mut shuffled = vms.clone();
        let mut rng = cavm_trace::SimRng::new(seed);
        rng.shuffle(&mut shuffled);
        let matrix = CostMatrix::new(vms.len(), Reference::Peak).unwrap();
        let a = ProposedPolicy::default().place_uniform(&vms, &matrix, 8.0).unwrap();
        let b = ProposedPolicy::default().place_uniform(&shuffled, &matrix, 8.0).unwrap();
        prop_assert_eq!(a.server_count(), b.server_count());
    }
}
