//! Peak Clustering-based Placement (PCP) — Verma et al., USENIX 2009
//! (the paper's reference \[6\]), the prior correlation-aware baseline.
//!
//! PCP works on **envelopes**: a VM's envelope is the binary sequence of
//! "utilization at or above its off-peak value". VMs whose envelopes
//! overlap (peak together) are merged into one cluster; placement then
//! co-locates VMs *from different clusters*, provisioning each by its
//! off-peak demand while reserving a shared **peak buffer** per server
//! for whoever exceeds its off-peak value.
//!
//! The paper's key observation (Table II discussion): on bursty,
//! fast-changing scale-out traces the envelopes of all VMs overlap, PCP
//! collapses to a single cluster, and "when the number of clusters is
//! '1', PCP behaves exactly same with BFD" — which this implementation
//! makes literal by delegating to [`BfdPolicy`] (on the same
//! [`ServerFleet`]) in that case.

use crate::alloc::{
    decreasing_order, validate_inputs, AllocationPolicy, BfdPolicy, Placement, VmDescriptor,
    FIT_EPS,
};
use crate::corr::CostMatrix;
use crate::fleet::{FleetCursor, ServerFleet};
use crate::CoreError;
use cavm_trace::{Envelope, Reference, TimeSeries};
use serde::{Deserialize, Serialize};

/// Minimal union-find over `0..n`.
#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// The PCP baseline policy.
///
/// Construct it per placement period from the period's traces
/// ([`PcpPolicy::from_traces`]) or from precomputed cluster labels
/// ([`PcpPolicy::from_labels`]).
///
/// # Example
///
/// ```
/// use cavm_core::alloc::{AllocationPolicy, PcpPolicy, VmDescriptor};
/// use cavm_core::corr::CostMatrix;
/// use cavm_trace::{Reference, TimeSeries};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two day-shift VMs and two night-shift VMs (disjoint envelopes).
/// let day = TimeSeries::new(1.0, vec![4.0, 4.0, 4.0, 0.5, 0.5, 0.5])?;
/// let night = TimeSeries::new(1.0, vec![0.5, 0.5, 0.5, 4.0, 4.0, 4.0])?;
/// let traces = [&day, &day, &night, &night];
/// let pcp = PcpPolicy::from_traces(&traces, 60.0, 0.5)?;
/// assert_eq!(pcp.cluster_count(), 2);
///
/// let vms: Vec<_> = (0..4).map(|i| VmDescriptor::new(i, 4.0).with_off_peak(3.0)).collect();
/// let matrix = CostMatrix::new(4, Reference::Peak)?;
/// let p = pcp.place_uniform(&vms, &matrix, 8.0)?;
/// // Day VMs split across servers, paired with night VMs.
/// assert_ne!(p.server_of(0), p.server_of(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcpPolicy {
    /// Cluster label per VM id.
    clusters: Vec<usize>,
    cluster_count: usize,
}

impl PcpPolicy {
    /// Clusters VMs by envelope overlap.
    ///
    /// Each VM's envelope thresholds its own trace at its
    /// `envelope_percentile` (Verma uses the off-peak value, typically
    /// the 90th percentile). Two VMs whose envelope **containment**
    /// (overlap normalized by the smaller active set) reaches
    /// `affinity_threshold` are merged into one cluster.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an empty trace set or
    /// out-of-range parameters, and trace errors for malformed traces.
    pub fn from_traces(
        traces: &[&TimeSeries],
        envelope_percentile: f64,
        affinity_threshold: f64,
    ) -> crate::Result<Self> {
        if traces.is_empty() {
            return Err(CoreError::InvalidParameter("pcp needs at least one trace"));
        }
        if !(0.0..=1.0).contains(&affinity_threshold) {
            return Err(CoreError::InvalidParameter(
                "affinity threshold must be in [0, 1]",
            ));
        }
        let envelopes: Vec<Envelope> = traces
            .iter()
            .map(|t| Envelope::from_series(t, Reference::Percentile(envelope_percentile)))
            .collect::<std::result::Result<_, _>>()
            .map_err(CoreError::Trace)?;
        let n = envelopes.len();
        let mut uf = UnionFind::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let affinity = envelopes[i]
                    .containment(&envelopes[j])
                    .map_err(CoreError::Trace)?;
                if affinity >= affinity_threshold {
                    uf.union(i, j);
                }
            }
        }
        let mut labels = vec![0usize; n];
        let mut next = 0usize;
        let mut canon: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for (v, label) in labels.iter_mut().enumerate() {
            let root = uf.find(v);
            let entry = canon.entry(root).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            *label = *entry;
        }
        Ok(Self {
            clusters: labels,
            cluster_count: next,
        })
    }

    /// Uses precomputed cluster labels (`labels[vm_id]`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an empty label set.
    pub fn from_labels(labels: Vec<usize>) -> crate::Result<Self> {
        if labels.is_empty() {
            return Err(CoreError::InvalidParameter("pcp needs at least one label"));
        }
        let cluster_count = {
            let set: std::collections::HashSet<usize> = labels.iter().copied().collect();
            set.len()
        };
        Ok(Self {
            clusters: labels,
            cluster_count,
        })
    }

    /// Number of clusters found.
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// Cluster label per VM id.
    pub fn clusters(&self) -> &[usize] {
        &self.clusters
    }
}

struct PcpBin {
    members: Vec<usize>,
    used_off_peak: f64,
    peak_buffer: f64,
    cores: f64,
    class: usize,
    clusters: std::collections::HashSet<usize>,
}

impl PcpBin {
    fn open(class: usize, cores: f64) -> Self {
        PcpBin {
            members: Vec::new(),
            used_off_peak: 0.0,
            peak_buffer: 0.0,
            cores,
            class,
            clusters: std::collections::HashSet::new(),
        }
    }

    fn fits(&self, vm: &VmDescriptor) -> bool {
        let buffer = self.peak_buffer.max(vm.demand - vm.off_peak);
        self.used_off_peak + vm.off_peak + buffer <= self.cores + FIT_EPS
    }

    fn add(&mut self, vm: &VmDescriptor, cluster: usize) {
        self.members.push(vm.id);
        self.used_off_peak += vm.off_peak;
        self.peak_buffer = self.peak_buffer.max(vm.demand - vm.off_peak);
        self.clusters.insert(cluster);
    }
}

impl AllocationPolicy for PcpPolicy {
    fn name(&self) -> &'static str {
        "PCP"
    }

    fn place(
        &self,
        vms: &[VmDescriptor],
        matrix: &CostMatrix,
        fleet: &ServerFleet,
    ) -> crate::Result<Placement> {
        validate_inputs(vms, matrix)?;
        for d in vms {
            if d.id >= self.clusters.len() {
                return Err(CoreError::UnknownVm {
                    id: d.id,
                    known: self.clusters.len(),
                });
            }
            if d.off_peak > d.demand + FIT_EPS {
                return Err(CoreError::InvalidParameter(
                    "off-peak demand exceeds peak demand",
                ));
            }
        }
        // The degenerate single-cluster case the paper highlights.
        if self.cluster_count <= 1 {
            return BfdPolicy.place(vms, matrix, fleet);
        }

        // Pre-open the off-peak lower bound of servers (a prefix of the
        // fleet's fill order) so that early (large) VMs spread across
        // bins instead of stacking cluster mates into the first one —
        // PCP's whole point is interleaving VMs of different clusters.
        let total_off_peak: f64 = vms.iter().map(|d| d.off_peak).sum();
        let mut cursor = FleetCursor::new(fleet);
        let mut bins: Vec<PcpBin> = Vec::new();
        let mut open_capacity = 0.0;
        while total_off_peak > 0.0 && open_capacity + FIT_EPS < total_off_peak {
            match cursor.open_next() {
                Some((class, cores)) => {
                    open_capacity += cores;
                    bins.push(PcpBin::open(class, cores));
                }
                None => break,
            }
        }
        for (placed, &idx) in decreasing_order(vms).iter().enumerate() {
            let vm = &vms[idx];
            let cluster = self.clusters[vm.id];
            // Prefer the tightest feasible bin NOT already hosting this
            // cluster; fall back to any feasible bin; else open the next
            // fill-order server. "Tightest" is the minimal off-peak
            // residual (ties keep the last candidate — the
            // `max_by`-on-used semantics of the uniform formulation).
            let pick = |require_disjoint: bool, bins: &[PcpBin]| -> Option<usize> {
                let mut best: Option<(usize, f64)> = None;
                for (i, b) in bins.iter().enumerate() {
                    if !b.fits(vm) || (require_disjoint && b.clusters.contains(&cluster)) {
                        continue;
                    }
                    let residual = b.cores - b.used_off_peak;
                    if best.is_none_or(|(_, best_residual)| residual <= best_residual) {
                        best = Some((i, residual));
                    }
                }
                best.map(|(i, _)| i)
            };
            let target = pick(true, &bins).or_else(|| pick(false, &bins));
            match target {
                Some(i) => bins[i].add(vm, cluster),
                None => {
                    let (class, cores) = cursor
                        .open_next()
                        .ok_or_else(|| cursor.exhausted(vms.len() - placed))?;
                    let mut bin = PcpBin::open(class, cores);
                    bin.add(vm, cluster);
                    bins.push(bin);
                }
            }
        }
        Ok(Placement::from_classed_servers(
            bins.into_iter().map(|b| (b.members, b.class)).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(v: &[f64]) -> TimeSeries {
        TimeSeries::new(1.0, v.to_vec()).unwrap()
    }

    #[test]
    fn clustering_separates_disjoint_envelopes() {
        let day = series(&[4.0, 4.0, 4.0, 0.5, 0.5, 0.5]);
        let night = series(&[0.5, 0.5, 0.5, 4.0, 4.0, 4.0]);
        let pcp = PcpPolicy::from_traces(&[&day, &day, &night, &night], 60.0, 0.5).unwrap();
        assert_eq!(pcp.cluster_count(), 2);
        assert_eq!(pcp.clusters()[0], pcp.clusters()[1]);
        assert_eq!(pcp.clusters()[2], pcp.clusters()[3]);
        assert_ne!(pcp.clusters()[0], pcp.clusters()[2]);
    }

    #[test]
    fn bursty_traces_collapse_to_one_cluster() {
        // Datacenter-wide bursts (Benson et al.): a sizeable share of
        // each VM's 5 s spikes comes from a fleet-wide factor, so every
        // envelope overlaps with every other — the degeneration the
        // paper reports for PCP (1 cluster in 22 of 24 periods).
        let mut rng = cavm_trace::SimRng::new(4);
        let n = 500;
        let shared: Vec<f64> = (0..n).map(|_| rng.lognormal_mean_cv(1.0, 0.6)).collect();
        let traces: Vec<TimeSeries> = (0..6)
            .map(|_| {
                series(
                    &(0..n)
                        .map(|k| {
                            if rng.bernoulli(0.6) {
                                shared[k]
                            } else {
                                rng.lognormal_mean_cv(1.0, 0.6)
                            }
                        })
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let refs: Vec<&TimeSeries> = traces.iter().collect();
        let pcp = PcpPolicy::from_traces(&refs, 90.0, 0.25).unwrap();
        assert_eq!(pcp.cluster_count(), 1, "bursty envelopes must merge");
    }

    #[test]
    fn single_cluster_delegates_to_bfd() {
        let pcp = PcpPolicy::from_labels(vec![0, 0, 0]).unwrap();
        let vms: Vec<VmDescriptor> = (0..3).map(|i| VmDescriptor::new(i, 3.0)).collect();
        let matrix = CostMatrix::new(3, Reference::Peak).unwrap();
        let via_pcp = pcp.place_uniform(&vms, &matrix, 8.0).unwrap();
        let via_bfd = BfdPolicy.place_uniform(&vms, &matrix, 8.0).unwrap();
        assert_eq!(via_pcp, via_bfd);
        assert_eq!(pcp.name(), "PCP");
    }

    #[test]
    fn multi_cluster_placement_interleaves_clusters() {
        let pcp = PcpPolicy::from_labels(vec![0, 0, 1, 1]).unwrap();
        let vms: Vec<VmDescriptor> = (0..4)
            .map(|i| VmDescriptor::new(i, 4.0).with_off_peak(3.0))
            .collect();
        let matrix = CostMatrix::new(4, Reference::Peak).unwrap();
        let p = pcp.place_uniform(&vms, &matrix, 8.0).unwrap();
        p.validate(&vms, 8.0).unwrap();
        // Cluster-mates are split.
        assert_ne!(p.server_of(0), p.server_of(1));
        assert_ne!(p.server_of(2), p.server_of(3));
    }

    #[test]
    fn off_peak_provisioning_packs_denser_than_peak() {
        // Three VMs with peak 4 but off-peak 2: peak-based packing needs
        // 2 servers of capacity 8; off-peak + buffer needs
        // 3·2 + (4-2) = 8 ≤ 8 → one server, when clusters differ.
        let pcp = PcpPolicy::from_labels(vec![0, 1, 2]).unwrap();
        let vms: Vec<VmDescriptor> = (0..3)
            .map(|i| VmDescriptor::new(i, 4.0).with_off_peak(2.0))
            .collect();
        let matrix = CostMatrix::new(3, Reference::Peak).unwrap();
        let p = pcp.place_uniform(&vms, &matrix, 8.0).unwrap();
        assert_eq!(p.server_count(), 1);
    }

    #[test]
    fn validates_inputs() {
        let pcp = PcpPolicy::from_labels(vec![0, 1]).unwrap();
        let matrix = CostMatrix::new(3, Reference::Peak).unwrap();
        // Id 2 has no cluster label.
        let vms = vec![VmDescriptor::new(2, 1.0)];
        assert!(matches!(
            pcp.place_uniform(&vms, &matrix, 8.0),
            Err(CoreError::UnknownVm { id: 2, known: 2 })
        ));
        // off_peak > demand is malformed.
        let vms = vec![VmDescriptor::new(0, 1.0).with_off_peak(2.0)];
        assert!(pcp.place_uniform(&vms, &matrix, 8.0).is_err());
        assert!(PcpPolicy::from_labels(vec![]).is_err());
        assert!(PcpPolicy::from_traces(&[], 90.0, 0.5).is_err());
        let t = series(&[1.0, 2.0]);
        assert!(PcpPolicy::from_traces(&[&t], 90.0, 1.5).is_err());
    }

    #[test]
    fn capacity_respected_in_multi_cluster_mode() {
        let pcp = PcpPolicy::from_labels(vec![0, 1, 0, 1, 0, 1]).unwrap();
        let vms: Vec<VmDescriptor> = (0..6)
            .map(|i| VmDescriptor::new(i, 3.0).with_off_peak(2.5))
            .collect();
        let matrix = CostMatrix::new(6, Reference::Peak).unwrap();
        let p = pcp.place_uniform(&vms, &matrix, 8.0).unwrap();
        // Peak-sum capacity does not bound PCP (off-peak provisioning);
        // check coverage plus PCP's own off-peak + buffer rule instead.
        p.validate_structure(&vms).unwrap();
        for (i, server) in p.servers().iter().enumerate() {
            let off: f64 = server.iter().map(|&id| vms[id].off_peak).sum();
            let buffer = server
                .iter()
                .map(|&id| vms[id].demand - vms[id].off_peak)
                .fold(0.0, f64::max);
            assert!(off + buffer <= 8.0 + 1e-9, "server {i} overcommitted");
        }
    }

    #[test]
    fn hetero_fleet_honours_per_class_off_peak_budget() {
        use crate::fleet::ServerClass;
        use cavm_power::LinearPowerModel;
        let xeon = LinearPowerModel::xeon_e5410;
        let fleet = ServerFleet::new(vec![
            ServerClass::new("big", 1, 12.0, xeon().scaled(1.5).unwrap()).unwrap(),
            ServerClass::new("small", 6, 4.0, xeon()).unwrap(),
        ])
        .unwrap();
        let pcp = PcpPolicy::from_labels(vec![0, 1, 0, 1, 0, 1]).unwrap();
        let vms: Vec<VmDescriptor> = (0..6)
            .map(|i| VmDescriptor::new(i, 3.0).with_off_peak(2.5))
            .collect();
        let matrix = CostMatrix::new(6, Reference::Peak).unwrap();
        let p = pcp.place(&vms, &matrix, &fleet).unwrap();
        p.validate_structure(&vms).unwrap();
        for (i, server) in p.servers().iter().enumerate() {
            let cores = fleet.classes()[p.class_of(i).unwrap()].cores();
            let off: f64 = server.iter().map(|&id| vms[id].off_peak).sum();
            let buffer = server
                .iter()
                .map(|&id| vms[id].demand - vms[id].off_peak)
                .fold(0.0, f64::max);
            assert!(
                server.len() == 1 || off + buffer <= cores + 1e-9,
                "server {i} overcommitted for its class"
            );
        }
    }
}
