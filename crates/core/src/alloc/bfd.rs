//! Best-Fit-Decreasing — the paper's primary baseline (Table II's
//! normalization reference).
//!
//! Like FFD, but each VM goes to the feasible server with the *least*
//! residual capacity (the tightest fit), which empirically packs
//! slightly better. Correlation-blind.

use crate::alloc::{
    decreasing_order, validate_inputs, AllocationPolicy, Placement, VmDescriptor, FIT_EPS,
};
use crate::corr::CostMatrix;
use serde::{Deserialize, Serialize};

/// Best-Fit-Decreasing allocation.
///
/// # Example
///
/// ```
/// use cavm_core::alloc::{AllocationPolicy, BfdPolicy, VmDescriptor};
/// use cavm_core::corr::CostMatrix;
/// use cavm_trace::Reference;
///
/// # fn main() -> Result<(), cavm_core::CoreError> {
/// let vms = vec![
///     VmDescriptor::new(0, 6.0),
///     VmDescriptor::new(1, 5.0),
///     VmDescriptor::new(2, 2.0),
/// ];
/// let matrix = CostMatrix::new(3, Reference::Peak)?;
/// let p = BfdPolicy.place(&vms, &matrix, 8.0)?;
/// // The 2-core VM best-fits next to the 6-core one (residual 0),
/// // not the 5-core one (residual 1).
/// assert_eq!(p.server_of(2), p.server_of(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BfdPolicy;

impl AllocationPolicy for BfdPolicy {
    fn name(&self) -> &'static str {
        "BFD"
    }

    fn place(
        &self,
        vms: &[VmDescriptor],
        matrix: &CostMatrix,
        capacity: f64,
    ) -> crate::Result<Placement> {
        validate_inputs(vms, matrix, capacity)?;
        let mut servers: Vec<(Vec<usize>, f64)> = Vec::new();
        for idx in decreasing_order(vms) {
            let vm = &vms[idx];
            // Tightest feasible bin: maximal used capacity that still
            // fits the VM.
            let best = servers
                .iter_mut()
                .filter(|(_, used)| used + vm.demand <= capacity + FIT_EPS)
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite loads"));
            match best {
                Some((members, used)) => {
                    members.push(vm.id);
                    *used += vm.demand;
                }
                None => servers.push((vec![vm.id], vm.demand)),
            }
        }
        Ok(Placement::from_servers(
            servers.into_iter().map(|(m, _)| m).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cavm_trace::Reference;

    fn descs(demands: &[f64]) -> Vec<VmDescriptor> {
        demands
            .iter()
            .enumerate()
            .map(|(i, &d)| VmDescriptor::new(i, d))
            .collect()
    }

    fn matrix(n: usize) -> CostMatrix {
        CostMatrix::new(n, Reference::Peak).unwrap()
    }

    #[test]
    fn best_fit_prefers_tightest_bin() {
        // After placing 6 and 5 on separate servers, the 2 fits both but
        // best-fits next to the 6.
        let vms = descs(&[6.0, 5.0, 2.0]);
        let p = BfdPolicy.place(&vms, &matrix(3), 8.0).unwrap();
        assert_eq!(p.server_of(2), p.server_of(0));
        assert_ne!(p.server_of(2), p.server_of(1));
        p.validate(&vms, 8.0).unwrap();
    }

    #[test]
    fn bfd_can_beat_ffd_in_server_count() {
        // Classic instance where best-fit packs tighter than first-fit:
        // capacity 10, items 7,6,3,3,2,2 (FFD: [7,3],[6,3],[2,2]=3 bins
        // only if first-fit misplaces; construct a case where counts
        // differ at least sometimes). Here we only pin BFD's optimum.
        let vms = descs(&[7.0, 6.0, 3.0, 3.0, 2.0, 2.0]);
        let p = BfdPolicy.place(&vms, &matrix(6), 10.0).unwrap();
        assert!(p.server_count() <= 3);
        p.validate(&vms, 10.0).unwrap();
    }

    #[test]
    fn oversized_and_empty_inputs() {
        let p = BfdPolicy.place(&[], &matrix(1), 4.0).unwrap();
        assert_eq!(p.server_count(), 0);
        let vms = descs(&[9.0]);
        let p = BfdPolicy.place(&vms, &matrix(1), 4.0).unwrap();
        assert_eq!(p.server_count(), 1);
        assert_eq!(BfdPolicy.name(), "BFD");
    }

    #[test]
    fn capacity_is_respected() {
        let vms = descs(&[3.0, 3.0, 3.0, 3.0, 3.0]);
        let p = BfdPolicy.place(&vms, &matrix(5), 7.0).unwrap();
        for i in 0..p.server_count() {
            assert!(p.demand_of(i, &vms) <= 7.0 + 1e-9);
        }
        p.validate(&vms, 7.0).unwrap();
    }

    #[test]
    fn rejects_invalid_inputs() {
        let vms = descs(&[1.0]);
        assert!(BfdPolicy.place(&vms, &matrix(1), -1.0).is_err());
        assert!(BfdPolicy
            .place(&descs(&[f64::NAN]), &matrix(1), 8.0)
            .is_err());
    }
}
