//! Best-Fit-Decreasing — the paper's primary baseline (Table II's
//! normalization reference).
//!
//! Like FFD, but each VM goes to the feasible open server with the
//! *least* residual capacity (the tightest fit), which empirically packs
//! slightly better; new servers open through the fleet cursor (largest
//! class first). Correlation-blind.

use crate::alloc::{
    decreasing_order, validate_inputs, AllocationPolicy, Placement, VmDescriptor, FIT_EPS,
};
use crate::corr::CostMatrix;
use crate::fleet::{FleetCursor, ServerFleet};
use serde::{Deserialize, Serialize};

/// Best-Fit-Decreasing allocation.
///
/// # Example
///
/// ```
/// use cavm_core::alloc::{AllocationPolicy, BfdPolicy, VmDescriptor};
/// use cavm_core::corr::CostMatrix;
/// use cavm_trace::Reference;
///
/// # fn main() -> Result<(), cavm_core::CoreError> {
/// let vms = vec![
///     VmDescriptor::new(0, 6.0),
///     VmDescriptor::new(1, 5.0),
///     VmDescriptor::new(2, 2.0),
/// ];
/// let matrix = CostMatrix::new(3, Reference::Peak)?;
/// let p = BfdPolicy.place_uniform(&vms, &matrix, 8.0)?;
/// // The 2-core VM best-fits next to the 6-core one (residual 0),
/// // not the 5-core one (residual 1).
/// assert_eq!(p.server_of(2), p.server_of(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BfdPolicy;

impl AllocationPolicy for BfdPolicy {
    fn name(&self) -> &'static str {
        "BFD"
    }

    fn place(
        &self,
        vms: &[VmDescriptor],
        matrix: &CostMatrix,
        fleet: &ServerFleet,
    ) -> crate::Result<Placement> {
        validate_inputs(vms, matrix)?;
        let mut cursor = FleetCursor::new(fleet);
        let class_wpc: Vec<f64> = fleet
            .classes()
            .iter()
            .map(|c| c.busy_watts_per_core())
            .collect();
        // (members, used, capacity, class) per open server.
        let mut servers: Vec<(Vec<usize>, f64, f64, usize)> = Vec::new();
        let order = decreasing_order(vms);
        for (placed, &idx) in order.iter().enumerate() {
            let vm = &vms[idx];
            // Tightest feasible open server: minimal residual capacity
            // that still fits the VM. Exact residual ties go to the
            // hosting class with the lower busy-watts-per-core (the
            // efficient class absorbs the load); remaining ties keep
            // the *last* candidate — the `max_by`-on-used semantics of
            // the uniform-capacity formulation, which the regression
            // suite pins (on a one-class fleet the wattage never
            // differs, so the historical behaviour is preserved
            // bit-identically).
            let mut best: Option<(usize, f64, f64)> = None;
            for (i, (_, used, cap, class)) in servers.iter().enumerate() {
                let residual = cap - used;
                if vm.demand > residual + FIT_EPS {
                    continue;
                }
                let wpc = class_wpc[*class];
                let better = match best {
                    None => true,
                    Some((_, best_residual, best_wpc)) => {
                        residual < best_residual || (residual == best_residual && wpc <= best_wpc)
                    }
                };
                if better {
                    best = Some((i, residual, wpc));
                }
            }
            match best {
                Some((i, _, _)) => {
                    let (members, used, _, _) = &mut servers[i];
                    members.push(vm.id);
                    *used += vm.demand;
                }
                None => {
                    let (class, cap) = cursor
                        .open_next()
                        .ok_or_else(|| cursor.exhausted(vms.len() - placed))?;
                    servers.push((vec![vm.id], vm.demand, cap, class));
                }
            }
        }
        Ok(Placement::from_classed_servers(
            servers.into_iter().map(|(m, _, _, c)| (m, c)).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::ServerClass;
    use cavm_power::LinearPowerModel;
    use cavm_trace::Reference;

    fn descs(demands: &[f64]) -> Vec<VmDescriptor> {
        demands
            .iter()
            .enumerate()
            .map(|(i, &d)| VmDescriptor::new(i, d))
            .collect()
    }

    fn matrix(n: usize) -> CostMatrix {
        CostMatrix::new(n, Reference::Peak).unwrap()
    }

    #[test]
    fn best_fit_prefers_tightest_bin() {
        // After placing 6 and 5 on separate servers, the 2 fits both but
        // best-fits next to the 6.
        let vms = descs(&[6.0, 5.0, 2.0]);
        let p = BfdPolicy.place_uniform(&vms, &matrix(3), 8.0).unwrap();
        assert_eq!(p.server_of(2), p.server_of(0));
        assert_ne!(p.server_of(2), p.server_of(1));
        p.validate(&vms, 8.0).unwrap();
    }

    #[test]
    fn bfd_can_beat_ffd_in_server_count() {
        // Classic instance where best-fit packs tighter than first-fit:
        // capacity 10, items 7,6,3,3,2,2 (FFD: [7,3],[6,3],[2,2]=3 bins
        // only if first-fit misplaces; construct a case where counts
        // differ at least sometimes). Here we only pin BFD's optimum.
        let vms = descs(&[7.0, 6.0, 3.0, 3.0, 2.0, 2.0]);
        let p = BfdPolicy.place_uniform(&vms, &matrix(6), 10.0).unwrap();
        assert!(p.server_count() <= 3);
        p.validate(&vms, 10.0).unwrap();
    }

    #[test]
    fn oversized_and_empty_inputs() {
        let p = BfdPolicy.place_uniform(&[], &matrix(1), 4.0).unwrap();
        assert_eq!(p.server_count(), 0);
        let vms = descs(&[9.0]);
        let p = BfdPolicy.place_uniform(&vms, &matrix(1), 4.0).unwrap();
        assert_eq!(p.server_count(), 1);
        assert_eq!(BfdPolicy.name(), "BFD");
    }

    #[test]
    fn capacity_is_respected() {
        let vms = descs(&[3.0, 3.0, 3.0, 3.0, 3.0]);
        let p = BfdPolicy.place_uniform(&vms, &matrix(5), 7.0).unwrap();
        for (i, &load) in p.server_demands(&vms).iter().enumerate() {
            assert!(load <= 7.0 + 1e-9);
            assert_eq!(load, p.demand_of(i, &vms));
        }
        p.validate(&vms, 7.0).unwrap();
    }

    #[test]
    fn rejects_invalid_inputs() {
        let vms = descs(&[1.0]);
        assert!(BfdPolicy.place_uniform(&vms, &matrix(1), -1.0).is_err());
        assert!(BfdPolicy
            .place_uniform(&descs(&[f64::NAN]), &matrix(1), 8.0)
            .is_err());
    }

    #[test]
    fn residual_ties_go_to_the_efficient_class() {
        let xeon = LinearPowerModel::xeon_e5410;
        // Two 8-core classes differing only in wattage; the frugal one
        // leads the fill order.
        let fleet = ServerFleet::new(vec![
            ServerClass::new("frugal", 1, 8.0, xeon()).unwrap(),
            ServerClass::new("hungry", 1, 8.0, xeon().scaled(1.4).unwrap()).unwrap(),
        ])
        .unwrap();
        // 7 + 7 open both servers (residual 1 each); the final 1-core VM
        // ties on residual and must join the frugal host.
        let vms = descs(&[7.0, 7.0, 1.0]);
        let p = BfdPolicy.place(&vms, &matrix(3), &fleet).unwrap();
        p.validate_fleet(&vms, &fleet).unwrap();
        assert_eq!(p.server_of(2), p.server_of(0));
        assert_eq!(p.class_of(p.server_of(2).unwrap()), Some(0));
    }

    #[test]
    fn heterogeneous_fleet_respects_per_class_capacity() {
        let xeon = LinearPowerModel::xeon_e5410;
        let fleet = ServerFleet::new(vec![
            ServerClass::new("big", 1, 16.0, xeon().scaled(2.0).unwrap()).unwrap(),
            ServerClass::new("small", 8, 4.0, xeon()).unwrap(),
        ])
        .unwrap();
        let vms = descs(&[9.0, 6.0, 3.0, 3.0]);
        let p = BfdPolicy.place(&vms, &matrix(4), &fleet).unwrap();
        p.validate_fleet(&vms, &fleet).unwrap();
        // 9+6 tight-pack the 16-core box; the 3s open 4-core boxes.
        assert_eq!(p.server_of(0), p.server_of(1));
        assert_eq!(p.class_of(p.server_of(0).unwrap()), Some(0));
        for s in 1..p.server_count() {
            assert_eq!(p.class_of(s), Some(1));
        }
    }
}
