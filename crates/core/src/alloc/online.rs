//! Single-VM (online) admission — the incremental half of the
//! allocation API.
//!
//! The batch entry point ([`AllocationPolicy::place`]) re-packs a whole
//! descriptor table; an online controller cannot afford that on every
//! arrival. [`AllocationPolicy::place_one`] instead picks a server for
//! *one* arriving VM against a live placement, expressed as a slice of
//! [`OpenServer`] views over each server's incremental
//! [`ServerCostAggregate`] — so a correlation-aware probe stays
//! O(|members|) per candidate server, exactly like the batch ALLOCATE
//! scan, and no full re-pack happens on arrival. Periodic re-packs
//! remain policy-driven (the controller re-runs the batch path at every
//! placement period boundary).
//!
//! The default admission rule is correlation-blind best fit — the
//! tightest feasible server, capacity ties broken by the hosting
//! class's busy-watts-per-core (the more efficient class wins) — which
//! is what BFD, PCP and SuperVM use between their period re-packs. FFD
//! overrides it with first fit, and the proposed policy overrides it
//! with the Eqn (2) maximal-server-cost rule.
//!
//! # Lease-aware admission
//!
//! Every rule is additionally **lease-aware** (cf. Quang-Hung et al.,
//! *Energy-Aware Lease Scheduling*): when the arriving VM's remaining
//! lease and the candidates' [`OpenServer::drain_samples`] are known,
//! servers that would *outlive* the arrival anyway are preferred over
//! servers whose members all depart sooner — admitting onto the latter
//! would extend the server's life past its natural drain point and
//! strand it half-empty. The bias is a strict two-tier preference, not
//! a hard filter: when no outliving server fits, the draining tier is
//! used unchanged, so lease awareness never opens more servers than
//! the lease-blind rule would. With no lease information anywhere
//! (every `drain_samples` is `None`, the batch setting) all three
//! rules are bit-identical to their lease-blind selves.

use crate::alloc::{VmDescriptor, FIT_EPS};
use crate::corr::CostMatrix;
use crate::servercost::{coincident_estimate, ServerCostAggregate};

#[cfg(doc)]
use crate::alloc::AllocationPolicy;

/// A live open server as seen by the single-VM admission path: its
/// fleet class, capacity, efficiency score and the incremental Eqn (2)
/// aggregate holding its members and packed load.
#[derive(Debug, Clone, Copy)]
pub struct OpenServer<'a> {
    /// Fleet-class index of the server.
    pub class: usize,
    /// Core capacity of the server.
    pub cores: f64,
    /// Busy-watts-per-core of the hosting class (lower = more
    /// efficient; used as the capacity tie-break).
    pub watts_per_core: f64,
    /// Samples until the server's *last* current member departs —
    /// `Some(k)` when every member's lease ends within `k` samples,
    /// `None` when at least one member stays indefinitely (or no lease
    /// information is known, the batch setting). Callers should leave
    /// an *empty* (vacated but reserved) server at `None`: it is
    /// already drained, so admitting there extends nothing and the
    /// slot must stay as eligible as a fresh server.
    pub drain_samples: Option<usize>,
    /// The server's incremental Eqn (2) aggregate.
    pub agg: &'a ServerCostAggregate,
    /// Whether the server is operational
    /// ([`ServerHealth::Healthy`](crate::fleet::ServerHealth)). Every
    /// admission rule skips unhealthy candidates outright — a failed
    /// server keeps its slot (and its class-capacity reservation) but
    /// can never be picked, in either lease tier. Capacity math
    /// ([`OpenServer::fits`]) stays health-blind on purpose: health is
    /// an admissibility question, not a sizing one.
    pub healthy: bool,
    /// Deliberate-overcommit margin granted to this server, as a
    /// fraction of `cores`. [`OpenServer::admits`] accepts a candidate
    /// whose predicted per-VM sum exceeds capacity by up to this
    /// fraction *when* the Eqn (2) cost says the candidate's peaks
    /// anti-align with the residents (the Eqn (1)
    /// [`coincident_estimate`] stays within plain capacity). `0.0` —
    /// the value everywhere overcommit is off — makes `admits`
    /// bit-identical to plain [`OpenServer::fits`].
    pub overcommit_margin: f64,
}

impl OpenServer<'_> {
    /// Residual capacity in cores.
    pub fn remaining(&self) -> f64 {
        self.cores - self.agg.total_util()
    }

    /// Whether a VM of `demand` cores fits the residual capacity.
    pub fn fits(&self, demand: f64) -> bool {
        demand <= self.remaining() + FIT_EPS
    }

    /// Whether the server admits `vm` under the deliberate-overcommit
    /// rule: plain [`fits`](OpenServer::fits), or — when this server
    /// carries a positive [`overcommit_margin`] and already has
    /// residents to anti-align with — a predicted per-VM sum of up to
    /// `cores × (1 + margin)` whose Eqn (1) [`coincident_estimate`]
    /// (the sum deflated by the post-insertion Eqn (2) cost) still
    /// lands within plain capacity. An empty server never overcommits:
    /// with no residents there are no pairs, Eqn (2) has nothing to
    /// say, and the estimate would be vacuous. With `overcommit_margin
    /// == 0.0` this is exactly `fits(vm.demand)` — the bit-identity
    /// anchor for every margin-off code path.
    ///
    /// [`overcommit_margin`]: OpenServer::overcommit_margin
    pub fn admits(&self, vm: &VmDescriptor, matrix: &CostMatrix) -> bool {
        if self.fits(vm.demand) {
            return true;
        }
        if self.overcommit_margin <= 0.0 || self.agg.is_empty() {
            return false;
        }
        let predicted = self.agg.total_util() + vm.demand;
        if predicted > self.cores * (1.0 + self.overcommit_margin) + FIT_EPS {
            return false;
        }
        let cost = self.agg.candidate_cost(vm.id, vm.demand, matrix);
        coincident_estimate(predicted, cost) <= self.cores + FIT_EPS
    }

    /// Whether the server stays busy at least as long as an arriving
    /// VM whose remaining lease is `lease` (`None` = open-ended) —
    /// i.e. admitting the VM here would not extend the server's life
    /// past its natural drain point. Servers with no known drain
    /// horizon trivially outlive everything.
    pub fn outlives(&self, lease: Option<usize>) -> bool {
        match (self.drain_samples, lease) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(d), Some(l)) => l <= d,
        }
    }
}

/// Best-fit scan over the servers passing `admissible`, with the batch
/// BFD keep-last tie semantics.
fn best_fit_tier(
    vm: &VmDescriptor,
    servers: &[OpenServer<'_>],
    matrix: &CostMatrix,
    admissible: impl Fn(&OpenServer<'_>) -> bool,
) -> Option<usize> {
    let mut best: Option<(usize, f64, f64)> = None;
    for (i, server) in servers.iter().enumerate() {
        if !server.healthy || !server.admits(vm, matrix) || !admissible(server) {
            continue;
        }
        let residual = server.remaining();
        let better = match best {
            None => true,
            Some((_, best_residual, best_wpc)) => {
                residual < best_residual
                    || (residual == best_residual && server.watts_per_core <= best_wpc)
            }
        };
        if better {
            best = Some((i, residual, server.watts_per_core));
        }
    }
    best.map(|(i, _, _)| i)
}

/// The default [`AllocationPolicy::place_one`] rule: tightest feasible
/// server, exact capacity ties broken by watts-per-core (efficient
/// class first), remaining ties keep the last candidate — the same
/// keep-last semantics as the batch BFD scan, so a uniform fleet
/// admits exactly where batch BFD would. Servers that outlive the
/// arrival's `lease` are preferred (see the [module docs](self)).
/// Feasibility is [`OpenServer::admits`]: bit-identical to plain fit
/// until a server carries a positive overcommit margin, at which point
/// an overcommitted admission ranks by its (negative) residual — the
/// tightest possible pack.
pub fn best_fit_server(
    vm: &VmDescriptor,
    lease: Option<usize>,
    servers: &[OpenServer<'_>],
    matrix: &CostMatrix,
) -> Option<usize> {
    best_fit_tier(vm, servers, matrix, |s| s.outlives(lease))
        .or_else(|| best_fit_tier(vm, servers, matrix, |_| true))
}

/// First-fit admission: the lowest-indexed feasible server that
/// outlives the arrival's `lease`, else the lowest-indexed feasible
/// server outright (FFD's online analogue).
pub fn first_fit_server(
    vm: &VmDescriptor,
    lease: Option<usize>,
    servers: &[OpenServer<'_>],
    matrix: &CostMatrix,
) -> Option<usize> {
    servers
        .iter()
        .position(|s| s.healthy && s.admits(vm, matrix) && s.outlives(lease))
        .or_else(|| {
            servers
                .iter()
                .position(|s| s.healthy && s.admits(vm, matrix))
        })
}

/// Max-Eqn-2-cost scan over the servers passing `admissible`.
fn max_cost_tier(
    vm: &VmDescriptor,
    servers: &[OpenServer<'_>],
    matrix: &CostMatrix,
    admissible: impl Fn(&OpenServer<'_>) -> bool,
) -> Option<usize> {
    let mut best: Option<(usize, f64, f64)> = None;
    for (i, server) in servers.iter().enumerate() {
        if !server.healthy || !server.admits(vm, matrix) || !admissible(server) {
            continue;
        }
        let cost = server.agg.candidate_cost(vm.id, vm.demand, matrix);
        let better = match best {
            None => true,
            Some((_, best_cost, best_wpc)) => {
                cost > best_cost + 1e-12
                    || ((cost - best_cost).abs() <= 1e-12 && server.watts_per_core < best_wpc)
            }
        };
        if better {
            best = Some((i, cost, server.watts_per_core));
        }
    }
    best.map(|(i, _, _)| i)
}

/// Correlation-aware admission: among feasible servers, the one whose
/// Eqn (2) server cost after insertion is maximal (ties prefer the
/// more efficient class, then the first candidate). Pairs the matrix
/// has never observed — including a VM that postdates the matrix —
/// score the neutral 1.5, so a brand-new arrival degrades gracefully
/// to an efficiency-aware best fit. Servers that outlive the
/// arrival's `lease` are preferred (see the [module docs](self)).
pub fn max_cost_server(
    vm: &VmDescriptor,
    lease: Option<usize>,
    servers: &[OpenServer<'_>],
    matrix: &CostMatrix,
) -> Option<usize> {
    max_cost_tier(vm, servers, matrix, |s| s.outlives(lease))
        .or_else(|| max_cost_tier(vm, servers, matrix, |_| true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{AllocationPolicy, BfdPolicy, FfdPolicy, ProposedPolicy};
    use cavm_trace::Reference;

    /// `(members, cores, class, watts_per_core)` of one test server.
    type ServerSpec<'a> = (&'a [(usize, f64)], f64, usize, f64);

    /// Builds aggregates for servers with the given `(members, cores,
    /// class, wpc)` tuples (no lease information: `drain_samples` is
    /// `None` everywhere unless overridden via [`Fixture::drains`]).
    struct Fixture {
        aggs: Vec<ServerCostAggregate>,
        meta: Vec<(usize, f64, f64)>,
        drains: Vec<Option<usize>>,
        health: Vec<bool>,
        margins: Vec<f64>,
    }

    impl Fixture {
        fn new(servers: &[ServerSpec<'_>], matrix: &CostMatrix) -> Self {
            let mut aggs = Vec::new();
            let mut meta = Vec::new();
            for &(members, cores, class, wpc) in servers {
                let mut agg = ServerCostAggregate::new();
                for &(id, util) in members {
                    agg.push(id, util, matrix);
                }
                aggs.push(agg);
                meta.push((class, cores, wpc));
            }
            let drains = vec![None; meta.len()];
            let health = vec![true; meta.len()];
            let margins = vec![0.0; meta.len()];
            Self {
                aggs,
                meta,
                drains,
                health,
                margins,
            }
        }

        fn drains(mut self, drains: &[Option<usize>]) -> Self {
            assert_eq!(drains.len(), self.meta.len());
            self.drains = drains.to_vec();
            self
        }

        fn margins(mut self, margins: &[f64]) -> Self {
            assert_eq!(margins.len(), self.meta.len());
            self.margins = margins.to_vec();
            self
        }

        fn failed(mut self, server: usize) -> Self {
            self.health[server] = false;
            self
        }

        fn views(&self) -> Vec<OpenServer<'_>> {
            self.aggs
                .iter()
                .zip(&self.meta)
                .zip(self.drains.iter().zip(&self.health))
                .zip(&self.margins)
                .map(
                    |(
                        ((agg, &(class, cores, watts_per_core)), (&drain_samples, &healthy)),
                        &overcommit_margin,
                    )| {
                        OpenServer {
                            class,
                            cores,
                            watts_per_core,
                            drain_samples,
                            agg,
                            healthy,
                            overcommit_margin,
                        }
                    },
                )
                .collect()
        }
    }

    #[test]
    fn open_server_accessors() {
        let m = CostMatrix::new(4, Reference::Peak).unwrap();
        let fx = Fixture::new(&[(&[(0, 3.0)], 8.0, 0, 37.5)], &m);
        let views = fx.views();
        assert_eq!(views[0].remaining(), 5.0);
        assert!(views[0].fits(5.0));
        assert!(!views[0].fits(5.1));
    }

    #[test]
    fn outlives_compares_drain_to_lease() {
        let m = CostMatrix::new(2, Reference::Peak).unwrap();
        let fx = Fixture::new(&[(&[(0, 3.0)], 8.0, 0, 37.5)], &m).drains(&[Some(100)]);
        let s = &fx.views()[0];
        assert!(s.outlives(Some(100)), "equal horizons do not extend");
        assert!(s.outlives(Some(40)));
        assert!(!s.outlives(Some(101)));
        assert!(!s.outlives(None), "open-ended lease outlasts any drain");
        let fx = Fixture::new(&[(&[(0, 3.0)], 8.0, 0, 37.5)], &m);
        let s = &fx.views()[0];
        assert!(s.outlives(None), "no drain info trivially outlives");
        assert!(s.outlives(Some(usize::MAX)));
    }

    #[test]
    fn admits_overcommits_only_anti_aligned_candidates() {
        // VM 2's peaks de-phase perfectly with VM 0 and coincide
        // exactly with VM 1.
        let mut m = CostMatrix::new(3, Reference::Peak).unwrap();
        m.push_sample(&[4.0, 0.0, 0.0]).unwrap();
        m.push_sample(&[0.0, 4.0, 4.0]).unwrap();
        let vm = VmDescriptor::new(2, 4.0);
        // 6-core servers: residual 2 < demand 4, so plain fit fails
        // and only the margin path can admit.
        let anti = Fixture::new(&[(&[(0, 4.0)], 6.0, 0, 37.5)], &m).margins(&[0.5]);
        assert!(
            anti.views()[0].admits(&vm, &m),
            "anti-aligned peaks overcommit: coincident estimate within capacity"
        );
        let corr = Fixture::new(&[(&[(1, 4.0)], 6.0, 0, 37.5)], &m).margins(&[0.5]);
        assert!(
            !corr.views()[0].admits(&vm, &m),
            "aligned peaks never overcommit"
        );
        // Margin zero is bit-identical to plain fit, anti-aligned or
        // not.
        let plain = Fixture::new(&[(&[(0, 4.0)], 6.0, 0, 37.5)], &m);
        assert!(!plain.views()[0].admits(&vm, &m));
        assert!(plain.views()[0].admits(&VmDescriptor::new(2, 2.0), &m));
        // The margin caps the predicted sum regardless of correlation:
        // 4 + 4 = 8 > 6 × 1.1.
        let tiny = Fixture::new(&[(&[(0, 4.0)], 6.0, 0, 37.5)], &m).margins(&[0.1]);
        assert!(!tiny.views()[0].admits(&vm, &m));
        // An empty server never overcommits — no residents, no pairs,
        // no Eqn (2) evidence.
        let empty = Fixture::new(&[(&[], 3.0, 0, 37.5)], &m).margins(&[0.5]);
        assert!(!empty.views()[0].admits(&vm, &m));
    }

    #[test]
    fn overcommit_margin_extends_every_admission_rule() {
        let mut m = CostMatrix::new(3, Reference::Peak).unwrap();
        m.push_sample(&[4.0, 0.0, 0.0]).unwrap();
        m.push_sample(&[0.0, 4.0, 4.0]).unwrap();
        let vm = VmDescriptor::new(2, 4.0);
        // One server, anti-aligned resident, too full for plain fit.
        let fx = Fixture::new(&[(&[(0, 4.0)], 6.0, 0, 37.5)], &m);
        let views = fx.views();
        assert_eq!(best_fit_server(&vm, None, &views, &m), None);
        assert_eq!(first_fit_server(&vm, None, &views, &m), None);
        assert_eq!(max_cost_server(&vm, None, &views, &m), None);
        let fx = fx.margins(&[0.5]);
        let views = fx.views();
        assert_eq!(best_fit_server(&vm, None, &views, &m), Some(0));
        assert_eq!(first_fit_server(&vm, None, &views, &m), Some(0));
        assert_eq!(max_cost_server(&vm, None, &views, &m), Some(0));
    }

    #[test]
    fn best_fit_picks_tightest_then_efficiency() {
        let m = CostMatrix::new(8, Reference::Peak).unwrap();
        let vm = VmDescriptor::new(7, 2.0);
        // Residuals 5, 2, 2 — the two ties differ in efficiency.
        let fx = Fixture::new(
            &[
                (&[(0, 3.0)], 8.0, 0, 37.5),
                (&[(1, 6.0)], 8.0, 0, 37.5),
                (&[(2, 2.0)], 4.0, 1, 20.0),
            ],
            &m,
        );
        assert_eq!(best_fit_server(&vm, None, &fx.views(), &m), Some(2));
        // With equal efficiency the last tie wins (batch BFD keep-last).
        let fx = Fixture::new(
            &[
                (&[(0, 3.0)], 8.0, 0, 37.5),
                (&[(1, 6.0)], 8.0, 0, 37.5),
                (&[(2, 6.0)], 8.0, 0, 37.5),
            ],
            &m,
        );
        assert_eq!(best_fit_server(&vm, None, &fx.views(), &m), Some(2));
        // Nothing fits: open a new server.
        let vm = VmDescriptor::new(7, 7.0);
        assert_eq!(best_fit_server(&vm, None, &fx.views(), &m), None);
    }

    #[test]
    fn lease_bias_avoids_draining_servers() {
        let m = CostMatrix::new(8, Reference::Peak).unwrap();
        let vm = VmDescriptor::new(7, 2.0);
        // Tightest server (residual 2) drains in 50 samples; the
        // roomier one (residual 5) hosts an unbounded member.
        let fx = Fixture::new(
            &[(&[(0, 3.0)], 8.0, 0, 37.5), (&[(1, 6.0)], 8.0, 0, 37.5)],
            &m,
        )
        .drains(&[None, Some(50)]);
        // A 200-sample lease outlasts server 1's drain: prefer server 0
        // even though it is a looser fit.
        assert_eq!(best_fit_server(&vm, Some(200), &fx.views(), &m), Some(0));
        // A 50-sample lease departs with (or before) server 1's members:
        // the lease-blind tightest fit stands.
        assert_eq!(best_fit_server(&vm, Some(50), &fx.views(), &m), Some(1));
        // No lease info on the arrival: an open-ended VM avoids the
        // draining server too.
        assert_eq!(best_fit_server(&vm, None, &fx.views(), &m), Some(0));
        // When only draining servers fit, the bias falls back instead
        // of opening a new server.
        let fx = Fixture::new(&[(&[(1, 6.0)], 8.0, 0, 37.5)], &m).drains(&[Some(50)]);
        assert_eq!(best_fit_server(&vm, Some(200), &fx.views(), &m), Some(0));
        assert_eq!(first_fit_server(&vm, Some(200), &fx.views(), &m), Some(0));
        assert_eq!(max_cost_server(&vm, Some(200), &fx.views(), &m), Some(0));
    }

    #[test]
    fn first_fit_ignores_tightness() {
        let m = CostMatrix::new(8, Reference::Peak).unwrap();
        let vm = VmDescriptor::new(7, 2.0);
        let fx = Fixture::new(
            &[(&[(0, 3.0)], 8.0, 0, 37.5), (&[(1, 6.0)], 8.0, 0, 37.5)],
            &m,
        );
        assert_eq!(first_fit_server(&vm, None, &fx.views(), &m), Some(0));
        // Lease-aware first fit skips ahead to the first outliving
        // server.
        let fx = Fixture::new(
            &[(&[(0, 3.0)], 8.0, 0, 37.5), (&[(1, 6.0)], 8.0, 0, 37.5)],
            &m,
        )
        .drains(&[Some(10), None]);
        assert_eq!(first_fit_server(&vm, Some(99), &fx.views(), &m), Some(1));
    }

    #[test]
    fn max_cost_prefers_anti_correlated_server() {
        // VM 2 is anti-correlated with VM 0 and correlated with VM 1.
        let mut m = CostMatrix::new(3, Reference::Peak).unwrap();
        m.push_sample(&[4.0, 0.5, 0.5]).unwrap();
        m.push_sample(&[0.5, 4.0, 4.0]).unwrap();
        let vm = VmDescriptor::new(2, 4.0);
        let fx = Fixture::new(
            &[
                (&[(1, 4.0)], 8.0, 0, 37.5), // correlated host
                (&[(0, 4.0)], 8.0, 0, 37.5), // anti-correlated host
            ],
            &m,
        );
        assert_eq!(max_cost_server(&vm, None, &fx.views(), &m), Some(1));
        // The lease tier outranks the correlation score: when the
        // anti-correlated host is about to drain, the long-lease
        // arrival goes to the outliving (if correlated) host.
        let fx = Fixture::new(
            &[(&[(1, 4.0)], 8.0, 0, 37.5), (&[(0, 4.0)], 8.0, 0, 37.5)],
            &m,
        )
        .drains(&[None, Some(20)]);
        assert_eq!(max_cost_server(&vm, Some(500), &fx.views(), &m), Some(0));
    }

    #[test]
    fn no_rule_ever_picks_a_failed_server() {
        let mut m = CostMatrix::new(3, Reference::Peak).unwrap();
        m.push_sample(&[4.0, 0.5, 0.5]).unwrap();
        m.push_sample(&[0.5, 4.0, 4.0]).unwrap();
        let vm = VmDescriptor::new(2, 2.0);
        // Server 0 is the winner under every rule: tightest fit, first
        // in order, and the anti-correlated Eqn (2) host. Fail it.
        let fx = Fixture::new(
            &[(&[(0, 6.0)], 8.0, 0, 37.5), (&[(1, 3.0)], 8.0, 0, 37.5)],
            &m,
        )
        .failed(0);
        let views = fx.views();
        assert_eq!(best_fit_server(&vm, None, &views, &m), Some(1));
        assert_eq!(first_fit_server(&vm, None, &views, &m), Some(1));
        assert_eq!(max_cost_server(&vm, None, &views, &m), Some(1));
        // Health beats the lease fallback tier too: a failed outliving
        // server never shadows a healthy draining one.
        let fx = Fixture::new(
            &[(&[(0, 6.0)], 8.0, 0, 37.5), (&[(1, 3.0)], 8.0, 0, 37.5)],
            &m,
        )
        .drains(&[None, Some(10)])
        .failed(0);
        let views = fx.views();
        assert_eq!(best_fit_server(&vm, Some(99), &views, &m), Some(1));
        assert_eq!(first_fit_server(&vm, Some(99), &views, &m), Some(1));
        assert_eq!(max_cost_server(&vm, Some(99), &views, &m), Some(1));
        // With every server failed, each rule opens a new server.
        let fx = Fixture::new(&[(&[(0, 3.0)], 8.0, 0, 37.5)], &m).failed(0);
        let views = fx.views();
        assert_eq!(best_fit_server(&vm, None, &views, &m), None);
        assert_eq!(first_fit_server(&vm, None, &views, &m), None);
        assert_eq!(max_cost_server(&vm, None, &views, &m), None);
    }

    #[test]
    fn policies_route_place_one_to_their_rules() {
        let mut m = CostMatrix::new(4, Reference::Peak).unwrap();
        m.push_sample(&[4.0, 0.5, 0.0, 0.0]).unwrap();
        m.push_sample(&[0.5, 4.0, 0.0, 0.0]).unwrap();
        let vm = VmDescriptor::new(2, 2.0);
        let fx = Fixture::new(
            &[
                (&[(0, 3.0)], 8.0, 0, 37.5), // residual 5, anti-correlated
                (&[(1, 6.0)], 8.0, 0, 37.5), // residual 2, correlated
            ],
            &m,
        );
        let views = fx.views();
        // BFD (default rule): tightest fit.
        assert_eq!(BfdPolicy.place_one(&vm, None, &views, &m), Some(1));
        // FFD: first fit.
        assert_eq!(FfdPolicy.place_one(&vm, None, &views, &m), Some(0));
        // Proposed: maximal Eqn (2) cost — the anti-correlated host.
        assert_eq!(
            ProposedPolicy::default().place_one(&vm, None, &views, &m),
            Some(0)
        );
        // An oversized VM opens a new server under every rule.
        let huge = VmDescriptor::new(3, 20.0);
        assert_eq!(BfdPolicy.place_one(&huge, None, &views, &m), None);
        assert_eq!(FfdPolicy.place_one(&huge, None, &views, &m), None);
        assert_eq!(
            ProposedPolicy::default().place_one(&huge, None, &views, &m),
            None
        );
    }
}
