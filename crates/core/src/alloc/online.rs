//! Single-VM (online) admission — the incremental half of the
//! allocation API.
//!
//! The batch entry point ([`AllocationPolicy::place`]) re-packs a whole
//! descriptor table; an online controller cannot afford that on every
//! arrival. [`AllocationPolicy::place_one`] instead picks a server for
//! *one* arriving VM against a live placement, expressed as a slice of
//! [`OpenServer`] views over each server's incremental
//! [`ServerCostAggregate`] — so a correlation-aware probe stays
//! O(|members|) per candidate server, exactly like the batch ALLOCATE
//! scan, and no full re-pack happens on arrival. Periodic re-packs
//! remain policy-driven (the controller re-runs the batch path at every
//! placement period boundary).
//!
//! The default admission rule is correlation-blind best fit — the
//! tightest feasible server, capacity ties broken by the hosting
//! class's busy-watts-per-core (the more efficient class wins) — which
//! is what BFD, PCP and SuperVM use between their period re-packs. FFD
//! overrides it with first fit, and the proposed policy overrides it
//! with the Eqn (2) maximal-server-cost rule.

use crate::alloc::{VmDescriptor, FIT_EPS};
use crate::corr::CostMatrix;
use crate::servercost::ServerCostAggregate;

#[cfg(doc)]
use crate::alloc::AllocationPolicy;

/// A live open server as seen by the single-VM admission path: its
/// fleet class, capacity, efficiency score and the incremental Eqn (2)
/// aggregate holding its members and packed load.
#[derive(Debug, Clone, Copy)]
pub struct OpenServer<'a> {
    /// Fleet-class index of the server.
    pub class: usize,
    /// Core capacity of the server.
    pub cores: f64,
    /// Busy-watts-per-core of the hosting class (lower = more
    /// efficient; used as the capacity tie-break).
    pub watts_per_core: f64,
    /// The server's incremental Eqn (2) aggregate.
    pub agg: &'a ServerCostAggregate,
}

impl OpenServer<'_> {
    /// Residual capacity in cores.
    pub fn remaining(&self) -> f64 {
        self.cores - self.agg.total_util()
    }

    /// Whether a VM of `demand` cores fits the residual capacity.
    pub fn fits(&self, demand: f64) -> bool {
        demand <= self.remaining() + FIT_EPS
    }
}

/// The default [`AllocationPolicy::place_one`] rule: tightest feasible
/// server, exact capacity ties broken by watts-per-core (efficient
/// class first), remaining ties keep the last candidate — the same
/// keep-last semantics as the batch BFD scan, so a uniform fleet
/// admits exactly where batch BFD would.
pub fn best_fit_server(vm: &VmDescriptor, servers: &[OpenServer<'_>]) -> Option<usize> {
    let mut best: Option<(usize, f64, f64)> = None;
    for (i, server) in servers.iter().enumerate() {
        if !server.fits(vm.demand) {
            continue;
        }
        let residual = server.remaining();
        let better = match best {
            None => true,
            Some((_, best_residual, best_wpc)) => {
                residual < best_residual
                    || (residual == best_residual && server.watts_per_core <= best_wpc)
            }
        };
        if better {
            best = Some((i, residual, server.watts_per_core));
        }
    }
    best.map(|(i, _, _)| i)
}

/// First-fit admission: the lowest-indexed feasible server (FFD's
/// online analogue).
pub fn first_fit_server(vm: &VmDescriptor, servers: &[OpenServer<'_>]) -> Option<usize> {
    servers.iter().position(|s| s.fits(vm.demand))
}

/// Correlation-aware admission: among feasible servers, the one whose
/// Eqn (2) server cost after insertion is maximal (ties prefer the
/// more efficient class, then the first candidate). Pairs the matrix
/// has never observed — including a VM that postdates the matrix —
/// score the neutral 1.5, so a brand-new arrival degrades gracefully
/// to an efficiency-aware best fit.
pub fn max_cost_server(
    vm: &VmDescriptor,
    servers: &[OpenServer<'_>],
    matrix: &CostMatrix,
) -> Option<usize> {
    let mut best: Option<(usize, f64, f64)> = None;
    for (i, server) in servers.iter().enumerate() {
        if !server.fits(vm.demand) {
            continue;
        }
        let cost = server.agg.candidate_cost(vm.id, vm.demand, matrix);
        let better = match best {
            None => true,
            Some((_, best_cost, best_wpc)) => {
                cost > best_cost + 1e-12
                    || ((cost - best_cost).abs() <= 1e-12 && server.watts_per_core < best_wpc)
            }
        };
        if better {
            best = Some((i, cost, server.watts_per_core));
        }
    }
    best.map(|(i, _, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{AllocationPolicy, BfdPolicy, FfdPolicy, ProposedPolicy};
    use cavm_trace::Reference;

    /// `(members, cores, class, watts_per_core)` of one test server.
    type ServerSpec<'a> = (&'a [(usize, f64)], f64, usize, f64);

    /// Builds aggregates for servers with the given `(members, cores,
    /// class, wpc)` tuples.
    struct Fixture {
        aggs: Vec<ServerCostAggregate>,
        meta: Vec<(usize, f64, f64)>,
    }

    impl Fixture {
        fn new(servers: &[ServerSpec<'_>], matrix: &CostMatrix) -> Self {
            let mut aggs = Vec::new();
            let mut meta = Vec::new();
            for &(members, cores, class, wpc) in servers {
                let mut agg = ServerCostAggregate::new();
                for &(id, util) in members {
                    agg.push(id, util, matrix);
                }
                aggs.push(agg);
                meta.push((class, cores, wpc));
            }
            Self { aggs, meta }
        }

        fn views(&self) -> Vec<OpenServer<'_>> {
            self.aggs
                .iter()
                .zip(&self.meta)
                .map(|(agg, &(class, cores, watts_per_core))| OpenServer {
                    class,
                    cores,
                    watts_per_core,
                    agg,
                })
                .collect()
        }
    }

    #[test]
    fn open_server_accessors() {
        let m = CostMatrix::new(4, Reference::Peak).unwrap();
        let fx = Fixture::new(&[(&[(0, 3.0)], 8.0, 0, 37.5)], &m);
        let views = fx.views();
        assert_eq!(views[0].remaining(), 5.0);
        assert!(views[0].fits(5.0));
        assert!(!views[0].fits(5.1));
    }

    #[test]
    fn best_fit_picks_tightest_then_efficiency() {
        let m = CostMatrix::new(8, Reference::Peak).unwrap();
        let vm = VmDescriptor::new(7, 2.0);
        // Residuals 5, 2, 2 — the two ties differ in efficiency.
        let fx = Fixture::new(
            &[
                (&[(0, 3.0)], 8.0, 0, 37.5),
                (&[(1, 6.0)], 8.0, 0, 37.5),
                (&[(2, 2.0)], 4.0, 1, 20.0),
            ],
            &m,
        );
        assert_eq!(best_fit_server(&vm, &fx.views()), Some(2));
        // With equal efficiency the last tie wins (batch BFD keep-last).
        let fx = Fixture::new(
            &[
                (&[(0, 3.0)], 8.0, 0, 37.5),
                (&[(1, 6.0)], 8.0, 0, 37.5),
                (&[(2, 6.0)], 8.0, 0, 37.5),
            ],
            &m,
        );
        assert_eq!(best_fit_server(&vm, &fx.views()), Some(2));
        // Nothing fits: open a new server.
        let vm = VmDescriptor::new(7, 7.0);
        assert_eq!(best_fit_server(&vm, &fx.views()), None);
    }

    #[test]
    fn first_fit_ignores_tightness() {
        let m = CostMatrix::new(8, Reference::Peak).unwrap();
        let vm = VmDescriptor::new(7, 2.0);
        let fx = Fixture::new(
            &[(&[(0, 3.0)], 8.0, 0, 37.5), (&[(1, 6.0)], 8.0, 0, 37.5)],
            &m,
        );
        assert_eq!(first_fit_server(&vm, &fx.views()), Some(0));
    }

    #[test]
    fn max_cost_prefers_anti_correlated_server() {
        // VM 2 is anti-correlated with VM 0 and correlated with VM 1.
        let mut m = CostMatrix::new(3, Reference::Peak).unwrap();
        m.push_sample(&[4.0, 0.5, 0.5]).unwrap();
        m.push_sample(&[0.5, 4.0, 4.0]).unwrap();
        let vm = VmDescriptor::new(2, 4.0);
        let fx = Fixture::new(
            &[
                (&[(1, 4.0)], 8.0, 0, 37.5), // correlated host
                (&[(0, 4.0)], 8.0, 0, 37.5), // anti-correlated host
            ],
            &m,
        );
        assert_eq!(max_cost_server(&vm, &fx.views(), &m), Some(1));
    }

    #[test]
    fn policies_route_place_one_to_their_rules() {
        let mut m = CostMatrix::new(4, Reference::Peak).unwrap();
        m.push_sample(&[4.0, 0.5, 0.0, 0.0]).unwrap();
        m.push_sample(&[0.5, 4.0, 0.0, 0.0]).unwrap();
        let vm = VmDescriptor::new(2, 2.0);
        let fx = Fixture::new(
            &[
                (&[(0, 3.0)], 8.0, 0, 37.5), // residual 5, anti-correlated
                (&[(1, 6.0)], 8.0, 0, 37.5), // residual 2, correlated
            ],
            &m,
        );
        let views = fx.views();
        // BFD (default rule): tightest fit.
        assert_eq!(BfdPolicy.place_one(&vm, &views, &m), Some(1));
        // FFD: first fit.
        assert_eq!(FfdPolicy.place_one(&vm, &views, &m), Some(0));
        // Proposed: maximal Eqn (2) cost — the anti-correlated host.
        assert_eq!(
            ProposedPolicy::default().place_one(&vm, &views, &m),
            Some(0)
        );
        // An oversized VM opens a new server under every rule.
        let huge = VmDescriptor::new(3, 20.0);
        assert_eq!(BfdPolicy.place_one(&huge, &views, &m), None);
        assert_eq!(FfdPolicy.place_one(&huge, &views, &m), None);
        assert_eq!(ProposedPolicy::default().place_one(&huge, &views, &m), None);
    }
}
