//! VM-to-server allocation policies.
//!
//! All policies implement [`AllocationPolicy`]: given per-VM demand
//! descriptors, the pairwise [`CostMatrix`] and a per-server CPU
//! capacity (in cores), they produce a [`Placement`]. Available policies:
//!
//! * [`ProposedPolicy`] — the paper's correlation-aware
//!   UPDATE/ALLOCATE heuristic (Fig 2).
//! * [`BfdPolicy`] — Best-Fit-Decreasing, the paper's primary baseline.
//! * [`FfdPolicy`] — First-Fit-Decreasing, the classical bin-packing
//!   heuristic the proposed algorithm is derived from.
//! * [`PcpPolicy`] — Peak Clustering-based Placement (Verma et al. \[6\]),
//!   the prior correlation-aware baseline.
//! * [`SuperVmPolicy`] — joint-VM sizing (Meng et al. \[7\]), the second
//!   related-work baseline, which fuses un-correlated pairs once and
//!   then ignores correlation.
//!
//! The placement problem is bin packing (NP-hard); every policy here is
//! a polynomial heuristic, as in the paper.

pub mod bfd;
pub mod ffd;
pub mod pcp;
pub mod proposed;
pub mod supervm;

pub use bfd::BfdPolicy;
pub use ffd::FfdPolicy;
pub use pcp::PcpPolicy;
pub use proposed::{ProposedConfig, ProposedPolicy};
pub use supervm::SuperVmPolicy;

use crate::corr::CostMatrix;
use crate::CoreError;
use cavm_trace::{Reference, TimeSeries};
use serde::{Deserialize, Serialize};

/// Tolerance for capacity comparisons: a VM "fits" when the residual
/// capacity is short by at most this many cores (guards against float
/// round-off rejecting exact fits).
pub(crate) const FIT_EPS: f64 = 1e-9;

/// Per-VM provisioning input to an allocation policy.
///
/// `demand` is the (typically *predicted*) reference utilization û in
/// cores — the quantity every capacity check and Eqn (2)/(3)/(4) use.
/// `off_peak` carries the off-peak (90th-percentile) value alongside;
/// only the PCP baseline consumes it (off-peak provisioning with a
/// shared peak buffer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmDescriptor {
    /// VM identifier; must index into the [`CostMatrix`] given to the
    /// policy.
    pub id: usize,
    /// Reference utilization û, cores.
    pub demand: f64,
    /// Off-peak (e.g. 90th percentile) utilization, cores.
    pub off_peak: f64,
}

impl VmDescriptor {
    /// Creates a descriptor with `off_peak == demand` (pure peak
    /// provisioning).
    pub fn new(id: usize, demand: f64) -> Self {
        Self {
            id,
            demand,
            off_peak: demand,
        }
    }

    /// Sets the off-peak utilization.
    pub fn with_off_peak(mut self, off_peak: f64) -> Self {
        self.off_peak = off_peak;
        self
    }

    /// Builds descriptors from measured traces: `demand` from the given
    /// reference, `off_peak` from the 90th percentile (the paper's usual
    /// off-peak choice). Ids are assigned positionally.
    ///
    /// # Errors
    ///
    /// Propagates trace errors (empty traces, invalid percentile).
    pub fn from_traces(
        traces: &[&TimeSeries],
        reference: Reference,
    ) -> crate::Result<Vec<VmDescriptor>> {
        traces
            .iter()
            .enumerate()
            .map(|(id, t)| {
                Ok(VmDescriptor {
                    id,
                    demand: reference.of_series(t)?,
                    off_peak: Reference::Percentile(90.0).of_series(t)?,
                })
            })
            .collect()
    }
}

/// The output of an allocation policy: which VMs share which server.
///
/// Server indices are dense (`0..server_count`); only non-empty servers
/// are kept.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    servers: Vec<Vec<usize>>,
}

impl Placement {
    /// Wraps raw server membership lists, dropping empty servers.
    pub fn from_servers(servers: Vec<Vec<usize>>) -> Self {
        Self {
            servers: servers.into_iter().filter(|s| !s.is_empty()).collect(),
        }
    }

    /// Number of active (non-empty) servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Membership lists of all active servers.
    pub fn servers(&self) -> &[Vec<usize>] {
        &self.servers
    }

    /// Member VM ids of server `index`, or `None` past the end.
    pub fn server(&self, index: usize) -> Option<&[usize]> {
        self.servers.get(index).map(|v| v.as_slice())
    }

    /// The server hosting VM `vm`, or `None` if the VM is not placed.
    pub fn server_of(&self, vm: usize) -> Option<usize> {
        self.servers.iter().position(|s| s.contains(&vm))
    }

    /// Total descriptor demand packed on server `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or a member id is outside
    /// `vms` — placements and descriptor tables travel together.
    pub fn demand_of(&self, index: usize, vms: &[VmDescriptor]) -> f64 {
        self.servers[index]
            .iter()
            .map(|&id| {
                vms.iter()
                    .find(|d| d.id == id)
                    .unwrap_or_else(|| panic!("vm {id} missing from descriptor table"))
                    .demand
            })
            .sum()
    }

    /// Checks coverage only: every descriptor placed exactly once and no
    /// foreign ids. Capacity is *not* checked — policies that provision
    /// below peak (PCP's off-peak plus shared buffer) legitimately pack
    /// beyond the sum-of-peaks bound.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] describing the first
    /// violation found.
    pub fn validate_structure(&self, vms: &[VmDescriptor]) -> crate::Result<()> {
        self.validate_inner(vms, None)
    }

    /// Checks structural soundness against a descriptor table:
    /// every descriptor placed exactly once, no foreign ids, and no
    /// multi-VM server over `capacity` (a single VM larger than a whole
    /// server is tolerated — it must run *somewhere*).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] describing the first
    /// violation found.
    pub fn validate(&self, vms: &[VmDescriptor], capacity: f64) -> crate::Result<()> {
        self.validate_inner(vms, Some(capacity))
    }

    fn validate_inner(&self, vms: &[VmDescriptor], capacity: Option<f64>) -> crate::Result<()> {
        let mut seen = std::collections::HashSet::new();
        let ids: std::collections::HashMap<usize, f64> =
            vms.iter().map(|d| (d.id, d.demand)).collect();
        for server in &self.servers {
            let mut load = 0.0;
            for &vm in server {
                if !ids.contains_key(&vm) {
                    return Err(CoreError::InvalidParameter(
                        "placement contains a vm id absent from the descriptor table",
                    ));
                }
                if !seen.insert(vm) {
                    return Err(CoreError::InvalidParameter(
                        "placement assigns a vm to more than one server",
                    ));
                }
                load += ids[&vm];
            }
            if let Some(capacity) = capacity {
                if server.len() > 1 && load > capacity + FIT_EPS {
                    return Err(CoreError::InvalidParameter(
                        "placement overcommits a server beyond its capacity",
                    ));
                }
            }
        }
        if seen.len() != vms.len() {
            return Err(CoreError::InvalidParameter(
                "placement leaves at least one vm unallocated",
            ));
        }
        Ok(())
    }
}

/// A VM-to-server allocation heuristic.
pub trait AllocationPolicy {
    /// Short stable name for reports (e.g. `"BFD"`, `"Proposed"`).
    fn name(&self) -> &'static str;

    /// Places every descriptor onto servers of the given capacity
    /// (cores).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for malformed inputs
    /// (non-positive capacity, negative demands, duplicate or
    /// out-of-matrix ids) and [`CoreError::AllocationDiverged`] if the
    /// policy cannot terminate.
    fn place(
        &self,
        vms: &[VmDescriptor],
        matrix: &CostMatrix,
        capacity: f64,
    ) -> crate::Result<Placement>;
}

/// Shared input validation for all policies.
pub(crate) fn validate_inputs(
    vms: &[VmDescriptor],
    matrix: &CostMatrix,
    capacity: f64,
) -> crate::Result<()> {
    if !(capacity.is_finite() && capacity > 0.0) {
        return Err(CoreError::InvalidParameter(
            "server capacity must be finite and > 0",
        ));
    }
    let mut seen = std::collections::HashSet::new();
    for d in vms {
        if !(d.demand.is_finite() && d.demand >= 0.0) {
            return Err(CoreError::InvalidParameter(
                "vm demand must be finite and >= 0",
            ));
        }
        if !(d.off_peak.is_finite() && d.off_peak >= 0.0) {
            return Err(CoreError::InvalidParameter(
                "vm off-peak must be finite and >= 0",
            ));
        }
        if d.id >= matrix.len() {
            return Err(CoreError::UnknownVm {
                id: d.id,
                known: matrix.len(),
            });
        }
        if !seen.insert(d.id) {
            return Err(CoreError::InvalidParameter(
                "duplicate vm id in descriptor table",
            ));
        }
    }
    Ok(())
}

/// Returns descriptor indices sorted by decreasing demand (ties by id
/// for determinism) — the "Decreasing" in FFD/BFD and Fig 2's line 6.
pub(crate) fn decreasing_order(vms: &[VmDescriptor]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..vms.len()).collect();
    order.sort_by(|&a, &b| {
        vms[b]
            .demand
            .partial_cmp(&vms[a].demand)
            .expect("finite demands")
            .then_with(|| vms[a].id.cmp(&vms[b].id))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descs(demands: &[f64]) -> Vec<VmDescriptor> {
        demands
            .iter()
            .enumerate()
            .map(|(i, &d)| VmDescriptor::new(i, d))
            .collect()
    }

    #[test]
    fn descriptor_constructors() {
        let d = VmDescriptor::new(3, 2.5);
        assert_eq!((d.id, d.demand, d.off_peak), (3, 2.5, 2.5));
        let d = d.with_off_peak(1.75);
        assert_eq!(d.off_peak, 1.75);
    }

    #[test]
    fn descriptors_from_traces() {
        let a = TimeSeries::new(1.0, vec![1.0; 99].into_iter().chain([9.0]).collect()).unwrap();
        let b = TimeSeries::new(1.0, vec![2.0; 100]).unwrap();
        let ds = VmDescriptor::from_traces(&[&a, &b], Reference::Peak).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].id, 0);
        assert_eq!(ds[0].demand, 9.0);
        assert!(ds[0].off_peak < 9.0); // p90 shaves the spike
        assert_eq!(ds[1].demand, 2.0);
        assert_eq!(ds[1].off_peak, 2.0);
    }

    #[test]
    fn placement_accessors() {
        let p = Placement::from_servers(vec![vec![0, 2], vec![], vec![1]]);
        assert_eq!(p.server_count(), 2);
        assert_eq!(p.server(0), Some(&[0, 2][..]));
        assert_eq!(p.server(5), None);
        assert_eq!(p.server_of(1), Some(1));
        assert_eq!(p.server_of(7), None);
        let vms = descs(&[1.0, 2.0, 3.0]);
        assert_eq!(p.demand_of(0, &vms), 4.0);
    }

    #[test]
    fn placement_validation_catches_problems() {
        let vms = descs(&[1.0, 2.0]);
        // Valid.
        Placement::from_servers(vec![vec![0, 1]])
            .validate(&vms, 8.0)
            .unwrap();
        // Missing VM.
        assert!(Placement::from_servers(vec![vec![0]])
            .validate(&vms, 8.0)
            .is_err());
        // Duplicate VM.
        assert!(Placement::from_servers(vec![vec![0], vec![0, 1]])
            .validate(&vms, 8.0)
            .is_err());
        // Foreign id.
        assert!(Placement::from_servers(vec![vec![0, 1, 9]])
            .validate(&vms, 8.0)
            .is_err());
        // Overcommit (multi-VM server beyond capacity).
        assert!(Placement::from_servers(vec![vec![0, 1]])
            .validate(&vms, 2.5)
            .is_err());
        // A single oversized VM alone is tolerated.
        let big = descs(&[99.0]);
        Placement::from_servers(vec![vec![0]])
            .validate(&big, 8.0)
            .unwrap();
    }

    #[test]
    fn input_validation() {
        let m = CostMatrix::new(2, Reference::Peak).unwrap();
        assert!(validate_inputs(&descs(&[1.0, 2.0]), &m, 8.0).is_ok());
        assert!(validate_inputs(&descs(&[1.0]), &m, 0.0).is_err());
        assert!(validate_inputs(&descs(&[-1.0]), &m, 8.0).is_err());
        assert!(validate_inputs(
            &[VmDescriptor::new(0, 1.0).with_off_peak(f64::NAN)],
            &m,
            8.0
        )
        .is_err());
        assert!(matches!(
            validate_inputs(&[VmDescriptor::new(7, 1.0)], &m, 8.0),
            Err(CoreError::UnknownVm { id: 7, known: 2 })
        ));
        assert!(validate_inputs(
            &[VmDescriptor::new(0, 1.0), VmDescriptor::new(0, 2.0)],
            &m,
            8.0
        )
        .is_err());
    }

    #[test]
    fn decreasing_order_is_stable_and_sorted() {
        let vms = descs(&[1.0, 3.0, 2.0, 3.0]);
        let order = decreasing_order(&vms);
        assert_eq!(order, vec![1, 3, 2, 0]);
    }
}
