//! VM-to-server allocation policies.
//!
//! All policies implement [`AllocationPolicy`]: given per-VM demand
//! descriptors, the pairwise [`CostMatrix`] and a [`ServerFleet`]
//! describing the available servers (possibly several classes with
//! different core counts and power curves), they produce a
//! [`Placement`] that maps each active server to a concrete fleet
//! class. Available policies:
//!
//! * [`ProposedPolicy`] — the paper's correlation-aware
//!   UPDATE/ALLOCATE heuristic (Fig 2).
//! * [`BfdPolicy`] — Best-Fit-Decreasing, the paper's primary baseline.
//! * [`FfdPolicy`] — First-Fit-Decreasing, the classical bin-packing
//!   heuristic the proposed algorithm is derived from.
//! * [`PcpPolicy`] — Peak Clustering-based Placement (Verma et al. \[6\]),
//!   the prior correlation-aware baseline.
//! * [`SuperVmPolicy`] — joint-VM sizing (Meng et al. \[7\]), the second
//!   related-work baseline, which fuses un-correlated pairs once and
//!   then ignores correlation.
//!
//! Every policy opens servers through the fleet's
//! [`FleetCursor`](crate::fleet::FleetCursor) (largest-capacity-first
//! fill order), so a degenerate one-class fleet
//! reproduces the historical scalar-capacity behaviour *bit-identically*
//! — [`AllocationPolicy::place_uniform`] is that compatibility spelling,
//! and the `fleet_regression` suite pins it.
//!
//! The placement problem is bin packing (NP-hard); every policy here is
//! a polynomial heuristic, as in the paper.

pub mod bfd;
pub mod ffd;
pub mod online;
pub mod pcp;
pub mod proposed;
pub mod supervm;

pub use bfd::BfdPolicy;
pub use ffd::FfdPolicy;
pub use online::OpenServer;
pub use pcp::PcpPolicy;
pub use proposed::{ProposedConfig, ProposedPolicy};
pub use supervm::SuperVmPolicy;

use crate::corr::CostMatrix;
use crate::fleet::ServerFleet;
use crate::servercost::ServerCostAggregate;
use crate::CoreError;
use cavm_trace::{Reference, TimeSeries};
use serde::{Deserialize, Serialize};

/// Tolerance for capacity comparisons: a VM "fits" when the residual
/// capacity is short by at most this many cores (guards against float
/// round-off rejecting exact fits).
pub(crate) const FIT_EPS: f64 = 1e-9;

/// Per-VM provisioning input to an allocation policy.
///
/// `demand` is the (typically *predicted*) reference utilization û in
/// cores — the quantity every capacity check and Eqn (2)/(3)/(4) use.
/// `off_peak` carries the off-peak (90th-percentile) value alongside;
/// only the PCP baseline consumes it (off-peak provisioning with a
/// shared peak buffer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmDescriptor {
    /// VM identifier; must index into the [`CostMatrix`] given to the
    /// policy.
    pub id: usize,
    /// Reference utilization û, cores.
    pub demand: f64,
    /// Off-peak (e.g. 90th percentile) utilization, cores.
    pub off_peak: f64,
}

impl VmDescriptor {
    /// Creates a descriptor with `off_peak == demand` (pure peak
    /// provisioning).
    pub fn new(id: usize, demand: f64) -> Self {
        Self {
            id,
            demand,
            off_peak: demand,
        }
    }

    /// Sets the off-peak utilization.
    pub fn with_off_peak(mut self, off_peak: f64) -> Self {
        self.off_peak = off_peak;
        self
    }

    /// Builds descriptors from measured traces: `demand` from the given
    /// reference, `off_peak` from the 90th percentile (the paper's usual
    /// off-peak choice). Ids are assigned positionally.
    ///
    /// # Errors
    ///
    /// Propagates trace errors (empty traces, invalid percentile).
    pub fn from_traces(
        traces: &[&TimeSeries],
        reference: Reference,
    ) -> crate::Result<Vec<VmDescriptor>> {
        traces
            .iter()
            .enumerate()
            .map(|(id, t)| {
                Ok(VmDescriptor {
                    id,
                    demand: reference.of_series(t)?,
                    off_peak: Reference::Percentile(90.0).of_series(t)?,
                })
            })
            .collect()
    }
}

/// The output of an allocation policy: which VMs share which server,
/// and which fleet class each active server belongs to.
///
/// Server indices are dense (`0..server_count`); only non-empty servers
/// are kept. Placements built through the scalar-capacity compatibility
/// path carry class `0` everywhere.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    servers: Vec<Vec<usize>>,
    /// Fleet-class index per active server; same length as `servers`.
    classes: Vec<usize>,
}

impl Placement {
    /// Wraps raw server membership lists, dropping empty servers. All
    /// servers are assigned class `0` (the uniform-fleet convention).
    pub fn from_servers(servers: Vec<Vec<usize>>) -> Self {
        let servers: Vec<Vec<usize>> = servers.into_iter().filter(|s| !s.is_empty()).collect();
        let classes = vec![0; servers.len()];
        Self { servers, classes }
    }

    /// Wraps `(members, class)` bins, dropping empty servers.
    pub fn from_classed_servers(bins: Vec<(Vec<usize>, usize)>) -> Self {
        let (servers, classes): (Vec<Vec<usize>>, Vec<usize>) = bins
            .into_iter()
            .filter(|(members, _)| !members.is_empty())
            .unzip();
        Self { servers, classes }
    }

    /// Number of active (non-empty) servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Membership lists of all active servers.
    pub fn servers(&self) -> &[Vec<usize>] {
        &self.servers
    }

    /// Member VM ids of server `index`, or `None` past the end.
    pub fn server(&self, index: usize) -> Option<&[usize]> {
        self.servers.get(index).map(|v| v.as_slice())
    }

    /// Fleet-class index per active server (aligned with
    /// [`Placement::servers`]).
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// Fleet-class index of server `index`, or `None` past the end.
    pub fn class_of(&self, index: usize) -> Option<usize> {
        self.classes.get(index).copied()
    }

    /// The server hosting VM `vm`, or `None` if the VM is not placed.
    pub fn server_of(&self, vm: usize) -> Option<usize> {
        self.servers.iter().position(|s| s.contains(&vm))
    }

    /// Number of non-empty servers. Batch-built placements never carry
    /// empty servers, so this equals [`Placement::server_count`] for
    /// them; a *live* placement mutated by [`Placement::evict`] may
    /// hold empty (powered-off but still reserved) slots.
    pub fn active_server_count(&self) -> usize {
        self.servers.iter().filter(|s| !s.is_empty()).count()
    }

    /// Appends an empty server of fleet class `class`, returning its
    /// index — the online admission path's "open the next fill-order
    /// server". The slot stays in place even while empty so that
    /// caller-side per-server state (cost aggregates, frequency levels,
    /// meters) keeps stable indices.
    pub fn open_server(&mut self, class: usize) -> usize {
        self.servers.push(Vec::new());
        self.classes.push(class);
        self.servers.len() - 1
    }

    /// Adds `vm` to server `server` in place — the single-VM admission
    /// used by the online controller. No capacity check happens here
    /// (the admitting policy already chose a feasible server, and
    /// oversized VMs are legitimately admitted alone).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `server` does not
    /// exist or `vm` is already placed.
    pub fn admit(&mut self, vm: usize, server: usize) -> crate::Result<()> {
        if server >= self.servers.len() {
            return Err(CoreError::InvalidParameter(
                "admit target server does not exist",
            ));
        }
        if self.servers.iter().any(|s| s.contains(&vm)) {
            return Err(CoreError::InvalidParameter(
                "vm is already placed on a server",
            ));
        }
        self.servers[server].push(vm);
        Ok(())
    }

    /// Removes `vm` from the placement, returning the server index it
    /// occupied. The server keeps its (possibly now empty) slot so that
    /// sibling indices stay valid; the next policy-driven re-pack
    /// compacts naturally.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `vm` is not placed.
    pub fn evict(&mut self, vm: usize) -> crate::Result<usize> {
        for (s, members) in self.servers.iter_mut().enumerate() {
            if let Some(pos) = members.iter().position(|&m| m == vm) {
                members.remove(pos);
                return Ok(s);
            }
        }
        Err(CoreError::InvalidParameter(
            "vm is not placed on any server",
        ))
    }

    /// Removes and returns *every* member of server `server`, oldest
    /// admission first — the emergency-evacuation primitive a
    /// fault-tolerant controller runs when a server fails. The slot
    /// itself survives (empty) so sibling indices and caller-side
    /// per-server state stay valid, exactly as with
    /// [`Placement::evict`]; the evacuees re-admit one by one through
    /// the active policy with the failed server excluded.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `server` does not
    /// exist. Draining an already-empty server is fine and returns an
    /// empty vector.
    pub fn drain_server(&mut self, server: usize) -> crate::Result<Vec<usize>> {
        match self.servers.get_mut(server) {
            Some(members) => Ok(std::mem::take(members)),
            None => Err(CoreError::InvalidParameter(
                "drain target server does not exist",
            )),
        }
    }

    /// `vm id → hosting server` for ids in `0..n_vms`, built in one
    /// pass over the membership lists — the lookup the replay engine's
    /// assignment/migration pass reuses instead of calling
    /// [`Placement::server_of`] per VM (which would rescan every
    /// membership list each time).
    pub fn assignment(&self, n_vms: usize) -> Vec<Option<usize>> {
        let mut map = vec![None; n_vms];
        for (s, members) in self.servers.iter().enumerate() {
            for &vm in members {
                if let Some(slot) = map.get_mut(vm) {
                    *slot = Some(s);
                }
            }
        }
        map
    }

    /// Total descriptor demand per active server, computed in one pass
    /// (an id-indexed demand table is built once and reused for every
    /// member, instead of a linear descriptor search per member).
    ///
    /// # Panics
    ///
    /// Panics if a member id is outside `vms` — placements and
    /// descriptor tables travel together.
    pub fn server_demands(&self, vms: &[VmDescriptor]) -> Vec<f64> {
        let demand_of_id = demand_table(vms);
        self.servers
            .iter()
            .map(|members| {
                members
                    .iter()
                    .map(|&id| {
                        demand_of_id
                            .get(&id)
                            .unwrap_or_else(|| panic!("vm {id} missing from descriptor table"))
                    })
                    .sum()
            })
            .collect()
    }

    /// Total descriptor demand packed on server `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or a member id is outside
    /// `vms` — placements and descriptor tables travel together.
    pub fn demand_of(&self, index: usize, vms: &[VmDescriptor]) -> f64 {
        let demand_of_id = demand_table(vms);
        self.servers[index]
            .iter()
            .map(|&id| {
                demand_of_id
                    .get(&id)
                    .unwrap_or_else(|| panic!("vm {id} missing from descriptor table"))
            })
            .sum()
    }

    /// Checks coverage only: every descriptor placed exactly once and no
    /// foreign ids. Capacity is *not* checked — policies that provision
    /// below peak (PCP's off-peak plus shared buffer) legitimately pack
    /// beyond the sum-of-peaks bound.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] describing the first
    /// violation found.
    pub fn validate_structure(&self, vms: &[VmDescriptor]) -> crate::Result<()> {
        self.validate_inner(vms, |_| None)
    }

    /// Checks structural soundness against a descriptor table:
    /// every descriptor placed exactly once, no foreign ids, and no
    /// multi-VM server over `capacity` (a single VM larger than a whole
    /// server is tolerated — it must run *somewhere*).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] describing the first
    /// violation found.
    pub fn validate(&self, vms: &[VmDescriptor], capacity: f64) -> crate::Result<()> {
        self.validate_inner(vms, |_| Some(capacity))
    }

    /// Checks structural soundness against a heterogeneous fleet: the
    /// coverage rules of [`Placement::validate`], each multi-VM server
    /// within *its own class's* capacity, valid class indices, and no
    /// class used beyond its server count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] describing the first
    /// violation found.
    pub fn validate_fleet(&self, vms: &[VmDescriptor], fleet: &ServerFleet) -> crate::Result<()> {
        if self.classes.len() != self.servers.len() {
            return Err(CoreError::InvalidParameter(
                "placement class list length disagrees with its server list",
            ));
        }
        let mut used = vec![0usize; fleet.len()];
        for &class in &self.classes {
            if class >= fleet.len() {
                return Err(CoreError::InvalidParameter(
                    "placement names a class outside the fleet",
                ));
            }
            used[class] += 1;
        }
        for (class, &n) in used.iter().enumerate() {
            if n > fleet.classes()[class].count() {
                return Err(CoreError::InvalidParameter(
                    "placement uses more servers than a class provides",
                ));
            }
        }
        self.validate_inner(vms, |server| {
            Some(fleet.classes()[self.classes[server]].cores())
        })
    }

    /// `capacity_of(server_index)` returns the capacity cap to enforce
    /// for that server, or `None` to skip the capacity check.
    fn validate_inner(
        &self,
        vms: &[VmDescriptor],
        capacity_of: impl Fn(usize) -> Option<f64>,
    ) -> crate::Result<()> {
        let mut seen = std::collections::HashSet::new();
        let ids = demand_table(vms);
        for (s, server) in self.servers.iter().enumerate() {
            let mut load = 0.0;
            for &vm in server {
                if !ids.contains_key(&vm) {
                    return Err(CoreError::InvalidParameter(
                        "placement contains a vm id absent from the descriptor table",
                    ));
                }
                if !seen.insert(vm) {
                    return Err(CoreError::InvalidParameter(
                        "placement assigns a vm to more than one server",
                    ));
                }
                load += ids[&vm];
            }
            if let Some(capacity) = capacity_of(s) {
                if server.len() > 1 && load > capacity + FIT_EPS {
                    return Err(CoreError::InvalidParameter(
                        "placement overcommits a server beyond its capacity",
                    ));
                }
            }
        }
        if seen.len() != vms.len() {
            return Err(CoreError::InvalidParameter(
                "placement leaves at least one vm unallocated",
            ));
        }
        Ok(())
    }
}

/// The id-indexed demand lookup shared by the placement accessors.
fn demand_table(vms: &[VmDescriptor]) -> std::collections::HashMap<usize, f64> {
    vms.iter().map(|d| (d.id, d.demand)).collect()
}

/// A VM-to-server allocation heuristic.
pub trait AllocationPolicy {
    /// Short stable name for reports (e.g. `"BFD"`, `"Proposed"`).
    fn name(&self) -> &'static str;

    /// Places every descriptor onto the fleet's servers, opening them
    /// in the fleet's fill order (largest capacity first).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for malformed inputs
    /// (negative demands, duplicate or out-of-matrix ids),
    /// [`CoreError::FleetExhausted`] when every server of every class
    /// is open and VMs remain, and [`CoreError::AllocationDiverged`] if
    /// the policy cannot terminate.
    fn place(
        &self,
        vms: &[VmDescriptor],
        matrix: &CostMatrix,
        fleet: &ServerFleet,
    ) -> crate::Result<Placement>;

    /// Scalar-capacity compatibility spelling: places onto an unbounded
    /// one-class fleet of `capacity`-core servers (the paper's uniform
    /// setting). Produces exactly the placements the pre-fleet API
    /// produced.
    ///
    /// # Errors
    ///
    /// As [`AllocationPolicy::place`], plus
    /// [`CoreError::InvalidParameter`] for a non-finite or non-positive
    /// capacity.
    fn place_uniform(
        &self,
        vms: &[VmDescriptor],
        matrix: &CostMatrix,
        capacity: f64,
    ) -> crate::Result<Placement> {
        self.place(vms, matrix, &ServerFleet::unbounded(capacity)?)
    }

    /// Single-VM admission against a live placement: picks an open
    /// server for an *arriving* VM, or returns `None` to open the next
    /// fill-order server — no full re-pack. `servers` are
    /// [`OpenServer`] views over the live per-server
    /// [`crate::servercost::ServerCostAggregate`] values,
    /// so a correlation-aware probe is O(|members|) per candidate.
    ///
    /// `lease` is the arriving VM's remaining lease in samples (`None`
    /// = open-ended). Every rule is lease-aware: servers whose members
    /// all depart before the arrival would (so admitting it would keep
    /// a soon-empty server alive) are avoided while an outliving
    /// server fits — see [`online`]'s module docs. With no lease
    /// information the bias is inert.
    ///
    /// The default is correlation-blind best fit with a
    /// watts-per-core tie-break ([`online::best_fit_server`]); FFD and
    /// the proposed policy override it (first fit / maximal Eqn (2)
    /// server cost). The matrix may predate `vm` — unobserved pairs
    /// (including ids beyond the matrix) score the neutral cost.
    ///
    /// Feasibility under every rule is [`OpenServer::admits`]: plain
    /// fit, or — on servers carrying a positive
    /// [`OpenServer::overcommit_margin`] — a deliberate correlation-gap
    /// overcommit (predicted sum up to `capacity × (1 + margin)` whose
    /// Eqn (1) coincident estimate stays within plain capacity).
    fn place_one(
        &self,
        vm: &VmDescriptor,
        lease: Option<usize>,
        servers: &[OpenServer<'_>],
        matrix: &CostMatrix,
    ) -> Option<usize> {
        online::best_fit_server(vm, lease, servers, matrix)
    }

    /// Batch placement with deliberate correlation-gap overcommit: runs
    /// the policy's plain [`place`](AllocationPolicy::place), then — if
    /// any fleet class carries a positive margin — tries to *retire*
    /// lightly-loaded servers by relocating their members onto the
    /// remaining servers under the [`OpenServer::admits`] rule (plain
    /// fit, or predicted sum up to `capacity × (1 + margin)` when the
    /// Eqn (2) cost says the peaks anti-align and the Eqn (1)
    /// coincident estimate stays within plain capacity). Victims are
    /// visited lightest-first; each relocates all-or-nothing through
    /// the policy's own [`place_one`](AllocationPolicy::place_one)
    /// rule, so a victim that cannot fully disperse is left untouched.
    ///
    /// `margins` is indexed by fleet class; classes beyond its length
    /// get margin 0. With every margin ≤ 0 the plain placement is
    /// returned **unchanged** — the bit-identity anchor for every
    /// overcommit-off code path.
    ///
    /// # Errors
    ///
    /// As [`AllocationPolicy::place`] (the dispersal pass itself cannot
    /// fail — it only declines to move).
    fn place_with_margins(
        &self,
        vms: &[VmDescriptor],
        matrix: &CostMatrix,
        fleet: &ServerFleet,
        margins: &[f64],
    ) -> crate::Result<Placement> {
        let placement = self.place(vms, matrix, fleet)?;
        if margins.iter().all(|&m| m <= 0.0) {
            return Ok(placement);
        }
        Ok(overcommit_consolidate(
            self, placement, vms, matrix, fleet, margins,
        ))
    }
}

/// The [`AllocationPolicy::place_with_margins`] dispersal pass: retire
/// lightly-loaded servers of a finished placement by relocating their
/// members onto margin-carrying peers, all-or-nothing per victim.
fn overcommit_consolidate<P: AllocationPolicy + ?Sized>(
    policy: &P,
    placement: Placement,
    vms: &[VmDescriptor],
    matrix: &CostMatrix,
    fleet: &ServerFleet,
    margins: &[f64],
) -> Placement {
    let desc_of: std::collections::HashMap<usize, VmDescriptor> =
        vms.iter().map(|d| (d.id, *d)).collect();
    let mut bins: Vec<(Vec<usize>, usize)> = placement
        .servers()
        .iter()
        .cloned()
        .zip(placement.classes().iter().copied())
        .collect();
    let mut aggs: Vec<ServerCostAggregate> = bins
        .iter()
        .map(|(members, _)| {
            let mut agg = ServerCostAggregate::new();
            for &id in members {
                agg.push(id, desc_of[&id].demand, matrix);
            }
            agg
        })
        .collect();

    // Victims lightest-first (ties by index): the cheapest servers to
    // empty are tried before the ones that would need the most moves.
    let mut victims: Vec<usize> = (0..bins.len()).collect();
    victims.sort_by(|&a, &b| {
        aggs[a]
            .total_util()
            .partial_cmp(&aggs[b].total_util())
            .expect("finite loads")
            .then(a.cmp(&b))
    });

    for v in victims {
        if bins[v].0.is_empty() {
            continue;
        }
        // Relocate members largest-first through the policy's own
        // admission rule, against margin-carrying views of every
        // *other* non-empty server. All-or-nothing: commit only when
        // every member found a home.
        let mut members = bins[v].0.clone();
        members.sort_by(|&a, &b| {
            desc_of[&b]
                .demand
                .partial_cmp(&desc_of[&a].demand)
                .expect("finite demands")
                .then(a.cmp(&b))
        });
        let mut trial = aggs.clone();
        let mut moves: Vec<(usize, usize)> = Vec::new();
        let mut complete = true;
        for &id in &members {
            let vm = desc_of[&id];
            let mut idx_map = Vec::new();
            let mut views = Vec::new();
            for (b, (bin_members, class)) in bins.iter().enumerate() {
                // Skip the victim itself and servers already retired by
                // an earlier victim — resurrecting one would churn
                // migrations without closing any server.
                if b == v || bin_members.is_empty() {
                    continue;
                }
                let spec = &fleet.classes()[*class];
                idx_map.push(b);
                views.push(OpenServer {
                    class: *class,
                    cores: spec.cores(),
                    watts_per_core: spec.busy_watts_per_core(),
                    drain_samples: None,
                    agg: &trial[b],
                    healthy: true,
                    overcommit_margin: margins.get(*class).copied().unwrap_or(0.0).max(0.0),
                });
            }
            match policy.place_one(&vm, None, &views, matrix) {
                Some(pos) => {
                    let target = idx_map[pos];
                    trial[target].push(id, vm.demand, matrix);
                    moves.push((id, target));
                }
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete {
            aggs = trial;
            for (id, target) in moves {
                bins[target].0.push(id);
            }
            bins[v].0.clear();
            aggs[v].clear();
        }
    }
    Placement::from_classed_servers(bins)
}

/// Shared input validation for all policies (the fleet validates itself
/// at construction).
pub(crate) fn validate_inputs(vms: &[VmDescriptor], matrix: &CostMatrix) -> crate::Result<()> {
    let mut seen = std::collections::HashSet::new();
    for d in vms {
        if !(d.demand.is_finite() && d.demand >= 0.0) {
            return Err(CoreError::InvalidParameter(
                "vm demand must be finite and >= 0",
            ));
        }
        if !(d.off_peak.is_finite() && d.off_peak >= 0.0) {
            return Err(CoreError::InvalidParameter(
                "vm off-peak must be finite and >= 0",
            ));
        }
        if d.id >= matrix.len() {
            return Err(CoreError::UnknownVm {
                id: d.id,
                known: matrix.len(),
            });
        }
        if !seen.insert(d.id) {
            return Err(CoreError::InvalidParameter(
                "duplicate vm id in descriptor table",
            ));
        }
    }
    Ok(())
}

/// Returns descriptor indices sorted by decreasing demand (ties by id
/// for determinism) — the "Decreasing" in FFD/BFD and Fig 2's line 6.
pub(crate) fn decreasing_order(vms: &[VmDescriptor]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..vms.len()).collect();
    order.sort_by(|&a, &b| {
        vms[b]
            .demand
            .partial_cmp(&vms[a].demand)
            .expect("finite demands")
            .then_with(|| vms[a].id.cmp(&vms[b].id))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::ServerClass;
    use cavm_power::LinearPowerModel;

    fn descs(demands: &[f64]) -> Vec<VmDescriptor> {
        demands
            .iter()
            .enumerate()
            .map(|(i, &d)| VmDescriptor::new(i, d))
            .collect()
    }

    #[test]
    fn descriptor_constructors() {
        let d = VmDescriptor::new(3, 2.5);
        assert_eq!((d.id, d.demand, d.off_peak), (3, 2.5, 2.5));
        let d = d.with_off_peak(1.75);
        assert_eq!(d.off_peak, 1.75);
    }

    #[test]
    fn descriptors_from_traces() {
        let a = TimeSeries::new(1.0, vec![1.0; 99].into_iter().chain([9.0]).collect()).unwrap();
        let b = TimeSeries::new(1.0, vec![2.0; 100]).unwrap();
        let ds = VmDescriptor::from_traces(&[&a, &b], Reference::Peak).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].id, 0);
        assert_eq!(ds[0].demand, 9.0);
        assert!(ds[0].off_peak < 9.0); // p90 shaves the spike
        assert_eq!(ds[1].demand, 2.0);
        assert_eq!(ds[1].off_peak, 2.0);
    }

    #[test]
    fn placement_accessors() {
        let p = Placement::from_servers(vec![vec![0, 2], vec![], vec![1]]);
        assert_eq!(p.server_count(), 2);
        assert_eq!(p.server(0), Some(&[0, 2][..]));
        assert_eq!(p.server(5), None);
        assert_eq!(p.server_of(1), Some(1));
        assert_eq!(p.server_of(7), None);
        assert_eq!(p.classes(), &[0, 0]);
        assert_eq!(p.class_of(1), Some(0));
        assert_eq!(p.class_of(9), None);
        let vms = descs(&[1.0, 2.0, 3.0]);
        assert_eq!(p.demand_of(0, &vms), 4.0);
        assert_eq!(p.server_demands(&vms), vec![4.0, 2.0]);
        assert_eq!(p.assignment(3), vec![Some(0), Some(1), Some(0)]);
        assert_eq!(p.assignment(2), vec![Some(0), Some(1)]);
    }

    #[test]
    fn classed_placement_accessors() {
        let p = Placement::from_classed_servers(vec![
            (vec![0], 1),
            (vec![], 0), // dropped
            (vec![1, 2], 0),
        ]);
        assert_eq!(p.server_count(), 2);
        assert_eq!(p.classes(), &[1, 0]);
        assert_eq!(p.class_of(0), Some(1));
        assert_eq!(p.server_of(2), Some(1));
    }

    #[test]
    fn placement_admit_and_evict_mutate_in_place() {
        let mut p = Placement::from_servers(vec![vec![0, 1], vec![2]]);
        // Open a new class-1 server and admit into it.
        let s = p.open_server(1);
        assert_eq!(s, 2);
        p.admit(3, s).unwrap();
        assert_eq!(p.server(2), Some(&[3][..]));
        assert_eq!(p.class_of(2), Some(1));
        assert_eq!(p.server_count(), 3);
        assert_eq!(p.active_server_count(), 3);
        // Admission into a missing server or of an already-placed VM
        // fails.
        assert!(p.admit(9, 7).is_err());
        assert!(p.admit(0, 1).is_err());
        // Eviction returns the host and keeps the (now empty) slot.
        assert_eq!(p.evict(2).unwrap(), 1);
        assert_eq!(p.server(1), Some(&[][..]));
        assert_eq!(p.server_count(), 3);
        assert_eq!(p.active_server_count(), 2);
        assert!(p.evict(2).is_err(), "already evicted");
        // The emptied slot is reusable.
        p.admit(2, 1).unwrap();
        assert_eq!(p.server_of(2), Some(1));
    }

    #[test]
    fn placement_drain_server_empties_but_keeps_the_slot() {
        let mut p = Placement::from_servers(vec![vec![0, 1], vec![2]]);
        // Drain returns members in admission order; the slot survives.
        assert_eq!(p.drain_server(0).unwrap(), vec![0, 1]);
        assert_eq!(p.server(0), Some(&[][..]));
        assert_eq!(p.server_count(), 2);
        assert_eq!(p.active_server_count(), 1);
        // Draining an already-empty server is a no-op, not an error.
        assert_eq!(p.drain_server(0).unwrap(), Vec::<usize>::new());
        // Out-of-range servers are rejected.
        assert!(p.drain_server(5).is_err());
        // Evacuees are free to re-admit elsewhere.
        p.admit(0, 1).unwrap();
        assert_eq!(p.server_of(0), Some(1));
    }

    #[test]
    fn placement_validation_catches_problems() {
        let vms = descs(&[1.0, 2.0]);
        // Valid.
        Placement::from_servers(vec![vec![0, 1]])
            .validate(&vms, 8.0)
            .unwrap();
        // Missing VM.
        assert!(Placement::from_servers(vec![vec![0]])
            .validate(&vms, 8.0)
            .is_err());
        // Duplicate VM.
        assert!(Placement::from_servers(vec![vec![0], vec![0, 1]])
            .validate(&vms, 8.0)
            .is_err());
        // Foreign id.
        assert!(Placement::from_servers(vec![vec![0, 1, 9]])
            .validate(&vms, 8.0)
            .is_err());
        // Overcommit (multi-VM server beyond capacity).
        assert!(Placement::from_servers(vec![vec![0, 1]])
            .validate(&vms, 2.5)
            .is_err());
        // A single oversized VM alone is tolerated.
        let big = descs(&[99.0]);
        Placement::from_servers(vec![vec![0]])
            .validate(&big, 8.0)
            .unwrap();
    }

    #[test]
    fn fleet_validation_checks_per_class_capacity_and_counts() {
        let xeon = LinearPowerModel::xeon_e5410;
        let fleet = ServerFleet::new(vec![
            ServerClass::new("big", 1, 8.0, xeon()).unwrap(),
            ServerClass::new("small", 2, 4.0, xeon()).unwrap(),
        ])
        .unwrap();
        let vms = descs(&[3.0, 3.0, 3.0]);
        // 3+3 on the 8-core box, 3 on a 4-core box: fine.
        Placement::from_classed_servers(vec![(vec![0, 1], 0), (vec![2], 1)])
            .validate_fleet(&vms, &fleet)
            .unwrap();
        // 3+3 on a 4-core box: over its own class capacity.
        assert!(
            Placement::from_classed_servers(vec![(vec![0, 1], 1), (vec![2], 0)])
                .validate_fleet(&vms, &fleet)
                .is_err()
        );
        // Two servers of the one-server class 0.
        assert!(
            Placement::from_classed_servers(vec![(vec![0, 1], 0), (vec![2], 0)])
                .validate_fleet(&vms, &fleet)
                .is_err()
        );
        // Unknown class index.
        assert!(
            Placement::from_classed_servers(vec![(vec![0, 1], 0), (vec![2], 7)])
                .validate_fleet(&vms, &fleet)
                .is_err()
        );
    }

    #[test]
    fn input_validation() {
        let m = CostMatrix::new(2, Reference::Peak).unwrap();
        assert!(validate_inputs(&descs(&[1.0, 2.0]), &m).is_ok());
        assert!(validate_inputs(&descs(&[-1.0]), &m).is_err());
        assert!(validate_inputs(&[VmDescriptor::new(0, 1.0).with_off_peak(f64::NAN)], &m).is_err());
        assert!(matches!(
            validate_inputs(&[VmDescriptor::new(7, 1.0)], &m),
            Err(CoreError::UnknownVm { id: 7, known: 2 })
        ));
        assert!(
            validate_inputs(&[VmDescriptor::new(0, 1.0), VmDescriptor::new(0, 2.0)], &m).is_err()
        );
    }

    #[test]
    fn place_uniform_rejects_bad_capacity() {
        let m = CostMatrix::new(1, Reference::Peak).unwrap();
        assert!(BfdPolicy.place_uniform(&descs(&[1.0]), &m, 0.0).is_err());
        assert!(BfdPolicy
            .place_uniform(&descs(&[1.0]), &m, f64::NAN)
            .is_err());
    }

    #[test]
    fn decreasing_order_is_stable_and_sorted() {
        let vms = descs(&[1.0, 3.0, 2.0, 3.0]);
        let order = decreasing_order(&vms);
        assert_eq!(order, vec![1, 3, 2, 0]);
    }
}
