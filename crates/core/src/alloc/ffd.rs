//! First-Fit-Decreasing — the classical bin-packing heuristic the
//! proposed algorithm (Fig 2) is built on.
//!
//! VMs are sorted by decreasing demand "to reduce the fragmentation of
//! the bin-packing problem" (paper, line 6 of Fig 2) and each VM goes to
//! the first server with room; a new server opens when none fits. FFD is
//! correlation-blind: it never consults the cost matrix.

use crate::alloc::{
    decreasing_order, validate_inputs, AllocationPolicy, Placement, VmDescriptor, FIT_EPS,
};
use crate::corr::CostMatrix;
use serde::{Deserialize, Serialize};

/// First-Fit-Decreasing allocation.
///
/// # Example
///
/// ```
/// use cavm_core::alloc::{AllocationPolicy, FfdPolicy, VmDescriptor};
/// use cavm_core::corr::CostMatrix;
/// use cavm_trace::Reference;
///
/// # fn main() -> Result<(), cavm_core::CoreError> {
/// let vms = vec![
///     VmDescriptor::new(0, 5.0),
///     VmDescriptor::new(1, 4.0),
///     VmDescriptor::new(2, 3.0),
/// ];
/// let matrix = CostMatrix::new(3, Reference::Peak)?;
/// let p = FfdPolicy.place(&vms, &matrix, 8.0)?;
/// // 5+3 share the first server, 4 goes to the second.
/// assert_eq!(p.server_count(), 2);
/// assert_eq!(p.server_of(0), p.server_of(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FfdPolicy;

impl AllocationPolicy for FfdPolicy {
    fn name(&self) -> &'static str {
        "FFD"
    }

    fn place(
        &self,
        vms: &[VmDescriptor],
        matrix: &CostMatrix,
        capacity: f64,
    ) -> crate::Result<Placement> {
        validate_inputs(vms, matrix, capacity)?;
        let mut servers: Vec<(Vec<usize>, f64)> = Vec::new();
        for idx in decreasing_order(vms) {
            let vm = &vms[idx];
            let slot = servers
                .iter_mut()
                .find(|(_, used)| used + vm.demand <= capacity + FIT_EPS);
            match slot {
                Some((members, used)) => {
                    members.push(vm.id);
                    *used += vm.demand;
                }
                None => servers.push((vec![vm.id], vm.demand)),
            }
        }
        Ok(Placement::from_servers(
            servers.into_iter().map(|(m, _)| m).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cavm_trace::Reference;

    fn descs(demands: &[f64]) -> Vec<VmDescriptor> {
        demands
            .iter()
            .enumerate()
            .map(|(i, &d)| VmDescriptor::new(i, d))
            .collect()
    }

    fn matrix(n: usize) -> CostMatrix {
        CostMatrix::new(n, Reference::Peak).unwrap()
    }

    #[test]
    fn empty_input_gives_empty_placement() {
        let p = FfdPolicy.place(&[], &matrix(1), 8.0).unwrap();
        assert_eq!(p.server_count(), 0);
    }

    #[test]
    fn single_vm() {
        let vms = descs(&[3.0]);
        let p = FfdPolicy.place(&vms, &matrix(1), 8.0).unwrap();
        assert_eq!(p.server_count(), 1);
        p.validate(&vms, 8.0).unwrap();
    }

    #[test]
    fn classic_ffd_example() {
        // Demands 5,4,3,2,2 into capacity 8: FFD gives [5,3], [4,2,2].
        let vms = descs(&[5.0, 4.0, 3.0, 2.0, 2.0]);
        let p = FfdPolicy.place(&vms, &matrix(5), 8.0).unwrap();
        assert_eq!(p.server_count(), 2);
        assert_eq!(p.server(0).unwrap(), &[0, 2]);
        assert_eq!(p.server(1).unwrap(), &[1, 3, 4]);
        p.validate(&vms, 8.0).unwrap();
    }

    #[test]
    fn exact_fits_are_accepted() {
        let vms = descs(&[4.0, 4.0]);
        let p = FfdPolicy.place(&vms, &matrix(2), 8.0).unwrap();
        assert_eq!(p.server_count(), 1);
    }

    #[test]
    fn oversized_vm_gets_its_own_server() {
        let vms = descs(&[10.0, 1.0]);
        let p = FfdPolicy.place(&vms, &matrix(2), 8.0).unwrap();
        assert_eq!(p.server_count(), 2);
        p.validate(&vms, 8.0).unwrap();
    }

    #[test]
    fn zero_demand_vms_pack_into_one_server() {
        let vms = descs(&[0.0, 0.0, 0.0]);
        let p = FfdPolicy.place(&vms, &matrix(3), 8.0).unwrap();
        assert_eq!(p.server_count(), 1);
    }

    #[test]
    fn respects_server_lower_bound() {
        // 10 VMs of demand 3 into capacity 8 need at least ceil(30/8)=4.
        let vms = descs(&[3.0; 10]);
        let p = FfdPolicy.place(&vms, &matrix(10), 8.0).unwrap();
        assert!(p.server_count() >= 4);
        p.validate(&vms, 8.0).unwrap();
        assert_eq!(FfdPolicy.name(), "FFD");
    }
}
