//! First-Fit-Decreasing — the classical bin-packing heuristic the
//! proposed algorithm (Fig 2) is built on.
//!
//! VMs are sorted by decreasing demand "to reduce the fragmentation of
//! the bin-packing problem" (paper, line 6 of Fig 2) and each VM goes to
//! the first open server with room; the fleet cursor opens the next
//! server (largest class first) when none fits. FFD is
//! correlation-blind: it never consults the cost matrix.

use crate::alloc::online::{first_fit_server, OpenServer};
use crate::alloc::{
    decreasing_order, validate_inputs, AllocationPolicy, Placement, VmDescriptor, FIT_EPS,
};
use crate::corr::CostMatrix;
use crate::fleet::{FleetCursor, ServerFleet};
use serde::{Deserialize, Serialize};

/// First-Fit-Decreasing allocation.
///
/// # Example
///
/// ```
/// use cavm_core::alloc::{AllocationPolicy, FfdPolicy, VmDescriptor};
/// use cavm_core::corr::CostMatrix;
/// use cavm_trace::Reference;
///
/// # fn main() -> Result<(), cavm_core::CoreError> {
/// let vms = vec![
///     VmDescriptor::new(0, 5.0),
///     VmDescriptor::new(1, 4.0),
///     VmDescriptor::new(2, 3.0),
/// ];
/// let matrix = CostMatrix::new(3, Reference::Peak)?;
/// let p = FfdPolicy.place_uniform(&vms, &matrix, 8.0)?;
/// // 5+3 share the first server, 4 goes to the second.
/// assert_eq!(p.server_count(), 2);
/// assert_eq!(p.server_of(0), p.server_of(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FfdPolicy;

impl AllocationPolicy for FfdPolicy {
    fn name(&self) -> &'static str {
        "FFD"
    }

    fn place(
        &self,
        vms: &[VmDescriptor],
        matrix: &CostMatrix,
        fleet: &ServerFleet,
    ) -> crate::Result<Placement> {
        validate_inputs(vms, matrix)?;
        let mut cursor = FleetCursor::new(fleet);
        // (members, used, capacity, class) per open server.
        let mut servers: Vec<(Vec<usize>, f64, f64, usize)> = Vec::new();
        let order = decreasing_order(vms);
        for (placed, &idx) in order.iter().enumerate() {
            let vm = &vms[idx];
            let slot = servers
                .iter_mut()
                .find(|(_, used, cap, _)| used + vm.demand <= cap + FIT_EPS);
            match slot {
                Some((members, used, _, _)) => {
                    members.push(vm.id);
                    *used += vm.demand;
                }
                None => {
                    // An oversized VM (demand beyond even the largest
                    // remaining class) is still admitted alone — it has
                    // to run somewhere.
                    let (class, cap) = cursor
                        .open_next()
                        .ok_or_else(|| cursor.exhausted(vms.len() - placed))?;
                    servers.push((vec![vm.id], vm.demand, cap, class));
                }
            }
        }
        Ok(Placement::from_classed_servers(
            servers.into_iter().map(|(m, _, _, c)| (m, c)).collect(),
        ))
    }

    /// Online arrivals keep FFD's rule: the first open server with
    /// room (preferring one that outlives the arrival's lease).
    fn place_one(
        &self,
        vm: &VmDescriptor,
        lease: Option<usize>,
        servers: &[OpenServer<'_>],
        matrix: &CostMatrix,
    ) -> Option<usize> {
        first_fit_server(vm, lease, servers, matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::ServerClass;
    use crate::CoreError;
    use cavm_power::LinearPowerModel;
    use cavm_trace::Reference;

    fn descs(demands: &[f64]) -> Vec<VmDescriptor> {
        demands
            .iter()
            .enumerate()
            .map(|(i, &d)| VmDescriptor::new(i, d))
            .collect()
    }

    fn matrix(n: usize) -> CostMatrix {
        CostMatrix::new(n, Reference::Peak).unwrap()
    }

    #[test]
    fn empty_input_gives_empty_placement() {
        let p = FfdPolicy.place_uniform(&[], &matrix(1), 8.0).unwrap();
        assert_eq!(p.server_count(), 0);
    }

    #[test]
    fn single_vm() {
        let vms = descs(&[3.0]);
        let p = FfdPolicy.place_uniform(&vms, &matrix(1), 8.0).unwrap();
        assert_eq!(p.server_count(), 1);
        p.validate(&vms, 8.0).unwrap();
    }

    #[test]
    fn classic_ffd_example() {
        // Demands 5,4,3,2,2 into capacity 8: FFD gives [5,3], [4,2,2].
        let vms = descs(&[5.0, 4.0, 3.0, 2.0, 2.0]);
        let p = FfdPolicy.place_uniform(&vms, &matrix(5), 8.0).unwrap();
        assert_eq!(p.server_count(), 2);
        assert_eq!(p.server(0).unwrap(), &[0, 2]);
        assert_eq!(p.server(1).unwrap(), &[1, 3, 4]);
        p.validate(&vms, 8.0).unwrap();
    }

    #[test]
    fn exact_fits_are_accepted() {
        let vms = descs(&[4.0, 4.0]);
        let p = FfdPolicy.place_uniform(&vms, &matrix(2), 8.0).unwrap();
        assert_eq!(p.server_count(), 1);
    }

    #[test]
    fn oversized_vm_gets_its_own_server() {
        let vms = descs(&[10.0, 1.0]);
        let p = FfdPolicy.place_uniform(&vms, &matrix(2), 8.0).unwrap();
        assert_eq!(p.server_count(), 2);
        p.validate(&vms, 8.0).unwrap();
    }

    #[test]
    fn zero_demand_vms_pack_into_one_server() {
        let vms = descs(&[0.0, 0.0, 0.0]);
        let p = FfdPolicy.place_uniform(&vms, &matrix(3), 8.0).unwrap();
        assert_eq!(p.server_count(), 1);
    }

    #[test]
    fn respects_server_lower_bound() {
        // 10 VMs of demand 3 into capacity 8 need at least ceil(30/8)=4.
        let vms = descs(&[3.0; 10]);
        let p = FfdPolicy.place_uniform(&vms, &matrix(10), 8.0).unwrap();
        assert!(p.server_count() >= 4);
        p.validate(&vms, 8.0).unwrap();
        assert_eq!(FfdPolicy.name(), "FFD");
    }

    #[test]
    fn heterogeneous_fleet_fills_largest_class_first() {
        let xeon = LinearPowerModel::xeon_e5410;
        let fleet = ServerFleet::new(vec![
            ServerClass::new("small", 4, 4.0, xeon()).unwrap(),
            ServerClass::new("big", 1, 16.0, xeon().scaled(2.0).unwrap()).unwrap(),
        ])
        .unwrap();
        // 5+5+4 land on the 16-core box; 3 opens a 4-core box.
        let vms = descs(&[5.0, 5.0, 4.0, 3.0]);
        let p = FfdPolicy.place(&vms, &matrix(4), &fleet).unwrap();
        p.validate_fleet(&vms, &fleet).unwrap();
        assert_eq!(p.server_count(), 2);
        assert_eq!(p.class_of(0), Some(1));
        assert_eq!(p.class_of(1), Some(0));
        assert_eq!(p.server(0).unwrap(), &[0, 1, 2]);
    }

    #[test]
    fn exhausted_fleet_errors() {
        let fleet = ServerFleet::uniform(1, 4.0, LinearPowerModel::xeon_e5410()).unwrap();
        let vms = descs(&[3.0, 3.0, 3.0]);
        assert!(matches!(
            FfdPolicy.place(&vms, &matrix(3), &fleet),
            Err(CoreError::FleetExhausted {
                slots: 1,
                unallocated: 2
            })
        ));
    }
}
