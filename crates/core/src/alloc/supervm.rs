//! Joint-VM ("super-VM") provisioning — Meng et al., ICAC 2010 (the
//! paper's reference \[7\]), the second related-work baseline.
//!
//! The scheme pairs two *un-correlated* VMs into a super-VM, sizes the
//! pair by its **joint** predicted demand (smaller than the sum of the
//! individual peaks, because the peaks do not coincide), and then packs
//! the super-VMs with a conventional bin-packing heuristic.
//!
//! The paper's critique (§II): "once super-VMs are formed, this solution
//! does not consider the correlations of VMs within a same super-VM
//! anymore. Thus, it may lose the chance of further power savings by
//! leveraging time-varying correlations". This implementation makes the
//! critique testable: pairing is done once per placement from the
//! current matrix, the joint demand of a pair is `(û_a + û_b) /
//! Cost(a, b)` (exactly Eqn 1's denominator, the measured aggregate
//! reference), and *cross-pair* correlations are ignored by the final
//! BFD pass — which is where the proposed policy finds its extra
//! savings.

use crate::alloc::{
    decreasing_order, validate_inputs, AllocationPolicy, Placement, VmDescriptor, FIT_EPS,
};
use crate::corr::CostMatrix;
use crate::fleet::{FleetCursor, ServerFleet};
use crate::CoreError;
use serde::{Deserialize, Serialize};

/// The joint-VM-sizing baseline policy.
///
/// # Example
///
/// ```
/// use cavm_core::alloc::{AllocationPolicy, SuperVmPolicy, VmDescriptor};
/// use cavm_core::corr::CostMatrix;
/// use cavm_trace::Reference;
///
/// # fn main() -> Result<(), cavm_core::CoreError> {
/// // Two anti-phased VMs: a super-VM of joint size ~4 instead of 8.
/// let mut m = CostMatrix::new(2, Reference::Peak)?;
/// m.push_sample(&[4.0, 0.0])?;
/// m.push_sample(&[0.0, 4.0])?;
/// let vms = vec![VmDescriptor::new(0, 4.0), VmDescriptor::new(1, 4.0)];
/// let p = SuperVmPolicy::default().place_uniform(&vms, &m, 8.0)?;
/// assert_eq!(p.server_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuperVmPolicy {
    /// Minimum pair cost for two VMs to be fused into a super-VM; pairs
    /// below it stay single (fusing correlated VMs would not reduce the
    /// joint size anyway).
    pub min_pair_cost: f64,
}

impl Default for SuperVmPolicy {
    fn default() -> Self {
        Self {
            min_pair_cost: 1.25,
        }
    }
}

impl SuperVmPolicy {
    /// Creates a policy with an explicit fusion threshold.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a non-finite
    /// threshold.
    pub fn new(min_pair_cost: f64) -> crate::Result<Self> {
        if !min_pair_cost.is_finite() {
            return Err(CoreError::InvalidParameter(
                "pair-cost threshold must be finite",
            ));
        }
        Ok(Self { min_pair_cost })
    }

    /// Greedy pairing: repeatedly take the largest unpaired VM and fuse
    /// it with the unpaired partner of maximal pair cost (if any clears
    /// the threshold). Returns `(members, joint_demand)` per super-VM.
    fn build_super_vms(&self, vms: &[VmDescriptor], matrix: &CostMatrix) -> Vec<(Vec<usize>, f64)> {
        let order = decreasing_order(vms);
        let mut unpaired: Vec<usize> = order; // descriptor indices, desc demand
        let mut supers = Vec::new();
        while let Some(first_pos) = if unpaired.is_empty() { None } else { Some(0) } {
            let a_idx = unpaired.remove(first_pos);
            let a = &vms[a_idx];
            let mut best: Option<(usize, f64)> = None;
            for (pos, &b_idx) in unpaired.iter().enumerate() {
                let b = &vms[b_idx];
                let cost = matrix.cost_or_neutral(a.id, b.id);
                if cost < self.min_pair_cost {
                    continue;
                }
                if best.is_none_or(|(_, c)| cost > c + 1e-12) {
                    best = Some((pos, cost));
                }
            }
            match best {
                Some((pos, cost)) => {
                    let b_idx = unpaired.remove(pos);
                    let b = &vms[b_idx];
                    // Joint sizing: the measured aggregate reference,
                    // û(a+b) = (û_a + û_b) / Cost(a, b).
                    let joint = (a.demand + b.demand) / cost.max(1.0);
                    supers.push((vec![a.id, b.id], joint));
                }
                None => supers.push((vec![a.id], a.demand)),
            }
        }
        supers
    }
}

impl AllocationPolicy for SuperVmPolicy {
    fn name(&self) -> &'static str {
        "SuperVM"
    }

    fn place(
        &self,
        vms: &[VmDescriptor],
        matrix: &CostMatrix,
        fleet: &ServerFleet,
    ) -> crate::Result<Placement> {
        validate_inputs(vms, matrix)?;
        let supers = self.build_super_vms(vms, matrix);

        // BFD over super-VMs by joint demand.
        let mut order: Vec<usize> = (0..supers.len()).collect();
        order.sort_by(|&x, &y| {
            supers[y]
                .1
                .partial_cmp(&supers[x].1)
                .expect("finite joint demands")
        });
        let mut cursor = FleetCursor::new(fleet);
        // (members, used, capacity, class) per open server.
        let mut bins: Vec<(Vec<usize>, f64, f64, usize)> = Vec::new();
        let mut placed_vms = 0usize;
        for idx in order {
            let (members, joint) = &supers[idx];
            // Tightest feasible open server: minimal residual that
            // still fits the super-VM (ties keep the last candidate —
            // the `max_by`-on-used semantics of the uniform
            // formulation).
            let mut best: Option<(usize, f64)> = None;
            for (i, (_, used, cap, _)) in bins.iter().enumerate() {
                let residual = cap - used;
                if *joint <= residual + FIT_EPS
                    && best.is_none_or(|(_, best_residual)| residual <= best_residual)
                {
                    best = Some((i, residual));
                }
            }
            match best {
                Some((i, _)) => {
                    let (bin_members, used, _, _) = &mut bins[i];
                    bin_members.extend_from_slice(members);
                    *used += joint;
                }
                None => {
                    let (class, cap) = cursor
                        .open_next()
                        .ok_or_else(|| cursor.exhausted(vms.len() - placed_vms))?;
                    bins.push((members.clone(), *joint, cap, class));
                }
            }
            placed_vms += members.len();
        }
        Ok(Placement::from_classed_servers(
            bins.into_iter().map(|(m, _, _, c)| (m, c)).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cavm_trace::Reference;

    fn matrix_from_rows(rows: &[&[f64]]) -> CostMatrix {
        let n = rows[0].len();
        let mut m = CostMatrix::new(n, Reference::Peak).unwrap();
        for r in rows {
            m.push_sample(r).unwrap();
        }
        m
    }

    fn descs(demands: &[f64]) -> Vec<VmDescriptor> {
        demands
            .iter()
            .enumerate()
            .map(|(i, &d)| VmDescriptor::new(i, d))
            .collect()
    }

    #[test]
    fn fuses_anti_correlated_pairs() {
        // VMs 0/2 anti-phased, 1/3 anti-phased: two super-VMs of joint
        // size ≈ 4 each → one 8-core server, where BFD by peaks needs 2.
        let m = matrix_from_rows(&[&[4.0, 4.0, 0.0, 0.0], &[0.0, 0.0, 4.0, 4.0]]);
        let vms = descs(&[4.0, 4.0, 4.0, 4.0]);
        let p = SuperVmPolicy::default()
            .place_uniform(&vms, &m, 8.0)
            .unwrap();
        p.validate_structure(&vms).unwrap();
        assert_eq!(p.server_count(), 1, "joint sizing must halve the footprint");
        let bfd = crate::alloc::BfdPolicy
            .place_uniform(&vms, &m, 8.0)
            .unwrap();
        assert_eq!(bfd.server_count(), 2);
    }

    #[test]
    fn correlated_vms_stay_single() {
        // All four VMs peak together: no pair clears the threshold,
        // sizing degenerates to individual peaks (BFD-like).
        let m = matrix_from_rows(&[&[4.0, 4.0, 4.0, 4.0], &[0.5, 0.5, 0.5, 0.5]]);
        let vms = descs(&[4.0, 4.0, 4.0, 4.0]);
        let p = SuperVmPolicy::default()
            .place_uniform(&vms, &m, 8.0)
            .unwrap();
        p.validate(&vms, 8.0).unwrap();
        assert_eq!(p.server_count(), 2);
    }

    #[test]
    fn odd_vm_counts_leave_one_single() {
        let m = matrix_from_rows(&[&[3.0, 0.0, 3.0], &[0.0, 3.0, 0.0]]);
        let vms = descs(&[3.0, 3.0, 3.0]);
        let p = SuperVmPolicy::default()
            .place_uniform(&vms, &m, 8.0)
            .unwrap();
        p.validate_structure(&vms).unwrap();
        let total: usize = p.servers().iter().map(|s| s.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn neutral_matrix_still_pairs_at_default_threshold() {
        // Unknown pairs score 1.5 ≥ 1.25: the policy optimistically
        // fuses, which is exactly the over-trust the paper critiques.
        let m = CostMatrix::new(4, Reference::Peak).unwrap();
        let vms = descs(&[3.0, 3.0, 3.0, 3.0]);
        let p = SuperVmPolicy::default()
            .place_uniform(&vms, &m, 8.0)
            .unwrap();
        p.validate_structure(&vms).unwrap();
        assert_eq!(p.server_count(), 1);
    }

    #[test]
    fn threshold_validation_and_name() {
        assert!(SuperVmPolicy::new(f64::NAN).is_err());
        assert_eq!(SuperVmPolicy::default().name(), "SuperVM");
        assert_eq!(SuperVmPolicy::new(1.5).unwrap().min_pair_cost, 1.5);
    }

    #[test]
    fn empty_input() {
        let m = CostMatrix::new(1, Reference::Peak).unwrap();
        let p = SuperVmPolicy::default()
            .place_uniform(&[], &m, 8.0)
            .unwrap();
        assert_eq!(p.server_count(), 0);
    }

    #[test]
    fn exhaustion_reports_unplaced_vms_not_super_vms() {
        use crate::fleet::ServerFleet;
        use cavm_power::LinearPowerModel;
        // Pairs (0,2) and (1,3) fuse into two super-VMs of joint size 8
        // each; a single 8-core server takes only the first, leaving
        // one super-VM = TWO real VMs unplaced.
        let m = matrix_from_rows(&[&[8.0, 8.0, 0.0, 0.0], &[0.0, 0.0, 8.0, 8.0]]);
        let vms = descs(&[8.0, 8.0, 8.0, 8.0]);
        let fleet = ServerFleet::uniform(1, 8.0, LinearPowerModel::xeon_e5410()).unwrap();
        assert!(matches!(
            SuperVmPolicy::default().place(&vms, &m, &fleet),
            Err(CoreError::FleetExhausted {
                slots: 1,
                unallocated: 2
            })
        ));
    }

    #[test]
    fn hetero_fleet_packs_super_vms_onto_classes() {
        use crate::fleet::{ServerClass, ServerFleet};
        use cavm_power::LinearPowerModel;
        let xeon = LinearPowerModel::xeon_e5410;
        let fleet = ServerFleet::new(vec![
            ServerClass::new("big", 1, 8.0, xeon()).unwrap(),
            ServerClass::new("small", 4, 4.0, xeon().scaled(0.5).unwrap()).unwrap(),
        ])
        .unwrap();
        // 0/2 and 1/3 fuse to joint size ≈ 4 each: both super-VMs fit
        // the single 8-core box.
        let m = matrix_from_rows(&[&[4.0, 4.0, 0.0, 0.0], &[0.0, 0.0, 4.0, 4.0]]);
        let vms = descs(&[4.0, 4.0, 4.0, 4.0]);
        let p = SuperVmPolicy::default().place(&vms, &m, &fleet).unwrap();
        p.validate_structure(&vms).unwrap();
        assert_eq!(p.server_count(), 1);
        assert_eq!(p.class_of(0), Some(0));
    }
}
