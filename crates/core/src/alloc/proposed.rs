//! The paper's correlation-aware VM allocation (Fig 2).
//!
//! The algorithm has two phases:
//!
//! * **UPDATE** (lines 1–8): initialize the unallocated set, predict
//!   next-period û per VM, sort by decreasing û, refresh the pairwise
//!   cost matrix, and estimate the number of active servers (Eqn 3):
//!   `Ñ = ⌈Σ û / N_core⌉`. Prediction and matrix maintenance live in
//!   [`crate::predict`] and [`crate::corr::matrix`]; this module
//!   receives their outputs through the [`VmDescriptor`] table and
//!   [`CostMatrix`]. On a heterogeneous [`ServerFleet`] the estimate
//!   generalizes to a prefix of the fleet's fill order: servers open
//!   largest-class-first until their cumulative capacity covers Σ û.
//! * **ALLOCATE** (lines 9–18): repeatedly take the server with the
//!   largest remaining capacity and greedily add the unallocated VM that
//!   (a) fits, (b) maximizes the resulting server cost (Eqn 2) and
//!   (c) keeps that cost above the threshold `TH_cost`. When a pass
//!   leaves VMs unallocated, `TH_cost` is relaxed by the factor `α` and
//!   the pass repeats over servers re-sorted by remaining capacity.
//!   Each open server keeps its own incremental [`ServerCostAggregate`],
//!   so candidate probes stay O(|members|) regardless of the mix of
//!   server classes.
//!
//! Two necessary interpretations of details the paper leaves implicit:
//!
//! 1. An **empty server** has no pairs, so no candidate can clear any
//!    threshold; the first VM placed on a server is simply the largest
//!    unallocated one that fits (this is exactly the FFD seeding the
//!    heuristic builds on).
//! 2. When `TH_cost` decays to its floor the threshold condition is
//!    dropped entirely (any fitting VM is admissible, still picked by
//!    maximal server cost), and if even then nothing fits the estimate
//!    `Ñ` was too small for the fragmentation at hand — the next server
//!    of the fill order opens, matching FFD's unbounded bin supply (or
//!    [`crate::CoreError::FleetExhausted`] when the fleet is spent).

use crate::alloc::online::{max_cost_server, OpenServer};
use crate::alloc::{
    decreasing_order, validate_inputs, AllocationPolicy, Placement, VmDescriptor, FIT_EPS,
};
use crate::corr::CostMatrix;
use crate::fleet::{FleetCursor, ServerFleet};
use crate::servercost::ServerCostAggregate;
use crate::CoreError;
use serde::{Deserialize, Serialize};

/// Eqn (3): the minimum number of servers that can hold a total demand,
/// `Ñ = ⌈total / capacity⌉` (at least 1 when there is any demand).
///
/// # Example
///
/// ```
/// use cavm_core::alloc::proposed::estimate_server_count;
///
/// assert_eq!(estimate_server_count(30.0, 8.0), 4);
/// assert_eq!(estimate_server_count(32.0, 8.0), 4);
/// assert_eq!(estimate_server_count(0.0, 8.0), 0);
/// ```
pub fn estimate_server_count(total_demand: f64, capacity: f64) -> usize {
    if total_demand <= 0.0 || capacity <= 0.0 {
        return 0;
    }
    ((total_demand / capacity) - FIT_EPS).ceil().max(1.0) as usize
}

/// Tuning knobs of the ALLOCATE phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProposedConfig {
    /// Initial correlation threshold `TH_cost`. Costs live in `[1, 2]`
    /// under peak reference, so a demanding initial threshold close to 2
    /// makes the first passes pick strongly anti-correlated co-tenants.
    pub th_init: f64,
    /// Multiplicative decay `α ∈ (0, 1)` applied to `TH_cost` after any
    /// pass that leaves VMs unallocated (Fig 2, line 17).
    pub alpha: f64,
    /// Once `TH_cost` falls to (or below) this floor the threshold test
    /// is waived and any fitting VM is admissible.
    pub th_floor: f64,
    /// Safety bound on ALLOCATE passes; exceeded only on degenerate
    /// inputs.
    pub max_rounds: usize,
}

impl Default for ProposedConfig {
    fn default() -> Self {
        Self {
            th_init: 1.8,
            alpha: 0.92,
            th_floor: 1.0,
            max_rounds: 10_000,
        }
    }
}

/// The paper's correlation-aware placement policy.
///
/// # Example
///
/// ```
/// use cavm_core::alloc::{AllocationPolicy, ProposedPolicy, VmDescriptor};
/// use cavm_core::corr::CostMatrix;
/// use cavm_trace::Reference;
///
/// # fn main() -> Result<(), cavm_core::CoreError> {
/// // Two pairs of clones: VMs 0/1 peak together, VMs 2/3 peak together,
/// // opposite phases across pairs.
/// let mut m = CostMatrix::new(4, Reference::Peak)?;
/// m.push_sample(&[4.0, 4.0, 0.5, 0.5])?;
/// m.push_sample(&[0.5, 0.5, 4.0, 4.0])?;
///
/// let vms: Vec<_> = (0..4).map(|i| VmDescriptor::new(i, 4.0)).collect();
/// let p = ProposedPolicy::default().place_uniform(&vms, &m, 8.0)?;
///
/// // Correlation-aware placement pairs anti-correlated VMs.
/// assert_eq!(p.server_count(), 2);
/// assert_ne!(p.server_of(0), p.server_of(1));
/// assert_ne!(p.server_of(2), p.server_of(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ProposedPolicy {
    config: ProposedConfig,
}

impl ProposedPolicy {
    /// Creates a policy with explicit tuning.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless
    /// `0 < alpha < 1`, `th_floor <= th_init`, both thresholds finite,
    /// and `max_rounds > 0`.
    pub fn new(config: ProposedConfig) -> crate::Result<Self> {
        if !(config.alpha > 0.0 && config.alpha < 1.0) {
            return Err(CoreError::InvalidParameter("alpha must lie in (0, 1)"));
        }
        if !(config.th_init.is_finite() && config.th_floor.is_finite()) {
            return Err(CoreError::InvalidParameter("thresholds must be finite"));
        }
        if config.th_floor > config.th_init {
            return Err(CoreError::InvalidParameter(
                "th_floor must not exceed th_init",
            ));
        }
        if config.max_rounds == 0 {
            return Err(CoreError::InvalidParameter("max_rounds must be >= 1"));
        }
        Ok(Self { config })
    }

    /// The active tuning.
    pub fn config(&self) -> &ProposedConfig {
        &self.config
    }
}

/// One open server: membership, packed load and the Eqn (2) pair sums
/// all live in the single [`ServerCostAggregate`], plus the bin's
/// **candidate index** — per still-unallocated VM, its `(û_j+û_k)·Cost`
/// and `Cost` pair sums against this bin's committed members,
/// accumulated in commit order. The index turns every probe of the
/// ALLOCATE scan into an O(1)
/// [`candidate_cost_with`](ServerCostAggregate::candidate_cost_with)
/// combine (it used to be an O(|members|) matrix walk *per probe*,
/// the dominant cost of batch `place`), and because the per-candidate
/// sums extend by exactly one term per commit — in the same order
/// `pair_delta` folds them — the probe values are bit-identical to the
/// scan they replace. `cores`/`class` pin the server to its fleet
/// class.
struct Bin {
    agg: ServerCostAggregate,
    cores: f64,
    class: usize,
    /// `dw[i]`: descriptor index i's Σ `(û_i + û_m)·Cost(i,m)` over
    /// this bin's members, in commit order.
    dw: Vec<f64>,
    /// `dp[i]`: descriptor index i's Σ `Cost(i,m)` over this bin's
    /// members, in commit order.
    dp: Vec<f64>,
}

impl Bin {
    fn open(class: usize, cores: f64, n_vms: usize) -> Self {
        Bin {
            agg: ServerCostAggregate::new(),
            cores,
            class,
            dw: vec![0.0; n_vms],
            dp: vec![0.0; n_vms],
        }
    }

    fn remaining(&self) -> f64 {
        self.cores - self.agg.total_util()
    }

    fn member_ids(&self) -> Vec<usize> {
        self.agg.members().iter().map(|&(id, _)| id).collect()
    }

    /// Commits descriptor `idx` to this bin and extends the candidate
    /// index of every VM still in `unalloc` by the new member's pair
    /// terms — one matrix row walk per admission, amortizing what used
    /// to be re-walked by every later probe. The term and accumulation
    /// order mirror [`ServerCostAggregate`]'s `pair_delta` fold
    /// exactly, keeping subsequent O(1) probes bit-identical.
    fn admit(&mut self, idx: usize, vms: &[VmDescriptor], matrix: &CostMatrix, unalloc: &[usize]) {
        let vm = &vms[idx];
        self.agg.push(vm.id, vm.demand, matrix);
        for &j in unalloc {
            let cand = &vms[j];
            let c = matrix.cost_or_neutral(vm.id, cand.id);
            self.dw[j] += (vm.demand + cand.demand) * c;
            self.dp[j] += c;
        }
    }
}

impl AllocationPolicy for ProposedPolicy {
    fn name(&self) -> &'static str {
        "Proposed"
    }

    fn place(
        &self,
        vms: &[VmDescriptor],
        matrix: &CostMatrix,
        fleet: &ServerFleet,
    ) -> crate::Result<Placement> {
        validate_inputs(vms, matrix)?;
        if vms.is_empty() {
            return Ok(Placement::from_servers(vec![]));
        }

        // UPDATE phase residue: sort by decreasing predicted û (line 6)
        // and size the active server set by Eqn (3) (line 8) — on a
        // heterogeneous fleet, the shortest fill-order prefix whose
        // cumulative capacity covers the total demand.
        let order = decreasing_order(vms); // descriptor indices
        let total: f64 = vms.iter().map(|d| d.demand).sum();
        let mut cursor = FleetCursor::new(fleet);
        let mut bins: Vec<Bin> = Vec::new();
        let mut open_capacity = 0.0;
        while open_capacity + FIT_EPS < total || bins.is_empty() {
            match cursor.open_next() {
                Some((class, cores)) => {
                    open_capacity += cores;
                    bins.push(Bin::open(class, cores, vms.len()));
                }
                // The fleet cannot cover the estimate; proceed with
                // what exists and let the fill report exhaustion if
                // VMs truly do not fit.
                None => break,
            }
        }
        if bins.is_empty() {
            return Err(cursor.exhausted(vms.len()));
        }

        // Unallocated descriptor indices, kept in decreasing-demand order.
        let mut unalloc: Vec<usize> = order;
        let mut th = self.config.th_init;
        let mut rounds = 0usize;
        let class_wpc: Vec<f64> = fleet
            .classes()
            .iter()
            .map(|c| c.busy_watts_per_core())
            .collect();

        while !unalloc.is_empty() {
            rounds += 1;
            if rounds > self.config.max_rounds {
                return Err(CoreError::AllocationDiverged {
                    unallocated: unalloc.len(),
                });
            }

            // Line 10: the server with the largest remaining capacity.
            // Exact capacity ties prefer the class with the lower
            // busy-watts-per-core (fill the efficient host); remaining
            // ties keep the last candidate, which on a one-class fleet
            // reproduces the historical `max_by` (last maximum wins)
            // semantics bit-identically.
            let mut bin_idx = 0usize;
            let mut best_remaining = f64::NEG_INFINITY;
            let mut best_wpc = f64::INFINITY;
            for (i, bin) in bins.iter().enumerate() {
                let remaining = bin.remaining();
                let wpc = class_wpc[bin.class];
                if remaining > best_remaining || (remaining == best_remaining && wpc <= best_wpc) {
                    bin_idx = i;
                    best_remaining = remaining;
                    best_wpc = wpc;
                }
            }

            // Lines 11–16: greedily fill this server under the current
            // threshold.
            let placed = fill_bin(
                &mut bins[bin_idx],
                &mut unalloc,
                vms,
                matrix,
                th,
                self.config.th_floor,
            );

            if unalloc.is_empty() {
                break;
            }
            if placed == 0 {
                if th > self.config.th_floor {
                    // Line 17: relax the correlation threshold.
                    th = (th * self.config.alpha).max(self.config.th_floor);
                } else {
                    // Threshold already waived and the roomiest server
                    // cannot take the smallest VM: Eqn (3) undershot due
                    // to fragmentation — open another server.
                    let smallest = unalloc
                        .last()
                        .map(|&i| vms[i].demand)
                        .expect("unalloc is non-empty");
                    let roomiest = bins[bin_idx].remaining();
                    debug_assert!(
                        smallest > roomiest + FIT_EPS || bins[bin_idx].agg.is_empty(),
                        "no progress despite a fitting vm"
                    );
                    let _ = (smallest, roomiest);
                    let (class, cores) = cursor
                        .open_next()
                        .ok_or_else(|| cursor.exhausted(unalloc.len()))?;
                    bins.push(Bin::open(class, cores, vms.len()));
                }
            }
        }

        Ok(Placement::from_classed_servers(
            bins.iter().map(|b| (b.member_ids(), b.class)).collect(),
        ))
    }

    /// Online arrivals use the ALLOCATE selection rule for a single
    /// VM: the feasible server whose Eqn (2) cost after insertion is
    /// maximal. The threshold-relaxation loop does not apply to a lone
    /// arrival — `TH_cost` exists to stage the order in which a whole
    /// *batch* packs — so the cost test is waived as at the floor.
    fn place_one(
        &self,
        vm: &VmDescriptor,
        lease: Option<usize>,
        servers: &[OpenServer<'_>],
        matrix: &CostMatrix,
    ) -> Option<usize> {
        max_cost_server(vm, lease, servers, matrix)
    }
}

/// Greedy inner loop (Fig 2, lines 11–16): keep adding the
/// best-admissible VM to `bin` until none qualifies. Returns the number
/// of VMs placed.
///
/// `unalloc` holds descriptor indices in decreasing-demand order, which
/// turns the fit check into a single binary search: every index at or
/// past `partition_point(demand > rem)` fits, everything before it is
/// too large, so a pass stops scanning (and the whole loop exits) the
/// moment nothing fits. Candidate scoring reads the bin's incremental
/// candidate index, making each probe O(1) — bit-identical to (and
/// debug-asserted against) the O(|members|) matrix-walking probe it
/// replaced.
fn fill_bin(
    bin: &mut Bin,
    unalloc: &mut Vec<usize>,
    vms: &[VmDescriptor],
    matrix: &CostMatrix,
    th: f64,
    th_floor: f64,
) -> usize {
    let mut placed = 0;
    loop {
        let rem = bin.remaining();
        // First position whose VM fits: demands are non-increasing
        // along `unalloc`, so the predicate is monotone.
        let first_fit = unalloc.partition_point(|&i| vms[i].demand > rem + FIT_EPS);
        let choice = if bin.agg.is_empty() {
            // FFD seeding: the largest unallocated VM that fits; an
            // oversized VM (demand > capacity) is admitted alone —
            // it has to run somewhere.
            if first_fit < unalloc.len() {
                Some(first_fit)
            } else if !unalloc.is_empty() {
                Some(0)
            } else {
                None
            }
        } else {
            // Line 11: among fitting VMs, the one maximizing the server
            // cost after insertion, subject to cost ≥ TH (waived at the
            // floor).
            let mut best: Option<(usize, f64)> = None;
            for (pos, &idx) in unalloc.iter().enumerate().skip(first_fit) {
                let vm = &vms[idx];
                let cost = bin
                    .agg
                    .candidate_cost_with(vm.demand, bin.dw[idx], bin.dp[idx]);
                debug_assert_eq!(
                    cost.to_bits(),
                    bin.agg.candidate_cost(vm.id, vm.demand, matrix).to_bits(),
                    "candidate index drifted from the direct probe"
                );
                if cost < th && th > th_floor {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, best_cost)) => cost > best_cost + 1e-12,
                };
                if better {
                    best = Some((pos, cost));
                }
            }
            best.map(|(pos, _)| pos)
        };

        match choice {
            Some(pos) => {
                let idx = unalloc.remove(pos);
                bin.admit(idx, vms, matrix, unalloc);
                placed += 1;
            }
            None => return placed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::ServerClass;
    use cavm_power::LinearPowerModel;
    use cavm_trace::Reference;

    fn matrix_from_rows(rows: &[&[f64]]) -> CostMatrix {
        let n = rows[0].len();
        let mut m = CostMatrix::new(n, Reference::Peak).unwrap();
        for r in rows {
            m.push_sample(r).unwrap();
        }
        m
    }

    fn descs(demands: &[f64]) -> Vec<VmDescriptor> {
        demands
            .iter()
            .enumerate()
            .map(|(i, &d)| VmDescriptor::new(i, d))
            .collect()
    }

    #[test]
    fn eqn3_estimate() {
        assert_eq!(estimate_server_count(0.0, 8.0), 0);
        assert_eq!(estimate_server_count(-3.0, 8.0), 0);
        assert_eq!(estimate_server_count(1.0, 8.0), 1);
        assert_eq!(estimate_server_count(8.0, 8.0), 1);
        assert_eq!(estimate_server_count(8.1, 8.0), 2);
        assert_eq!(estimate_server_count(100.0, 0.0), 0);
    }

    #[test]
    fn config_validation() {
        let ok = ProposedConfig::default();
        assert!(ProposedPolicy::new(ok).is_ok());
        assert!(ProposedPolicy::new(ProposedConfig { alpha: 0.0, ..ok }).is_err());
        assert!(ProposedPolicy::new(ProposedConfig { alpha: 1.0, ..ok }).is_err());
        assert!(ProposedPolicy::new(ProposedConfig {
            th_floor: 3.0,
            ..ok
        })
        .is_err());
        assert!(ProposedPolicy::new(ProposedConfig {
            th_init: f64::NAN,
            ..ok
        })
        .is_err());
        assert!(ProposedPolicy::new(ProposedConfig {
            max_rounds: 0,
            ..ok
        })
        .is_err());
        assert_eq!(ProposedPolicy::default().config().th_floor, 1.0);
    }

    #[test]
    fn separates_correlated_clones() {
        // Clusters {0,1} and {2,3} peak in anti-phase.
        let m = matrix_from_rows(&[
            &[4.0, 4.0, 0.5, 0.5],
            &[0.5, 0.5, 4.0, 4.0],
            &[4.0, 4.0, 0.5, 0.5],
            &[0.5, 0.5, 4.0, 4.0],
        ]);
        let vms = descs(&[4.0, 4.0, 4.0, 4.0]);
        let p = ProposedPolicy::default()
            .place_uniform(&vms, &m, 8.0)
            .unwrap();
        p.validate(&vms, 8.0).unwrap();
        assert_eq!(p.server_count(), 2);
        assert_ne!(p.server_of(0), p.server_of(1), "correlated pair must split");
        assert_ne!(p.server_of(2), p.server_of(3), "correlated pair must split");
    }

    #[test]
    fn bfd_colocates_what_proposed_separates() {
        // Contrast case backing the paper's Table II mechanism.
        let m = matrix_from_rows(&[&[4.0, 4.0, 0.5, 0.5], &[0.5, 0.5, 4.0, 4.0]]);
        let vms = descs(&[4.0, 4.0, 4.0, 4.0]);
        let bfd = crate::alloc::BfdPolicy
            .place_uniform(&vms, &m, 8.0)
            .unwrap();
        // BFD is order/size-driven: 0 and 1 (equal size, first fit wins)
        // land together.
        assert_eq!(bfd.server_of(0), bfd.server_of(1));
    }

    #[test]
    fn respects_capacity_and_covers_all_vms() {
        let mut rng = cavm_trace::SimRng::new(1);
        let demands: Vec<f64> = (0..40).map(|_| rng.range_f64(0.2, 3.5)).collect();
        let vms = descs(&demands);
        let mut m = CostMatrix::new(40, Reference::Peak).unwrap();
        for _ in 0..50 {
            let sample: Vec<f64> = (0..40).map(|_| rng.range_f64(0.0, 3.5)).collect();
            m.push_sample(&sample).unwrap();
        }
        let p = ProposedPolicy::default()
            .place_uniform(&vms, &m, 8.0)
            .unwrap();
        p.validate(&vms, 8.0).unwrap();
        let lower = estimate_server_count(demands.iter().sum(), 8.0);
        assert!(p.server_count() >= lower);
        // The FFD-family heuristics stay within a small constant of the
        // lower bound on benign instances.
        assert!(p.server_count() <= lower + 3);
    }

    #[test]
    fn empty_and_single_inputs() {
        let m = CostMatrix::new(1, Reference::Peak).unwrap();
        let p = ProposedPolicy::default()
            .place_uniform(&[], &m, 8.0)
            .unwrap();
        assert_eq!(p.server_count(), 0);
        let vms = descs(&[2.0]);
        let p = ProposedPolicy::default()
            .place_uniform(&vms, &m, 8.0)
            .unwrap();
        assert_eq!(p.server_count(), 1);
        p.validate(&vms, 8.0).unwrap();
    }

    #[test]
    fn oversized_vm_is_admitted_alone() {
        let m = CostMatrix::new(2, Reference::Peak).unwrap();
        let vms = descs(&[12.0, 2.0]);
        let p = ProposedPolicy::default()
            .place_uniform(&vms, &m, 8.0)
            .unwrap();
        p.validate(&vms, 8.0).unwrap();
        assert_eq!(p.server_count(), 2);
        assert_ne!(p.server_of(0), p.server_of(1));
    }

    #[test]
    fn fragmentation_opens_extra_servers() {
        // Total 12 fits Eqn-3's two 6-capacity bins, but 4+4+4 per-item
        // sizes force three bins of 5.0 capacity... construct: capacity
        // 6, demands [4,4,4]: total 12 → Ñ=2, but no two 4s share a bin.
        let m = CostMatrix::new(3, Reference::Peak).unwrap();
        let vms = descs(&[4.0, 4.0, 4.0]);
        let p = ProposedPolicy::default()
            .place_uniform(&vms, &m, 6.0)
            .unwrap();
        p.validate(&vms, 6.0).unwrap();
        assert_eq!(p.server_count(), 3);
    }

    #[test]
    fn neutral_matrix_degenerates_to_ffd_like_packing() {
        // With no correlation data every pair scores the neutral 1.5, so
        // the heuristic packs like FFD (modulo the largest-remaining
        // server-selection order) and reaches the same server count on
        // this instance.
        let m = CostMatrix::new(4, Reference::Peak).unwrap();
        let vms = descs(&[5.0, 4.0, 3.0, 2.0]);
        let p = ProposedPolicy::default()
            .place_uniform(&vms, &m, 8.0)
            .unwrap();
        let f = crate::alloc::FfdPolicy
            .place_uniform(&vms, &m, 8.0)
            .unwrap();
        assert_eq!(p.server_count(), f.server_count());
        p.validate(&vms, 8.0).unwrap();
    }

    #[test]
    fn threshold_floor_waives_correlation_test() {
        // All VMs perfectly correlated (cost 1 for every pair): with a
        // floor of 1.0 the allocator must still pack them (cost 1 < any
        // th > 1, but the floor waiver admits them).
        let m = matrix_from_rows(&[&[4.0, 4.0, 4.0, 4.0], &[1.0, 1.0, 1.0, 1.0]]);
        let vms = descs(&[4.0, 4.0, 4.0, 4.0]);
        let p = ProposedPolicy::default()
            .place_uniform(&vms, &m, 8.0)
            .unwrap();
        p.validate(&vms, 8.0).unwrap();
        assert_eq!(p.server_count(), 2);
    }

    #[test]
    fn never_colocates_the_correlated_pair() {
        // VM0 and VM1 peak together; VM2 is anti-phased with both. The
        // correlated pair must end up on different servers, whichever
        // partner the greedy assigns VM2 to.
        let m = matrix_from_rows(&[&[4.0, 3.0, 0.5], &[0.5, 0.4, 3.0], &[4.0, 3.0, 0.5]]);
        let vms = descs(&[4.0, 3.0, 3.0]);
        let p = ProposedPolicy::default()
            .place_uniform(&vms, &m, 8.0)
            .unwrap();
        p.validate(&vms, 8.0).unwrap();
        assert_eq!(p.server_count(), 2);
        assert_ne!(p.server_of(0), p.server_of(1));
    }

    #[test]
    fn hetero_fleet_eqn3_opens_fill_order_prefix() {
        let xeon = LinearPowerModel::xeon_e5410;
        let fleet = ServerFleet::new(vec![
            ServerClass::new("small", 10, 4.0, xeon()).unwrap(),
            ServerClass::new("big", 1, 16.0, xeon().scaled(2.0).unwrap()).unwrap(),
        ])
        .unwrap();
        // Total demand 20: one 16-core + one 4-core server cover it.
        let m = CostMatrix::new(8, Reference::Peak).unwrap();
        let vms = descs(&[3.0, 3.0, 3.0, 3.0, 2.0, 2.0, 2.0, 2.0]);
        let p = ProposedPolicy::default().place(&vms, &m, &fleet).unwrap();
        p.validate_fleet(&vms, &fleet).unwrap();
        assert_eq!(p.server_count(), 2);
        assert_eq!(p.class_of(0), Some(1));
        assert_eq!(p.class_of(1), Some(0));
    }

    #[test]
    fn hetero_fleet_exhaustion_is_reported() {
        let fleet = ServerFleet::uniform(2, 4.0, LinearPowerModel::xeon_e5410()).unwrap();
        let m = CostMatrix::new(4, Reference::Peak).unwrap();
        let vms = descs(&[3.0, 3.0, 3.0, 3.0]);
        assert!(matches!(
            ProposedPolicy::default().place(&vms, &m, &fleet),
            Err(CoreError::FleetExhausted { slots: 2, .. })
        ));
    }
}
