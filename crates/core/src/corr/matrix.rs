//! The all-pairs cost matrix `M_cost` (paper §IV-A) — struct-of-arrays
//! kernel.
//!
//! "Using our new Cost function, we can model correlations among all VMs
//! by constructing a 2-D matrix, namely M_cost, where the (i,j)-th
//! element corresponds to Cost_ij."
//!
//! # Storage layout
//!
//! The seed implementation (preserved as
//! [`baseline::PairwiseCostMatrix`](crate::corr::baseline::PairwiseCostMatrix))
//! kept one enum-dispatched [`CostMetric`](crate::corr::CostMetric) per
//! pair: three boxed-enum trackers and ~640 bytes of state per pair,
//! walked as an array of structs on every monitoring tick. This module
//! flattens that hot path:
//!
//! * **Per-VM reference trackers are stored once**, not once per pair.
//!   Every pair `(i, j)` needs û(VMi) and û(VMj); the seed paid for
//!   `n-1` redundant copies of each VM's tracker. Here they live in one
//!   length-`n` plane.
//! * **Per-pair sum trackers are contiguous flat planes** over the
//!   upper triangle (row-major, pair `(i, j)` with `i < j` at
//!   `i·(2n-i-1)/2 + (j-i-1)`):
//!   - under [`Reference::Peak`], a single `Vec<f64>` of running
//!     maxima — 8 bytes per pair, and the tick kernel is a flat
//!     `slot = max(slot, uᵢ + uⱼ)` sweep the compiler auto-vectorizes;
//!   - under [`Reference::Percentile`], a `Vec<P2Cell>` of compact
//!     64-byte P² marker cells driven by one shared [`P2Clock`] (the
//!     sample count and desired marker positions are identical across
//!     the bank, so they are hoisted out of the per-pair state).
//! * **Monomorphized update paths**: the `Peak` and `Percentile`
//!   kernels are separate loops selected once per call, instead of a
//!   per-sample `match` on every tracker of every pair.
//!
//! Updates remain O(1) per pair per tick — the paper's UPDATE-phase
//! argument (Fig 2, line 7) — but the constant is an order of magnitude
//! smaller and the fleet tick ([`CostMatrix::push_sample`]) touches
//! `n(n-1)/2 · 8` bytes instead of `· ~640`.
//!
//! # Parallel ticks
//!
//! With the `parallel` feature (default on),
//! [`CostMatrix::par_push_sample`] and
//! [`CostMatrix::par_push_columns`] split the triangle into
//! near-equal-pair row chunks and update them on scoped `std::thread`s.
//! (The build environment has no crate registry, so this uses the
//! standard library rather than rayon; the chunking is embarrassingly
//! parallel either way.) Each pair is still updated by exactly one
//! thread in tick order, so parallel results are bit-identical to
//! serial ones — the equivalence tests in `tests/soa_equivalence.rs`
//! pin this.
//!
//! Batch window replay ([`CostMatrix::push_columns`]) walks the
//! triangle *pair-major* instead of tick-major: each pair's slot is
//! updated over the whole window while it is hot in cache, instead of
//! re-touching the entire (possibly multi-megabyte) plane on every
//! tick.

use crate::corr::cost::combine_cost;
use crate::CoreError;
use cavm_trace::{P2Cell, P2Clock, Reference, TimeSeries};
use serde::{Deserialize, Serialize};

/// Upper-triangle row-major index of pair `(i, j)`, `i < j < n`.
#[inline]
fn pair_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * (2 * n - i - 1) / 2 + (j - i - 1)
}

/// Offset of row `i`'s first pair `(i, i+1)` in the triangle.
#[cfg_attr(not(feature = "parallel"), allow(dead_code))]
#[inline]
fn row_offset(n: usize, i: usize) -> usize {
    i * (2 * n - i - 1) / 2
}

/// Splits rows `0..n-1` into at most `threads` contiguous chunks of
/// near-equal *pair* count. Returns `(row_start, row_end)` half-open
/// ranges; empty when `n < 2`.
#[cfg_attr(not(feature = "parallel"), allow(dead_code))]
fn row_chunks(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let pairs = n * (n - 1) / 2;
    if pairs == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n.saturating_sub(1));
    let target = pairs.div_ceil(threads);
    let mut chunks = Vec::with_capacity(threads);
    let mut row = 0;
    while row + 1 < n {
        let mut end = row;
        let mut acc = 0;
        while end + 1 < n && acc < target {
            acc += n - end - 1;
            end += 1;
        }
        chunks.push((row, end));
        row = end;
    }
    chunks
}

/// Monomorphized streaming storage behind the matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Storage {
    /// `Reference::Peak`: running maxima, one `f64` per VM / per pair.
    Peak {
        /// Per-VM running peak of `utils[v]` (length `n`).
        vm_peak: Vec<f64>,
        /// Per-pair running peak of `utils[i] + utils[j]` (triangle).
        pair_peak: Vec<f64>,
    },
    /// `Reference::Percentile(p)`: compact P² cells under one clock.
    Percentile {
        /// Shared tick counter and desired marker positions.
        clock: P2Clock,
        /// Per-VM P² estimator state (length `n`).
        vm_cells: Vec<P2Cell>,
        /// Per-pair P² estimator state over `utils[i] + utils[j]`.
        pair_cells: Vec<P2Cell>,
    },
}

impl Storage {
    fn new(n: usize, reference: Reference) -> crate::Result<Self> {
        let pairs = n * (n - 1) / 2;
        match reference {
            Reference::Peak => Ok(Storage::Peak {
                vm_peak: vec![f64::NEG_INFINITY; n],
                pair_peak: vec![f64::NEG_INFINITY; pairs],
            }),
            Reference::Percentile(p) => {
                if !(0.0..=100.0).contains(&p) || p == 0.0 || p == 100.0 {
                    return Err(CoreError::InvalidParameter(
                        "streaming percentile reference must lie in (0, 100)",
                    ));
                }
                Ok(Storage::Percentile {
                    clock: P2Clock::new(p / 100.0).map_err(CoreError::Trace)?,
                    vm_cells: vec![P2Cell::new(); n],
                    pair_cells: vec![P2Cell::new(); pairs],
                })
            }
        }
    }
}

/// Symmetric pairwise correlation-cost matrix over `n` VMs
/// (struct-of-arrays kernel; see the [module docs](self) for layout).
///
/// Diagonal entries are 1.0 by definition: a VM co-located with itself
/// gains nothing (`(û+û)/û(2·VM) = 1`).
///
/// # Example
///
/// ```
/// use cavm_core::corr::CostMatrix;
/// use cavm_trace::Reference;
///
/// # fn main() -> Result<(), cavm_core::CoreError> {
/// let mut m = CostMatrix::new(3, Reference::Peak)?;
/// m.push_sample(&[4.0, 0.0, 2.0])?;
/// m.push_sample(&[0.0, 4.0, 2.0])?;
/// // VM0 and VM1 peak apart: cost 2. Each against the flat VM2: 6/6 = 1.
/// assert_eq!(m.cost(0, 1), Some(2.0));
/// assert_eq!(m.cost(0, 0), Some(1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostMatrix {
    n: usize,
    reference: Reference,
    samples: u64,
    storage: Storage,
    /// When set, pairwise values are fixed (ablation studies swap in
    /// foreign metrics, e.g. Pearson-derived scores) and the streaming
    /// storage is ignored.
    fixed: Option<Vec<f64>>,
}

impl CostMatrix {
    /// Creates an empty matrix over `n` VMs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `n == 0` or the
    /// reference percentile is out of range.
    pub fn new(n: usize, reference: Reference) -> crate::Result<Self> {
        if n == 0 {
            return Err(CoreError::InvalidParameter(
                "cost matrix needs at least one vm",
            ));
        }
        Ok(Self {
            n,
            reference,
            samples: 0,
            storage: Storage::new(n, reference)?,
            fixed: None,
        })
    }

    /// Builds a matrix with *fixed* pairwise costs — `costs` is the
    /// upper triangle, row-major (`(0,1), (0,2), ..., (1,2), ...`).
    /// Used by ablation studies to drive the allocator with a foreign
    /// correlation measure (e.g. Pearson mapped into `[1, 2]`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `n == 0` or the
    /// triangle length is wrong.
    pub fn from_costs(n: usize, costs: Vec<f64>) -> crate::Result<Self> {
        if n == 0 {
            return Err(CoreError::InvalidParameter(
                "cost matrix needs at least one vm",
            ));
        }
        if costs.len() != n * (n - 1) / 2 {
            return Err(CoreError::InvalidParameter(
                "fixed cost triangle has the wrong length",
            ));
        }
        let mut matrix = Self::new(n, Reference::Peak)?;
        matrix.fixed = Some(costs);
        Ok(matrix)
    }

    /// Builds a matrix from complete traces in one pass (batch exact
    /// percentiles for the pair sums are approximated by the same
    /// streaming estimators the online path uses, keeping semantics
    /// identical between offline and online use).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an empty trace set
    /// and trace errors for length mismatches.
    pub fn from_traces(traces: &[&TimeSeries], reference: Reference) -> crate::Result<Self> {
        if traces.is_empty() {
            return Err(CoreError::InvalidParameter(
                "cost matrix needs at least one vm",
            ));
        }
        let mut matrix = Self::new(traces.len(), reference)?;
        matrix.push_columns(traces, 0, traces[0].len())?;
        Ok(matrix)
    }

    /// Number of VMs tracked.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `false` by construction; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of unordered VM pairs tracked (`n(n-1)/2`).
    pub fn pair_count(&self) -> usize {
        self.n * (self.n - 1) / 2
    }

    /// The reference utilization the matrix tracks.
    pub fn reference(&self) -> Reference {
        self.reference
    }

    fn check_width(&self, got: usize) -> crate::Result<()> {
        if got != self.n {
            return Err(CoreError::SampleCountMismatch {
                got,
                expected: self.n,
            });
        }
        Ok(())
    }

    /// Feeds one monitoring tick: `utils[v]` is VM `v`'s utilization at
    /// this instant. Cost: `O(n²)` flat constant-time updates.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SampleCountMismatch`] when `utils.len() != n`.
    pub fn push_sample(&mut self, utils: &[f64]) -> crate::Result<()> {
        self.check_width(utils.len())?;
        let n = self.n;
        match &mut self.storage {
            Storage::Peak { vm_peak, pair_peak } => {
                peak_tick_rows(n, 0, n.saturating_sub(1), utils, pair_peak);
                for (slot, &u) in vm_peak.iter_mut().zip(utils) {
                    *slot = slot.max(u);
                }
            }
            Storage::Percentile {
                clock,
                vm_cells,
                pair_cells,
            } => {
                clock.tick();
                for (cell, &u) in vm_cells.iter_mut().zip(utils) {
                    cell.push(u, clock);
                }
                p2_tick_rows(n, 0, n.saturating_sub(1), utils, pair_cells, clock);
            }
        }
        self.samples += 1;
        Ok(())
    }

    /// Replays a half-open window `[start, end)` of trace columns into
    /// the matrix — the batch form of [`Self::push_sample`], equivalent
    /// to pushing `end - start` individual ticks but walked pair-major
    /// so each pair's state stays cache-resident across the window.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SampleCountMismatch`] when
    /// `traces.len() != n`, a trace length mismatch when the traces
    /// disagree, and [`CoreError::InvalidParameter`] when the window is
    /// out of range.
    pub fn push_columns(
        &mut self,
        traces: &[&TimeSeries],
        start: usize,
        end: usize,
    ) -> crate::Result<()> {
        self.validate_columns(traces, start, end)?;
        let n = self.n;
        let ticks = (end - start) as u64;
        match &mut self.storage {
            Storage::Peak { vm_peak, pair_peak } => {
                for (slot, t) in vm_peak.iter_mut().zip(traces) {
                    for &u in &t.values()[start..end] {
                        *slot = slot.max(u);
                    }
                }
                peak_window_rows(n, 0, n.saturating_sub(1), traces, start, end, pair_peak);
            }
            Storage::Percentile {
                clock,
                vm_cells,
                pair_cells,
            } => {
                let snapshot = clock.clone();
                for (cell, t) in vm_cells.iter_mut().zip(traces) {
                    let mut local = snapshot.clone();
                    for &u in &t.values()[start..end] {
                        local.tick();
                        cell.push(u, &local);
                    }
                }
                p2_window_rows(
                    n,
                    0,
                    n.saturating_sub(1),
                    traces,
                    start,
                    end,
                    pair_cells,
                    &snapshot,
                );
                for _ in start..end {
                    clock.tick();
                }
            }
        }
        self.samples += ticks;
        Ok(())
    }

    fn validate_columns(
        &self,
        traces: &[&TimeSeries],
        start: usize,
        end: usize,
    ) -> crate::Result<()> {
        self.check_width(traces.len())?;
        let len = traces[0].len();
        for t in traces {
            if t.len() != len {
                return Err(CoreError::Trace(cavm_trace::TraceError::LengthMismatch {
                    left: len,
                    right: t.len(),
                }));
            }
        }
        if start > end || end > len {
            return Err(CoreError::InvalidParameter("column window out of range"));
        }
        Ok(())
    }

    /// The cost of pair `(i, j)`, or `None` before any sample (and
    /// `Some(1.0)` on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics when `i` or `j` is out of range — matrix indices are
    /// program-internal, not user input.
    pub fn cost(&self, i: usize, j: usize) -> Option<f64> {
        assert!(
            i < self.n && j < self.n,
            "pair ({i},{j}) outside {}-vm matrix",
            self.n
        );
        if i == j {
            return Some(1.0);
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let idx = pair_index(self.n, lo, hi);
        if let Some(values) = &self.fixed {
            return Some(values[idx]);
        }
        if self.samples == 0 {
            return None;
        }
        match &self.storage {
            Storage::Peak { vm_peak, pair_peak } => {
                Some(combine_cost(vm_peak[lo], vm_peak[hi], pair_peak[idx]))
            }
            Storage::Percentile {
                clock,
                vm_cells,
                pair_cells,
            } => {
                let a = vm_cells[lo].estimate(clock)?;
                let b = vm_cells[hi].estimate(clock)?;
                let sum = pair_cells[idx].estimate(clock)?;
                Some(combine_cost(a, b, sum))
            }
        }
    }

    /// The cost of pair `(i, j)`, defaulting to the *neutral* midpoint
    /// 1.5 when no samples have been observed yet (first placement
    /// period). With a constant default, all unknown pairs compare
    /// equal and the proposed allocator degrades gracefully to
    /// first-fit-decreasing.
    ///
    /// Unlike [`CostMatrix::cost`], ids beyond the matrix are also
    /// neutral instead of a panic: the online admission path scores VMs
    /// that arrived *after* the period matrix was built, and such VMs
    /// have no observed pairs by definition.
    pub fn cost_or_neutral(&self, i: usize, j: usize) -> f64 {
        if i >= self.n || j >= self.n {
            return 1.5;
        }
        self.cost(i, j).unwrap_or(1.5)
    }

    /// Number of sample ticks observed (0 for a fresh matrix).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Forgets all samples (keeps dimensions and reference) — used by
    /// per-period windowed tracking.
    pub fn reset(&mut self) {
        self.samples = 0;
        match &mut self.storage {
            Storage::Peak { vm_peak, pair_peak } => {
                vm_peak.fill(f64::NEG_INFINITY);
                pair_peak.fill(f64::NEG_INFINITY);
            }
            Storage::Percentile {
                clock,
                vm_cells,
                pair_cells,
            } => {
                clock.reset();
                vm_cells.iter_mut().for_each(P2Cell::reset);
                pair_cells.iter_mut().for_each(P2Cell::reset);
            }
        }
    }

    /// Dense symmetric snapshot of the matrix with `default` for
    /// not-yet-observed pairs; diagonal 1.0. Row-major `n×n`.
    pub fn to_dense(&self, default: f64) -> Vec<Vec<f64>> {
        (0..self.n)
            .map(|i| {
                (0..self.n)
                    .map(|j| {
                        if i == j {
                            1.0
                        } else {
                            self.cost(i, j).unwrap_or(default)
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(feature = "parallel")]
impl CostMatrix {
    /// [`Self::push_sample`] with the triangle update fanned out over
    /// all available cores. Bit-identical to the serial path: each pair
    /// is updated by exactly one thread, in tick order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SampleCountMismatch`] when `utils.len() != n`.
    pub fn par_push_sample(&mut self, utils: &[f64]) -> crate::Result<()> {
        self.par_push_sample_threads(utils, default_threads())
    }

    /// [`Self::par_push_sample`] with an explicit thread count
    /// (`threads == 1` falls back to the serial kernel).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SampleCountMismatch`] when `utils.len() != n`.
    pub fn par_push_sample_threads(&mut self, utils: &[f64], threads: usize) -> crate::Result<()> {
        let chunks = row_chunks(self.n, threads);
        if chunks.len() <= 1 {
            return self.push_sample(utils);
        }
        self.check_width(utils.len())?;
        let n = self.n;
        match &mut self.storage {
            Storage::Peak { vm_peak, pair_peak } => {
                std::thread::scope(|scope| {
                    for ((row_start, row_end), plane) in
                        chunked_rows(n, &chunks, pair_peak.as_mut_slice())
                    {
                        scope.spawn(move || {
                            peak_tick_rows(n, row_start, row_end, utils, plane);
                        });
                    }
                });
                for (slot, &u) in vm_peak.iter_mut().zip(utils) {
                    *slot = slot.max(u);
                }
            }
            Storage::Percentile {
                clock,
                vm_cells,
                pair_cells,
            } => {
                clock.tick();
                for (cell, &u) in vm_cells.iter_mut().zip(utils) {
                    cell.push(u, clock);
                }
                let clock = &*clock;
                std::thread::scope(|scope| {
                    for ((row_start, row_end), plane) in
                        chunked_rows(n, &chunks, pair_cells.as_mut_slice())
                    {
                        scope.spawn(move || {
                            p2_tick_rows(n, row_start, row_end, utils, plane, clock);
                        });
                    }
                });
            }
        }
        self.samples += 1;
        Ok(())
    }

    /// [`Self::push_columns`] with the triangle replay fanned out over
    /// all available cores. Bit-identical to the serial batch path.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::push_columns`].
    pub fn par_push_columns(
        &mut self,
        traces: &[&TimeSeries],
        start: usize,
        end: usize,
    ) -> crate::Result<()> {
        self.par_push_columns_threads(traces, start, end, default_threads())
    }

    /// [`Self::par_push_columns`] with an explicit thread count.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::push_columns`].
    pub fn par_push_columns_threads(
        &mut self,
        traces: &[&TimeSeries],
        start: usize,
        end: usize,
        threads: usize,
    ) -> crate::Result<()> {
        let chunks = row_chunks(self.n, threads);
        if chunks.len() <= 1 {
            return self.push_columns(traces, start, end);
        }
        self.validate_columns(traces, start, end)?;
        let n = self.n;
        let ticks = (end - start) as u64;
        match &mut self.storage {
            Storage::Peak { vm_peak, pair_peak } => {
                for (slot, t) in vm_peak.iter_mut().zip(traces) {
                    for &u in &t.values()[start..end] {
                        *slot = slot.max(u);
                    }
                }
                std::thread::scope(|scope| {
                    for ((row_start, row_end), plane) in
                        chunked_rows(n, &chunks, pair_peak.as_mut_slice())
                    {
                        scope.spawn(move || {
                            peak_window_rows(n, row_start, row_end, traces, start, end, plane);
                        });
                    }
                });
            }
            Storage::Percentile {
                clock,
                vm_cells,
                pair_cells,
            } => {
                let snapshot = clock.clone();
                for (cell, t) in vm_cells.iter_mut().zip(traces) {
                    let mut local = snapshot.clone();
                    for &u in &t.values()[start..end] {
                        local.tick();
                        cell.push(u, &local);
                    }
                }
                let snapshot_ref = &snapshot;
                std::thread::scope(|scope| {
                    for ((row_start, row_end), plane) in
                        chunked_rows(n, &chunks, pair_cells.as_mut_slice())
                    {
                        scope.spawn(move || {
                            p2_window_rows(
                                n,
                                row_start,
                                row_end,
                                traces,
                                start,
                                end,
                                plane,
                                snapshot_ref,
                            );
                        });
                    }
                });
                for _ in start..end {
                    clock.tick();
                }
            }
        }
        self.samples += ticks;
        Ok(())
    }
}

#[cfg(feature = "parallel")]
fn default_threads() -> usize {
    // `available_parallelism` is a syscall; resolve it once, not on
    // every monitoring tick.
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// Splits a triangle plane into the per-chunk mutable row slices
/// described by `chunks`.
#[cfg(feature = "parallel")]
fn chunked_rows<'a, T>(
    n: usize,
    chunks: &'a [(usize, usize)],
    mut plane: &'a mut [T],
) -> impl Iterator<Item = ((usize, usize), &'a mut [T])> {
    let mut consumed = 0;
    chunks.iter().map(move |&(row_start, row_end)| {
        let chunk_end = row_offset(n, row_end);
        // `plane` walks forward through the original slice; `consumed`
        // tracks how many pair slots earlier chunks took.
        let (head, tail) = std::mem::take(&mut plane).split_at_mut(chunk_end - consumed);
        plane = tail;
        consumed = chunk_end;
        ((row_start, row_end), head)
    })
}

/// One tick of the Peak kernel over rows `[row_start, row_end)`.
/// `plane` is the sub-slice of the pair plane covering exactly those
/// rows.
fn peak_tick_rows(n: usize, row_start: usize, row_end: usize, utils: &[f64], plane: &mut [f64]) {
    let mut offset = 0;
    for i in row_start..row_end {
        let ui = utils[i];
        let row_len = n - i - 1;
        let row = &mut plane[offset..offset + row_len];
        for (slot, &uj) in row.iter_mut().zip(&utils[i + 1..]) {
            *slot = slot.max(ui + uj);
        }
        offset += row_len;
    }
}

/// One tick of the P² kernel over rows `[row_start, row_end)`.
fn p2_tick_rows(
    n: usize,
    row_start: usize,
    row_end: usize,
    utils: &[f64],
    plane: &mut [P2Cell],
    clock: &P2Clock,
) {
    let mut offset = 0;
    for i in row_start..row_end {
        let ui = utils[i];
        let row_len = n - i - 1;
        let row = &mut plane[offset..offset + row_len];
        for (cell, &uj) in row.iter_mut().zip(&utils[i + 1..]) {
            cell.push(ui + uj, clock);
        }
        offset += row_len;
    }
}

/// Pair-major window replay of the Peak kernel over rows
/// `[row_start, row_end)`.
fn peak_window_rows(
    n: usize,
    row_start: usize,
    row_end: usize,
    traces: &[&TimeSeries],
    start: usize,
    end: usize,
    plane: &mut [f64],
) {
    let mut offset = 0;
    for i in row_start..row_end {
        let xs = &traces[i].values()[start..end];
        let row_len = n - i - 1;
        let row = &mut plane[offset..offset + row_len];
        for (slot, t) in row.iter_mut().zip(&traces[i + 1..]) {
            let ys = &t.values()[start..end];
            let mut peak = *slot;
            for (&x, &y) in xs.iter().zip(ys) {
                peak = peak.max(x + y);
            }
            *slot = peak;
        }
        offset += row_len;
    }
}

/// Pair-major window replay of the P² kernel over rows
/// `[row_start, row_end)`. `snapshot` is the clock state *before* the
/// window; each pair replays its own local copy so marker positions
/// advance exactly as in the tick-by-tick path.
#[allow(clippy::too_many_arguments)]
fn p2_window_rows(
    n: usize,
    row_start: usize,
    row_end: usize,
    traces: &[&TimeSeries],
    start: usize,
    end: usize,
    plane: &mut [P2Cell],
    snapshot: &P2Clock,
) {
    let mut offset = 0;
    for i in row_start..row_end {
        let xs = &traces[i].values()[start..end];
        let row_len = n - i - 1;
        let row = &mut plane[offset..offset + row_len];
        for (cell, t) in row.iter_mut().zip(&traces[i + 1..]) {
            let ys = &t.values()[start..end];
            let mut local = snapshot.clone();
            for (&x, &y) in xs.iter().zip(ys) {
                local.tick();
                cell.push(x + y, &local);
            }
        }
        offset += row_len;
    }
}

/// Batch-exact pairwise cost of two utilization *slices* (helper for
/// tests and experiments that already hold raw samples).
///
/// # Errors
///
/// Returns trace errors for empty or mismatched slices.
pub fn cost_of_slices(a: &[f64], b: &[f64], reference: Reference) -> crate::Result<f64> {
    if a.len() != b.len() {
        return Err(CoreError::Trace(cavm_trace::TraceError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        }));
    }
    let u_a = reference.of(a)?;
    let u_b = reference.of(b)?;
    let sum: Vec<f64> = a.iter().zip(b).map(|(x, y)| x + y).collect();
    let u_sum = reference.of(&sum)?;
    Ok(combine_cost(u_a, u_b, u_sum))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(CostMatrix::new(0, Reference::Peak).is_err());
        assert!(CostMatrix::new(3, Reference::Percentile(0.0)).is_err());
        assert!(CostMatrix::new(1, Reference::Peak).is_ok());
        assert!(CostMatrix::from_traces(&[], Reference::Peak).is_err());
    }

    #[test]
    fn pair_indexing_covers_triangle_uniquely() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert!(seen.insert(pair_index(6, i, j)));
            }
        }
        assert_eq!(seen.len(), 15);
        assert_eq!(*seen.iter().max().unwrap(), 14);
    }

    #[test]
    fn row_chunks_partition_the_triangle() {
        for n in [2usize, 3, 5, 17, 64] {
            for threads in [1usize, 2, 3, 4, 9] {
                let chunks = row_chunks(n, threads);
                assert!(chunks.len() <= threads.max(1));
                assert_eq!(chunks.first().map(|c| c.0), Some(0));
                assert_eq!(chunks.last().map(|c| c.1), Some(n - 1));
                let mut pairs = 0;
                for w in chunks.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "chunks must be contiguous");
                }
                for &(a, b) in &chunks {
                    assert!(a < b);
                    pairs += row_offset(n, b) - row_offset(n, a);
                }
                assert_eq!(pairs, n * (n - 1) / 2);
            }
        }
        assert!(row_chunks(1, 4).is_empty());
    }

    #[test]
    fn symmetric_and_diagonal() {
        let mut m = CostMatrix::new(3, Reference::Peak).unwrap();
        m.push_sample(&[1.0, 3.0, 2.0]).unwrap();
        m.push_sample(&[3.0, 1.0, 2.0]).unwrap();
        for i in 0..3 {
            assert_eq!(m.cost(i, i), Some(1.0));
            for j in 0..3 {
                assert_eq!(m.cost(i, j), m.cost(j, i));
            }
        }
    }

    #[test]
    fn push_sample_validates_width() {
        let mut m = CostMatrix::new(3, Reference::Peak).unwrap();
        assert!(matches!(
            m.push_sample(&[1.0, 2.0]),
            Err(CoreError::SampleCountMismatch {
                got: 2,
                expected: 3
            })
        ));
    }

    #[test]
    fn from_traces_matches_manual_pushes() {
        let a = TimeSeries::new(1.0, vec![4.0, 0.0, 2.0, 1.0]).unwrap();
        let b = TimeSeries::new(1.0, vec![0.0, 4.0, 2.0, 1.0]).unwrap();
        let c = TimeSeries::new(1.0, vec![1.0, 1.0, 1.0, 4.0]).unwrap();
        let batch = CostMatrix::from_traces(&[&a, &b, &c], Reference::Peak).unwrap();
        let mut manual = CostMatrix::new(3, Reference::Peak).unwrap();
        for k in 0..4 {
            manual
                .push_sample(&[a.values()[k], b.values()[k], c.values()[k]])
                .unwrap();
        }
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(batch.cost(i, j), manual.cost(i, j));
            }
        }
        assert_eq!(batch.samples(), 4);
    }

    #[test]
    fn push_columns_matches_ticks_for_percentile() {
        let mut rng = cavm_trace::SimRng::new(11);
        let traces: Vec<TimeSeries> = (0..5)
            .map(|_| TimeSeries::new(1.0, (0..200).map(|_| rng.f64() * 4.0).collect()).unwrap())
            .collect();
        let refs: Vec<&TimeSeries> = traces.iter().collect();
        let mut batch = CostMatrix::new(5, Reference::Percentile(95.0)).unwrap();
        // Two windows back to back must equal one tick-by-tick replay.
        batch.push_columns(&refs, 0, 80).unwrap();
        batch.push_columns(&refs, 80, 200).unwrap();
        let mut manual = CostMatrix::new(5, Reference::Percentile(95.0)).unwrap();
        let mut buf = vec![0.0; 5];
        for k in 0..200 {
            for (v, t) in refs.iter().enumerate() {
                buf[v] = t.values()[k];
            }
            manual.push_sample(&buf).unwrap();
        }
        for i in 0..5 {
            for j in 0..5 {
                let (a, b) = (batch.cost(i, j).unwrap(), manual.cost(i, j).unwrap());
                assert_eq!(a.to_bits(), b.to_bits(), "pair ({i},{j})");
            }
        }
        assert_eq!(batch.samples(), manual.samples());
    }

    #[test]
    fn push_columns_validates_window() {
        let a = TimeSeries::new(1.0, vec![1.0, 2.0]).unwrap();
        let b = TimeSeries::new(1.0, vec![3.0, 4.0]).unwrap();
        let mut m = CostMatrix::new(2, Reference::Peak).unwrap();
        assert!(m.push_columns(&[&a, &b], 0, 3).is_err());
        assert!(m.push_columns(&[&a, &b], 2, 1).is_err());
        assert!(m.push_columns(&[&a], 0, 1).is_err());
        m.push_columns(&[&a, &b], 0, 0).unwrap();
        assert_eq!(m.samples(), 0);
    }

    #[test]
    fn from_traces_rejects_mismatched_lengths() {
        let a = TimeSeries::new(1.0, vec![1.0, 2.0]).unwrap();
        let b = TimeSeries::new(1.0, vec![1.0]).unwrap();
        assert!(CostMatrix::from_traces(&[&a, &b], Reference::Peak).is_err());
    }

    #[test]
    fn neutral_default_before_samples() {
        let m = CostMatrix::new(2, Reference::Peak).unwrap();
        assert_eq!(m.cost(0, 1), None);
        assert_eq!(m.cost_or_neutral(0, 1), 1.5);
        assert_eq!(m.samples(), 0);
    }

    #[test]
    fn neutral_for_ids_beyond_the_matrix() {
        // Online admissions score VMs that postdate the period matrix.
        let mut m = CostMatrix::new(2, Reference::Peak).unwrap();
        m.push_sample(&[3.0, 1.0]).unwrap();
        assert_eq!(m.cost_or_neutral(0, 7), 1.5);
        assert_eq!(m.cost_or_neutral(9, 1), 1.5);
        assert!(m.cost_or_neutral(0, 1) != 1.5 || m.samples() == 0);
    }

    #[test]
    fn reset_forgets_samples() {
        for reference in [Reference::Peak, Reference::Percentile(90.0)] {
            let mut m = CostMatrix::new(2, reference).unwrap();
            m.push_sample(&[1.0, 2.0]).unwrap();
            assert_eq!(m.samples(), 1);
            m.reset();
            assert_eq!(m.samples(), 0);
            assert_eq!(m.cost(0, 1), None);
            assert_eq!(m.len(), 2);
            assert!(!m.is_empty());
            assert_eq!(m.pair_count(), 1);
            assert_eq!(m.reference(), reference);
        }
    }

    #[test]
    fn dense_snapshot() {
        let mut m = CostMatrix::new(2, Reference::Peak).unwrap();
        m.push_sample(&[3.0, 0.0]).unwrap();
        m.push_sample(&[0.0, 3.0]).unwrap();
        let d = m.to_dense(1.5);
        assert_eq!(d[0][0], 1.0);
        assert_eq!(d[1][1], 1.0);
        assert_eq!(d[0][1], 2.0);
        assert_eq!(d[0][1], d[1][0]);
    }

    #[test]
    fn cost_of_slices_agrees_with_trace_path() {
        let xs = [4.0, 0.0, 2.0];
        let ys = [0.0, 4.0, 2.0];
        let via_slices = cost_of_slices(&xs, &ys, Reference::Peak).unwrap();
        let a = TimeSeries::new(1.0, xs.to_vec()).unwrap();
        let b = TimeSeries::new(1.0, ys.to_vec()).unwrap();
        let via_traces = crate::corr::cost_of_traces(&a, &b, Reference::Peak).unwrap();
        assert_eq!(via_slices, via_traces);
        assert!(cost_of_slices(&xs, &ys[..2], Reference::Peak).is_err());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_pair_panics() {
        let m = CostMatrix::new(2, Reference::Peak).unwrap();
        let _ = m.cost(0, 5);
    }

    #[test]
    fn fixed_cost_matrix_overrides_streaming() {
        // Triangle for n=3: (0,1), (0,2), (1,2).
        let m = CostMatrix::from_costs(3, vec![1.1, 1.9, 1.5]).unwrap();
        assert_eq!(m.cost(0, 1), Some(1.1));
        assert_eq!(m.cost(2, 0), Some(1.9));
        assert_eq!(m.cost(1, 2), Some(1.5));
        assert_eq!(m.cost(1, 1), Some(1.0));
        assert!(CostMatrix::from_costs(3, vec![1.0]).is_err());
        assert!(CostMatrix::from_costs(0, vec![]).is_err());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_tick_is_bit_identical() {
        let mut rng = cavm_trace::SimRng::new(5);
        for reference in [Reference::Peak, Reference::Percentile(95.0)] {
            let n = 23;
            let mut serial = CostMatrix::new(n, reference).unwrap();
            let mut parallel = CostMatrix::new(n, reference).unwrap();
            for _ in 0..40 {
                let sample: Vec<f64> = (0..n).map(|_| rng.f64() * 4.0).collect();
                serial.push_sample(&sample).unwrap();
                parallel.par_push_sample_threads(&sample, 4).unwrap();
            }
            for i in 0..n {
                for j in 0..n {
                    let (a, b) = (serial.cost(i, j), parallel.cost(i, j));
                    assert_eq!(
                        a.map(f64::to_bits),
                        b.map(f64::to_bits),
                        "pair ({i},{j}) under {reference:?}"
                    );
                }
            }
            assert_eq!(serial.samples(), parallel.samples());
        }
    }
}
