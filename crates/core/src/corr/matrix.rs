//! The all-pairs cost matrix `M_cost` (paper §IV-A).
//!
//! "Using our new Cost function, we can model correlations among all VMs
//! by constructing a 2-D matrix, namely M_cost, where the (i,j)-th
//! element corresponds to Cost_ij."
//!
//! [`CostMatrix`] stores one streaming [`CostMetric`] per unordered VM
//! pair (upper triangle), so a fleet-wide monitoring tick costs
//! `O(n²)` constant-time updates and no sample storage — this is the
//! UPDATE-phase step "update M_cost by updating the Cost_ij for all VM
//! pairs" (Fig 2, line 7).

use crate::corr::cost::{combine_cost, CostMetric};
use crate::CoreError;
use cavm_trace::{Reference, TimeSeries};
use serde::{Deserialize, Serialize};

/// Symmetric pairwise correlation-cost matrix over `n` VMs.
///
/// Diagonal entries are 1.0 by definition: a VM co-located with itself
/// gains nothing (`(û+û)/û(2·VM) = 1`).
///
/// # Example
///
/// ```
/// use cavm_core::corr::CostMatrix;
/// use cavm_trace::Reference;
///
/// # fn main() -> Result<(), cavm_core::CoreError> {
/// let mut m = CostMatrix::new(3, Reference::Peak)?;
/// m.push_sample(&[4.0, 0.0, 2.0])?;
/// m.push_sample(&[0.0, 4.0, 2.0])?;
/// // VM0 and VM1 peak apart: cost 2. Each against the flat VM2: 6/6 = 1.
/// assert_eq!(m.cost(0, 1), Some(2.0));
/// assert_eq!(m.cost(0, 0), Some(1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostMatrix {
    n: usize,
    reference: Reference,
    /// Upper-triangle metrics, row-major: pair (i, j) with i < j lives at
    /// `i*(2n-i-1)/2 + (j-i-1)`.
    metrics: Vec<CostMetric>,
    /// When set, pairwise values are fixed (ablation studies swap in
    /// foreign metrics, e.g. Pearson-derived scores) and the streaming
    /// metrics are ignored.
    fixed: Option<Vec<f64>>,
}

impl CostMatrix {
    /// Creates an empty matrix over `n` VMs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `n == 0` or the
    /// reference percentile is out of range.
    pub fn new(n: usize, reference: Reference) -> crate::Result<Self> {
        if n == 0 {
            return Err(CoreError::InvalidParameter("cost matrix needs at least one vm"));
        }
        let pairs = n * (n - 1) / 2;
        let mut metrics = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            metrics.push(CostMetric::new(reference)?);
        }
        Ok(Self { n, reference, metrics, fixed: None })
    }

    /// Builds a matrix with *fixed* pairwise costs — `costs` is the
    /// upper triangle, row-major (`(0,1), (0,2), ..., (1,2), ...`).
    /// Used by ablation studies to drive the allocator with a foreign
    /// correlation measure (e.g. Pearson mapped into `[1, 2]`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `n == 0` or the
    /// triangle length is wrong.
    pub fn from_costs(n: usize, costs: Vec<f64>) -> crate::Result<Self> {
        if n == 0 {
            return Err(CoreError::InvalidParameter("cost matrix needs at least one vm"));
        }
        if costs.len() != n * (n - 1) / 2 {
            return Err(CoreError::InvalidParameter(
                "fixed cost triangle has the wrong length",
            ));
        }
        let mut matrix = Self::new(n, Reference::Peak)?;
        matrix.fixed = Some(costs);
        Ok(matrix)
    }

    /// Builds a matrix from complete traces in one pass (batch exact
    /// percentiles for the pair sums are approximated by the same
    /// streaming estimators the online path uses, keeping semantics
    /// identical between offline and online use).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an empty trace set
    /// and trace errors for length mismatches.
    pub fn from_traces(traces: &[&TimeSeries], reference: Reference) -> crate::Result<Self> {
        if traces.is_empty() {
            return Err(CoreError::InvalidParameter("cost matrix needs at least one vm"));
        }
        let len = traces[0].len();
        for t in traces {
            if t.len() != len {
                return Err(CoreError::Trace(cavm_trace::TraceError::LengthMismatch {
                    left: len,
                    right: t.len(),
                }));
            }
        }
        let mut matrix = Self::new(traces.len(), reference)?;
        let mut sample = vec![0.0; traces.len()];
        for k in 0..len {
            for (v, t) in traces.iter().enumerate() {
                sample[v] = t.values()[k];
            }
            matrix.push_sample(&sample)?;
        }
        Ok(matrix)
    }

    /// Number of VMs tracked.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `false` by construction; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The reference utilization the matrix tracks.
    pub fn reference(&self) -> Reference {
        self.reference
    }

    fn pair_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * (2 * self.n - i - 1) / 2 + (j - i - 1)
    }

    /// Feeds one monitoring tick: `utils[v]` is VM `v`'s utilization at
    /// this instant. Cost: `O(n²)` constant-time metric updates.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SampleCountMismatch`] when `utils.len() != n`.
    pub fn push_sample(&mut self, utils: &[f64]) -> crate::Result<()> {
        if utils.len() != self.n {
            return Err(CoreError::SampleCountMismatch {
                got: utils.len(),
                expected: self.n,
            });
        }
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let idx = self.pair_index(i, j);
                self.metrics[idx].push(utils[i], utils[j]);
            }
        }
        Ok(())
    }

    /// The cost of pair `(i, j)`, or `None` before any sample (and
    /// `Some(1.0)` on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics when `i` or `j` is out of range — matrix indices are
    /// program-internal, not user input.
    pub fn cost(&self, i: usize, j: usize) -> Option<f64> {
        assert!(i < self.n && j < self.n, "pair ({i},{j}) outside {}-vm matrix", self.n);
        if i == j {
            return Some(1.0);
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let idx = self.pair_index(lo, hi);
        match &self.fixed {
            Some(values) => Some(values[idx]),
            None => self.metrics[idx].cost(),
        }
    }

    /// The cost of pair `(i, j)`, defaulting to the *neutral* midpoint
    /// 1.5 when no samples have been observed yet (first placement
    /// period). With a constant default, all unknown pairs compare
    /// equal and the proposed allocator degrades gracefully to
    /// first-fit-decreasing.
    pub fn cost_or_neutral(&self, i: usize, j: usize) -> f64 {
        self.cost(i, j).unwrap_or(1.5)
    }

    /// Number of sample ticks observed (0 for a fresh matrix).
    pub fn samples(&self) -> u64 {
        self.metrics.first().map_or(0, |m| m.count())
    }

    /// Forgets all samples (keeps dimensions and reference) — used by
    /// per-period windowed tracking.
    pub fn reset(&mut self) {
        for m in &mut self.metrics {
            m.reset();
        }
    }

    /// Dense symmetric snapshot of the matrix with `default` for
    /// not-yet-observed pairs; diagonal 1.0. Row-major `n×n`.
    pub fn to_dense(&self, default: f64) -> Vec<Vec<f64>> {
        (0..self.n)
            .map(|i| {
                (0..self.n)
                    .map(|j| if i == j { 1.0 } else { self.cost(i, j).unwrap_or(default) })
                    .collect()
            })
            .collect()
    }
}

/// Batch-exact pairwise cost of two utilization *slices* (helper for
/// tests and experiments that already hold raw samples).
///
/// # Errors
///
/// Returns trace errors for empty or mismatched slices.
pub fn cost_of_slices(
    a: &[f64],
    b: &[f64],
    reference: Reference,
) -> crate::Result<f64> {
    if a.len() != b.len() {
        return Err(CoreError::Trace(cavm_trace::TraceError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        }));
    }
    let u_a = reference.of(a)?;
    let u_b = reference.of(b)?;
    let sum: Vec<f64> = a.iter().zip(b).map(|(x, y)| x + y).collect();
    let u_sum = reference.of(&sum)?;
    Ok(combine_cost(u_a, u_b, u_sum))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(CostMatrix::new(0, Reference::Peak).is_err());
        assert!(CostMatrix::new(3, Reference::Percentile(0.0)).is_err());
        assert!(CostMatrix::new(1, Reference::Peak).is_ok());
        assert!(CostMatrix::from_traces(&[], Reference::Peak).is_err());
    }

    #[test]
    fn pair_indexing_covers_triangle_uniquely() {
        let m = CostMatrix::new(6, Reference::Peak).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert!(seen.insert(m.pair_index(i, j)));
            }
        }
        assert_eq!(seen.len(), 15);
        assert_eq!(*seen.iter().max().unwrap(), 14);
    }

    #[test]
    fn symmetric_and_diagonal() {
        let mut m = CostMatrix::new(3, Reference::Peak).unwrap();
        m.push_sample(&[1.0, 3.0, 2.0]).unwrap();
        m.push_sample(&[3.0, 1.0, 2.0]).unwrap();
        for i in 0..3 {
            assert_eq!(m.cost(i, i), Some(1.0));
            for j in 0..3 {
                assert_eq!(m.cost(i, j), m.cost(j, i));
            }
        }
    }

    #[test]
    fn push_sample_validates_width() {
        let mut m = CostMatrix::new(3, Reference::Peak).unwrap();
        assert!(matches!(
            m.push_sample(&[1.0, 2.0]),
            Err(CoreError::SampleCountMismatch { got: 2, expected: 3 })
        ));
    }

    #[test]
    fn from_traces_matches_manual_pushes() {
        let a = TimeSeries::new(1.0, vec![4.0, 0.0, 2.0, 1.0]).unwrap();
        let b = TimeSeries::new(1.0, vec![0.0, 4.0, 2.0, 1.0]).unwrap();
        let c = TimeSeries::new(1.0, vec![1.0, 1.0, 1.0, 4.0]).unwrap();
        let batch = CostMatrix::from_traces(&[&a, &b, &c], Reference::Peak).unwrap();
        let mut manual = CostMatrix::new(3, Reference::Peak).unwrap();
        for k in 0..4 {
            manual
                .push_sample(&[a.values()[k], b.values()[k], c.values()[k]])
                .unwrap();
        }
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(batch.cost(i, j), manual.cost(i, j));
            }
        }
        assert_eq!(batch.samples(), 4);
    }

    #[test]
    fn from_traces_rejects_mismatched_lengths() {
        let a = TimeSeries::new(1.0, vec![1.0, 2.0]).unwrap();
        let b = TimeSeries::new(1.0, vec![1.0]).unwrap();
        assert!(CostMatrix::from_traces(&[&a, &b], Reference::Peak).is_err());
    }

    #[test]
    fn neutral_default_before_samples() {
        let m = CostMatrix::new(2, Reference::Peak).unwrap();
        assert_eq!(m.cost(0, 1), None);
        assert_eq!(m.cost_or_neutral(0, 1), 1.5);
        assert_eq!(m.samples(), 0);
    }

    #[test]
    fn reset_forgets_samples() {
        let mut m = CostMatrix::new(2, Reference::Peak).unwrap();
        m.push_sample(&[1.0, 2.0]).unwrap();
        assert_eq!(m.samples(), 1);
        m.reset();
        assert_eq!(m.samples(), 0);
        assert_eq!(m.cost(0, 1), None);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert_eq!(m.reference(), Reference::Peak);
    }

    #[test]
    fn dense_snapshot() {
        let mut m = CostMatrix::new(2, Reference::Peak).unwrap();
        m.push_sample(&[3.0, 0.0]).unwrap();
        m.push_sample(&[0.0, 3.0]).unwrap();
        let d = m.to_dense(1.5);
        assert_eq!(d[0][0], 1.0);
        assert_eq!(d[1][1], 1.0);
        assert_eq!(d[0][1], 2.0);
        assert_eq!(d[0][1], d[1][0]);
    }

    #[test]
    fn cost_of_slices_agrees_with_trace_path() {
        let xs = [4.0, 0.0, 2.0];
        let ys = [0.0, 4.0, 2.0];
        let via_slices = cost_of_slices(&xs, &ys, Reference::Peak).unwrap();
        let a = TimeSeries::new(1.0, xs.to_vec()).unwrap();
        let b = TimeSeries::new(1.0, ys.to_vec()).unwrap();
        let via_traces =
            crate::corr::cost_of_traces(&a, &b, Reference::Peak).unwrap();
        assert_eq!(via_slices, via_traces);
        assert!(cost_of_slices(&xs, &ys[..2], Reference::Peak).is_err());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_pair_panics() {
        let m = CostMatrix::new(2, Reference::Peak).unwrap();
        let _ = m.cost(0, 5);
    }

    #[test]
    fn fixed_cost_matrix_overrides_streaming() {
        // Triangle for n=3: (0,1), (0,2), (1,2).
        let m = CostMatrix::from_costs(3, vec![1.1, 1.9, 1.5]).unwrap();
        assert_eq!(m.cost(0, 1), Some(1.1));
        assert_eq!(m.cost(2, 0), Some(1.9));
        assert_eq!(m.cost(1, 2), Some(1.5));
        assert_eq!(m.cost(1, 1), Some(1.0));
        assert!(CostMatrix::from_costs(3, vec![1.0]).is_err());
        assert!(CostMatrix::from_costs(0, vec![]).is_err());
    }
}
