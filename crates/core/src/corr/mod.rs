//! Correlation measures between VM utilization signals.
//!
//! The paper replaces Pearson's product-moment correlation with a
//! purpose-built **cost function** (Eqn 1) because Pearson
//!
//! 1. concentrates its computation at the end of each measurement
//!    interval (it needs the interval's means first), and
//! 2. reflects correlation over the *whole* interval, while placement
//!    only cares about correlation *at the (off-)peaks*.
//!
//! [`cost::CostMetric`] is the paper's metric: O(1) per-sample streaming
//! updates, no sample storage. [`pearson::PearsonStream`] implements the
//! rejected alternative for comparison benchmarks and ablations, and
//! [`matrix::CostMatrix`] maintains the all-pairs matrix `M_cost` the
//! allocator consumes.

pub mod baseline;
pub mod cost;
pub mod matrix;
pub mod pearson;

pub use cost::{cost_of_traces, CostMetric};
pub use matrix::CostMatrix;
pub use pearson::{pearson_of_traces, PearsonStream};
