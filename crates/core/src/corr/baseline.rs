//! The seed per-pair `M_cost` implementation, retained verbatim as the
//! semantic reference.
//!
//! [`PairwiseCostMatrix`] stores one boxed-enum [`CostMetric`] per VM
//! pair — an array-of-structs layout whose per-sample enum dispatch and
//! ~640-byte pair footprint made the fleet-wide UPDATE tick
//! cache-hostile. It was replaced by the struct-of-arrays
//! [`CostMatrix`](crate::corr::CostMatrix) kernel, but stays in-tree
//! because:
//!
//! * the equivalence property tests pin the optimized kernel to this
//!   implementation bit-for-bit, and
//! * the `matrix_tick` benches and `exp_perf_corr` binary measure the
//!   speedup against it (the checked-in baseline in `BENCH_corr.json`).
//!
//! Do not grow this module; new functionality belongs in
//! [`crate::corr::matrix`].

use crate::corr::cost::CostMetric;
use crate::CoreError;
use cavm_trace::Reference;

/// Per-pair streaming cost matrix (the seed implementation).
#[derive(Debug, Clone)]
pub struct PairwiseCostMatrix {
    n: usize,
    reference: Reference,
    /// Upper-triangle metrics, row-major: pair (i, j) with i < j lives
    /// at `i*(2n-i-1)/2 + (j-i-1)`.
    metrics: Vec<CostMetric>,
}

impl PairwiseCostMatrix {
    /// Creates an empty matrix over `n` VMs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `n == 0` or the
    /// reference percentile is out of range.
    pub fn new(n: usize, reference: Reference) -> crate::Result<Self> {
        if n == 0 {
            return Err(CoreError::InvalidParameter(
                "cost matrix needs at least one vm",
            ));
        }
        let pairs = n * (n - 1) / 2;
        let mut metrics = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            metrics.push(CostMetric::new(reference)?);
        }
        Ok(Self {
            n,
            reference,
            metrics,
        })
    }

    /// Number of VMs tracked.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `false` by construction; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The reference utilization the matrix tracks.
    pub fn reference(&self) -> Reference {
        self.reference
    }

    fn pair_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * (2 * self.n - i - 1) / 2 + (j - i - 1)
    }

    /// Feeds one monitoring tick (`O(n²)` enum-dispatched updates).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SampleCountMismatch`] when
    /// `utils.len() != n`.
    pub fn push_sample(&mut self, utils: &[f64]) -> crate::Result<()> {
        if utils.len() != self.n {
            return Err(CoreError::SampleCountMismatch {
                got: utils.len(),
                expected: self.n,
            });
        }
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let idx = self.pair_index(i, j);
                self.metrics[idx].push(utils[i], utils[j]);
            }
        }
        Ok(())
    }

    /// The cost of pair `(i, j)`, or `None` before any sample (and
    /// `Some(1.0)` on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics when `i` or `j` is out of range.
    pub fn cost(&self, i: usize, j: usize) -> Option<f64> {
        assert!(
            i < self.n && j < self.n,
            "pair ({i},{j}) outside {}-vm matrix",
            self.n
        );
        if i == j {
            return Some(1.0);
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        self.metrics[self.pair_index(lo, hi)].cost()
    }

    /// The cost of pair `(i, j)` with the neutral default 1.5 for
    /// not-yet-observed pairs.
    pub fn cost_or_neutral(&self, i: usize, j: usize) -> f64 {
        self.cost(i, j).unwrap_or(1.5)
    }

    /// Number of sample ticks observed.
    pub fn samples(&self) -> u64 {
        self.metrics.first().map_or(0, |m| m.count())
    }

    /// Forgets all samples (keeps dimensions and reference).
    pub fn reset(&mut self) {
        for m in &mut self.metrics {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_still_behaves_like_the_seed() {
        let mut m = PairwiseCostMatrix::new(3, Reference::Peak).unwrap();
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.reference(), Reference::Peak);
        assert_eq!(m.cost(0, 1), None);
        assert_eq!(m.cost_or_neutral(0, 1), 1.5);
        m.push_sample(&[4.0, 0.0, 2.0]).unwrap();
        m.push_sample(&[0.0, 4.0, 2.0]).unwrap();
        assert_eq!(m.cost(0, 1), Some(2.0));
        assert_eq!(m.cost(1, 0), Some(2.0));
        assert_eq!(m.cost(2, 2), Some(1.0));
        assert_eq!(m.samples(), 2);
        assert!(m.push_sample(&[1.0]).is_err());
        m.reset();
        assert_eq!(m.samples(), 0);
        assert!(PairwiseCostMatrix::new(0, Reference::Peak).is_err());
    }
}
