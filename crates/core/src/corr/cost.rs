//! The paper's correlation cost function (Eqn 1).
//!
//! For two VMs *i*, *j* with reference utilizations û (peak or N-th
//! percentile):
//!
//! ```text
//!                û(VMi) + û(VMj)
//! Cost_vm_ij = ───────────────────
//!                 û(VMi + VMj)
//! ```
//!
//! The numerator is the worst-case aggregate peak (peaks coinciding);
//! the denominator is the *actual* aggregate peak when the VMs are
//! co-located. **Higher cost ⇒ lower correlation** ⇒ better co-location
//! candidates. Under peak reference the value lies in `[1, 2]`:
//! `max(a+b) ≤ max(a)+max(b)` gives the lower bound and
//! `max(a+b) ≥ max(max(a), max(b))` the upper.

use crate::CoreError;
use cavm_trace::{P2Quantile, Reference, StreamingPeak, TimeSeries};
use serde::{Deserialize, Serialize};

/// When the aggregate reference utilization is below this, both signals
/// are considered idle and the cost defaults to the uncorrelated maximum.
const IDLE_EPS: f64 = 1e-12;

/// Streaming reference-utilization tracker: a running peak or a P²
/// percentile estimator, depending on the [`Reference`].
#[derive(Debug, Clone, Serialize, Deserialize)]
enum RefTracker {
    Peak(StreamingPeak),
    Percentile(P2Quantile),
}

impl RefTracker {
    fn new(reference: Reference) -> crate::Result<Self> {
        match reference {
            Reference::Peak => Ok(RefTracker::Peak(StreamingPeak::new())),
            Reference::Percentile(p) => {
                if !(0.0..=100.0).contains(&p) || p == 0.0 || p == 100.0 {
                    return Err(CoreError::InvalidParameter(
                        "streaming percentile reference must lie in (0, 100)",
                    ));
                }
                Ok(RefTracker::Percentile(
                    P2Quantile::new(p / 100.0).map_err(CoreError::Trace)?,
                ))
            }
        }
    }

    fn push(&mut self, x: f64) {
        match self {
            RefTracker::Peak(t) => t.push(x),
            RefTracker::Percentile(t) => t.push(x),
        }
    }

    fn value(&self) -> Option<f64> {
        match self {
            RefTracker::Peak(t) => {
                if t.count() == 0 {
                    None
                } else {
                    Some(t.peak())
                }
            }
            RefTracker::Percentile(t) => t.estimate(),
        }
    }
}

/// Streaming evaluator of the pairwise cost function.
///
/// Feed one `(u_i, u_j)` utilization sample pair per monitoring tick;
/// each update is O(1) in time and memory, which is precisely the
/// advantage the paper claims over Pearson's correlation: "we can update
/// the values at each sampling period ... saving memory space to store
/// all samples as well as evenly distributing computational effort".
///
/// # Example
///
/// ```
/// use cavm_core::corr::CostMetric;
/// use cavm_trace::Reference;
///
/// # fn main() -> Result<(), cavm_core::CoreError> {
/// let mut m = CostMetric::new(Reference::Peak)?;
/// // Perfectly complementary signals.
/// for (a, b) in [(4.0, 0.0), (0.0, 4.0), (4.0, 0.0), (0.0, 4.0)] {
///     m.push(a, b);
/// }
/// assert_eq!(m.cost(), Some(2.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostMetric {
    reference: Reference,
    a: RefTracker,
    b: RefTracker,
    sum: RefTracker,
    count: u64,
}

impl CostMetric {
    /// Creates a metric under the given reference utilization.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a percentile reference
    /// outside `(0, 100)`.
    pub fn new(reference: Reference) -> crate::Result<Self> {
        Ok(Self {
            reference,
            a: RefTracker::new(reference)?,
            b: RefTracker::new(reference)?,
            sum: RefTracker::new(reference)?,
            count: 0,
        })
    }

    /// The reference this metric tracks.
    pub fn reference(&self) -> Reference {
        self.reference
    }

    /// Number of sample pairs seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one simultaneous utilization sample pair. O(1).
    pub fn push(&mut self, u_a: f64, u_b: f64) {
        self.a.push(u_a);
        self.b.push(u_b);
        self.sum.push(u_a + u_b);
        self.count += 1;
    }

    /// Current cost value, or `None` before any sample.
    ///
    /// When both signals are idle (aggregate reference ≈ 0) the cost
    /// defaults to 2.0 — idle VMs impose no aggregation penalty, which
    /// is exactly what "uncorrelated" means to the allocator.
    ///
    /// Under [`Reference::Peak`] the value is guaranteed in `[1, 2]`.
    /// Percentile references may rarely dip below 1 (percentiles are not
    /// subadditive); values are reported unclamped.
    pub fn cost(&self) -> Option<f64> {
        let (a, b, sum) = (self.a.value()?, self.b.value()?, self.sum.value()?);
        Some(combine_cost(a, b, sum))
    }

    /// Forgets all samples (keeps the reference). Used by per-period
    /// windowed correlation tracking.
    ///
    /// # Panics
    ///
    /// Never panics: reconstructing the trackers for a valid reference
    /// cannot fail.
    pub fn reset(&mut self) {
        *self = CostMetric::new(self.reference).expect("reference already validated");
    }
}

/// Combines the three reference utilizations into the Eqn (1) ratio.
pub(crate) fn combine_cost(u_a: f64, u_b: f64, u_sum: f64) -> f64 {
    if u_sum.abs() < IDLE_EPS {
        2.0
    } else {
        (u_a + u_b) / u_sum
    }
}

/// Batch evaluation of Eqn (1) on two complete traces (exact
/// percentiles, no streaming approximation).
///
/// # Errors
///
/// Returns trace errors for empty/mismatched traces or invalid
/// percentiles.
///
/// # Example
///
/// ```
/// use cavm_core::corr::cost_of_traces;
/// use cavm_trace::{Reference, TimeSeries};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = TimeSeries::new(1.0, vec![4.0, 1.0])?;
/// let b = TimeSeries::new(1.0, vec![4.0, 1.0])?;
/// // Identical signals peak together: no aggregation benefit.
/// assert_eq!(cost_of_traces(&a, &b, Reference::Peak)?, 1.0);
/// # Ok(())
/// # }
/// ```
pub fn cost_of_traces(a: &TimeSeries, b: &TimeSeries, reference: Reference) -> crate::Result<f64> {
    let u_a = reference.of_series(a)?;
    let u_b = reference.of_series(b)?;
    let sum = TimeSeries::sum_of(&[a, b])?;
    let u_sum = reference.of_series(&sum)?;
    Ok(combine_cost(u_a, u_b, u_sum))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(v: &[f64]) -> TimeSeries {
        TimeSeries::new(1.0, v.to_vec()).unwrap()
    }

    #[test]
    fn identical_signals_cost_one() {
        let a = series(&[1.0, 5.0, 2.0]);
        let c = cost_of_traces(&a, &a, Reference::Peak).unwrap();
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn complementary_signals_cost_two() {
        let a = series(&[3.0, 0.0, 3.0, 0.0]);
        let b = series(&[0.0, 3.0, 0.0, 3.0]);
        let c = cost_of_traces(&a, &b, Reference::Peak).unwrap();
        assert!((c - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_between_one_and_two() {
        let a = series(&[4.0, 2.0, 0.0]);
        let b = series(&[0.0, 2.0, 4.0]);
        // sum = [4, 4, 4]; cost = 8/4 = 2 (peaks never add up).
        assert!((cost_of_traces(&a, &b, Reference::Peak).unwrap() - 2.0).abs() < 1e-12);
        let c = series(&[2.0, 4.0, 2.0]);
        let d = series(&[0.0, 2.0, 4.0]);
        // sum = [2, 6, 6]; cost = 8/6 ≈ 1.333.
        assert!((cost_of_traces(&c, &d, Reference::Peak).unwrap() - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn cost_is_symmetric() {
        let a = series(&[1.0, 3.0, 2.0, 5.0]);
        let b = series(&[2.0, 1.0, 4.0, 1.0]);
        let ab = cost_of_traces(&a, &b, Reference::Peak).unwrap();
        let ba = cost_of_traces(&b, &a, Reference::Peak).unwrap();
        assert_eq!(ab, ba);
    }

    #[test]
    fn idle_pair_defaults_to_two() {
        let z = series(&[0.0, 0.0, 0.0]);
        assert_eq!(cost_of_traces(&z, &z, Reference::Peak).unwrap(), 2.0);
    }

    #[test]
    fn percentile_reference_works() {
        let a = series(&(0..100).map(|i| (i % 10) as f64).collect::<Vec<_>>());
        let b = series(&(0..100).map(|i| ((i + 5) % 10) as f64).collect::<Vec<_>>());
        let c = cost_of_traces(&a, &b, Reference::Percentile(90.0)).unwrap();
        assert!(c > 1.0, "anti-phased signals should have cost > 1, got {c}");
    }

    #[test]
    fn streaming_matches_batch_for_peak() {
        let a = series(&[1.0, 4.0, 2.0, 0.5, 3.0]);
        let b = series(&[2.0, 0.5, 3.0, 4.0, 1.0]);
        let batch = cost_of_traces(&a, &b, Reference::Peak).unwrap();
        let mut m = CostMetric::new(Reference::Peak).unwrap();
        for (x, y) in a.values().iter().zip(b.values()) {
            m.push(*x, *y);
        }
        assert!((m.cost().unwrap() - batch).abs() < 1e-12);
        assert_eq!(m.count(), 5);
    }

    #[test]
    fn streaming_approximates_batch_for_percentile() {
        let mut rng = cavm_trace::SimRng::new(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.lognormal_mean_cv(2.0, 0.5)).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.lognormal_mean_cv(1.5, 0.5)).collect();
        let a = series(&xs);
        let b = series(&ys);
        let batch = cost_of_traces(&a, &b, Reference::Percentile(95.0)).unwrap();
        let mut m = CostMetric::new(Reference::Percentile(95.0)).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            m.push(*x, *y);
        }
        let streamed = m.cost().unwrap();
        assert!(
            (streamed - batch).abs() / batch < 0.05,
            "streamed {streamed} vs batch {batch}"
        );
    }

    #[test]
    fn cost_before_samples_is_none() {
        let m = CostMetric::new(Reference::Peak).unwrap();
        assert_eq!(m.cost(), None);
        assert_eq!(m.reference(), Reference::Peak);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = CostMetric::new(Reference::Peak).unwrap();
        m.push(1.0, 2.0);
        assert!(m.cost().is_some());
        m.reset();
        assert_eq!(m.cost(), None);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn invalid_percentile_reference_rejected() {
        assert!(CostMetric::new(Reference::Percentile(0.0)).is_err());
        assert!(CostMetric::new(Reference::Percentile(100.0)).is_err());
        assert!(CostMetric::new(Reference::Percentile(-3.0)).is_err());
        assert!(CostMetric::new(Reference::Percentile(101.0)).is_err());
    }

    #[test]
    fn peak_cost_bounds_hold_on_random_signals() {
        let mut rng = cavm_trace::SimRng::new(9);
        for _ in 0..50 {
            let xs: Vec<f64> = (0..64).map(|_| rng.range_f64(0.0, 10.0)).collect();
            let ys: Vec<f64> = (0..64).map(|_| rng.range_f64(0.0, 10.0)).collect();
            let c = cost_of_traces(&series(&xs), &series(&ys), Reference::Peak).unwrap();
            assert!((1.0..=2.0 + 1e-12).contains(&c), "cost {c} out of [1,2]");
        }
    }
}
