//! Pearson product-moment correlation — the baseline metric the paper
//! argues against (§IV-A).
//!
//! Kept for three reasons: (1) the `corr_throughput` bench quantifies the
//! paper's computational argument, (2) the ablation experiment swaps it
//! into the proposed allocator to show the placement-quality difference,
//! and (3) several related works (\[8\]) use it, so a faithful baseline
//! needs it.
//!
//! [`PearsonStream`] accumulates the five running sums (n, Σx, Σy, Σx²,
//! Σy², Σxy), so it is *also* O(1) per sample — the paper's efficiency
//! complaint concerns the textbook two-pass formulation, which needs the
//! interval means first. We implement both: the streaming form here and
//! the two-pass form in [`pearson_of_traces`] (used as ground truth in
//! tests and as the "end-of-interval batch" cost model in benches).

use cavm_trace::{TimeSeries, TraceError};
use serde::{Deserialize, Serialize};

/// Streaming Pearson correlation accumulator.
///
/// # Example
///
/// ```
/// use cavm_core::corr::PearsonStream;
///
/// let mut p = PearsonStream::new();
/// for (x, y) in [(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)] {
///     p.push(x, y);
/// }
/// assert!((p.correlation().unwrap() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PearsonStream {
    n: u64,
    sx: f64,
    sy: f64,
    sxx: f64,
    syy: f64,
    sxy: f64,
}

impl PearsonStream {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one `(x, y)` sample pair. O(1).
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.syy += y * y;
        self.sxy += x * y;
    }

    /// Number of sample pairs seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current correlation in `[-1, 1]`, or `None` with fewer than two
    /// samples or when either signal has zero variance.
    pub fn correlation(&self) -> Option<f64> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let cov = self.sxy - self.sx * self.sy / n;
        let vx = self.sxx - self.sx * self.sx / n;
        let vy = self.syy - self.sy * self.sy / n;
        if vx <= 0.0 || vy <= 0.0 {
            return None;
        }
        Some((cov / (vx * vy).sqrt()).clamp(-1.0, 1.0))
    }

    /// Forgets all samples.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Two-pass (textbook) Pearson correlation of two equally-sampled
/// traces — the formulation whose end-of-interval cost concentration the
/// paper criticizes.
///
/// # Errors
///
/// Returns [`TraceError::LengthMismatch`] / [`TraceError::EmptyInput`]
/// for malformed inputs. Zero-variance inputs yield an
/// [`TraceError::InvalidParameter`]-flavoured error via `None`
/// semantics: the function returns `Ok(None)` in that case.
pub fn pearson_of_traces(
    a: &TimeSeries,
    b: &TimeSeries,
) -> std::result::Result<Option<f64>, TraceError> {
    if a.len() != b.len() {
        return Err(TraceError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(TraceError::EmptyInput);
    }
    // First pass: means.
    let ma = a.mean();
    let mb = b.mean();
    // Second pass: central moments.
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.values().iter().zip(b.values()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va <= 0.0 || vb <= 0.0 {
        return Ok(None);
    }
    Ok(Some((cov / (va * vb).sqrt()).clamp(-1.0, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(v: &[f64]) -> TimeSeries {
        TimeSeries::new(1.0, v.to_vec()).unwrap()
    }

    #[test]
    fn perfect_positive_and_negative() {
        let x = series(&[1.0, 2.0, 3.0, 4.0]);
        let y = series(&[2.0, 4.0, 6.0, 8.0]);
        assert!((pearson_of_traces(&x, &y).unwrap().unwrap() - 1.0).abs() < 1e-12);
        let z = series(&[8.0, 6.0, 4.0, 2.0]);
        assert!((pearson_of_traces(&x, &z).unwrap().unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_yields_none() {
        let x = series(&[1.0, 2.0, 3.0]);
        let flat = series(&[5.0, 5.0, 5.0]);
        assert_eq!(pearson_of_traces(&x, &flat).unwrap(), None);
        let mut p = PearsonStream::new();
        for &v in x.values() {
            p.push(v, 5.0);
        }
        assert_eq!(p.correlation(), None);
    }

    #[test]
    fn errors_on_malformed_input() {
        let x = series(&[1.0, 2.0]);
        let y = series(&[1.0]);
        assert!(pearson_of_traces(&x, &y).is_err());
        let e = series(&[]);
        assert!(pearson_of_traces(&e, &e).is_err());
    }

    #[test]
    fn streaming_matches_two_pass() {
        let mut rng = cavm_trace::SimRng::new(77);
        let xs: Vec<f64> = (0..500).map(|_| rng.range_f64(0.0, 10.0)).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 0.5 * x + rng.normal(0.0, 1.0)).collect();
        let a = series(&xs);
        let b = series(&ys);
        let batch = pearson_of_traces(&a, &b).unwrap().unwrap();
        let mut p = PearsonStream::new();
        for (x, y) in xs.iter().zip(&ys) {
            p.push(*x, *y);
        }
        let streamed = p.correlation().unwrap();
        assert!((streamed - batch).abs() < 1e-9, "{streamed} vs {batch}");
        assert_eq!(p.count(), 500);
    }

    #[test]
    fn fewer_than_two_samples_is_none() {
        let mut p = PearsonStream::new();
        assert_eq!(p.correlation(), None);
        p.push(1.0, 1.0);
        assert_eq!(p.correlation(), None);
    }

    #[test]
    fn reset_clears() {
        let mut p = PearsonStream::new();
        p.push(1.0, 2.0);
        p.push(2.0, 1.0);
        assert!(p.correlation().is_some());
        p.reset();
        assert_eq!(p.count(), 0);
        assert_eq!(p.correlation(), None);
    }

    #[test]
    fn correlated_signals_score_high() {
        // Sanity on the paper's Fig 1 phenomenon: two signals driven by
        // the same client wave correlate strongly.
        let n = 600;
        let base: Vec<f64> = (0..n)
            .map(|i| 150.0 + 150.0 * (i as f64 / 100.0).sin())
            .collect();
        let mut rng = cavm_trace::SimRng::new(3);
        let a: Vec<f64> = base
            .iter()
            .map(|&b| 1.3 * b + rng.normal(0.0, 10.0))
            .collect();
        let b: Vec<f64> = base
            .iter()
            .map(|&b| 0.7 * b + rng.normal(0.0, 10.0))
            .collect();
        let r = pearson_of_traces(&series(&a), &series(&b))
            .unwrap()
            .unwrap();
        assert!(r > 0.9, "correlation {r}");
    }
}
