//! Placement cells — sharding the correlation machinery.
//!
//! Every dense structure in the paper scales as O(n²) per monitoring
//! tick, which walls the reproduction off from production fleet sizes
//! (13 ms/tick at n = 4096 under the Peak reference). The way out is
//! an observation about Eqn (2): the server cost only ever consumes
//! **intra-server** pair sums, so pair state between VMs that can
//! never share a server is wasted work. Partitioning the fleet into
//! rack/cluster-sized **placement cells** — each owning its own
//! [`CostMatrix`] over only its members — turns the per-tick cost into
//! O(Σ cellᵢ²): with `c` equal cells, a `c`-fold reduction, while the
//! numbers *inside* each cell stay the exact Eqn (1)/(2) quantities.
//!
//! What crosses cell boundaries is decided by a constant-size
//! [`MomentSketch`](cavm_trace::MomentSketch) router (see
//! `cavm-trace::sketch` and the sim crate's sharded controller), never
//! by a dense structure — arrivals route in O(cells).
//!
//! This module provides the core abstraction: [`PlacementCell`] (a
//! member set plus its own matrix) and [`CellFleet`] (a partition of
//! VM ids into cells with a scatter-gather tick), plus
//! [`partition_fleet`] for splitting a [`ServerFleet`]'s hardware
//! across cells class-by-class.
//!
//! # Example
//!
//! ```
//! use cavm_core::cells::CellFleet;
//! use cavm_trace::Reference;
//!
//! # fn main() -> Result<(), cavm_core::CoreError> {
//! let mut cells = CellFleet::contiguous(64, 4, Reference::Peak)?;
//! // One monitoring tick for the whole fleet: each cell sees only its
//! // own 16 members — 4× less pair work than a dense 64² matrix.
//! cells.push_sample(&vec![1.0; 64])?;
//! assert_eq!(cells.pair_work(), 4 * (16 * 15) / 2);
//! assert_eq!(cells.dense_pair_work(), (64 * 63) / 2);
//! # Ok(())
//! # }
//! ```

use crate::corr::CostMatrix;
use crate::fleet::{ServerClass, ServerFleet, UNBOUNDED};
use crate::CoreError;
use cavm_trace::Reference;

/// One placement cell: a set of (global) VM ids and the dense
/// [`CostMatrix`] over exactly those members, indexed by the member's
/// *local* position. Within the cell every Eqn (1)/(2) quantity is
/// exact; the cell simply never spends pair state on VMs it can never
/// co-locate.
#[derive(Debug, Clone)]
pub struct PlacementCell {
    /// Global VM ids, in local-index order.
    members: Vec<usize>,
    matrix: CostMatrix,
    /// Gather buffer for [`PlacementCell::push_global_sample`].
    scratch: Vec<f64>,
}

impl PlacementCell {
    /// Creates a cell over `members` (global VM ids; local index =
    /// position in the vector).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an empty member set
    /// and propagates [`CostMatrix::new`] validation.
    pub fn new(members: Vec<usize>, reference: Reference) -> crate::Result<Self> {
        if members.is_empty() {
            return Err(CoreError::InvalidParameter(
                "placement cell needs at least one member",
            ));
        }
        let n = members.len();
        Ok(Self {
            members,
            matrix: CostMatrix::new(n, reference)?,
            scratch: vec![0.0; n],
        })
    }

    /// The cell's members (global VM ids, in local-index order).
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The cell's own cost matrix (local indices).
    pub fn matrix(&self) -> &CostMatrix {
        &self.matrix
    }

    /// Feeds one fleet-wide monitoring tick: gathers the members'
    /// utilizations out of the global sample and pushes them as this
    /// cell's tick — O(|members|²) instead of O(n²).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownVm`] when a member id is outside
    /// the global sample.
    pub fn push_global_sample(&mut self, utils: &[f64]) -> crate::Result<()> {
        for (slot, &id) in self.scratch.iter_mut().zip(&self.members) {
            *slot = *utils.get(id).ok_or(CoreError::UnknownVm {
                id,
                known: utils.len(),
            })?;
        }
        self.matrix.push_sample(&self.scratch)
    }

    /// Forgets all samples (keeps the membership).
    pub fn reset(&mut self) {
        self.matrix.reset();
    }
}

/// A partition of `n` VM ids into [`PlacementCell`]s with a
/// scatter-gather tick — the sharded replacement for one dense n²
/// matrix. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct CellFleet {
    cells: Vec<PlacementCell>,
    /// `cell_of[id]` = index of the cell owning global VM `id`.
    cell_of: Vec<usize>,
}

impl CellFleet {
    /// Partitions ids `0..n_vms` into `n_cells` contiguous,
    /// near-equal-sized cells (the first `n_vms % n_cells` cells get
    /// one extra member).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for zero cells or fewer
    /// VMs than cells.
    pub fn contiguous(n_vms: usize, n_cells: usize, reference: Reference) -> crate::Result<Self> {
        if n_cells == 0 {
            return Err(CoreError::InvalidParameter(
                "cell fleet needs at least one cell",
            ));
        }
        if n_vms < n_cells {
            return Err(CoreError::InvalidParameter(
                "cell fleet needs at least one VM per cell",
            ));
        }
        let base = n_vms / n_cells;
        let rem = n_vms % n_cells;
        let mut cells = Vec::with_capacity(n_cells);
        let mut cell_of = vec![0usize; n_vms];
        let mut next = 0usize;
        for c in 0..n_cells {
            let size = base + usize::from(c < rem);
            let members: Vec<usize> = (next..next + size).collect();
            for &id in &members {
                cell_of[id] = c;
            }
            next += size;
            cells.push(PlacementCell::new(members, reference)?);
        }
        Ok(Self { cells, cell_of })
    }

    /// Builds a fleet from an explicit id partition (each VM id `0..n`
    /// must appear in exactly one cell).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the member sets do
    /// not partition `0..n` and propagates [`PlacementCell::new`]
    /// validation.
    pub fn from_partition(partition: Vec<Vec<usize>>, reference: Reference) -> crate::Result<Self> {
        let n: usize = partition.iter().map(Vec::len).sum();
        let mut cell_of = vec![usize::MAX; n];
        for (c, members) in partition.iter().enumerate() {
            for &id in members {
                if id >= n || cell_of[id] != usize::MAX {
                    return Err(CoreError::InvalidParameter(
                        "cell partition must cover each VM id exactly once",
                    ));
                }
                cell_of[id] = c;
            }
        }
        let cells = partition
            .into_iter()
            .map(|members| PlacementCell::new(members, reference))
            .collect::<crate::Result<Vec<_>>>()?;
        Ok(Self { cells, cell_of })
    }

    /// The cells.
    pub fn cells(&self) -> &[PlacementCell] {
        &self.cells
    }

    /// Cell at `index`, or `None` past the end.
    pub fn cell(&self, index: usize) -> Option<&PlacementCell> {
        self.cells.get(index)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `false` by construction; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total VMs across all cells.
    pub fn vm_count(&self) -> usize {
        self.cell_of.len()
    }

    /// The cell owning global VM `id`, or `None` for an unknown id.
    pub fn cell_of(&self, id: usize) -> Option<usize> {
        self.cell_of.get(id).copied()
    }

    /// Feeds one fleet-wide monitoring tick to every cell —
    /// O(Σ cellᵢ²) total pair updates.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SampleCountMismatch`] when the sample is
    /// not fleet-wide.
    pub fn push_sample(&mut self, utils: &[f64]) -> crate::Result<()> {
        if utils.len() != self.cell_of.len() {
            return Err(CoreError::SampleCountMismatch {
                got: utils.len(),
                expected: self.cell_of.len(),
            });
        }
        for cell in &mut self.cells {
            cell.push_global_sample(utils)?;
        }
        Ok(())
    }

    /// Pair slots updated per tick across all cells: Σ mᵢ(mᵢ−1)/2.
    pub fn pair_work(&self) -> usize {
        self.cells
            .iter()
            .map(|c| {
                let m = c.members.len();
                m * (m - 1) / 2
            })
            .sum()
    }

    /// Pair slots a dense matrix over the same VMs would update per
    /// tick: n(n−1)/2.
    pub fn dense_pair_work(&self) -> usize {
        let n = self.cell_of.len();
        n * (n - 1) / 2
    }

    /// Forgets all samples in every cell (keeps the partition).
    pub fn reset(&mut self) {
        for cell in &mut self.cells {
            cell.reset();
        }
    }
}

/// One cell's slice of a partitioned [`ServerFleet`]: the hardware the
/// cell controls plus the mapping from its local class indices back to
/// the global fleet's.
#[derive(Debug, Clone)]
pub struct CellSubfleet {
    /// The cell's own (bounded) server fleet.
    pub fleet: ServerFleet,
    /// `class_map[local]` = global class index in the parent fleet.
    pub class_map: Vec<usize>,
}

/// Splits a bounded [`ServerFleet`] into `n_cells` sub-fleets,
/// class by class: each class's `count` is divided evenly, and the
/// remainders rotate across cells so capacity stays balanced. Classes
/// whose share in a cell is zero are omitted from that cell's fleet
/// (a [`ServerClass`] cannot be empty), which is why each sub-fleet
/// carries a `class_map` back to global class indices.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for zero cells, an
/// unbounded fleet, or more cells than servers (every cell must own at
/// least one server).
pub fn partition_fleet(fleet: &ServerFleet, n_cells: usize) -> crate::Result<Vec<CellSubfleet>> {
    if n_cells == 0 {
        return Err(CoreError::InvalidParameter(
            "fleet partition needs at least one cell",
        ));
    }
    let slots = fleet.total_slots().ok_or(CoreError::InvalidParameter(
        "cannot partition an unbounded fleet into cells",
    ))?;
    if slots < n_cells {
        return Err(CoreError::InvalidParameter(
            "fleet partition needs at least one server per cell",
        ));
    }
    let mut shares = vec![Vec::<(usize, usize)>::new(); n_cells]; // (global class, count)
    let mut rotation = 0usize;
    for (gi, class) in fleet.classes().iter().enumerate() {
        debug_assert_ne!(class.count(), UNBOUNDED);
        let base = class.count() / n_cells;
        let rem = class.count() % n_cells;
        for (c, share) in shares.iter_mut().enumerate() {
            let extra = usize::from((c + n_cells - rotation % n_cells) % n_cells < rem);
            let count = base + extra;
            if count > 0 {
                share.push((gi, count));
            }
        }
        rotation += rem;
    }
    shares
        .into_iter()
        .map(|share| {
            let mut classes = Vec::with_capacity(share.len());
            let mut class_map = Vec::with_capacity(share.len());
            for (gi, count) in share {
                let class = &fleet.classes()[gi];
                classes.push(ServerClass::new(
                    class.name(),
                    count,
                    class.cores(),
                    class.power_model().clone(),
                )?);
                class_map.push(gi);
            }
            Ok(CellSubfleet {
                fleet: ServerFleet::new(classes)?,
                class_map,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cavm_power::LinearPowerModel;
    use cavm_trace::SimRng;

    #[test]
    fn contiguous_partition_shapes() {
        let cells = CellFleet::contiguous(10, 3, Reference::Peak).unwrap();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells.vm_count(), 10);
        let sizes: Vec<usize> = cells.cells().iter().map(|c| c.members().len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(cells.cell_of(0), Some(0));
        assert_eq!(cells.cell_of(4), Some(1));
        assert_eq!(cells.cell_of(9), Some(2));
        assert_eq!(cells.cell_of(10), None);
        assert!(CellFleet::contiguous(2, 3, Reference::Peak).is_err());
        assert!(CellFleet::contiguous(2, 0, Reference::Peak).is_err());
    }

    #[test]
    fn cell_costs_match_the_dense_matrix_bitwise() {
        // The cells are the same kernel over a gathered sample, so
        // intra-cell pair costs must equal the dense matrix's bits.
        let n = 24;
        let mut rng = SimRng::new(3);
        let samples: Vec<Vec<f64>> = (0..50)
            .map(|_| (0..n).map(|_| rng.lognormal_mean_cv(2.0, 0.5)).collect())
            .collect();
        let mut dense = CostMatrix::new(n, Reference::Peak).unwrap();
        let mut cells = CellFleet::contiguous(n, 4, Reference::Peak).unwrap();
        for s in &samples {
            dense.push_sample(s).unwrap();
            cells.push_sample(s).unwrap();
        }
        for cell in cells.cells() {
            for (li, &gi) in cell.members().iter().enumerate() {
                for (lj, &gj) in cell.members().iter().enumerate().skip(li + 1) {
                    let local = cell.matrix().cost(li, lj).unwrap();
                    let global = dense.cost(gi, gj).unwrap();
                    assert_eq!(local.to_bits(), global.to_bits(), "pair ({gi},{gj})");
                }
            }
        }
        assert!(cells.pair_work() < cells.dense_pair_work() / 3);
    }

    #[test]
    fn explicit_partition_validates() {
        let ok = CellFleet::from_partition(vec![vec![0, 2], vec![1, 3]], Reference::Peak);
        assert!(ok.is_ok());
        let dup = CellFleet::from_partition(vec![vec![0, 1], vec![1, 2]], Reference::Peak);
        assert!(dup.is_err());
        let gap = CellFleet::from_partition(vec![vec![0, 3]], Reference::Peak);
        assert!(gap.is_err());
    }

    #[test]
    fn sample_width_is_checked() {
        let mut cells = CellFleet::contiguous(6, 2, Reference::Peak).unwrap();
        assert!(matches!(
            cells.push_sample(&[0.0; 5]),
            Err(CoreError::SampleCountMismatch {
                got: 5,
                expected: 6
            })
        ));
    }

    #[test]
    fn fleet_partition_conserves_hardware() {
        let fleet = ServerFleet::mixed_4_8_16(7, 5, 3).unwrap();
        let parts = partition_fleet(&fleet, 4).unwrap();
        assert_eq!(parts.len(), 4);
        // Per-class counts are conserved and every cell is non-empty.
        let mut totals = vec![0usize; fleet.len()];
        for part in &parts {
            assert!(part.fleet.total_slots().unwrap() >= 1);
            for (local, class) in part.fleet.classes().iter().enumerate() {
                let gi = part.class_map[local];
                assert_eq!(class.cores(), fleet.classes()[gi].cores());
                assert_eq!(class.name(), fleet.classes()[gi].name());
                totals[gi] += class.count();
            }
        }
        let counts: Vec<usize> = fleet.classes().iter().map(ServerClass::count).collect();
        assert_eq!(totals, counts);
    }

    #[test]
    fn fleet_partition_rotates_remainders_over_cells() {
        // Three 1-server classes over 3 cells: without rotation every
        // remainder would land on cell 0 and later cells would starve.
        let xeon = LinearPowerModel::xeon_e5410();
        let fleet = ServerFleet::new(vec![
            ServerClass::new("a", 1, 8.0, xeon.clone()).unwrap(),
            ServerClass::new("b", 1, 8.0, xeon.clone()).unwrap(),
            ServerClass::new("c", 1, 8.0, xeon.clone()).unwrap(),
        ])
        .unwrap();
        let parts = partition_fleet(&fleet, 3).unwrap();
        for part in &parts {
            assert_eq!(part.fleet.total_slots(), Some(1));
        }
    }

    #[test]
    fn fleet_partition_validation() {
        let fleet = ServerFleet::uniform(4, 8.0, LinearPowerModel::xeon_e5410()).unwrap();
        assert!(partition_fleet(&fleet, 0).is_err());
        assert!(partition_fleet(&fleet, 5).is_err());
        let unbounded = ServerFleet::unbounded(8.0).unwrap();
        assert!(partition_fleet(&unbounded, 2).is_err());
        // Degenerate single cell: the sub-fleet is the whole fleet.
        let parts = partition_fleet(&fleet, 1).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].fleet, fleet);
        assert_eq!(parts[0].class_map, vec![0]);
    }
}
