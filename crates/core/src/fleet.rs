//! Heterogeneous server fleets.
//!
//! The paper evaluates on a uniform testbed (20 identical Xeon E5410
//! boxes), but real datacenters mix server generations: hosts differ in
//! core count, power curve and DVFS ladder. [`ServerFleet`] makes that
//! mix a first-class input to every allocation policy: an ordered
//! collection of [`ServerClass`]es, each contributing `count` identical
//! servers of `cores` capacity with their own calibrated
//! [`LinearPowerModel`] and [`DvfsLadder`].
//!
//! Policies consume the fleet through a [`FleetCursor`], which hands out
//! server instances in the fleet's **fill order**: classes sorted
//! largest-capacity-first (ties broken by busy-watts-per-core at the top
//! level — the more energy-efficient class first, then declaration
//! order). Opening the roomiest servers first keeps the Eqn (3) server
//! estimate tight and lets the Eqn (2) cost aggregates see the largest
//! candidate sets; it also makes the degenerate one-class fleet behave
//! *exactly* like the historical scalar-capacity API, which the
//! regression suite pins bit-identically.
//!
//! # Example
//!
//! ```
//! use cavm_core::fleet::{ServerClass, ServerFleet};
//! use cavm_power::LinearPowerModel;
//!
//! # fn main() -> Result<(), cavm_core::CoreError> {
//! let big = LinearPowerModel::xeon_e5410().scaled(2.0).expect("factor > 0");
//! let fleet = ServerFleet::new(vec![
//!     ServerClass::new("E5410", 20, 8.0, LinearPowerModel::xeon_e5410())?,
//!     ServerClass::new("2×E5410", 4, 16.0, big)?,
//! ])?;
//! // Fill order opens the 16-core boxes first.
//! assert_eq!(fleet.fill_order(), &[1, 0]);
//! assert_eq!(fleet.total_slots(), Some(24));
//! # Ok(())
//! # }
//! ```

use crate::CoreError;
use cavm_power::{DvfsLadder, LinearPowerModel, PowerModel};
use serde::{Deserialize, Serialize};

/// Class count meaning "as many servers as the packing needs" — the
/// unbounded bin supply of the classical heuristics. [`ServerFleet`]s
/// given to the simulator must be bounded; unbounded classes exist for
/// pure placement studies (and power the scalar-capacity compatibility
/// path, [`crate::alloc::AllocationPolicy::place_uniform`]).
pub const UNBOUNDED: usize = usize::MAX;

/// Operational health of one provisioned server slot.
///
/// The fleet description ([`ServerClass`]/[`ServerFleet`]) is static
/// hardware inventory; health is the *runtime* dimension a controller
/// layers on top of it: a `Failed` server keeps its slot (its class
/// capacity stays consumed — the hardware exists, it just cannot host
/// anything) but must never be targeted by placement. The online
/// admission path enforces this structurally: an
/// [`OpenServer`](crate::alloc::OpenServer) view carries its server's
/// health and every `place_one` rule skips unhealthy candidates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerHealth {
    /// The server is operational and may host VMs.
    #[default]
    Healthy,
    /// The server has failed: resident VMs must evacuate and no
    /// admission or re-pack may target it until it recovers.
    Failed,
}

impl ServerHealth {
    /// Whether this is [`ServerHealth::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, Self::Failed)
    }

    /// Whether this is [`ServerHealth::Healthy`].
    pub fn is_healthy(&self) -> bool {
        matches!(self, Self::Healthy)
    }
}

/// One homogeneous slice of the fleet: `count` identical servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerClass {
    name: String,
    count: usize,
    cores: f64,
    power_model: LinearPowerModel,
    dvfs_ladder: DvfsLadder,
}

impl ServerClass {
    /// Creates a class of `count` servers with `cores` CPU capacity
    /// each, powered per `power_model` (whose calibrated ladder becomes
    /// the class's DVFS ladder).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for zero `count` or a
    /// non-finite/non-positive `cores`.
    pub fn new(
        name: &str,
        count: usize,
        cores: f64,
        power_model: LinearPowerModel,
    ) -> crate::Result<Self> {
        if count == 0 {
            return Err(CoreError::InvalidParameter(
                "server class needs at least one server",
            ));
        }
        if !(cores.is_finite() && cores > 0.0) {
            return Err(CoreError::InvalidParameter(
                "server class cores must be finite and > 0",
            ));
        }
        let dvfs_ladder = power_model.ladder().clone();
        Ok(Self {
            name: name.to_string(),
            count,
            cores,
            power_model,
            dvfs_ladder,
        })
    }

    /// Display name (e.g. `"E5410"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of servers of this class ([`UNBOUNDED`] = no limit).
    pub fn count(&self) -> usize {
        self.count
    }

    /// CPU capacity per server, in cores.
    pub fn cores(&self) -> f64 {
        self.cores
    }

    /// The class's power model.
    pub fn power_model(&self) -> &LinearPowerModel {
        &self.power_model
    }

    /// The class's DVFS ladder (the power model's calibration ladder).
    pub fn ladder(&self) -> &DvfsLadder {
        &self.dvfs_ladder
    }

    /// Busy watts per core at the top frequency level — the
    /// energy-efficiency figure the fill order breaks capacity ties by
    /// (lower = more efficient = filled earlier).
    pub fn busy_watts_per_core(&self) -> f64 {
        let top = self
            .power_model
            .points()
            .last()
            .expect("power model has at least one level");
        top.busy_watts / self.cores
    }
}

/// An ordered collection of [`ServerClass`]es — the capacity input of
/// every [`crate::alloc::AllocationPolicy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerFleet {
    classes: Vec<ServerClass>,
    /// Class indices in fill order (largest capacity first).
    fill: Vec<usize>,
}

impl ServerFleet {
    /// Builds a fleet from classes (declaration order is preserved in
    /// [`ServerFleet::classes`]; the fill order is derived).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an empty class list.
    pub fn new(classes: Vec<ServerClass>) -> crate::Result<Self> {
        if classes.is_empty() {
            return Err(CoreError::InvalidParameter(
                "fleet needs at least one server class",
            ));
        }
        let mut fill: Vec<usize> = (0..classes.len()).collect();
        fill.sort_by(|&a, &b| {
            classes[b]
                .cores
                .partial_cmp(&classes[a].cores)
                .expect("finite core counts")
                .then_with(|| {
                    classes[a]
                        .busy_watts_per_core()
                        .partial_cmp(&classes[b].busy_watts_per_core())
                        .expect("finite wattages")
                })
                .then_with(|| a.cmp(&b))
        });
        Ok(Self { classes, fill })
    }

    /// A one-class fleet of `count` identical servers — the paper's
    /// uniform testbed as a degenerate [`ServerFleet`].
    ///
    /// # Errors
    ///
    /// Propagates [`ServerClass::new`] validation.
    pub fn uniform(count: usize, cores: f64, power_model: LinearPowerModel) -> crate::Result<Self> {
        Self::new(vec![ServerClass::new(
            "uniform",
            count,
            cores,
            power_model,
        )?])
    }

    /// A one-class fleet with an [`UNBOUNDED`] server supply — the
    /// classical bin-packing setting of the scalar-capacity API. Uses
    /// the Xeon E5410 power preset (allocation itself only reads
    /// `cores`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a non-finite or
    /// non-positive capacity.
    pub fn unbounded(cores: f64) -> crate::Result<Self> {
        Self::uniform(UNBOUNDED, cores, LinearPowerModel::xeon_e5410())
    }

    /// The canonical 3-class heterogeneous demo fleet: legacy 4-core
    /// boxes, the paper's 8-core Xeon E5410s, and dense 16-core
    /// machines, with wattages scaled to the board size (per-core
    /// efficiency improves with density, so the fill order — largest
    /// first — is also the efficient order). Shared by the
    /// `exp_hetero` experiment, the heterogeneous benches and the
    /// acceptance tests so they all pin the *same* scenario.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when any count is zero.
    pub fn mixed_4_8_16(quad: usize, octo: usize, hexadeca: usize) -> crate::Result<Self> {
        let xeon = LinearPowerModel::xeon_e5410();
        Self::new(vec![
            ServerClass::new(
                "quad-legacy",
                quad,
                4.0,
                xeon.scaled(0.62).expect("factor > 0"),
            )?,
            ServerClass::new("octo-E5410", octo, 8.0, xeon.clone())?,
            ServerClass::new(
                "hexadeca-dense",
                hexadeca,
                16.0,
                xeon.scaled(1.85).expect("factor > 0"),
            )?,
        ])
    }

    /// The classes, in declaration order.
    pub fn classes(&self) -> &[ServerClass] {
        &self.classes
    }

    /// Class at `index`, or `None` past the end.
    pub fn class(&self, index: usize) -> Option<&ServerClass> {
        self.classes.get(index)
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `false` by construction; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// `true` for a degenerate one-class fleet.
    pub fn is_uniform(&self) -> bool {
        self.classes.len() == 1
    }

    /// Class indices in fill order: descending capacity, ties broken by
    /// ascending busy-watts-per-core, then declaration order.
    pub fn fill_order(&self) -> &[usize] {
        &self.fill
    }

    /// Total number of servers, or `None` when any class is
    /// [`UNBOUNDED`].
    pub fn total_slots(&self) -> Option<usize> {
        self.classes
            .iter()
            .try_fold(0usize, |acc, c| match c.count {
                UNBOUNDED => None,
                n => acc.checked_add(n),
            })
    }

    /// Total core capacity, or `None` when any class is [`UNBOUNDED`].
    pub fn total_cores(&self) -> Option<f64> {
        self.classes
            .iter()
            .try_fold(0.0f64, |acc, c| match c.count {
                UNBOUNDED => None,
                n => Some(acc + n as f64 * c.cores),
            })
    }

    /// The largest per-server capacity in the fleet.
    pub fn max_cores(&self) -> f64 {
        self.classes
            .iter()
            .map(|c| c.cores)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Eqn (3) generalized to a heterogeneous fleet: the length of the
    /// shortest fill-order prefix whose cumulative capacity covers
    /// `total_demand` — on a one-class fleet this reproduces
    /// `⌈Σû / N_core⌉`
    /// ([`estimate_server_count`](crate::alloc::proposed::estimate_server_count),
    /// up to float round-off at exact-fit boundaries).
    ///
    /// Because the fill order opens the roomiest servers first, no
    /// placement that keeps every server within its own class capacity
    /// can use fewer servers, so the estimate is a *lower bound* for
    /// all capacity-respecting policies (a single VM larger than every
    /// class breaks that premise — it overcommits its lone server by
    /// construction). Returns 0 for non-positive demand and saturates
    /// at [`ServerFleet::total_slots`] when even the whole fleet cannot
    /// cover the demand.
    ///
    /// # Example
    ///
    /// ```
    /// use cavm_core::fleet::{ServerClass, ServerFleet};
    /// use cavm_power::LinearPowerModel;
    ///
    /// # fn main() -> Result<(), cavm_core::CoreError> {
    /// let xeon = LinearPowerModel::xeon_e5410();
    /// let fleet = ServerFleet::new(vec![
    ///     ServerClass::new("small", 10, 4.0, xeon.clone())?,
    ///     ServerClass::new("big", 1, 16.0, xeon.scaled(2.0).expect("factor > 0"))?,
    /// ])?;
    /// // 22 cores of demand: the 16-core box plus two 4-core boxes.
    /// assert_eq!(fleet.estimate_server_count(22.0), 3);
    /// assert_eq!(fleet.estimate_server_count(16.0), 1);
    /// assert_eq!(fleet.estimate_server_count(0.0), 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn estimate_server_count(&self, total_demand: f64) -> usize {
        // NaN and non-positive demands need no servers.
        if total_demand.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return 0;
        }
        // An infinite demand saturates (no finite prefix covers it);
        // without this, an UNBOUNDED class would loop forever below.
        if !total_demand.is_finite() {
            return self.total_slots().unwrap_or(usize::MAX);
        }
        let mut opened = 0usize;
        let mut capacity = 0.0f64;
        for &class_idx in &self.fill {
            let class = &self.classes[class_idx];
            if class.count == UNBOUNDED {
                // Infinite supply of this class covers any remainder.
                while capacity + crate::alloc::FIT_EPS < total_demand {
                    capacity += class.cores;
                    opened += 1;
                }
                return opened.max(1);
            }
            for _ in 0..class.count {
                if capacity + crate::alloc::FIT_EPS >= total_demand {
                    return opened.max(1);
                }
                capacity += class.cores;
                opened += 1;
            }
        }
        opened.max(1)
    }
}

/// Hands out server instances in the fleet's fill order; allocation
/// policies open a new server by taking the cursor's next slot.
#[derive(Debug, Clone)]
pub struct FleetCursor<'a> {
    fleet: &'a ServerFleet,
    /// Position within `fleet.fill_order()`.
    pos: usize,
    /// Servers already opened within the current fill-order class.
    opened_in_class: usize,
    opened: usize,
}

impl<'a> FleetCursor<'a> {
    /// A cursor at the start of the fill order.
    pub fn new(fleet: &'a ServerFleet) -> Self {
        Self {
            fleet,
            pos: 0,
            opened_in_class: 0,
            opened: 0,
        }
    }

    /// Opens the next server, returning `(class index, cores)`, or
    /// `None` when every slot of every class is open.
    pub fn open_next(&mut self) -> Option<(usize, f64)> {
        while self.pos < self.fleet.fill.len() {
            let class_idx = self.fleet.fill[self.pos];
            let class = &self.fleet.classes[class_idx];
            if self.opened_in_class < class.count {
                self.opened_in_class += 1;
                self.opened += 1;
                return Some((class_idx, class.cores));
            }
            self.pos += 1;
            self.opened_in_class = 0;
        }
        None
    }

    /// Servers opened so far.
    pub fn opened(&self) -> usize {
        self.opened
    }

    /// The exhaustion error for this cursor's fleet with `unallocated`
    /// VMs still waiting.
    pub fn exhausted(&self, unallocated: usize) -> CoreError {
        CoreError::FleetExhausted {
            slots: self.fleet.total_slots().unwrap_or(usize::MAX),
            unallocated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xeon() -> LinearPowerModel {
        LinearPowerModel::xeon_e5410()
    }

    #[test]
    fn class_validation() {
        assert!(ServerClass::new("x", 0, 8.0, xeon()).is_err());
        assert!(ServerClass::new("x", 1, 0.0, xeon()).is_err());
        assert!(ServerClass::new("x", 1, f64::NAN, xeon()).is_err());
        let c = ServerClass::new("E5410", 20, 8.0, xeon()).unwrap();
        assert_eq!(c.name(), "E5410");
        assert_eq!(c.count(), 20);
        assert_eq!(c.cores(), 8.0);
        assert_eq!(c.ladder(), c.power_model().ladder());
        assert!((c.busy_watts_per_core() - 300.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn fleet_validation_and_accessors() {
        assert!(ServerFleet::new(vec![]).is_err());
        assert!(ServerFleet::unbounded(-1.0).is_err());
        let fleet = ServerFleet::uniform(20, 8.0, xeon()).unwrap();
        assert!(fleet.is_uniform());
        assert!(!fleet.is_empty());
        assert_eq!(fleet.len(), 1);
        assert_eq!(fleet.total_slots(), Some(20));
        assert_eq!(fleet.total_cores(), Some(160.0));
        assert_eq!(fleet.max_cores(), 8.0);
        assert_eq!(fleet.class(0).unwrap().cores(), 8.0);
        assert!(fleet.class(1).is_none());
        let unbounded = ServerFleet::unbounded(8.0).unwrap();
        assert_eq!(unbounded.total_slots(), None);
        assert_eq!(unbounded.total_cores(), None);
    }

    #[test]
    fn fill_order_prefers_capacity_then_efficiency() {
        let small = ServerClass::new("small", 4, 4.0, xeon()).unwrap();
        let big = ServerClass::new("big", 2, 16.0, xeon().scaled(2.0).unwrap()).unwrap();
        let mid_hungry =
            ServerClass::new("mid-hungry", 3, 8.0, xeon().scaled(1.4).unwrap()).unwrap();
        let mid_frugal = ServerClass::new("mid-frugal", 3, 8.0, xeon()).unwrap();
        let fleet =
            ServerFleet::new(vec![small, mid_hungry.clone(), big, mid_frugal.clone()]).unwrap();
        // 16-core first, then the two 8-core classes by efficiency
        // (frugal before hungry), then 4-core.
        assert_eq!(fleet.fill_order(), &[2, 3, 1, 0]);
        assert!(mid_frugal.busy_watts_per_core() < mid_hungry.busy_watts_per_core());
    }

    #[test]
    fn mixed_preset_fills_dense_first() {
        let fleet = ServerFleet::mixed_4_8_16(24, 16, 4).unwrap();
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.fill_order(), &[2, 1, 0]);
        assert_eq!(fleet.total_slots(), Some(44));
        let cores: Vec<f64> = fleet.classes().iter().map(ServerClass::cores).collect();
        assert_eq!(cores, vec![4.0, 8.0, 16.0]);
        // Per-core efficiency improves with density.
        let eff: Vec<f64> = fleet
            .classes()
            .iter()
            .map(ServerClass::busy_watts_per_core)
            .collect();
        assert!(eff[0] > eff[1] && eff[1] > eff[2]);
        assert!(ServerFleet::mixed_4_8_16(0, 1, 1).is_err());
    }

    #[test]
    fn cursor_walks_fill_order_and_exhausts() {
        let fleet = ServerFleet::new(vec![
            ServerClass::new("small", 2, 4.0, xeon()).unwrap(),
            ServerClass::new("big", 1, 16.0, xeon().scaled(2.0).unwrap()).unwrap(),
        ])
        .unwrap();
        let mut cursor = FleetCursor::new(&fleet);
        assert_eq!(cursor.open_next(), Some((1, 16.0)));
        assert_eq!(cursor.open_next(), Some((0, 4.0)));
        assert_eq!(cursor.open_next(), Some((0, 4.0)));
        assert_eq!(cursor.open_next(), None);
        assert_eq!(cursor.opened(), 3);
        assert!(matches!(
            cursor.exhausted(5),
            CoreError::FleetExhausted {
                slots: 3,
                unallocated: 5
            }
        ));
    }

    #[test]
    fn estimate_server_count_walks_the_fill_order() {
        let fleet = ServerFleet::new(vec![
            ServerClass::new("small", 10, 4.0, xeon()).unwrap(),
            ServerClass::new("big", 2, 16.0, xeon().scaled(2.0).unwrap()).unwrap(),
        ])
        .unwrap();
        assert_eq!(fleet.estimate_server_count(0.0), 0);
        assert_eq!(fleet.estimate_server_count(-3.0), 0);
        assert_eq!(fleet.estimate_server_count(1.0), 1);
        assert_eq!(fleet.estimate_server_count(16.0), 1);
        assert_eq!(fleet.estimate_server_count(17.0), 2);
        assert_eq!(fleet.estimate_server_count(32.0), 2);
        // 16 + 16 + 4 + 4 covers 40.
        assert_eq!(fleet.estimate_server_count(40.0), 4);
        // Beyond total capacity (72): saturates at the slot count.
        assert_eq!(fleet.estimate_server_count(500.0), 12);
        // Non-finite demands saturate instead of looping.
        assert_eq!(fleet.estimate_server_count(f64::INFINITY), 12);
        assert_eq!(fleet.estimate_server_count(f64::NAN), 0);
        assert_eq!(
            ServerFleet::unbounded(8.0)
                .unwrap()
                .estimate_server_count(f64::INFINITY),
            usize::MAX
        );
    }

    #[test]
    fn estimate_server_count_matches_scalar_eqn3_on_uniform_fleets() {
        let fleet = ServerFleet::unbounded(8.0).unwrap();
        for total in [0.5, 7.9, 8.0, 8.1, 30.0, 32.0, 33.0] {
            assert_eq!(
                fleet.estimate_server_count(total),
                crate::alloc::proposed::estimate_server_count(total, 8.0),
                "total {total}"
            );
        }
    }

    #[test]
    fn unbounded_cursor_never_runs_out() {
        let fleet = ServerFleet::unbounded(8.0).unwrap();
        let mut cursor = FleetCursor::new(&fleet);
        for _ in 0..10_000 {
            assert_eq!(cursor.open_next(), Some((0, 8.0)));
        }
    }
}
