//! Frequency-level decision (paper §IV-C, Eqn 4).
//!
//! Once VMs are placed, each server picks an operating frequency:
//!
//! ```text
//! f_i = (1 / Cost_server_i) · (Σ_j û(VM_ij) / N_core) · f_max     (Eqn 4)
//! ```
//!
//! The second factor is the worst-case requirement — enough speed to
//! serve all co-located peaks *coinciding*. The `1/Cost_server` factor
//! is the correlation discount: Fig 3 shows the achievable slowdown
//! `Σ û / û(aggregate)` is lower-bounded (approximately linearly) by the
//! pairwise server cost, so dividing by it is "aggressive-yet-safe".
//! Correlation-blind baselines must keep the worst-case level
//! ([`FrequencyPlanner::static_level_worst_case`]).
//!
//! The continuous `f_i` is snapped **up** to the server's discrete DVFS
//! ladder. For the dynamic variant (Table II(b)) all policies periodically
//! re-plan from the measured recent aggregate peak
//! ([`FrequencyPlanner::dynamic_level`]); the paper re-evaluates every 12
//! five-second samples (1 minute) to limit level oscillation.

use crate::fleet::ServerFleet;
use crate::CoreError;
use cavm_power::{DvfsLadder, Frequency};
use serde::{Deserialize, Serialize};

/// Static (per placement period) vs dynamic (periodic re-evaluation)
/// frequency scaling — Table II (a) vs (b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DvfsMode {
    /// One frequency decision per placement period (Table II(a)).
    Static,
    /// Re-plan every `interval_samples` monitoring samples from measured
    /// utilization (Table II(b); the paper uses 12 × 5 s = 1 min).
    Dynamic {
        /// Monitoring samples between re-evaluations.
        interval_samples: usize,
    },
}

/// Plans per-server frequency levels on a discrete ladder.
///
/// # Example
///
/// ```
/// use cavm_core::dvfs::FrequencyPlanner;
/// use cavm_power::DvfsLadder;
///
/// # fn main() -> Result<(), cavm_core::CoreError> {
/// let planner = FrequencyPlanner::new(DvfsLadder::xeon_e5410());
/// // 7.6 of 8 cores needed if peaks coincide: must run at 2.3 GHz...
/// let worst = planner.static_level_worst_case(7.6, 8.0)?;
/// assert_eq!(worst.as_ghz(), 2.3);
/// // ...but a server cost of 1.3 discounts the requirement to 2.0 GHz.
/// let aware = planner.static_level_correlation_aware(7.6, 8.0, 1.3)?;
/// assert_eq!(aware.as_ghz(), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyPlanner {
    ladder: DvfsLadder,
}

impl FrequencyPlanner {
    /// Creates a planner over the given ladder.
    pub fn new(ladder: DvfsLadder) -> Self {
        Self { ladder }
    }

    /// The underlying ladder.
    pub fn ladder(&self) -> &DvfsLadder {
        &self.ladder
    }

    fn validate(demand: f64, capacity: f64) -> crate::Result<()> {
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(CoreError::InvalidParameter(
                "capacity must be finite and > 0",
            ));
        }
        if !(demand.is_finite() && demand >= 0.0) {
            return Err(CoreError::InvalidParameter(
                "demand must be finite and >= 0",
            ));
        }
        Ok(())
    }

    /// Worst-case static level: enough for all reference peaks to
    /// coincide (`fraction = Σû / capacity`). What a correlation-blind
    /// policy must choose.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for malformed inputs.
    pub fn static_level_worst_case(
        &self,
        total_demand: f64,
        capacity: f64,
    ) -> crate::Result<Frequency> {
        Self::validate(total_demand, capacity)?;
        Ok(self.ladder.snap_up_fraction(total_demand / capacity)?)
    }

    /// Eqn (4): the correlation-aware static level,
    /// `fraction = (Σû / capacity) / Cost_server`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for malformed inputs or a
    /// server cost below 1 (Eqn 2 cannot produce one under peak
    /// reference; a smaller value indicates an upstream bug).
    pub fn static_level_correlation_aware(
        &self,
        total_demand: f64,
        capacity: f64,
        server_cost: f64,
    ) -> crate::Result<Frequency> {
        Self::validate(total_demand, capacity)?;
        if !(server_cost.is_finite() && server_cost >= 1.0 - 1e-9) {
            return Err(CoreError::InvalidParameter("server cost must be >= 1"));
        }
        let fraction = total_demand / capacity / server_cost;
        Ok(self.ladder.snap_up_fraction(fraction)?)
    }

    /// Dynamic re-plan from the measured aggregate utilization peak of
    /// the recent window, with a relative safety `headroom` (e.g. 0.1 =
    /// plan for 110% of the observed peak).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for malformed inputs or
    /// negative headroom.
    pub fn dynamic_level(
        &self,
        recent_peak_demand: f64,
        capacity: f64,
        headroom: f64,
    ) -> crate::Result<Frequency> {
        Self::validate(recent_peak_demand, capacity)?;
        if !(headroom.is_finite() && headroom >= 0.0) {
            return Err(CoreError::InvalidParameter(
                "headroom must be finite and >= 0",
            ));
        }
        let fraction = recent_peak_demand * (1.0 + headroom) / capacity;
        Ok(self.ladder.snap_up_fraction(fraction)?)
    }
}

/// Per-class frequency planning over a heterogeneous [`ServerFleet`]:
/// one [`FrequencyPlanner`] per server class, each bound to its class's
/// DVFS ladder *and* core capacity, so Eqn (4) evaluates against the
/// right `N_core` for whichever class hosts the server.
///
/// # Example
///
/// ```
/// use cavm_core::dvfs::FleetFrequencyPlanner;
/// use cavm_core::fleet::{ServerClass, ServerFleet};
/// use cavm_power::LinearPowerModel;
///
/// # fn main() -> Result<(), cavm_core::CoreError> {
/// let xeon = LinearPowerModel::xeon_e5410();
/// let fleet = ServerFleet::new(vec![
///     ServerClass::new("small", 8, 4.0, xeon.clone())?,
///     ServerClass::new("big", 2, 16.0, xeon.scaled(2.0).expect("factor > 0"))?,
/// ])?;
/// let planner = FleetFrequencyPlanner::new(&fleet);
/// // The same 3.5-core demand saturates a small box but idles a big one.
/// assert_eq!(planner.static_level_worst_case(0, 3.5)?.as_ghz(), 2.3);
/// assert_eq!(planner.static_level_worst_case(1, 3.5)?.as_ghz(), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetFrequencyPlanner {
    /// One planner per fleet class, in class order.
    planners: Vec<FrequencyPlanner>,
    /// Core capacity per fleet class, in class order.
    cores: Vec<f64>,
}

impl FleetFrequencyPlanner {
    /// Builds per-class planners from the fleet's class ladders.
    pub fn new(fleet: &ServerFleet) -> Self {
        Self {
            planners: fleet
                .classes()
                .iter()
                .map(|c| FrequencyPlanner::new(c.ladder().clone()))
                .collect(),
            cores: fleet.classes().iter().map(|c| c.cores()).collect(),
        }
    }

    /// Number of classes planned for.
    pub fn len(&self) -> usize {
        self.planners.len()
    }

    /// `false` by construction (fleets are non-empty).
    pub fn is_empty(&self) -> bool {
        self.planners.is_empty()
    }

    /// The per-class planner, or `None` for an unknown class.
    pub fn class_planner(&self, class: usize) -> Option<&FrequencyPlanner> {
        self.planners.get(class)
    }

    fn lookup(&self, class: usize) -> crate::Result<(&FrequencyPlanner, f64)> {
        match (self.planners.get(class), self.cores.get(class)) {
            (Some(p), Some(&c)) => Ok((p, c)),
            _ => Err(CoreError::InvalidParameter(
                "unknown server class for frequency planning",
            )),
        }
    }

    /// [`FrequencyPlanner::static_level_worst_case`] against the class's
    /// own capacity and ladder.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an unknown class or
    /// malformed demand.
    pub fn static_level_worst_case(
        &self,
        class: usize,
        total_demand: f64,
    ) -> crate::Result<Frequency> {
        let (planner, cores) = self.lookup(class)?;
        planner.static_level_worst_case(total_demand, cores)
    }

    /// Eqn (4) against the class's own capacity and ladder.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an unknown class,
    /// malformed demand, or a server cost below 1.
    pub fn static_level_correlation_aware(
        &self,
        class: usize,
        total_demand: f64,
        server_cost: f64,
    ) -> crate::Result<Frequency> {
        let (planner, cores) = self.lookup(class)?;
        planner.static_level_correlation_aware(total_demand, cores, server_cost)
    }

    /// [`FrequencyPlanner::dynamic_level`] against the class's own
    /// capacity and ladder.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an unknown class or
    /// malformed inputs.
    pub fn dynamic_level(
        &self,
        class: usize,
        recent_peak_demand: f64,
        headroom: f64,
    ) -> crate::Result<Frequency> {
        let (planner, cores) = self.lookup(class)?;
        planner.dynamic_level(recent_peak_demand, cores, headroom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::ServerClass;
    use cavm_power::LinearPowerModel;

    fn planner() -> FrequencyPlanner {
        FrequencyPlanner::new(DvfsLadder::xeon_e5410())
    }

    #[test]
    fn worst_case_levels() {
        let p = planner();
        // 2.0/2.3 ≈ 0.8696 is the threshold fraction.
        assert_eq!(p.static_level_worst_case(6.9, 8.0).unwrap().as_ghz(), 2.0);
        assert_eq!(p.static_level_worst_case(7.2, 8.0).unwrap().as_ghz(), 2.3);
        assert_eq!(p.static_level_worst_case(0.0, 8.0).unwrap().as_ghz(), 2.0);
        // Demand beyond capacity saturates at f_max.
        assert_eq!(p.static_level_worst_case(20.0, 8.0).unwrap().as_ghz(), 2.3);
    }

    #[test]
    fn correlation_discount_lowers_the_level() {
        let p = planner();
        let worst = p.static_level_worst_case(7.6, 8.0).unwrap();
        let aware = p.static_level_correlation_aware(7.6, 8.0, 1.3).unwrap();
        assert!(aware < worst);
        // Cost 1.0 (fully correlated) gives exactly the worst case.
        let same = p.static_level_correlation_aware(7.6, 8.0, 1.0).unwrap();
        assert_eq!(same, worst);
    }

    #[test]
    fn eqn4_fraction_matches_hand_computation() {
        // f = (1/1.5)·(6/8)·f_max = 0.5·f_max = 1.15 GHz → snaps to 2.0.
        let p = planner();
        let f = p.static_level_correlation_aware(6.0, 8.0, 1.5).unwrap();
        assert_eq!(f.as_ghz(), 2.0);
    }

    #[test]
    fn dynamic_level_tracks_recent_peak() {
        let p = planner();
        assert_eq!(p.dynamic_level(5.0, 8.0, 0.1).unwrap().as_ghz(), 2.0);
        assert_eq!(p.dynamic_level(7.5, 8.0, 0.1).unwrap().as_ghz(), 2.3);
        assert_eq!(p.dynamic_level(0.0, 8.0, 0.0).unwrap().as_ghz(), 2.0);
    }

    #[test]
    fn input_validation() {
        let p = planner();
        assert!(p.static_level_worst_case(-1.0, 8.0).is_err());
        assert!(p.static_level_worst_case(1.0, 0.0).is_err());
        assert!(p.static_level_correlation_aware(1.0, 8.0, 0.5).is_err());
        assert!(p
            .static_level_correlation_aware(1.0, 8.0, f64::NAN)
            .is_err());
        assert!(p.dynamic_level(1.0, 8.0, -0.5).is_err());
        assert!(p.dynamic_level(f64::NAN, 8.0, 0.0).is_err());
        assert_eq!(p.ladder().len(), 2);
    }

    #[test]
    fn fleet_planner_is_per_class() {
        let xeon = LinearPowerModel::xeon_e5410();
        let opteron = LinearPowerModel::opteron_6174();
        let fleet = ServerFleet::new(vec![
            ServerClass::new("xeon", 4, 8.0, xeon).unwrap(),
            ServerClass::new("opteron", 4, 12.0, opteron).unwrap(),
        ])
        .unwrap();
        let fp = FleetFrequencyPlanner::new(&fleet);
        assert_eq!(fp.len(), 2);
        assert!(!fp.is_empty());
        // Each class snaps on its own ladder.
        assert_eq!(fp.static_level_worst_case(0, 8.0).unwrap().as_ghz(), 2.3);
        assert_eq!(fp.static_level_worst_case(1, 12.0).unwrap().as_ghz(), 2.1);
        // Capacity is per class: 7 cores is >86.96% of 8 but <87% of 12.
        assert_eq!(fp.static_level_worst_case(0, 7.2).unwrap().as_ghz(), 2.3);
        assert_eq!(fp.static_level_worst_case(1, 7.2).unwrap().as_ghz(), 1.9);
        // Eqn (4) and the dynamic governor go through the same lookup.
        let aware = fp.static_level_correlation_aware(0, 7.2, 1.3).unwrap();
        assert!(aware < fp.static_level_worst_case(0, 7.2).unwrap());
        assert_eq!(fp.dynamic_level(1, 6.0, 0.1).unwrap().as_ghz(), 1.9);
        // Unknown classes error instead of panicking.
        assert!(fp.static_level_worst_case(9, 1.0).is_err());
        assert!(fp.static_level_correlation_aware(9, 1.0, 1.0).is_err());
        assert!(fp.dynamic_level(9, 1.0, 0.0).is_err());
        assert!(fp.class_planner(0).is_some());
        assert!(fp.class_planner(9).is_none());
    }

    #[test]
    fn modes_compare() {
        assert_ne!(
            DvfsMode::Static,
            DvfsMode::Dynamic {
                interval_samples: 12
            }
        );
    }
}
