//! Per-VM workload predictors.
//!
//! The UPDATE phase predicts each VM's next-period reference utilization
//! û from history (Fig 2, line 5). Setup-2 "performed VM placement every
//! 1 hour ... with predictions of upcoming workloads using a last-value
//! predictor"; the paper attributes the residual QoS violations of *all*
//! policies to the mis-predictions of exactly this step, so the
//! predictor is a first-class, swappable component here
//! ([`Predictor`]), with the paper's [`LastValuePredictor`] as the
//! default and moving-average / EWMA alternatives for the ablation
//! experiment.

use crate::CoreError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Predicts the next-period reference utilization of each VM from the
/// per-period values observed so far.
///
/// Implementations are deterministic state machines: `observe` feeds the
/// measured û of a completed period, `predict` returns the estimate for
/// the upcoming one (or `None` before any observation — callers fall
/// back to a provisioning default).
pub trait Predictor {
    /// Feeds the measured per-period û of VM `vm`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownVm`] for an out-of-range VM id.
    fn observe(&mut self, vm: usize, value: f64) -> crate::Result<()>;

    /// Predicted û of VM `vm` for the next period, or `None` before the
    /// first observation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownVm`] for an out-of-range VM id.
    fn predict(&self, vm: usize) -> crate::Result<Option<f64>>;

    /// Number of VMs tracked.
    fn vm_count(&self) -> usize;
}

/// The paper's predictor: next period = last observed period.
///
/// # Example
///
/// ```
/// use cavm_core::predict::{LastValuePredictor, Predictor};
///
/// # fn main() -> Result<(), cavm_core::CoreError> {
/// let mut p = LastValuePredictor::new(2);
/// assert_eq!(p.predict(0)?, None);
/// p.observe(0, 3.5)?;
/// p.observe(0, 2.0)?;
/// assert_eq!(p.predict(0)?, Some(2.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LastValuePredictor {
    last: Vec<Option<f64>>,
}

impl LastValuePredictor {
    /// Creates a predictor for `vm_count` VMs.
    pub fn new(vm_count: usize) -> Self {
        Self {
            last: vec![None; vm_count],
        }
    }
}

impl Predictor for LastValuePredictor {
    fn observe(&mut self, vm: usize, value: f64) -> crate::Result<()> {
        let known = self.last.len();
        let slot = self
            .last
            .get_mut(vm)
            .ok_or(CoreError::UnknownVm { id: vm, known })?;
        *slot = Some(value);
        Ok(())
    }

    fn predict(&self, vm: usize) -> crate::Result<Option<f64>> {
        self.last.get(vm).copied().ok_or(CoreError::UnknownVm {
            id: vm,
            known: self.last.len(),
        })
    }

    fn vm_count(&self) -> usize {
        self.last.len()
    }
}

/// Mean of the last `window` observed periods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovingAveragePredictor {
    window: usize,
    history: Vec<VecDeque<f64>>,
}

impl MovingAveragePredictor {
    /// Creates a predictor averaging the last `window` periods.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `window == 0`.
    pub fn new(vm_count: usize, window: usize) -> crate::Result<Self> {
        if window == 0 {
            return Err(CoreError::InvalidParameter(
                "moving average window must be >= 1",
            ));
        }
        Ok(Self {
            window,
            history: vec![VecDeque::new(); vm_count],
        })
    }
}

impl Predictor for MovingAveragePredictor {
    fn observe(&mut self, vm: usize, value: f64) -> crate::Result<()> {
        let known = self.history.len();
        let h = self
            .history
            .get_mut(vm)
            .ok_or(CoreError::UnknownVm { id: vm, known })?;
        h.push_back(value);
        if h.len() > self.window {
            h.pop_front();
        }
        Ok(())
    }

    fn predict(&self, vm: usize) -> crate::Result<Option<f64>> {
        let h = self.history.get(vm).ok_or(CoreError::UnknownVm {
            id: vm,
            known: self.history.len(),
        })?;
        if h.is_empty() {
            Ok(None)
        } else {
            Ok(Some(h.iter().sum::<f64>() / h.len() as f64))
        }
    }

    fn vm_count(&self) -> usize {
        self.history.len()
    }
}

/// Exponentially-weighted moving average of observed periods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EwmaPredictor {
    alpha: f64,
    state: Vec<Option<f64>>,
}

impl EwmaPredictor {
    /// Creates an EWMA predictor with smoothing `alpha ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for out-of-range `alpha`.
    pub fn new(vm_count: usize, alpha: f64) -> crate::Result<Self> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(CoreError::InvalidParameter("ewma alpha must lie in (0, 1]"));
        }
        Ok(Self {
            alpha,
            state: vec![None; vm_count],
        })
    }
}

impl Predictor for EwmaPredictor {
    fn observe(&mut self, vm: usize, value: f64) -> crate::Result<()> {
        let known = self.state.len();
        let slot = self
            .state
            .get_mut(vm)
            .ok_or(CoreError::UnknownVm { id: vm, known })?;
        *slot = Some(match *slot {
            None => value,
            Some(prev) => self.alpha * value + (1.0 - self.alpha) * prev,
        });
        Ok(())
    }

    fn predict(&self, vm: usize) -> crate::Result<Option<f64>> {
        self.state.get(vm).copied().ok_or(CoreError::UnknownVm {
            id: vm,
            known: self.state.len(),
        })
    }

    fn vm_count(&self) -> usize {
        self.state.len()
    }
}

/// Tracks how well a predictor did: per-period relative errors and the
/// under-prediction rate (under-predictions are the dangerous direction —
/// they cause the capacity violations of Table II).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PredictionScore {
    errors: Vec<f64>,
    under: usize,
}

impl PredictionScore {
    /// Creates an empty score.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one (predicted, actual) pair.
    pub fn record(&mut self, predicted: f64, actual: f64) {
        let scale = actual.abs().max(1e-9);
        self.errors.push((predicted - actual).abs() / scale);
        if predicted < actual {
            self.under += 1;
        }
    }

    /// Mean absolute relative error, or 0.0 with no records.
    pub fn mean_relative_error(&self) -> f64 {
        if self.errors.is_empty() {
            0.0
        } else {
            self.errors.iter().sum::<f64>() / self.errors.len() as f64
        }
    }

    /// Fraction of records where the prediction was below the actual.
    pub fn under_prediction_rate(&self) -> f64 {
        if self.errors.is_empty() {
            0.0
        } else {
            self.under as f64 / self.errors.len() as f64
        }
    }

    /// Number of records.
    pub fn count(&self) -> usize {
        self.errors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_tracks_latest() {
        let mut p = LastValuePredictor::new(2);
        assert_eq!(p.predict(1).unwrap(), None);
        p.observe(1, 5.0).unwrap();
        p.observe(1, 7.0).unwrap();
        assert_eq!(p.predict(1).unwrap(), Some(7.0));
        assert_eq!(p.predict(0).unwrap(), None);
        assert_eq!(p.vm_count(), 2);
    }

    #[test]
    fn out_of_range_vm_errors() {
        let mut p = LastValuePredictor::new(1);
        assert!(matches!(
            p.observe(5, 1.0),
            Err(CoreError::UnknownVm { id: 5, known: 1 })
        ));
        assert!(p.predict(5).is_err());
        let mut ma = MovingAveragePredictor::new(1, 2).unwrap();
        assert!(ma.observe(9, 1.0).is_err());
        assert!(ma.predict(9).is_err());
        let mut ew = EwmaPredictor::new(1, 0.5).unwrap();
        assert!(ew.observe(9, 1.0).is_err());
        assert!(ew.predict(9).is_err());
    }

    #[test]
    fn moving_average_windows() {
        let mut p = MovingAveragePredictor::new(1, 3).unwrap();
        assert_eq!(p.predict(0).unwrap(), None);
        for v in [3.0, 6.0, 9.0, 12.0] {
            p.observe(0, v).unwrap();
        }
        // Last three: (6+9+12)/3 = 9.
        assert_eq!(p.predict(0).unwrap(), Some(9.0));
        assert!(MovingAveragePredictor::new(1, 0).is_err());
        assert_eq!(p.vm_count(), 1);
    }

    #[test]
    fn ewma_blends() {
        let mut p = EwmaPredictor::new(1, 0.5).unwrap();
        p.observe(0, 4.0).unwrap();
        p.observe(0, 8.0).unwrap();
        assert_eq!(p.predict(0).unwrap(), Some(6.0));
        assert!(EwmaPredictor::new(1, 0.0).is_err());
        assert!(EwmaPredictor::new(1, 1.2).is_err());
        assert_eq!(p.vm_count(), 1);
    }

    #[test]
    fn last_value_is_ewma_with_alpha_one() {
        let mut lv = LastValuePredictor::new(1);
        let mut ew = EwmaPredictor::new(1, 1.0).unwrap();
        for v in [2.0, 9.0, 4.5] {
            lv.observe(0, v).unwrap();
            ew.observe(0, v).unwrap();
            assert_eq!(lv.predict(0).unwrap(), ew.predict(0).unwrap());
        }
    }

    #[test]
    fn prediction_score_statistics() {
        let mut s = PredictionScore::new();
        assert_eq!(s.mean_relative_error(), 0.0);
        assert_eq!(s.under_prediction_rate(), 0.0);
        s.record(1.0, 2.0); // under by 50%
        s.record(3.0, 2.0); // over by 50%
        assert_eq!(s.count(), 2);
        assert!((s.mean_relative_error() - 0.5).abs() < 1e-12);
        assert_eq!(s.under_prediction_rate(), 0.5);
    }

    #[test]
    fn predictors_are_object_safe() {
        let mut predictors: Vec<Box<dyn Predictor>> = vec![
            Box::new(LastValuePredictor::new(1)),
            Box::new(MovingAveragePredictor::new(1, 2).unwrap()),
            Box::new(EwmaPredictor::new(1, 0.3).unwrap()),
        ];
        for p in predictors.iter_mut() {
            p.observe(0, 1.0).unwrap();
            assert_eq!(p.predict(0).unwrap(), Some(1.0));
        }
    }
}
