//! The per-server correlation cost (paper Eqn 2).
//!
//! For the VMs allocated to a server, the server cost is the
//! utilization-weighted average of each member's mean pairwise cost
//! against its co-residents:
//!
//! ```text
//! Cost_server = Σ_j w_j · ( Σ_{k≠j} Cost(j,k) / (n-1) ),   w_j = û_j / Σ û
//! ```
//!
//! It extends the *pairwise* Eqn (1) to a whole server and is the
//! quantity the ALLOCATE phase maximizes when picking the next VM, and
//! the `1/Cost_server` factor by which Eqn (4) lowers the frequency.
//! Because Eqn (1) only captures pairs, Cost_server is an (empirically
//! linear, Fig 3) *lower bound* on the server's true peak-aggregation
//! benefit `Σ û_j / û(Σ VMs)` — which is why scaling frequency by it is
//! "aggressive-yet-safe".

use crate::alloc::VmDescriptor;
use crate::corr::CostMatrix;

/// Evaluates Eqn (2) over `(vm_id, û)` members.
///
/// Conventions for degenerate servers: an empty or single-VM server has
/// cost **1.0** — a lone VM gets no multiplexing benefit, so Eqn (4)
/// must not scale its frequency down. If all û are zero the members are
/// weighted equally.
///
/// Pairs the matrix has not observed yet contribute the neutral cost 1.5
/// (see [`CostMatrix::cost_or_neutral`]).
///
/// # Panics
///
/// Panics if a member id is outside the matrix (program error).
///
/// # Example
///
/// ```
/// use cavm_core::corr::CostMatrix;
/// use cavm_core::servercost::server_cost;
/// use cavm_trace::Reference;
///
/// # fn main() -> Result<(), cavm_core::CoreError> {
/// let mut m = CostMatrix::new(2, Reference::Peak)?;
/// m.push_sample(&[4.0, 0.0])?;
/// m.push_sample(&[0.0, 4.0])?;
/// // Two complementary, equally-sized VMs: server cost = pair cost = 2.
/// let c = server_cost(&[(0, 4.0), (1, 4.0)], &m);
/// assert_eq!(c, 2.0);
/// # Ok(())
/// # }
/// ```
pub fn server_cost(members: &[(usize, f64)], matrix: &CostMatrix) -> f64 {
    let n = members.len();
    if n <= 1 {
        return 1.0;
    }
    let total: f64 = members.iter().map(|&(_, u)| u).sum();
    let mut cost = 0.0;
    for &(j, u_j) in members {
        let w_j = if total > 0.0 { u_j / total } else { 1.0 / n as f64 };
        let mut pair_sum = 0.0;
        for &(k, _) in members {
            if k != j {
                pair_sum += matrix.cost_or_neutral(j, k);
            }
        }
        cost += w_j * pair_sum / (n - 1) as f64;
    }
    cost
}

/// Evaluates Eqn (2) for member ids drawn from a descriptor table
/// (û = `vms[id].demand`).
///
/// # Panics
///
/// Panics if an id is outside `vms` or the matrix.
pub fn server_cost_of(members: &[usize], vms: &[VmDescriptor], matrix: &CostMatrix) -> f64 {
    let weighted: Vec<(usize, f64)> =
        members.iter().map(|&id| (id, vms[id].demand)).collect();
    server_cost(&weighted, matrix)
}

/// Evaluates Eqn (2) for a server *after* hypothetically adding
/// `candidate` to `members` — the ALLOCATE phase's selection score
/// (Fig 2, line 11).
///
/// # Panics
///
/// Panics if an id is outside `vms` or the matrix.
pub fn server_cost_with_candidate(
    members: &[usize],
    candidate: usize,
    vms: &[VmDescriptor],
    matrix: &CostMatrix,
) -> f64 {
    let mut weighted: Vec<(usize, f64)> =
        members.iter().map(|&id| (id, vms[id].demand)).collect();
    weighted.push((candidate, vms[candidate].demand));
    server_cost(&weighted, matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cavm_trace::Reference;

    fn matrix3() -> CostMatrix {
        // VM0/VM1 complementary (cost 2), VM2 flat (cost 1 with both).
        let mut m = CostMatrix::new(3, Reference::Peak).unwrap();
        m.push_sample(&[4.0, 0.0, 2.0]).unwrap();
        m.push_sample(&[0.0, 4.0, 2.0]).unwrap();
        m
    }

    #[test]
    fn degenerate_servers_cost_one() {
        let m = matrix3();
        assert_eq!(server_cost(&[], &m), 1.0);
        assert_eq!(server_cost(&[(0, 4.0)], &m), 1.0);
    }

    #[test]
    fn pair_server_equals_pair_cost_when_balanced() {
        let m = matrix3();
        assert_eq!(server_cost(&[(0, 4.0), (1, 4.0)], &m), 2.0);
    }

    #[test]
    fn weights_follow_utilization() {
        let m = matrix3();
        // VM0 dominant: its average pair cost (vs VM2: 6/6=1) dominates.
        let heavy0 = server_cost(&[(0, 100.0), (2, 1.0)], &m);
        let c02 = m.cost(0, 2).unwrap();
        assert!((heavy0 - c02).abs() < 0.02);
    }

    #[test]
    fn zero_total_weighting_is_uniform() {
        let m = matrix3();
        let c = server_cost(&[(0, 0.0), (1, 0.0)], &m);
        assert_eq!(c, m.cost(0, 1).unwrap());
    }

    #[test]
    fn triple_server_mixes_pairs() {
        let m = matrix3();
        // Equal demands: cost = mean over j of mean pair cost.
        let c = server_cost(&[(0, 1.0), (1, 1.0), (2, 1.0)], &m);
        let c01 = m.cost(0, 1).unwrap(); // 2.0
        let c02 = m.cost(0, 2).unwrap(); // 1.0
        let c12 = m.cost(1, 2).unwrap(); // 1.0
        let expected = ((c01 + c02) / 2.0 + (c01 + c12) / 2.0 + (c02 + c12) / 2.0) / 3.0;
        assert!((c - expected).abs() < 1e-12);
    }

    #[test]
    fn candidate_helper_matches_direct_evaluation() {
        let m = matrix3();
        let vms = vec![
            VmDescriptor::new(0, 4.0),
            VmDescriptor::new(1, 4.0),
            VmDescriptor::new(2, 2.0),
        ];
        let direct = server_cost_of(&[0, 1], &vms, &m);
        let via_candidate = server_cost_with_candidate(&[0], 1, &vms, &m);
        assert_eq!(direct, via_candidate);
    }

    #[test]
    fn unknown_pairs_use_neutral_cost() {
        let m = CostMatrix::new(2, Reference::Peak).unwrap();
        assert_eq!(server_cost(&[(0, 1.0), (1, 1.0)], &m), 1.5);
    }
}
