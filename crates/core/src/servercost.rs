//! The per-server correlation cost (paper Eqn 2).
//!
//! For the VMs allocated to a server, the server cost is the
//! utilization-weighted average of each member's mean pairwise cost
//! against its co-residents:
//!
//! ```text
//! Cost_server = Σ_j w_j · ( Σ_{k≠j} Cost(j,k) / (n-1) ),   w_j = û_j / Σ û
//! ```
//!
//! It extends the *pairwise* Eqn (1) to a whole server and is the
//! quantity the ALLOCATE phase maximizes when picking the next VM, and
//! the `1/Cost_server` factor by which Eqn (4) lowers the frequency.
//! Because Eqn (1) only captures pairs, Cost_server is an (empirically
//! linear, Fig 3) *lower bound* on the server's true peak-aggregation
//! benefit `Σ û_j / û(Σ VMs)` — which is why scaling frequency by it is
//! "aggressive-yet-safe".

use crate::alloc::VmDescriptor;
use crate::corr::CostMatrix;

/// Evaluates Eqn (2) over `(vm_id, û)` members.
///
/// Conventions for degenerate servers: an empty or single-VM server has
/// cost **1.0** — a lone VM gets no multiplexing benefit, so Eqn (4)
/// must not scale its frequency down. If all û are zero the members are
/// weighted equally.
///
/// Pairs the matrix has not observed yet — including member ids beyond
/// the matrix, as happens when a VM arrives after the period matrix was
/// built — contribute the neutral cost 1.5 (see
/// [`CostMatrix::cost_or_neutral`]).
///
/// # Example
///
/// ```
/// use cavm_core::corr::CostMatrix;
/// use cavm_core::servercost::server_cost;
/// use cavm_trace::Reference;
///
/// # fn main() -> Result<(), cavm_core::CoreError> {
/// let mut m = CostMatrix::new(2, Reference::Peak)?;
/// m.push_sample(&[4.0, 0.0])?;
/// m.push_sample(&[0.0, 4.0])?;
/// // Two complementary, equally-sized VMs: server cost = pair cost = 2.
/// let c = server_cost(&[(0, 4.0), (1, 4.0)], &m);
/// assert_eq!(c, 2.0);
/// # Ok(())
/// # }
/// ```
pub fn server_cost(members: &[(usize, f64)], matrix: &CostMatrix) -> f64 {
    let n = members.len();
    if n <= 1 {
        return 1.0;
    }
    let total: f64 = members.iter().map(|&(_, u)| u).sum();
    let mut cost = 0.0;
    for &(j, u_j) in members {
        let w_j = if total > 0.0 {
            u_j / total
        } else {
            1.0 / n as f64
        };
        let mut pair_sum = 0.0;
        for &(k, _) in members {
            if k != j {
                pair_sum += matrix.cost_or_neutral(j, k);
            }
        }
        cost += w_j * pair_sum / (n - 1) as f64;
    }
    cost
}

/// Evaluates Eqn (2) for member ids drawn from a descriptor table
/// (û = `vms[id].demand`). Ids beyond the matrix score neutral pairs.
///
/// # Panics
///
/// Panics if an id is outside `vms`.
pub fn server_cost_of(members: &[usize], vms: &[VmDescriptor], matrix: &CostMatrix) -> f64 {
    let weighted: Vec<(usize, f64)> = members.iter().map(|&id| (id, vms[id].demand)).collect();
    server_cost(&weighted, matrix)
}

/// Evaluates Eqn (2) for a server *after* hypothetically adding
/// `candidate` to `members` — the ALLOCATE phase's selection score
/// (Fig 2, line 11). Ids beyond the matrix score neutral pairs.
///
/// # Panics
///
/// Panics if an id is outside `vms`.
pub fn server_cost_with_candidate(
    members: &[usize],
    candidate: usize,
    vms: &[VmDescriptor],
    matrix: &CostMatrix,
) -> f64 {
    let mut weighted: Vec<(usize, f64)> = members.iter().map(|&id| (id, vms[id].demand)).collect();
    weighted.push((candidate, vms[candidate].demand));
    server_cost(&weighted, matrix)
}

/// Eqn (1) coincident-aggregate estimate: the predicted load a server
/// would actually see if its members' peaks de-phase the way the
/// Eqn (2) server cost says they do.
///
/// Eqn (1)'s correlation gap is that anti-correlated VMs' coincident
/// aggregate sits well below the sum of their individual peaks; the
/// server cost (range `[1, 2]`) measures exactly that de-phasing — a
/// perfectly anti-correlated pair scores 2 (the aggregate peak is half
/// the summed peaks), a fully correlated one scores 1 (no gap at all).
/// Dividing the predicted per-VM sum by the cost therefore estimates
/// the coincident aggregate, and is the quantity deliberate overcommit
/// admission checks against the *plain* capacity. Costs below 1 (never
/// produced by Eqn 2, but guarded anyway) clamp to 1 so the estimate
/// never exceeds the sum.
///
/// # Example
///
/// ```
/// use cavm_core::servercost::coincident_estimate;
///
/// // Perfectly anti-correlated members: 10 summed cores coincide as 5.
/// assert_eq!(coincident_estimate(10.0, 2.0), 5.0);
/// // Fully correlated members enjoy no gap.
/// assert_eq!(coincident_estimate(10.0, 1.0), 10.0);
/// // Sub-1 costs clamp: the estimate never exceeds the sum.
/// assert_eq!(coincident_estimate(10.0, 0.5), 10.0);
/// ```
pub fn coincident_estimate(predicted_sum: f64, server_cost: f64) -> f64 {
    predicted_sum / server_cost.max(1.0)
}

/// Incrementally maintained Eqn (2) aggregate for one server.
///
/// Rewriting Eqn (2) with `w_j = û_j / U` (`U = Σ û`) gives
///
/// ```text
/// Cost_server = Σ_{pairs {j,k}} (û_j + û_k)·Cost(j,k) / (U·(n-1))
/// ```
///
/// so the whole server cost reduces to two running pair sums:
/// `S = Σ (û_j + û_k)·Cost(j,k)` (utilization-weighted) and
/// `S₀ = Σ Cost(j,k)` (plain, for the all-idle uniform-weight case).
/// Adding a member only contributes its pairs against the *existing*
/// members, so both a hypothetical candidate score
/// ([`Self::candidate_cost`]) and a committed insertion
/// ([`Self::push`]) are O(|members|) — the seed path re-evaluated the
/// full double loop, O(|members|²), for every probe of the ALLOCATE
/// scan.
///
/// Results match [`server_cost`] up to floating-point re-association
/// (≲1e-12 relative); the equivalence property tests pin both the
/// numeric agreement and that the allocator produces identical
/// placements.
///
/// # Example
///
/// ```
/// use cavm_core::corr::CostMatrix;
/// use cavm_core::servercost::{server_cost, ServerCostAggregate};
/// use cavm_trace::Reference;
///
/// # fn main() -> Result<(), cavm_core::CoreError> {
/// let mut m = CostMatrix::new(2, Reference::Peak)?;
/// m.push_sample(&[4.0, 0.0])?;
/// m.push_sample(&[0.0, 4.0])?;
/// let mut agg = ServerCostAggregate::new();
/// agg.push(0, 4.0, &m);
/// assert_eq!(agg.candidate_cost(1, 4.0, &m), 2.0);
/// agg.push(1, 4.0, &m);
/// assert_eq!(agg.cost(), server_cost(&[(0, 4.0), (1, 4.0)], &m));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServerCostAggregate {
    /// `(vm id, û)` of each committed member.
    members: Vec<(usize, f64)>,
    /// `U`: total member utilization.
    total_util: f64,
    /// `S`: Σ over member pairs of `(û_j + û_k)·Cost(j,k)`.
    weighted_pair_sum: f64,
    /// `S₀`: Σ over member pairs of `Cost(j,k)`.
    plain_pair_sum: f64,
}

impl ServerCostAggregate {
    /// Creates an empty-server aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of committed members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when no member has been pushed.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The committed members as `(vm id, û)` pairs.
    pub fn members(&self) -> &[(usize, f64)] {
        &self.members
    }

    /// `U`: total committed utilization (the server's packed load).
    pub fn total_util(&self) -> f64 {
        self.total_util
    }

    /// Eqn (2) over the committed members (1.0 for empty and single-VM
    /// servers, matching [`server_cost`]).
    pub fn cost(&self) -> f64 {
        Self::combine(
            self.members.len(),
            self.total_util,
            self.weighted_pair_sum,
            self.plain_pair_sum,
        )
    }

    /// Eqn (2) for the server *after* hypothetically adding
    /// `(id, util)` — the ALLOCATE selection score, in O(|members|)
    /// without mutating the aggregate. An `id` beyond the matrix (a VM
    /// newer than the period matrix) scores neutral pairs.
    pub fn candidate_cost(&self, id: usize, util: f64, matrix: &CostMatrix) -> f64 {
        let (dw, dp) = self.pair_delta(id, util, matrix);
        Self::combine(
            self.members.len() + 1,
            self.total_util + util,
            self.weighted_pair_sum + dw,
            self.plain_pair_sum + dp,
        )
    }

    /// Eqn (2) for the server after hypothetically adding a candidate
    /// whose pair sums against the committed members are already known
    /// — the O(1) probe behind incrementally-maintained candidate
    /// indexes (see `ProposedPolicy`'s per-bin index). `(dw, dp)` must
    /// equal what [`ServerCostAggregate::candidate_cost`] would compute
    /// internally: the candidate's `(û_j + û_k)·Cost(j,k)` and
    /// `Cost(j,k)` sums accumulated *in member commit order*, so the
    /// result is bit-identical to the O(|members|) probe.
    pub fn candidate_cost_with(&self, util: f64, dw: f64, dp: f64) -> f64 {
        Self::combine(
            self.members.len() + 1,
            self.total_util + util,
            self.weighted_pair_sum + dw,
            self.plain_pair_sum + dp,
        )
    }

    /// Commits `(id, util)` as a member, updating the pair sums in
    /// O(|members|). An `id` beyond the matrix contributes neutral
    /// pairs.
    pub fn push(&mut self, id: usize, util: f64, matrix: &CostMatrix) {
        let (dw, dp) = self.pair_delta(id, util, matrix);
        self.weighted_pair_sum += dw;
        self.plain_pair_sum += dp;
        self.total_util += util;
        self.members.push((id, util));
    }

    /// Forgets all members.
    pub fn clear(&mut self) {
        *self = Self::default();
    }

    /// The candidate's contribution to `(S, S₀)`: its pairs against
    /// every committed member.
    fn pair_delta(&self, id: usize, util: f64, matrix: &CostMatrix) -> (f64, f64) {
        let mut weighted = 0.0;
        let mut plain = 0.0;
        for &(member, member_util) in &self.members {
            let c = matrix.cost_or_neutral(member, id);
            weighted += (member_util + util) * c;
            plain += c;
        }
        (weighted, plain)
    }

    fn combine(n: usize, total: f64, weighted: f64, plain: f64) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        if total > 0.0 {
            weighted / (total * (n - 1) as f64)
        } else {
            // All members idle: Eqn (2) weights uniformly, which
            // reduces to the mean pair cost scaled by 2/n.
            2.0 * plain / (n * (n - 1)) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cavm_trace::Reference;

    fn matrix3() -> CostMatrix {
        // VM0/VM1 complementary (cost 2), VM2 flat (cost 1 with both).
        let mut m = CostMatrix::new(3, Reference::Peak).unwrap();
        m.push_sample(&[4.0, 0.0, 2.0]).unwrap();
        m.push_sample(&[0.0, 4.0, 2.0]).unwrap();
        m
    }

    #[test]
    fn degenerate_servers_cost_one() {
        let m = matrix3();
        assert_eq!(server_cost(&[], &m), 1.0);
        assert_eq!(server_cost(&[(0, 4.0)], &m), 1.0);
    }

    #[test]
    fn pair_server_equals_pair_cost_when_balanced() {
        let m = matrix3();
        assert_eq!(server_cost(&[(0, 4.0), (1, 4.0)], &m), 2.0);
    }

    #[test]
    fn weights_follow_utilization() {
        let m = matrix3();
        // VM0 dominant: its average pair cost (vs VM2: 6/6=1) dominates.
        let heavy0 = server_cost(&[(0, 100.0), (2, 1.0)], &m);
        let c02 = m.cost(0, 2).unwrap();
        assert!((heavy0 - c02).abs() < 0.02);
    }

    #[test]
    fn zero_total_weighting_is_uniform() {
        let m = matrix3();
        let c = server_cost(&[(0, 0.0), (1, 0.0)], &m);
        assert_eq!(c, m.cost(0, 1).unwrap());
    }

    #[test]
    fn triple_server_mixes_pairs() {
        let m = matrix3();
        // Equal demands: cost = mean over j of mean pair cost.
        let c = server_cost(&[(0, 1.0), (1, 1.0), (2, 1.0)], &m);
        let c01 = m.cost(0, 1).unwrap(); // 2.0
        let c02 = m.cost(0, 2).unwrap(); // 1.0
        let c12 = m.cost(1, 2).unwrap(); // 1.0
        let expected = ((c01 + c02) / 2.0 + (c01 + c12) / 2.0 + (c02 + c12) / 2.0) / 3.0;
        assert!((c - expected).abs() < 1e-12);
    }

    #[test]
    fn candidate_helper_matches_direct_evaluation() {
        let m = matrix3();
        let vms = vec![
            VmDescriptor::new(0, 4.0),
            VmDescriptor::new(1, 4.0),
            VmDescriptor::new(2, 2.0),
        ];
        let direct = server_cost_of(&[0, 1], &vms, &m);
        let via_candidate = server_cost_with_candidate(&[0], 1, &vms, &m);
        assert_eq!(direct, via_candidate);
    }

    #[test]
    fn unknown_pairs_use_neutral_cost() {
        let m = CostMatrix::new(2, Reference::Peak).unwrap();
        assert_eq!(server_cost(&[(0, 1.0), (1, 1.0)], &m), 1.5);
    }

    #[test]
    fn aggregate_tracks_direct_evaluation() {
        let m = matrix3();
        let demands = [4.0, 4.0, 2.0];
        let mut agg = ServerCostAggregate::new();
        assert!(agg.is_empty());
        assert_eq!(agg.cost(), 1.0);
        let mut members: Vec<(usize, f64)> = Vec::new();
        for (id, &demand) in demands.iter().enumerate() {
            let candidate = agg.candidate_cost(id, demand, &m);
            let mut direct_members = members.clone();
            direct_members.push((id, demand));
            let direct = server_cost(&direct_members, &m);
            assert!(
                (candidate - direct).abs() < 1e-12,
                "candidate {candidate} vs direct {direct} at size {}",
                members.len()
            );
            agg.push(id, demand, &m);
            members.push((id, demand));
            assert!((agg.cost() - server_cost(&members, &m)).abs() < 1e-12);
        }
        assert_eq!(agg.len(), 3);
        assert_eq!(agg.members(), members.as_slice());
        agg.clear();
        assert!(agg.is_empty());
        assert_eq!(agg.cost(), 1.0);
    }

    #[test]
    fn aggregate_handles_all_idle_members() {
        let m = matrix3();
        let mut agg = ServerCostAggregate::new();
        agg.push(0, 0.0, &m);
        agg.push(1, 0.0, &m);
        assert!((agg.cost() - server_cost(&[(0, 0.0), (1, 0.0)], &m)).abs() < 1e-12);
        let direct = server_cost(&[(0, 0.0), (1, 0.0), (2, 0.0)], &m);
        assert!((agg.candidate_cost(2, 0.0, &m) - direct).abs() < 1e-12);
    }
}
