use cavm_power::PowerError;
use cavm_trace::TraceError;
use std::fmt;

/// Errors produced by the correlation/allocation core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An underlying time-series operation failed.
    Trace(TraceError),
    /// An underlying power/DVFS operation failed.
    Power(PowerError),
    /// A VM id was outside the cost matrix / descriptor set.
    UnknownVm {
        /// The offending VM id.
        id: usize,
        /// The number of VMs known.
        known: usize,
    },
    /// The number of per-VM samples disagreed with the matrix size.
    SampleCountMismatch {
        /// Samples provided.
        got: usize,
        /// VMs tracked by the matrix.
        expected: usize,
    },
    /// A policy or metric parameter was out of range.
    InvalidParameter(&'static str),
    /// The allocator could not terminate within its round budget —
    /// indicates an impossible instance (e.g. zero capacity).
    AllocationDiverged {
        /// VMs that remained unallocated.
        unallocated: usize,
    },
    /// Every server of every class is open and VMs remain unplaced —
    /// the fleet is too small for the demand.
    FleetExhausted {
        /// Total servers the fleet provides.
        slots: usize,
        /// VMs that remained unallocated.
        unallocated: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Trace(e) => write!(f, "trace error: {e}"),
            CoreError::Power(e) => write!(f, "power error: {e}"),
            CoreError::UnknownVm { id, known } => {
                write!(f, "vm id {id} outside the {known} known vms")
            }
            CoreError::SampleCountMismatch { got, expected } => {
                write!(f, "got {got} samples for {expected} vms")
            }
            CoreError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            CoreError::AllocationDiverged { unallocated } => {
                write!(
                    f,
                    "allocation failed to place {unallocated} vms within its round budget"
                )
            }
            CoreError::FleetExhausted { slots, unallocated } => {
                write!(
                    f,
                    "fleet exhausted: all {slots} servers are open but {unallocated} vms remain"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Trace(e) => Some(e),
            CoreError::Power(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for CoreError {
    fn from(e: TraceError) -> Self {
        CoreError::Trace(e)
    }
}

impl From<PowerError> for CoreError {
    fn from(e: PowerError) -> Self {
        CoreError::Power(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(TraceError::EmptyInput);
        assert!(e.to_string().contains("trace error"));
        assert!(std::error::Error::source(&e).is_some());
        let p = CoreError::from(PowerError::EmptyLadder);
        assert!(std::error::Error::source(&p).is_some());
        for e in [
            CoreError::UnknownVm { id: 3, known: 2 },
            CoreError::SampleCountMismatch {
                got: 1,
                expected: 2,
            },
            CoreError::InvalidParameter("x"),
            CoreError::AllocationDiverged { unallocated: 4 },
            CoreError::FleetExhausted {
                slots: 3,
                unallocated: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(&e).is_none());
        }
    }
}
