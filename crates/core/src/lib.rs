//! # cavm-core — the paper's contribution
//!
//! Correlation-aware VM allocation and frequency scaling, implemented
//! directly from Kim et al., *"Correlation-Aware Virtual Machine
//! Allocation for Energy-Efficient Datacenters"*, DATE 2013:
//!
//! | Paper element | Module |
//! |---|---|
//! | Cost function, Eqn (1): `Cost(i,j) = (û_i + û_j) / û(i+j)` | [`corr::cost`] |
//! | Pearson's correlation (the rejected alternative, §IV-A) | [`corr::pearson`] |
//! | Pairwise cost matrix `M_cost` | [`corr::matrix`] |
//! | Server cost, Eqn (2): utilization-weighted average pair cost | [`servercost`] |
//! | Workload prediction (last-value et al.) | [`predict`] |
//! | Server-count estimate, Eqn (3), and the UPDATE/ALLOCATE heuristic (Fig 2) | [`alloc::proposed`] |
//! | Baselines: FFD, BFD, PCP (Verma et al. \[6\]) | [`alloc`] |
//! | Frequency decision, Eqn (4), static and dynamic | [`dvfs`] |
//! | Heterogeneous server fleets (beyond the paper's uniform testbed) | [`fleet`] |
//! | Placement cells: sharded cost matrices for 100k-VM fleets | [`cells`] |
//!
//! The paper's testbed is uniform, so its equations take one scalar
//! capacity. This crate generalizes every layer to a [`fleet::ServerFleet`]
//! — an ordered set of server classes with their own core counts, power
//! models and DVFS ladders — and recovers the paper exactly through the
//! degenerate one-class fleet
//! ([`alloc::AllocationPolicy::place_uniform`]).
//!
//! The cost function deliberately replaces Pearson's correlation: it can
//! be updated in O(1) per utilization sample (no per-interval batch
//! recomputation, no sample storage) and it measures exactly the
//! quantity the allocator cares about — how much lower the *aggregate*
//! peak of two co-located VMs is than the sum of their individual peaks.
//! `Cost = 1` means the peaks coincide (fully correlated); `Cost = 2`
//! means perfect peak complementarity.
//!
//! # Example: the full paper pipeline on synthetic traces
//!
//! ```
//! use cavm_core::alloc::{AllocationPolicy, ProposedPolicy, VmDescriptor};
//! use cavm_core::corr::CostMatrix;
//! use cavm_core::dvfs::FleetFrequencyPlanner;
//! use cavm_core::fleet::ServerFleet;
//! use cavm_core::servercost::server_cost_of;
//! use cavm_power::LinearPowerModel;
//! use cavm_trace::{Reference, TimeSeries};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two anti-correlated VMs and one flat VM.
//! let a = TimeSeries::new(1.0, vec![4.0, 1.0, 4.0, 1.0])?;
//! let b = TimeSeries::new(1.0, vec![1.0, 4.0, 1.0, 4.0])?;
//! let c = TimeSeries::new(1.0, vec![2.0, 2.0, 2.0, 2.0])?;
//! let traces = [&a, &b, &c];
//!
//! let matrix = CostMatrix::from_traces(&traces, Reference::Peak)?;
//! // a and b never peak together: cost (4+4)/5 = 1.6.
//! assert!((matrix.cost(0, 1).unwrap() - 1.6).abs() < 1e-12);
//!
//! // The paper's uniform testbed is the one-class degenerate fleet.
//! let fleet = ServerFleet::uniform(20, 8.0, LinearPowerModel::xeon_e5410())?;
//! let vms = VmDescriptor::from_traces(&traces, Reference::Peak)?;
//! let placement = ProposedPolicy::default().place(&vms, &matrix, &fleet)?;
//! assert_eq!(placement.server_count(), 2);
//!
//! // Eqn (4): the correlation-aware frequency for the first server,
//! // evaluated against its own class's capacity and ladder.
//! let planner = FleetFrequencyPlanner::new(&fleet);
//! let members = placement.server(0).unwrap();
//! let class = placement.class_of(0).unwrap();
//! let demand: f64 = members.iter().map(|&id| vms[id].demand).sum();
//! let cost = server_cost_of(members, &vms, &matrix);
//! let f = planner.static_level_correlation_aware(class, demand, cost)?;
//! assert!(f <= fleet.class(class).unwrap().ladder().max());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod cells;
pub mod corr;
pub mod dvfs;
mod error;
pub mod fleet;
pub mod predict;
pub mod servercost;

pub use error::CoreError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
