//! Time-series substrate for the `cavm` workspace.
//!
//! This crate provides the data plumbing that every other `cavm` crate
//! builds on:
//!
//! * [`TimeSeries`] — a fixed-interval sampled signal (CPU utilization in
//!   units of physical cores, client counts, power draw, ...).
//! * [`stats`] — batch statistics: Welford mean/variance, exact
//!   percentiles, and the *reference utilization* û used throughout the
//!   paper ([`Reference`]: peak or N-th percentile).
//! * [`streaming`] — constant-memory statistics: the P² quantile
//!   estimator, exponentially-weighted moving averages, windowed maxima.
//! * [`sketch`] — constant-size per-VM demand summaries ([`MomentSketch`]:
//!   running moments + a phase envelope) that let the placement-cell
//!   router steer arrivals in O(cells) without any dense pair structure.
//! * [`envelope`] — Verma-style binary envelopes (`u(t) ≥ threshold`) and
//!   overlap metrics, needed by the PCP baseline of the paper.
//! * [`rng`] — a small deterministic PRNG ([`SimRng`]) with the
//!   distributions the workload generators need (normal, lognormal
//!   parameterized *by mean*, Poisson, exponential). Implemented in-house
//!   so that every experiment in the repository is reproducible from a
//!   single `u64` seed.
//!
//! # Example
//!
//! ```
//! use cavm_trace::{Reference, SimRng, TimeSeries};
//!
//! // A noisy diurnal utilization trace sampled every 5 seconds.
//! let mut rng = SimRng::new(42);
//! let trace = TimeSeries::from_fn(5.0, 1_000, |i| {
//!     let base = 2.0 + (i as f64 / 200.0).sin();
//!     (base + rng.normal(0.0, 0.1)).max(0.0)
//! })
//! .unwrap();
//!
//! let peak = Reference::Peak.of_series(&trace).unwrap();
//! let p95 = Reference::Percentile(95.0).of_series(&trace).unwrap();
//! assert!(p95 <= peak);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envelope;
mod error;
pub mod rng;
pub mod series;
pub mod sketch;
pub mod stats;
pub mod streaming;

pub use envelope::Envelope;
pub use error::TraceError;
pub use rng::SimRng;
pub use series::TimeSeries;
pub use sketch::{MomentSketch, PHASE_BUCKETS};
pub use stats::{percentile, Reference, Summary, Welford};
pub use streaming::{Ewma, P2Cell, P2Clock, P2Quantile, StreamingPeak, WindowedMax};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TraceError>;
