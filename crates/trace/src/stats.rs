//! Batch statistics: percentiles, Welford accumulators, summaries and the
//! paper's *reference utilization* û.
//!
//! The paper provisions each VM by a **reference utilization** û(VM) that
//! is "either the peak or the N-th percentile value depending on QoS
//! requirement" (§IV-A). [`Reference`] encodes exactly that choice and is
//! threaded through every allocation policy in `cavm-core`.

use crate::{TimeSeries, TraceError};
use serde::{Deserialize, Serialize};

/// Exact percentile with linear interpolation between closest ranks.
///
/// Follows the common "linear" convention (NumPy default): for `n`
/// samples the percentile `p` sits at virtual rank `p/100 * (n-1)` of the
/// sorted data, interpolating between neighbours.
///
/// # Errors
///
/// Returns [`TraceError::EmptyInput`] for an empty slice and
/// [`TraceError::InvalidPercentile`] when `p ∉ [0, 100]`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), cavm_trace::TraceError> {
/// let median = cavm_trace::percentile(&[1.0, 3.0, 2.0, 4.0], 50.0)?;
/// assert_eq!(median, 2.5);
/// # Ok(())
/// # }
/// ```
pub fn percentile(values: &[f64], p: f64) -> crate::Result<f64> {
    if values.is_empty() {
        return Err(TraceError::EmptyInput);
    }
    if !(0.0..=100.0).contains(&p) || p.is_nan() {
        return Err(TraceError::InvalidPercentile(p));
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    Ok(percentile_of_sorted(&sorted, p))
}

/// Percentile of an already-sorted slice; shared by the batch and
/// envelope paths. `sorted` must be non-empty and ascending.
pub(crate) fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// The reference utilization û of the paper: peak or N-th percentile.
///
/// The paper's cost function (Eqn 1), server-count estimate (Eqn 3) and
/// frequency decision (Eqn 4) are all expressed in terms of û; switching
/// between `Peak` and `Percentile(N)` trades provisioning headroom against
/// consolidation density.
///
/// # Example
///
/// ```
/// use cavm_trace::Reference;
///
/// # fn main() -> Result<(), cavm_trace::TraceError> {
/// let demand = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 8.0];
/// assert_eq!(Reference::Peak.of(&demand)?, 8.0);
/// // The 90th percentile shaves the rare spike.
/// assert!(Reference::Percentile(90.0).of(&demand)? < 8.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Reference {
    /// Worst-case provisioning: û = max sample.
    Peak,
    /// Off-peak provisioning: û = the given percentile (e.g. 90, 95, 99).
    Percentile(f64),
}

impl Reference {
    /// Evaluates û over a raw slice of samples.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyInput`] for an empty slice and
    /// [`TraceError::InvalidPercentile`] for an out-of-range percentile.
    pub fn of(&self, values: &[f64]) -> crate::Result<f64> {
        match self {
            Reference::Peak => {
                if values.is_empty() {
                    Err(TraceError::EmptyInput)
                } else {
                    Ok(values.iter().copied().fold(f64::NEG_INFINITY, f64::max))
                }
            }
            Reference::Percentile(p) => percentile(values, *p),
        }
    }

    /// Evaluates û over a [`TimeSeries`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Reference::of`].
    pub fn of_series(&self, series: &TimeSeries) -> crate::Result<f64> {
        self.of(series.values())
    }

    /// `true` if this is worst-case (peak) provisioning.
    pub fn is_peak(&self) -> bool {
        matches!(self, Reference::Peak)
    }
}

impl Default for Reference {
    /// The paper's Setup-2 provisions by the (predicted) peak.
    fn default() -> Self {
        Reference::Peak
    }
}

/// Numerically-stable streaming mean/variance accumulator (Welford).
///
/// # Example
///
/// ```
/// use cavm_trace::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples seen so far (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`; 0.0 when fewer than 1 sample).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`; 0.0 when fewer than 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

/// Five-number-plus summary of a sample distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 90th percentile — the paper's favourite off-peak reference.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes the summary of a non-empty slice.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyInput`] when `values` is empty.
    pub fn of(values: &[f64]) -> crate::Result<Summary> {
        if values.is_empty() {
            return Err(TraceError::EmptyInput);
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let mut w = Welford::new();
        for &v in values {
            w.push(v);
        }
        Ok(Summary {
            count: values.len(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            mean: w.mean(),
            std: w.population_std(),
            median: percentile_of_sorted(&sorted, 50.0),
            p90: percentile_of_sorted(&sorted, 90.0),
            p95: percentile_of_sorted(&sorted, 95.0),
            p99: percentile_of_sorted(&sorted, 99.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_endpoints_are_min_and_max() {
        let v = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&v, 100.0).unwrap(), 5.0);
    }

    #[test]
    fn percentile_interpolates_linearly() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 25.0).unwrap(), 2.5);
        assert_eq!(percentile(&v, 50.0).unwrap(), 5.0);
        assert_eq!(percentile(&v, 75.0).unwrap(), 7.5);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[42.0], 13.7).unwrap(), 42.0);
    }

    #[test]
    fn percentile_rejects_bad_inputs() {
        assert!(matches!(percentile(&[], 50.0), Err(TraceError::EmptyInput)));
        assert!(matches!(
            percentile(&[1.0], -0.1),
            Err(TraceError::InvalidPercentile(_))
        ));
        assert!(matches!(
            percentile(&[1.0], 100.1),
            Err(TraceError::InvalidPercentile(_))
        ));
        assert!(matches!(
            percentile(&[1.0], f64::NAN),
            Err(TraceError::InvalidPercentile(_))
        ));
    }

    #[test]
    fn reference_peak_vs_percentile() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(Reference::Peak.of(&v).unwrap(), 99.0);
        let p90 = Reference::Percentile(90.0).of(&v).unwrap();
        assert!(p90 < 99.0 && p90 > 85.0);
        assert!(Reference::Peak.is_peak());
        assert!(!Reference::Percentile(90.0).is_peak());
    }

    #[test]
    fn reference_default_is_peak() {
        assert_eq!(Reference::default(), Reference::Peak);
    }

    #[test]
    fn welford_matches_naive() {
        let v = [1.5, 2.5, 3.5, 4.5, 10.0, -2.0];
        let mut w = Welford::new();
        for &x in &v {
            w.push(x);
        }
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.population_variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), v.len() as u64);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);

        let mut w1 = Welford::new();
        w1.push(7.0);
        assert_eq!(w1.mean(), 7.0);
        assert_eq!(w1.population_variance(), 0.0);
        assert_eq!(w1.sample_variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let (a, b) = ([1.0, 2.0, 3.0], [10.0, 20.0, 30.0, 40.0]);
        let mut all = Welford::new();
        for &x in a.iter().chain(b.iter()) {
            all.push(x);
        }
        let mut wa = Welford::new();
        let mut wb = Welford::new();
        for &x in &a {
            wa.push(x);
        }
        for &x in &b {
            wb.push(x);
        }
        wa.merge(&wb);
        assert!((wa.mean() - all.mean()).abs() < 1e-12);
        assert!((wa.population_variance() - all.population_variance()).abs() < 1e-12);

        // Merging with empty is a no-op either way round.
        let mut we = Welford::new();
        we.merge(&wa);
        assert_eq!(we.mean(), wa.mean());
        let snapshot = wa;
        wa.merge(&Welford::new());
        assert_eq!(wa, snapshot);
    }

    #[test]
    fn summary_fields_are_ordered() {
        let v: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.7).sin() * 3.0 + 5.0)
            .collect();
        let s = Summary::of(&v).unwrap();
        assert!(s.min <= s.median);
        assert!(s.median <= s.p90);
        assert!(s.p90 <= s.p95);
        assert!(s.p95 <= s.p99);
        assert!(s.p99 <= s.max);
        assert_eq!(s.count, 1000);
        assert!(matches!(Summary::of(&[]), Err(TraceError::EmptyInput)));
    }
}
