//! Fixed-interval time series.
//!
//! [`TimeSeries`] is the universal carrier of sampled signals in the
//! workspace: per-VM CPU demand (in units of physical cores), client
//! counts, server power draw, aggregate utilization, and so on.
//!
//! The representation is deliberately simple — a sampling interval plus a
//! dense `Vec<f64>` — because the paper's algorithms only ever consume
//! equally-spaced samples (5 s fine-grained samples, 5 min coarse samples,
//! 1 s testbed monitor samples).

use crate::{stats, Reference, TraceError};
use serde::{Deserialize, Serialize};

/// A finite, equally-spaced sampled signal.
///
/// Invariants (enforced at construction):
///
/// * the sampling interval is finite and strictly positive;
/// * every sample is finite (no NaN / ±inf).
///
/// # Example
///
/// ```
/// use cavm_trace::TimeSeries;
///
/// # fn main() -> Result<(), cavm_trace::TraceError> {
/// let s = TimeSeries::new(5.0, vec![1.0, 2.0, 3.0, 2.0])?;
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.duration(), 20.0);
/// assert_eq!(s.peak(), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    dt: f64,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from raw samples taken every `dt` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidInterval`] if `dt` is not finite and
    /// positive, and [`TraceError::NonFiniteSample`] if any sample is NaN
    /// or infinite.
    pub fn new(dt: f64, values: Vec<f64>) -> crate::Result<Self> {
        if !dt.is_finite() || dt <= 0.0 {
            return Err(TraceError::InvalidInterval(dt));
        }
        for (index, &value) in values.iter().enumerate() {
            if !value.is_finite() {
                return Err(TraceError::NonFiniteSample { index, value });
            }
        }
        Ok(Self { dt, values })
    }

    /// Creates a series of `n` samples by evaluating `f` at indices
    /// `0..n`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TimeSeries::new`].
    pub fn from_fn<F>(dt: f64, n: usize, f: F) -> crate::Result<Self>
    where
        F: FnMut(usize) -> f64,
    {
        Self::new(dt, (0..n).map(f).collect())
    }

    /// Creates a constant series.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TimeSeries::new`].
    pub fn constant(dt: f64, n: usize, value: f64) -> crate::Result<Self> {
        Self::new(dt, vec![value; n])
    }

    /// The sampling interval in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total covered duration in seconds (`len * dt`).
    pub fn duration(&self) -> f64 {
        self.values.len() as f64 * self.dt
    }

    /// Borrow the raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consume the series and return the raw samples.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Sample at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<f64> {
        self.values.get(index).copied()
    }

    /// Iterate over `(time_seconds, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i as f64 * self.dt, v))
    }

    /// Largest sample, or 0.0 for an empty series.
    ///
    /// Empty series are treated as an idle signal; this keeps aggregate
    /// computations total. Use [`TimeSeries::is_empty`] to distinguish.
    pub fn peak(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Smallest sample, or 0.0 for an empty series.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Arithmetic mean, or 0.0 for an empty series.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Exact percentile of the sample distribution (linear interpolation).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyInput`] on an empty series and
    /// [`TraceError::InvalidPercentile`] if `p ∉ [0, 100]`.
    pub fn percentile(&self, p: f64) -> crate::Result<f64> {
        stats::percentile(&self.values, p)
    }

    /// The reference utilization û of the paper: peak or N-th percentile.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyInput`] on an empty series.
    pub fn reference(&self, reference: Reference) -> crate::Result<f64> {
        reference.of_series(self)
    }

    /// Element-wise sum of several equally-sampled series.
    ///
    /// This is the aggregation `VMi + VMj` in the denominator of the
    /// paper's cost function (Eqn 1): the co-located demand signal.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyInput`] when `series` is empty, and
    /// length/interval mismatch errors when operands disagree.
    pub fn sum_of(series: &[&TimeSeries]) -> crate::Result<TimeSeries> {
        let first = series.first().ok_or(TraceError::EmptyInput)?;
        let mut acc = vec![0.0; first.len()];
        for s in series {
            if s.len() != first.len() {
                return Err(TraceError::LengthMismatch {
                    left: first.len(),
                    right: s.len(),
                });
            }
            if s.dt() != first.dt() {
                return Err(TraceError::IntervalMismatch {
                    left: first.dt(),
                    right: s.dt(),
                });
            }
            for (a, v) in acc.iter_mut().zip(s.values()) {
                *a += v;
            }
        }
        TimeSeries::new(first.dt(), acc)
    }

    /// Returns a new series with every sample transformed by `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::NonFiniteSample`] if `f` produces a
    /// non-finite value.
    pub fn map<F>(&self, mut f: F) -> crate::Result<TimeSeries>
    where
        F: FnMut(f64) -> f64,
    {
        TimeSeries::new(self.dt, self.values.iter().map(|&v| f(v)).collect())
    }

    /// Returns the series scaled by a finite factor.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::NonFiniteSample`] if scaling produces a
    /// non-finite value (e.g. a non-finite `factor`).
    pub fn scale(&self, factor: f64) -> crate::Result<TimeSeries> {
        self.map(|v| v * factor)
    }

    /// Returns the series with samples clamped to `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (programming error at the call site).
    pub fn clamp(&self, lo: f64, hi: f64) -> TimeSeries {
        assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
        TimeSeries {
            dt: self.dt,
            values: self.values.iter().map(|v| v.clamp(lo, hi)).collect(),
        }
    }

    /// Extracts samples `[start, end)` as a new series with the same
    /// sampling interval.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] when the range is
    /// ill-formed or out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> crate::Result<TimeSeries> {
        if start > end || end > self.values.len() {
            return Err(TraceError::InvalidParameter("slice range out of bounds"));
        }
        Ok(TimeSeries {
            dt: self.dt,
            values: self.values[start..end].to_vec(),
        })
    }

    /// Coarsens the series by averaging consecutive groups of `factor`
    /// samples. A trailing partial group is averaged over its actual
    /// length.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] when `factor == 0`.
    pub fn coarsen_mean(&self, factor: usize) -> crate::Result<TimeSeries> {
        if factor == 0 {
            return Err(TraceError::InvalidParameter("coarsen factor must be >= 1"));
        }
        let values = self
            .values
            .chunks(factor)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        TimeSeries::new(self.dt * factor as f64, values)
    }

    /// Coarsens the series by taking the maximum of consecutive groups of
    /// `factor` samples (peak-preserving downsampling).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] when `factor == 0`.
    pub fn coarsen_max(&self, factor: usize) -> crate::Result<TimeSeries> {
        if factor == 0 {
            return Err(TraceError::InvalidParameter("coarsen factor must be >= 1"));
        }
        let values = self
            .values
            .chunks(factor)
            .map(|c| c.iter().copied().fold(f64::NEG_INFINITY, f64::max))
            .collect();
        TimeSeries::new(self.dt * factor as f64, values)
    }

    /// Repeats every sample `factor` times (zero-order-hold refinement),
    /// dividing the sampling interval accordingly.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] when `factor == 0`.
    pub fn refine_hold(&self, factor: usize) -> crate::Result<TimeSeries> {
        if factor == 0 {
            return Err(TraceError::InvalidParameter("refine factor must be >= 1"));
        }
        let mut values = Vec::with_capacity(self.values.len() * factor);
        for &v in &self.values {
            values.extend(std::iter::repeat_n(v, factor));
        }
        TimeSeries::new(self.dt / factor as f64, values)
    }

    /// Splits the series into consecutive windows of `window` samples.
    /// The last window may be shorter.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] when `window == 0`.
    pub fn windows(&self, window: usize) -> crate::Result<Vec<TimeSeries>> {
        if window == 0 {
            return Err(TraceError::InvalidParameter("window must be >= 1"));
        }
        self.values
            .chunks(window)
            .map(|c| TimeSeries::new(self.dt, c.to_vec()))
            .collect()
    }

    /// Summary statistics of the sample distribution.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyInput`] on an empty series.
    pub fn summary(&self) -> crate::Result<crate::Summary> {
        crate::Summary::of(&self.values)
    }
}

impl AsRef<[f64]> for TimeSeries {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(values: &[f64]) -> TimeSeries {
        TimeSeries::new(1.0, values.to_vec()).unwrap()
    }

    #[test]
    fn construction_validates_interval() {
        assert!(matches!(
            TimeSeries::new(0.0, vec![1.0]),
            Err(TraceError::InvalidInterval(_))
        ));
        assert!(matches!(
            TimeSeries::new(-5.0, vec![1.0]),
            Err(TraceError::InvalidInterval(_))
        ));
        assert!(matches!(
            TimeSeries::new(f64::NAN, vec![1.0]),
            Err(TraceError::InvalidInterval(_))
        ));
    }

    #[test]
    fn construction_rejects_non_finite_samples() {
        let err = TimeSeries::new(1.0, vec![1.0, f64::NAN]).unwrap_err();
        assert!(matches!(err, TraceError::NonFiniteSample { index: 1, .. }));
        let err = TimeSeries::new(1.0, vec![f64::INFINITY]).unwrap_err();
        assert!(matches!(err, TraceError::NonFiniteSample { index: 0, .. }));
    }

    #[test]
    fn empty_series_has_zero_statistics() {
        let e = TimeSeries::new(1.0, vec![]).unwrap();
        assert!(e.is_empty());
        assert_eq!(e.peak(), 0.0);
        assert_eq!(e.min(), 0.0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.duration(), 0.0);
        assert!(e.percentile(50.0).is_err());
    }

    #[test]
    fn basic_statistics() {
        let t = s(&[1.0, 4.0, 2.0, 3.0]);
        assert_eq!(t.peak(), 4.0);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.duration(), 4.0);
    }

    #[test]
    fn negative_samples_are_allowed_and_peak_reflects_them() {
        let t = s(&[-3.0, -1.0, -2.0]);
        assert_eq!(t.min(), -3.0);
        // peak() is the max sample; for all-negative signals it is the
        // largest (least negative) one.
        assert_eq!(t.peak(), -1.0);
    }

    #[test]
    fn sum_of_adds_elementwise() {
        let a = s(&[1.0, 2.0, 3.0]);
        let b = s(&[0.5, 0.5, 0.5]);
        let sum = TimeSeries::sum_of(&[&a, &b]).unwrap();
        assert_eq!(sum.values(), &[1.5, 2.5, 3.5]);
        assert_eq!(sum.dt(), 1.0);
    }

    #[test]
    fn sum_of_validates_operands() {
        let a = s(&[1.0, 2.0]);
        let b = s(&[1.0]);
        assert!(matches!(
            TimeSeries::sum_of(&[&a, &b]),
            Err(TraceError::LengthMismatch { .. })
        ));
        let c = TimeSeries::new(2.0, vec![1.0, 2.0]).unwrap();
        assert!(matches!(
            TimeSeries::sum_of(&[&a, &c]),
            Err(TraceError::IntervalMismatch { .. })
        ));
        assert!(matches!(
            TimeSeries::sum_of(&[]),
            Err(TraceError::EmptyInput)
        ));
    }

    #[test]
    fn subadditivity_of_peak() {
        // peak(a + b) <= peak(a) + peak(b): the fact the whole paper
        // rests on.
        let a = s(&[1.0, 5.0, 2.0, 0.0]);
        let b = s(&[4.0, 0.0, 1.0, 3.0]);
        let sum = TimeSeries::sum_of(&[&a, &b]).unwrap();
        assert!(sum.peak() <= a.peak() + b.peak());
        assert!(sum.peak() >= a.peak().max(b.peak()));
    }

    #[test]
    fn coarsen_mean_and_max() {
        let t = s(&[1.0, 3.0, 2.0, 6.0, 5.0]);
        let m = t.coarsen_mean(2).unwrap();
        assert_eq!(m.values(), &[2.0, 4.0, 5.0]);
        assert_eq!(m.dt(), 2.0);
        let x = t.coarsen_max(2).unwrap();
        assert_eq!(x.values(), &[3.0, 6.0, 5.0]);
        assert!(t.coarsen_mean(0).is_err());
        assert!(t.coarsen_max(0).is_err());
    }

    #[test]
    fn refine_hold_inverts_coarsen_on_constant() {
        let t = s(&[2.0, 4.0]);
        let r = t.refine_hold(3).unwrap();
        assert_eq!(r.values(), &[2.0, 2.0, 2.0, 4.0, 4.0, 4.0]);
        assert!((r.dt() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.coarsen_mean(3).unwrap().values(), t.values());
        assert!(t.refine_hold(0).is_err());
    }

    #[test]
    fn slice_and_windows() {
        let t = s(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let mid = t.slice(1, 4).unwrap();
        assert_eq!(mid.values(), &[1.0, 2.0, 3.0]);
        assert!(t.slice(4, 2).is_err());
        assert!(t.slice(0, 9).is_err());

        let w = t.windows(2).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w[2].values(), &[4.0]);
        assert!(t.windows(0).is_err());
    }

    #[test]
    fn map_scale_clamp() {
        let t = s(&[1.0, -2.0, 3.0]);
        assert_eq!(t.scale(2.0).unwrap().values(), &[2.0, -4.0, 6.0]);
        assert_eq!(t.clamp(0.0, 2.5).values(), &[1.0, 0.0, 2.5]);
        assert!(t.scale(f64::INFINITY).is_err());
        assert_eq!(t.map(|v| v + 1.0).unwrap().values(), &[2.0, -1.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_panics_on_inverted_bounds() {
        s(&[1.0]).clamp(2.0, 1.0);
    }

    #[test]
    fn iter_yields_timestamps() {
        let t = TimeSeries::new(5.0, vec![10.0, 20.0]).unwrap();
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(0.0, 10.0), (5.0, 20.0)]);
    }

    #[test]
    fn from_fn_and_constant() {
        let t = TimeSeries::from_fn(1.0, 4, |i| i as f64).unwrap();
        assert_eq!(t.values(), &[0.0, 1.0, 2.0, 3.0]);
        let c = TimeSeries::constant(1.0, 3, 7.5).unwrap();
        assert_eq!(c.values(), &[7.5, 7.5, 7.5]);
    }

    #[test]
    fn serde_round_trip_is_identity() {
        // serde support is part of the public contract (C-SERDE); verify
        // with the serde test shim rather than a full format crate.
        let t = TimeSeries::new(5.0, vec![1.0, 2.0]).unwrap();
        let cloned = t.clone();
        assert_eq!(t, cloned);
    }
}
