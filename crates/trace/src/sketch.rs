//! Constant-size per-VM demand sketches for cell routing.
//!
//! The placement-cell layer (see `cavm-core::cells`) needs to decide
//! *which cell* an arriving VM belongs to without touching any dense
//! pair structure — a router that is O(cells) per arrival, not O(n).
//! [`MomentSketch`] is the summary that makes this possible: running
//! moments (count / mean / M2 à la Welford), the observed peak, and a
//! small **phase envelope** — mean demand per coarse time-of-day
//! bucket — that captures *when* a VM is busy. Two VMs whose phase
//! envelopes peak in the same buckets are correlated in exactly the
//! sense of the paper's Eqn (1) cost (their peaks coincide), so a
//! router can steer an arrival toward the cell whose aggregate
//! envelope it complements, approximating the correlation-aware
//! objective at a fraction of the dense matrix's cost.
//!
//! The sketch mirrors the [`Reference`] machinery of the exact path:
//! [`MomentSketch::reference`] answers "peak" exactly and "N-th
//! percentile" through a Gaussian moment approximation — cheap,
//! constant-memory, and honest about being an estimate (the dense
//! per-cell `CostMatrix` machinery still owns the exact Eqn (1)/(2)
//! numbers *within* a cell).
//!
//! # Example
//!
//! ```
//! use cavm_trace::{MomentSketch, Reference, TimeSeries};
//!
//! # fn main() -> Result<(), cavm_trace::TraceError> {
//! // A VM busy in the first half of its day.
//! let trace = TimeSeries::from_fn(5.0, 800, |i| if i < 400 { 4.0 } else { 1.0 })?;
//! let sketch = MomentSketch::from_series(&trace, 0, 100)?;
//! assert_eq!(sketch.reference(Reference::Peak), 4.0);
//! let profile = sketch.phase_profile();
//! assert!(profile[0] > profile[7], "busy early, quiet late");
//! # Ok(())
//! # }
//! ```

use crate::{Reference, TimeSeries, TraceError};
use serde::{Deserialize, Serialize};

/// Number of phase-envelope buckets a sketch folds time into.
///
/// Eight buckets over a diurnal horizon give 3-hour resolution — coarse
/// enough to stay O(1) per sample, fine enough to separate
/// morning-peaking from evening-peaking tenants (the correlation
/// structure the datacenter workload generators synthesize).
pub const PHASE_BUCKETS: usize = 8;

/// Constant-size demand summary: running moments, peak, and a
/// [`PHASE_BUCKETS`]-bucket phase envelope. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MomentSketch {
    /// Samples per phase bucket (the bucket of sample `s` is
    /// `(s / phase_samples) % PHASE_BUCKETS`).
    phase_samples: usize,
    count: u64,
    mean: f64,
    /// Welford's sum of squared deviations.
    m2: f64,
    peak: f64,
    /// Per-bucket demand sums.
    phase_sum: [f64; PHASE_BUCKETS],
    /// Per-bucket sample counts.
    phase_count: [u64; PHASE_BUCKETS],
}

impl MomentSketch {
    /// Creates an empty sketch whose phase buckets are
    /// `phase_samples` samples wide.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] for zero
    /// `phase_samples`.
    pub fn new(phase_samples: usize) -> crate::Result<Self> {
        if phase_samples == 0 {
            return Err(TraceError::InvalidParameter(
                "sketch phase bucket must be at least one sample",
            ));
        }
        Ok(Self {
            phase_samples,
            count: 0,
            mean: 0.0,
            m2: 0.0,
            peak: f64::NEG_INFINITY,
            phase_sum: [0.0; PHASE_BUCKETS],
            phase_count: [0; PHASE_BUCKETS],
        })
    }

    /// Sketches a whole series whose sample 0 sits at global sample
    /// index `start_sample` (phase buckets are keyed by *global* time,
    /// so two VMs arriving at different instants still compare on the
    /// same clock).
    ///
    /// # Errors
    ///
    /// Propagates [`MomentSketch::new`] validation.
    pub fn from_series(
        series: &TimeSeries,
        start_sample: usize,
        phase_samples: usize,
    ) -> crate::Result<Self> {
        let mut sketch = Self::new(phase_samples)?;
        for (i, &v) in series.values().iter().enumerate() {
            sketch.push(start_sample + i, v);
        }
        Ok(sketch)
    }

    /// Feeds one demand sample observed at global sample index
    /// `sample`.
    pub fn push(&mut self, sample: usize, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        if value > self.peak {
            self.peak = value;
        }
        let bucket = (sample / self.phase_samples) % PHASE_BUCKETS;
        self.phase_sum[bucket] += value;
        self.phase_count[bucket] += 1;
    }

    /// Samples per phase bucket.
    pub fn phase_samples(&self) -> usize {
        self.phase_samples
    }

    /// Samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean, or 0 before any sample.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Observed peak, or 0 before any sample.
    pub fn peak(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.peak
        }
    }

    /// Unbiased sample variance, or 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Reference utilization û under the sketch: exact for
    /// [`Reference::Peak`], a Gaussian moment estimate
    /// `mean + z_p·σ` (clamped to the observed peak) for
    /// [`Reference::Percentile`] — the constant-memory stand-in for
    /// the exact order statistic the dense path computes.
    pub fn reference(&self, reference: Reference) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        match reference {
            Reference::Peak => self.peak,
            Reference::Percentile(p) => {
                let z = normal_quantile((p / 100.0).clamp(1e-6, 1.0 - 1e-6));
                (self.mean + z * self.variance().sqrt()).min(self.peak)
            }
        }
    }

    /// Mean demand per phase bucket (0 for never-observed buckets) —
    /// the envelope the cell router matches arrivals against.
    pub fn phase_profile(&self) -> [f64; PHASE_BUCKETS] {
        let mut profile = [0.0; PHASE_BUCKETS];
        for (b, slot) in profile.iter_mut().enumerate() {
            if self.phase_count[b] > 0 {
                *slot = self.phase_sum[b] / self.phase_count[b] as f64;
            }
        }
        profile
    }

    /// Folds another sketch into this one (Chan's parallel moment
    /// combination; peaks take the max, envelopes add).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] when the bucket widths
    /// differ — envelopes on different clocks cannot be merged.
    pub fn merge(&mut self, other: &Self) -> crate::Result<()> {
        if self.phase_samples != other.phase_samples {
            return Err(TraceError::InvalidParameter(
                "cannot merge sketches with different phase bucket widths",
            ));
        }
        if other.count == 0 {
            return Ok(());
        }
        if self.count == 0 {
            *self = *other;
            return Ok(());
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * n1 * n2 / (n1 + n2);
        self.mean += delta * n2 / (n1 + n2);
        self.count += other.count;
        if other.peak > self.peak {
            self.peak = other.peak;
        }
        for b in 0..PHASE_BUCKETS {
            self.phase_sum[b] += other.phase_sum[b];
            self.phase_count[b] += other.phase_count[b];
        }
        Ok(())
    }
}

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 — far below the sketch's own estimation
/// error).
fn normal_quantile(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn validation_and_empty_defaults() {
        assert!(MomentSketch::new(0).is_err());
        let s = MomentSketch::new(10).unwrap();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.peak(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.reference(Reference::Peak), 0.0);
        assert_eq!(s.phase_profile(), [0.0; PHASE_BUCKETS]);
    }

    #[test]
    fn moments_match_batch_statistics() {
        let mut rng = SimRng::new(11);
        let values: Vec<f64> = (0..5000).map(|_| rng.lognormal_mean_cv(2.0, 0.5)).collect();
        let series = TimeSeries::new(5.0, values.clone()).unwrap();
        let sketch = MomentSketch::from_series(&series, 0, 625).unwrap();
        assert_eq!(sketch.count(), 5000);
        assert!((sketch.mean() - series.mean()).abs() < 1e-9);
        assert_eq!(sketch.peak(), series.peak());
        let mean = series.mean();
        let var: f64 =
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (values.len() - 1) as f64;
        assert!((sketch.variance() - var).abs() / var < 1e-9);
    }

    #[test]
    fn percentile_reference_approximates_the_exact_order_statistic() {
        let mut rng = SimRng::new(5);
        let values: Vec<f64> = (0..20_000).map(|_| 2.0 + rng.normal(0.0, 0.4)).collect();
        let series = TimeSeries::new(5.0, values).unwrap();
        let sketch = MomentSketch::from_series(&series, 0, 2500).unwrap();
        let exact = series.percentile(95.0).unwrap();
        let approx = sketch.reference(Reference::Percentile(95.0));
        // Gaussian data: the moment estimate should land within a few
        // percent of the exact P95.
        assert!(
            (approx - exact).abs() / exact < 0.05,
            "approx {approx} vs exact {exact}"
        );
        assert!(approx <= sketch.peak());
    }

    #[test]
    fn phase_profile_separates_busy_buckets() {
        // 80 samples per bucket; busy during buckets 2 and 3 only.
        let series = TimeSeries::from_fn(5.0, 640, |i| {
            let bucket = i / 80;
            if bucket == 2 || bucket == 3 {
                6.0
            } else {
                0.5
            }
        })
        .unwrap();
        let sketch = MomentSketch::from_series(&series, 0, 80).unwrap();
        let profile = sketch.phase_profile();
        assert!((profile[2] - 6.0).abs() < 1e-12);
        assert!((profile[3] - 6.0).abs() < 1e-12);
        assert!((profile[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arrival_offset_keys_buckets_by_global_time() {
        let series = TimeSeries::constant(5.0, 80, 3.0).unwrap();
        // Arriving 160 samples into the day lands entirely in bucket 2.
        let sketch = MomentSketch::from_series(&series, 160, 80).unwrap();
        let profile = sketch.phase_profile();
        assert!((profile[2] - 3.0).abs() < 1e-12);
        assert_eq!(profile[0], 0.0);
    }

    #[test]
    fn merge_equals_single_pass() {
        let mut rng = SimRng::new(77);
        let a: Vec<f64> = (0..700).map(|_| rng.lognormal_mean_cv(1.5, 0.6)).collect();
        let b: Vec<f64> = (0..1300).map(|_| rng.lognormal_mean_cv(3.0, 0.3)).collect();
        let sa =
            MomentSketch::from_series(&TimeSeries::new(5.0, a.clone()).unwrap(), 0, 250).unwrap();
        let sb =
            MomentSketch::from_series(&TimeSeries::new(5.0, b.clone()).unwrap(), 700, 250).unwrap();
        let mut merged = sa;
        merged.merge(&sb).unwrap();
        let all: Vec<f64> = a.into_iter().chain(b).collect();
        let whole = MomentSketch::from_series(&TimeSeries::new(5.0, all).unwrap(), 0, 250).unwrap();
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.variance() - whole.variance()).abs() / whole.variance() < 1e-9);
        assert_eq!(merged.peak(), whole.peak());
        for b in 0..PHASE_BUCKETS {
            assert!((merged.phase_profile()[b] - whole.phase_profile()[b]).abs() < 1e-9);
        }
        // Mismatched bucket widths refuse to merge.
        let other = MomentSketch::new(99).unwrap();
        assert!(merged.merge(&other).is_err());
    }

    #[test]
    fn normal_quantile_hits_known_points() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.95) - 1.644854).abs() < 1e-4);
        assert!((normal_quantile(0.05) + 1.644854).abs() < 1e-4);
        assert!((normal_quantile(0.001) + 3.090232).abs() < 1e-4);
    }
}
