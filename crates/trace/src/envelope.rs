//! Verma-style binary envelopes.
//!
//! The PCP baseline of the paper (Verma et al., USENIX 2009, reference
//! \[6\]) clusters VMs by their **envelopes**: a VM's envelope is "a binary
//! sequence where the value becomes '1' when CPU utilization is higher
//! than the off-peak value, otherwise '0'" (paper §II). Two VMs whose
//! envelopes overlap peak together and must not be co-located; VMs in
//! different clusters peak at different times and may share a server with
//! off-peak provisioning plus a shared peak buffer.
//!
//! [`Envelope`] materializes that binary sequence and offers the overlap
//! metrics the clustering step needs.

use crate::{Reference, TimeSeries, TraceError};
use serde::{Deserialize, Serialize};

/// A binary peak-activity sequence derived from a utilization trace.
///
/// # Example
///
/// ```
/// use cavm_trace::{Envelope, Reference, TimeSeries};
///
/// # fn main() -> Result<(), cavm_trace::TraceError> {
/// let trace = TimeSeries::new(1.0, vec![0.1, 0.9, 0.95, 0.2, 0.85])?;
/// // Samples at or above the 60th percentile count as "peaking".
/// let env = Envelope::from_series(&trace, Reference::Percentile(60.0))?;
/// assert_eq!(env.active_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope {
    bits: Vec<bool>,
}

impl Envelope {
    /// Builds an envelope by thresholding a trace at its own reference
    /// value (`u(t) ≥ û` ⇒ active).
    ///
    /// With [`Reference::Peak`] only the exact peak samples are active;
    /// the useful settings are off-peak percentiles (the paper uses the
    /// 90th).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyInput`] on an empty trace and percentile
    /// errors from the reference evaluation.
    pub fn from_series(series: &TimeSeries, reference: Reference) -> crate::Result<Self> {
        let threshold = reference.of_series(series)?;
        Ok(Self::from_threshold(series, threshold))
    }

    /// Builds an envelope by thresholding at an absolute utilization
    /// value.
    pub fn from_threshold(series: &TimeSeries, threshold: f64) -> Self {
        Self {
            bits: series.values().iter().map(|&v| v >= threshold).collect(),
        }
    }

    /// Builds an envelope from raw bits.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Self { bits }
    }

    /// Number of samples covered.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` when the envelope covers no samples.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Borrow the raw bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Number of active ('1') samples.
    pub fn active_count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Fraction of active samples, 0.0 for an empty envelope.
    pub fn active_fraction(&self) -> f64 {
        if self.bits.is_empty() {
            0.0
        } else {
            self.active_count() as f64 / self.bits.len() as f64
        }
    }

    /// Number of samples where both envelopes are active.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] when lengths differ.
    pub fn overlap_count(&self, other: &Envelope) -> crate::Result<usize> {
        if self.len() != other.len() {
            return Err(TraceError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        Ok(self
            .bits
            .iter()
            .zip(&other.bits)
            .filter(|&(&a, &b)| a && b)
            .count())
    }

    /// Overlap normalized by the smaller active count: 1.0 means the
    /// smaller envelope's peaks are entirely contained in the other's.
    /// Returns 0.0 when either envelope has no active samples (no peaks
    /// cannot collide).
    ///
    /// This is the clustering affinity used by the PCP baseline: two VMs
    /// with high containment peak together.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] when lengths differ.
    pub fn containment(&self, other: &Envelope) -> crate::Result<f64> {
        let overlap = self.overlap_count(other)?;
        let denom = self.active_count().min(other.active_count());
        if denom == 0 {
            Ok(0.0)
        } else {
            Ok(overlap as f64 / denom as f64)
        }
    }

    /// Jaccard similarity of the active sets (|A∩B| / |A∪B|); 0.0 when
    /// both are entirely inactive.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] when lengths differ.
    pub fn jaccard(&self, other: &Envelope) -> crate::Result<f64> {
        let overlap = self.overlap_count(other)?;
        let union = self.active_count() + other.active_count() - overlap;
        if union == 0 {
            Ok(0.0)
        } else {
            Ok(overlap as f64 / union as f64)
        }
    }

    /// `true` when the two envelopes never peak simultaneously.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] when lengths differ.
    pub fn is_disjoint(&self, other: &Envelope) -> crate::Result<bool> {
        Ok(self.overlap_count(other)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> TimeSeries {
        TimeSeries::new(1.0, values.to_vec()).unwrap()
    }

    #[test]
    fn threshold_envelope() {
        let t = series(&[0.1, 0.5, 0.9, 0.5, 0.1]);
        let e = Envelope::from_threshold(&t, 0.5);
        assert_eq!(e.bits(), &[false, true, true, true, false]);
        assert_eq!(e.active_count(), 3);
        assert!((e.active_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn reference_envelope_peak_marks_only_peaks() {
        let t = series(&[0.2, 0.8, 0.8, 0.1]);
        let e = Envelope::from_series(&t, Reference::Peak).unwrap();
        assert_eq!(e.bits(), &[false, true, true, false]);
    }

    #[test]
    fn empty_envelope() {
        let e = Envelope::from_bits(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.active_fraction(), 0.0);
        let t = TimeSeries::new(1.0, vec![]).unwrap();
        assert!(Envelope::from_series(&t, Reference::Percentile(90.0)).is_err());
    }

    #[test]
    fn overlap_and_jaccard() {
        let a = Envelope::from_bits(vec![true, true, false, false]);
        let b = Envelope::from_bits(vec![false, true, true, false]);
        assert_eq!(a.overlap_count(&b).unwrap(), 1);
        assert!((a.jaccard(&b).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!((a.containment(&b).unwrap() - 0.5).abs() < 1e-12);
        assert!(!a.is_disjoint(&b).unwrap());
    }

    #[test]
    fn disjoint_envelopes() {
        let a = Envelope::from_bits(vec![true, false, true, false]);
        let b = Envelope::from_bits(vec![false, true, false, true]);
        assert!(a.is_disjoint(&b).unwrap());
        assert_eq!(a.jaccard(&b).unwrap(), 0.0);
        assert_eq!(a.containment(&b).unwrap(), 0.0);
    }

    #[test]
    fn all_inactive_has_zero_affinity() {
        let a = Envelope::from_bits(vec![false, false]);
        let b = Envelope::from_bits(vec![false, false]);
        assert_eq!(a.jaccard(&b).unwrap(), 0.0);
        assert_eq!(a.containment(&b).unwrap(), 0.0);
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let a = Envelope::from_bits(vec![true]);
        let b = Envelope::from_bits(vec![true, false]);
        assert!(matches!(
            a.overlap_count(&b),
            Err(TraceError::LengthMismatch { .. })
        ));
        assert!(matches!(
            a.jaccard(&b),
            Err(TraceError::LengthMismatch { .. })
        ));
        assert!(matches!(
            a.containment(&b),
            Err(TraceError::LengthMismatch { .. })
        ));
        assert!(matches!(
            a.is_disjoint(&b),
            Err(TraceError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn containment_is_symmetric() {
        let a = Envelope::from_bits(vec![true, true, true, false]);
        let b = Envelope::from_bits(vec![true, false, false, false]);
        assert_eq!(a.containment(&b).unwrap(), b.containment(&a).unwrap());
    }
}
