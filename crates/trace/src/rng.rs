//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the workspace (trace synthesis, query
//! arrivals, service demands) draws from [`SimRng`], a small xoshiro256**
//! generator seeded through SplitMix64. Keeping the generator in-house —
//! rather than depending on `rand`'s default generators — guarantees that
//! every experiment in the repository reproduces bit-for-bit from a single
//! `u64` seed, across platforms and dependency upgrades.
//!
//! The distribution repertoire is exactly what the paper's workloads
//! need:
//!
//! * uniform `f64` / ranges,
//! * normal (Box–Muller, with spare caching),
//! * **lognormal parameterized by its mean** — the paper refines 5-minute
//!   datacenter samples into 5-second samples "with a lognormal random
//!   number generator whose mean is the same as the collected value"
//!   (§V-B, citing Benson et al.),
//! * Poisson (query arrivals), exponential (inter-arrival gaps).
//!
//! # Example
//!
//! ```
//! use cavm_trace::SimRng;
//!
//! let mut a = SimRng::new(7);
//! let mut b = SimRng::new(7);
//! // Identical seeds replay identical streams, across every
//! // distribution.
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
//! // The mean-parameterized lognormal stays positive (it refines
//! // coarse datacenter samples into fine ones, §V-B).
//! let sample = a.lognormal_mean_cv(2.0, 0.5);
//! assert!(sample > 0.0);
//! ```

use crate::TraceError;
use serde::{Deserialize, Serialize};

/// SplitMix64 step: the recommended seeding engine for xoshiro.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256** PRNG with the distributions used across the
/// workspace.
///
/// # Example
///
/// ```
/// use cavm_trace::SimRng;
///
/// let mut a = SimRng::new(1234);
/// let mut b = SimRng::new(1234);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully reproducible
///
/// let mut rng = SimRng::new(7);
/// let x = rng.lognormal_mean_cv(2.0, 0.4);
/// assert!(x > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second output of the last Box–Muller transform.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self {
            s,
            spare_normal: None,
        }
    }

    /// Derives an independent child generator for a named sub-stream.
    ///
    /// Forking decorrelates the consumption patterns of different model
    /// components: e.g. each VM's trace generator forks from the scenario
    /// seed with the VM index, so adding a VM never perturbs the traces of
    /// the others.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the current state with the stream id through SplitMix64.
        let mut sm = self
            .s
            .iter()
            .fold(stream.wrapping_mul(0xA24B_AED4_963E_E407), |acc, &w| {
                acc.rotate_left(23) ^ w
            });
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` via Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        let n = n as u64;
        // Widening-multiply rejection sampling (unbiased).
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal via Box–Muller (caches the paired output).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid u == 0 so ln(u) is finite.
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let v = self.f64();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or non-finite.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        assert!(std.is_finite() && std >= 0.0, "bad std {std}");
        mean + std * self.standard_normal()
    }

    /// Lognormal draw parameterized by **mean** and coefficient of
    /// variation.
    ///
    /// If `X = exp(N(μ, σ²))` then `E[X] = exp(μ + σ²/2)` and
    /// `CV² = exp(σ²) − 1`; solving gives `σ² = ln(1 + CV²)` and
    /// `μ = ln(mean) − σ²/2`. This is the paper's trace-refinement
    /// primitive: 5-minute means expanded into bursty 5-second samples
    /// with the mean preserved in expectation.
    ///
    /// A `mean` of zero (idle interval) deterministically returns 0, and
    /// `cv == 0` returns `mean` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `mean < 0` or `cv < 0` or either is non-finite.
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        assert!(mean.is_finite() && mean >= 0.0, "bad lognormal mean {mean}");
        assert!(cv.is_finite() && cv >= 0.0, "bad lognormal cv {cv}");
        if mean == 0.0 {
            return 0.0;
        }
        if cv == 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        (mu + sigma2.sqrt() * self.standard_normal()).exp()
    }

    /// Exponential draw with the given rate (mean `1/rate`).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] unless `rate > 0` and
    /// finite.
    pub fn exponential(&mut self, rate: f64) -> crate::Result<f64> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(TraceError::InvalidParameter("exponential rate must be > 0"));
        }
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        Ok(-u.ln() / rate)
    }

    /// Poisson draw with the given mean.
    ///
    /// Uses Knuth's product method for small means and a clamped normal
    /// approximation for `lambda > 30` (ample for per-tick query counts).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] for negative or non-finite
    /// `lambda`.
    pub fn poisson(&mut self, lambda: f64) -> crate::Result<u64> {
        if !(lambda.is_finite() && lambda >= 0.0) {
            return Err(TraceError::InvalidParameter("poisson mean must be >= 0"));
        }
        if lambda == 0.0 {
            return Ok(0);
        }
        if lambda > 30.0 {
            let draw = self.normal(lambda, lambda.sqrt());
            return Ok(draw.round().max(0.0) as u64);
        }
        let limit = (-lambda).exp();
        let mut product = self.f64();
        let mut count = 0u64;
        while product > limit {
            count += 1;
            product *= self.f64();
        }
        Ok(count)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let root = SimRng::new(42);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let mut c1_again = root.fork(0);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = SimRng::new(6);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = SimRng::new(11);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.below(5)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::new(0).below(0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(21);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_mean_is_preserved() {
        let mut rng = SimRng::new(31);
        let n = 200_000;
        let target_mean = 2.5;
        let cv = 0.6;
        let mean = (0..n)
            .map(|_| rng.lognormal_mean_cv(target_mean, cv))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - target_mean).abs() / target_mean < 0.02,
            "lognormal mean {mean} vs target {target_mean}"
        );
    }

    #[test]
    fn lognormal_cv_is_preserved() {
        let mut rng = SimRng::new(32);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.lognormal_mean_cv(1.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 0.5).abs() < 0.02, "cv {cv}");
    }

    #[test]
    fn lognormal_edge_cases() {
        let mut rng = SimRng::new(33);
        assert_eq!(rng.lognormal_mean_cv(0.0, 0.5), 0.0);
        assert_eq!(rng.lognormal_mean_cv(3.0, 0.0), 3.0);
        for _ in 0..1000 {
            assert!(rng.lognormal_mean_cv(1.0, 2.0) > 0.0);
        }
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(41);
        let n = 100_000;
        let mut acc = 0.0;
        for _ in 0..n {
            acc += rng.exponential(4.0).unwrap();
        }
        let mean = acc / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
        assert!(rng.exponential(0.0).is_err());
        assert!(rng.exponential(-1.0).is_err());
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut rng = SimRng::new(51);
        for &lambda in &[0.5, 3.0, 12.0, 80.0] {
            let n = 40_000;
            let mut acc = 0u64;
            for _ in 0..n {
                acc += rng.poisson(lambda).unwrap();
            }
            let mean = acc as f64 / n as f64;
            assert!(
                (mean - lambda).abs() / lambda < 0.05,
                "poisson mean {mean} vs lambda {lambda}"
            );
        }
        assert_eq!(rng.poisson(0.0).unwrap(), 0);
        assert!(rng.poisson(-1.0).is_err());
        assert!(rng.poisson(f64::NAN).is_err());
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SimRng::new(61);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity permutation (astronomically unlikely)"
        );
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = SimRng::new(71);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let one = [42u8];
        assert_eq!(rng.choose(&one), Some(&42));
    }
}
