//! Constant-memory streaming statistics.
//!
//! The paper's key argument for its cost function (§IV-A) is that it "can
//! update the values at each sampling period", saving the memory to store
//! all samples and spreading the computation evenly over time. The
//! streaming estimators here make that operational:
//!
//! * [`StreamingPeak`] — running maximum (û under [`Reference::Peak`]).
//! * [`P2Quantile`] — the P² algorithm of Jain & Chlamtac: a five-marker
//!   streaming quantile estimator (û under [`Reference::Percentile`]).
//! * [`Ewma`] — exponentially weighted moving average, used by the EWMA
//!   workload predictor.
//! * [`WindowedMax`] — sliding-window maximum with amortized O(1) updates
//!   (monotonic deque), used by the dynamic DVFS governor.
//!
//! [`Reference::Peak`]: crate::Reference::Peak
//! [`Reference::Percentile`]: crate::Reference::Percentile

use crate::TraceError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Running maximum of a sample stream.
///
/// # Example
///
/// ```
/// use cavm_trace::StreamingPeak;
///
/// let mut peak = StreamingPeak::new();
/// for x in [0.3, 1.8, 0.9] {
///     peak.push(x);
/// }
/// assert_eq!(peak.peak(), 1.8);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingPeak {
    peak: f64,
    count: u64,
}

impl StreamingPeak {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self {
            peak: f64::NEG_INFINITY,
            count: 0,
        }
    }

    /// Feeds one sample.
    pub fn push(&mut self, x: f64) {
        self.peak = self.peak.max(x);
        self.count += 1;
    }

    /// Feeds a whole slice of samples — a batch convenience for
    /// replaying a stored window into a standalone tracker.
    /// Equivalent to pushing each sample in order. (The SoA cost
    /// matrix keeps raw `f64` planes instead; see
    /// `cavm_core::corr::matrix`.)
    pub fn push_batch(&mut self, xs: &[f64]) {
        let mut peak = self.peak;
        for &x in xs {
            peak = peak.max(x);
        }
        self.peak = peak;
        self.count += xs.len() as u64;
    }

    /// Current maximum; 0.0 before any sample (idle signal convention).
    pub fn peak(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.peak
        }
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Forgets everything.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

/// P² (P-square) streaming quantile estimator (Jain & Chlamtac, 1985).
///
/// Tracks a single quantile with five markers and O(1) work per sample —
/// the standard answer to "percentile without storing the samples",
/// which is exactly the constraint the paper motivates its cost function
/// with.
///
/// Accuracy is typically within a fraction of a percent of the exact
/// percentile for smooth distributions; the property tests in this module
/// pin the error envelope.
///
/// # Example
///
/// ```
/// use cavm_trace::P2Quantile;
///
/// # fn main() -> Result<(), cavm_trace::TraceError> {
/// let mut q = P2Quantile::new(0.90)?;
/// for i in 0..10_000 {
///     q.push((i % 100) as f64);
/// }
/// let est = q.estimate().unwrap();
/// assert!((est - 89.0).abs() < 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights q_1..q_5.
    q: [f64; 5],
    /// Marker positions n_1..n_5 (1-based as in the original paper).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
    /// Number of samples seen.
    count: u64,
    /// First five samples, buffered until initialization.
    init: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] unless `0 < p < 1`.
    pub fn new(p: f64) -> crate::Result<Self> {
        if !(p > 0.0 && p < 1.0) {
            return Err(TraceError::InvalidParameter(
                "P2 quantile must lie in (0, 1)",
            ));
        }
        Ok(Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        })
    }

    /// The tracked quantile, in `(0, 1)`.
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
                for (qi, &v) in self.q.iter_mut().zip(self.init.iter()) {
                    *qi = v;
                }
            }
            return;
        }

        // 1. Find the cell k containing x and update extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x < self.q[1] {
            0
        } else if x < self.q[2] {
            1
        } else if x < self.q[3] {
            2
        } else if x <= self.q[4] {
            3
        } else {
            self.q[4] = x;
            3
        };

        // 2. Increment positions of markers above the cell.
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // 3. Adjust interior markers if they drifted off their desired
        //    positions by one or more.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < candidate && candidate < self.q[i + 1] {
                    candidate
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate, or `None` before any sample arrived.
    ///
    /// With fewer than five samples the exact sample quantile of the
    /// buffered values is returned.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.init.len() < 5 {
            let mut sorted = self.init.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            return Some(crate::stats::percentile_of_sorted(&sorted, self.p * 100.0));
        }
        Some(self.q[2])
    }

    /// Feeds a whole slice of samples in order — a batch convenience
    /// for replaying a stored window into a standalone estimator.
    /// (Banked estimators use [`P2Cell`]/[`P2Clock`] instead.)
    pub fn push_batch(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }
}

/// Shared per-tick bookkeeping for a *bank* of P² estimators that all
/// receive exactly one sample per tick (e.g. every pair slot of a cost
/// matrix).
///
/// The P² algorithm keeps three kinds of state per estimator: marker
/// heights `q`, marker positions `n`, and *desired* positions `np`.
/// When every estimator in a bank sees the same number of samples, the
/// desired positions and the sample count are identical across the
/// bank — only `q` and the interior of `n` are data-dependent. Hoisting
/// the shared part into one clock shrinks per-stream state from the
/// ~200 bytes of [`P2Quantile`] to the 64 bytes of [`P2Cell`] and
/// removes all per-sample branching on initialization bookkeeping.
///
/// Protocol: call [`P2Clock::tick`] once per sampling instant, then
/// [`P2Cell::push`] every cell with that tick's sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Clock {
    p: f64,
    count: u64,
    /// Desired marker positions (valid once `count >= 5`).
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
}

impl P2Clock {
    /// Creates a clock for quantile `p ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] unless `0 < p < 1`.
    pub fn new(p: f64) -> crate::Result<Self> {
        if !(p > 0.0 && p < 1.0) {
            return Err(TraceError::InvalidParameter(
                "P2 quantile must lie in (0, 1)",
            ));
        }
        Ok(Self {
            p,
            count: 0,
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
        })
    }

    /// The tracked quantile, in `(0, 1)`.
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Number of ticks seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Advances the clock by one sampling instant. Must be called
    /// exactly once per tick, *before* pushing that tick's samples into
    /// the cells.
    pub fn tick(&mut self) {
        self.count += 1;
        // P² only advances desired positions after the five-sample
        // initialization phase — mirroring `P2Quantile::push`.
        if self.count > 5 {
            for i in 0..5 {
                self.np[i] += self.dn[i];
            }
        }
    }

    /// Forgets all ticks (keeps the quantile).
    pub fn reset(&mut self) {
        *self = Self::new(self.p).expect("quantile already validated");
    }
}

/// Compact per-stream P² state driven by a shared [`P2Clock`]:
/// five marker heights plus the three *interior* marker positions
/// (`n[0] ≡ 1` and `n[4] ≡ count` are implied by the clock).
///
/// Produces bit-identical estimates to a standalone [`P2Quantile`] fed
/// the same sample sequence — the property tests in this module and the
/// cost-matrix equivalence suite pin that.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
#[repr(C)]
pub struct P2Cell {
    /// Marker heights `q_1..q_5`; doubles as the init buffer while the
    /// clock counts the first five ticks.
    q: [f64; 5],
    /// Interior marker positions `n_2..n_4` (1-based as in the paper).
    n: [f64; 3],
}

impl Default for P2Cell {
    fn default() -> Self {
        Self::new()
    }
}

impl P2Cell {
    /// Creates an empty cell.
    pub fn new() -> Self {
        Self {
            q: [0.0; 5],
            n: [2.0, 3.0, 4.0],
        }
    }

    /// Feeds the sample for the clock's current tick. The clock must
    /// already have been advanced with [`P2Clock::tick`] for this
    /// instant.
    pub fn push(&mut self, x: f64, clock: &P2Clock) {
        let count = clock.count;
        debug_assert!(count > 0, "tick the clock before pushing");
        if count <= 5 {
            self.q[(count - 1) as usize] = x;
            if count == 5 {
                self.q
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            }
            return;
        }

        // Reconstruct the full 5-marker position vector; the clock has
        // already advanced np for this tick. The arithmetic below
        // produces bit-identical markers to `P2Quantile::push`; steps 1
        // and 2 are phrased as arithmetic selects instead of the
        // classic branch ladder so the hot matrix-tick loop does not
        // stall on data-dependent branches.
        let q = &mut self.q;
        let mut n = [1.0, self.n[0], self.n[1], self.n[2], (count - 1) as f64];
        let np = &clock.np;

        // 1. Find the cell k containing x and update extreme markers.
        //    The marker heights are non-decreasing (initial sort plus
        //    the neighbor guards of step 3 preserve it), so the cell
        //    index is the count of interior markers at or below x —
        //    three flag additions instead of a five-way ladder. The
        //    extreme updates compile to conditional moves.
        q[0] = if x < q[0] { x } else { q[0] };
        q[4] = if x > q[4] { x } else { q[4] };
        let k = usize::from(x >= q[1]) + usize::from(x >= q[2]) + usize::from(x >= q[3]);

        // 2. Increment positions of markers above the cell. k ≤ 3, so
        //    n[4] always advances; the interior flags add 0.0 or 1.0
        //    (exact for the positive finite positions).
        n[1] += f64::from(u8::from(k < 1));
        n[2] += f64::from(u8::from(k < 2));
        n[3] += f64::from(u8::from(k < 3));
        n[4] += 1.0;

        // 3. Adjust interior markers that drifted off their desired
        //    positions by one or more.
        for i in 1..4 {
            let d = np[i] - n[i];
            if (d >= 1.0 && n[i + 1] - n[i] > 1.0) || (d <= -1.0 && n[i - 1] - n[i] < -1.0) {
                let d = d.signum();
                let candidate = Self::parabolic(q, &n, i, d);
                q[i] = if q[i - 1] < candidate && candidate < q[i + 1] {
                    candidate
                } else {
                    Self::linear(q, &n, i, d)
                };
                n[i] += d;
            }
        }

        self.n = [n[1], n[2], n[3]];
    }

    fn parabolic(q: &[f64; 5], n: &[f64; 5], i: usize, d: f64) -> f64 {
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(q: &[f64; 5], n: &[f64; 5], i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
    }

    /// Current estimate under the given clock, or `None` before any
    /// tick. With fewer than five ticks the exact sample quantile of
    /// the buffered values is returned (matching [`P2Quantile`]).
    pub fn estimate(&self, clock: &P2Clock) -> Option<f64> {
        if clock.count == 0 {
            return None;
        }
        if clock.count < 5 {
            let mut sorted = self.q[..clock.count as usize].to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            return Some(crate::stats::percentile_of_sorted(&sorted, clock.p * 100.0));
        }
        Some(self.q[2])
    }

    /// Forgets all samples.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

/// Exponentially weighted moving average.
///
/// `y_k = α·x_k + (1-α)·y_{k-1}`, seeded with the first sample.
///
/// # Example
///
/// ```
/// use cavm_trace::Ewma;
///
/// # fn main() -> Result<(), cavm_trace::TraceError> {
/// let mut e = Ewma::new(0.5)?;
/// e.push(0.0);
/// e.push(10.0);
/// assert_eq!(e.value().unwrap(), 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> crate::Result<Self> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(TraceError::InvalidParameter(
                "EWMA alpha must lie in (0, 1]",
            ));
        }
        Ok(Self { alpha, value: None })
    }

    /// Smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Feeds one sample and returns the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.value = Some(next);
        next
    }

    /// Current average, or `None` before any sample.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Forgets the state (keeps `alpha`).
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Sliding-window maximum with amortized O(1) push (monotonic deque).
///
/// Used by the dynamic DVFS governor, which re-evaluates the frequency
/// from the peak utilization of the last `k` samples.
///
/// # Example
///
/// ```
/// use cavm_trace::WindowedMax;
///
/// # fn main() -> Result<(), cavm_trace::TraceError> {
/// let mut w = WindowedMax::new(3)?;
/// for (x, expect) in [(1.0, 1.0), (5.0, 5.0), (2.0, 5.0), (0.5, 5.0), (0.2, 2.0)] {
///     w.push(x);
///     assert_eq!(w.max().unwrap(), expect);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowedMax {
    window: usize,
    /// (sequence index, value), values strictly decreasing front→back.
    deque: VecDeque<(u64, f64)>,
    next_index: u64,
}

impl WindowedMax {
    /// Creates a tracker over the last `window` samples.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] when `window == 0`.
    pub fn new(window: usize) -> crate::Result<Self> {
        if window == 0 {
            return Err(TraceError::InvalidParameter("window must be >= 1"));
        }
        Ok(Self {
            window,
            deque: VecDeque::new(),
            next_index: 0,
        })
    }

    /// Window length in samples.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Feeds one sample.
    pub fn push(&mut self, x: f64) {
        let idx = self.next_index;
        self.next_index += 1;
        while matches!(self.deque.back(), Some(&(_, v)) if v <= x) {
            self.deque.pop_back();
        }
        self.deque.push_back((idx, x));
        // Expire entries that slid out of the window.
        let min_live = idx + 1 - (self.window as u64).min(idx + 1);
        while matches!(self.deque.front(), Some(&(i, _)) if i < min_live) {
            self.deque.pop_front();
        }
    }

    /// Maximum over the last `window` samples, or `None` before any
    /// sample.
    pub fn max(&self) -> Option<f64> {
        self.deque.front().map(|&(_, v)| v)
    }

    /// Forgets all samples (keeps the window length).
    pub fn reset(&mut self) {
        self.deque.clear();
        self.next_index = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn streaming_peak_tracks_max() {
        let mut p = StreamingPeak::new();
        assert_eq!(p.peak(), 0.0);
        p.push(-5.0);
        assert_eq!(p.peak(), -5.0);
        p.push(3.0);
        p.push(1.0);
        assert_eq!(p.peak(), 3.0);
        assert_eq!(p.count(), 3);
        p.reset();
        assert_eq!(p.peak(), 0.0);
        assert_eq!(p.count(), 0);
    }

    #[test]
    fn p2_rejects_degenerate_quantiles() {
        assert!(P2Quantile::new(0.0).is_err());
        assert!(P2Quantile::new(1.0).is_err());
        assert!(P2Quantile::new(-0.3).is_err());
        assert!(P2Quantile::new(0.5).is_ok());
    }

    #[test]
    fn p2_exact_below_five_samples() {
        let mut q = P2Quantile::new(0.5).unwrap();
        assert_eq!(q.estimate(), None);
        q.push(3.0);
        assert_eq!(q.estimate(), Some(3.0));
        q.push(1.0);
        // Median of {1, 3} with linear interpolation.
        assert_eq!(q.estimate(), Some(2.0));
    }

    #[test]
    fn p2_close_to_exact_on_uniform() {
        let mut rng = SimRng::new(7);
        let mut q = P2Quantile::new(0.9).unwrap();
        let mut all = Vec::new();
        for _ in 0..50_000 {
            let x = rng.f64();
            q.push(x);
            all.push(x);
        }
        let exact = crate::percentile(&all, 90.0).unwrap();
        let est = q.estimate().unwrap();
        assert!(
            (est - exact).abs() < 0.01,
            "P² estimate {est} too far from exact {exact}"
        );
    }

    #[test]
    fn p2_close_to_exact_on_lognormal() {
        let mut rng = SimRng::new(99);
        let mut q = P2Quantile::new(0.95).unwrap();
        let mut all = Vec::new();
        for _ in 0..50_000 {
            let x = rng.lognormal_mean_cv(2.0, 0.5);
            q.push(x);
            all.push(x);
        }
        let exact = crate::percentile(&all, 95.0).unwrap();
        let est = q.estimate().unwrap();
        assert!(
            (est - exact).abs() / exact < 0.05,
            "P² estimate {est} too far from exact {exact}"
        );
    }

    #[test]
    fn p2_monotone_input() {
        let mut q = P2Quantile::new(0.9).unwrap();
        for i in 0..1000 {
            q.push(i as f64);
        }
        let est = q.estimate().unwrap();
        assert!((est - 900.0).abs() < 30.0, "estimate {est}");
        assert_eq!(q.count(), 1000);
        assert_eq!(q.quantile(), 0.9);
    }

    #[test]
    fn ewma_basics() {
        assert!(Ewma::new(0.0).is_err());
        assert!(Ewma::new(1.5).is_err());
        let mut e = Ewma::new(1.0).unwrap();
        assert_eq!(e.value(), None);
        e.push(3.0);
        e.push(9.0);
        // alpha = 1 tracks the last sample exactly.
        assert_eq!(e.value(), Some(9.0));
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.alpha(), 1.0);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.2).unwrap();
        for _ in 0..200 {
            e.push(4.0);
        }
        assert!((e.value().unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn windowed_max_matches_naive() {
        let mut rng = SimRng::new(3);
        let xs: Vec<f64> = (0..500).map(|_| rng.f64()).collect();
        for window in [1, 3, 7, 64] {
            let mut w = WindowedMax::new(window).unwrap();
            for (i, &x) in xs.iter().enumerate() {
                w.push(x);
                let lo = i + 1 - window.min(i + 1);
                let naive = xs[lo..=i].iter().copied().fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(w.max().unwrap(), naive, "window={window} i={i}");
            }
        }
        assert!(WindowedMax::new(0).is_err());
    }

    #[test]
    fn p2_cell_bit_identical_to_p2_quantile() {
        for (seed, p) in [(1u64, 0.5), (7, 0.9), (13, 0.95), (99, 0.05)] {
            let mut rng = SimRng::new(seed);
            let mut reference = P2Quantile::new(p).unwrap();
            let mut clock = P2Clock::new(p).unwrap();
            let mut cell = P2Cell::new();
            assert_eq!(cell.estimate(&clock), None);
            for i in 0..5_000 {
                let x = rng.lognormal_mean_cv(2.0, 0.8);
                reference.push(x);
                clock.tick();
                cell.push(x, &clock);
                let a = reference.estimate().unwrap();
                let b = cell.estimate(&clock).unwrap();
                assert_eq!(a.to_bits(), b.to_bits(), "diverged at sample {i} (p={p})");
            }
            assert_eq!(clock.count(), 5_000);
            assert_eq!(clock.quantile(), p);
        }
    }

    #[test]
    fn p2_clock_validates_and_resets() {
        assert!(P2Clock::new(0.0).is_err());
        assert!(P2Clock::new(1.0).is_err());
        let mut clock = P2Clock::new(0.9).unwrap();
        let mut cell = P2Cell::new();
        clock.tick();
        cell.push(3.0, &clock);
        assert_eq!(cell.estimate(&clock), Some(3.0));
        clock.reset();
        cell.reset();
        assert_eq!(clock.count(), 0);
        assert_eq!(cell.estimate(&clock), None);
    }

    #[test]
    fn push_batch_matches_serial_pushes() {
        let mut rng = SimRng::new(21);
        let xs: Vec<f64> = (0..400).map(|_| rng.f64() * 9.0 - 3.0).collect();

        let mut serial_peak = StreamingPeak::new();
        xs.iter().for_each(|&x| serial_peak.push(x));
        let mut batch_peak = StreamingPeak::new();
        batch_peak.push_batch(&xs);
        assert_eq!(serial_peak, batch_peak);

        let mut serial_q = P2Quantile::new(0.9).unwrap();
        xs.iter().for_each(|&x| serial_q.push(x));
        let mut batch_q = P2Quantile::new(0.9).unwrap();
        batch_q.push_batch(&xs);
        assert_eq!(
            serial_q.estimate().unwrap().to_bits(),
            batch_q.estimate().unwrap().to_bits()
        );
        assert_eq!(serial_q.count(), batch_q.count());
    }

    #[test]
    fn windowed_max_reset() {
        let mut w = WindowedMax::new(2).unwrap();
        w.push(9.0);
        w.reset();
        assert_eq!(w.max(), None);
        w.push(1.0);
        assert_eq!(w.max(), Some(1.0));
        assert_eq!(w.window(), 2);
    }
}
