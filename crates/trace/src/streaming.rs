//! Constant-memory streaming statistics.
//!
//! The paper's key argument for its cost function (§IV-A) is that it "can
//! update the values at each sampling period", saving the memory to store
//! all samples and spreading the computation evenly over time. The
//! streaming estimators here make that operational:
//!
//! * [`StreamingPeak`] — running maximum (û under [`Reference::Peak`]).
//! * [`P2Quantile`] — the P² algorithm of Jain & Chlamtac: a five-marker
//!   streaming quantile estimator (û under [`Reference::Percentile`]).
//! * [`Ewma`] — exponentially weighted moving average, used by the EWMA
//!   workload predictor.
//! * [`WindowedMax`] — sliding-window maximum with amortized O(1) updates
//!   (monotonic deque), used by the dynamic DVFS governor.
//!
//! [`Reference::Peak`]: crate::Reference::Peak
//! [`Reference::Percentile`]: crate::Reference::Percentile

use crate::TraceError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Running maximum of a sample stream.
///
/// # Example
///
/// ```
/// use cavm_trace::StreamingPeak;
///
/// let mut peak = StreamingPeak::new();
/// for x in [0.3, 1.8, 0.9] {
///     peak.push(x);
/// }
/// assert_eq!(peak.peak(), 1.8);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingPeak {
    peak: f64,
    count: u64,
}

impl StreamingPeak {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self { peak: f64::NEG_INFINITY, count: 0 }
    }

    /// Feeds one sample.
    pub fn push(&mut self, x: f64) {
        self.peak = self.peak.max(x);
        self.count += 1;
    }

    /// Current maximum; 0.0 before any sample (idle signal convention).
    pub fn peak(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.peak
        }
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Forgets everything.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

/// P² (P-square) streaming quantile estimator (Jain & Chlamtac, 1985).
///
/// Tracks a single quantile with five markers and O(1) work per sample —
/// the standard answer to "percentile without storing the samples",
/// which is exactly the constraint the paper motivates its cost function
/// with.
///
/// Accuracy is typically within a fraction of a percent of the exact
/// percentile for smooth distributions; the property tests in this module
/// pin the error envelope.
///
/// # Example
///
/// ```
/// use cavm_trace::P2Quantile;
///
/// # fn main() -> Result<(), cavm_trace::TraceError> {
/// let mut q = P2Quantile::new(0.90)?;
/// for i in 0..10_000 {
///     q.push((i % 100) as f64);
/// }
/// let est = q.estimate().unwrap();
/// assert!((est - 89.0).abs() < 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights q_1..q_5.
    q: [f64; 5],
    /// Marker positions n_1..n_5 (1-based as in the original paper).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
    /// Number of samples seen.
    count: u64,
    /// First five samples, buffered until initialization.
    init: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] unless `0 < p < 1`.
    pub fn new(p: f64) -> crate::Result<Self> {
        if !(p > 0.0 && p < 1.0) {
            return Err(TraceError::InvalidParameter("P2 quantile must lie in (0, 1)"));
        }
        Ok(Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        })
    }

    /// The tracked quantile, in `(0, 1)`.
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
                for (qi, &v) in self.q.iter_mut().zip(self.init.iter()) {
                    *qi = v;
                }
            }
            return;
        }

        // 1. Find the cell k containing x and update extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x < self.q[1] {
            0
        } else if x < self.q[2] {
            1
        } else if x < self.q[3] {
            2
        } else if x <= self.q[4] {
            3
        } else {
            self.q[4] = x;
            3
        };

        // 2. Increment positions of markers above the cell.
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // 3. Adjust interior markers if they drifted off their desired
        //    positions by one or more.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < candidate && candidate < self.q[i + 1] {
                    candidate
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate, or `None` before any sample arrived.
    ///
    /// With fewer than five samples the exact sample quantile of the
    /// buffered values is returned.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.init.len() < 5 {
            let mut sorted = self.init.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            return Some(crate::stats::percentile_of_sorted(&sorted, self.p * 100.0));
        }
        Some(self.q[2])
    }
}

/// Exponentially weighted moving average.
///
/// `y_k = α·x_k + (1-α)·y_{k-1}`, seeded with the first sample.
///
/// # Example
///
/// ```
/// use cavm_trace::Ewma;
///
/// # fn main() -> Result<(), cavm_trace::TraceError> {
/// let mut e = Ewma::new(0.5)?;
/// e.push(0.0);
/// e.push(10.0);
/// assert_eq!(e.value().unwrap(), 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> crate::Result<Self> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(TraceError::InvalidParameter("EWMA alpha must lie in (0, 1]"));
        }
        Ok(Self { alpha, value: None })
    }

    /// Smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Feeds one sample and returns the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.value = Some(next);
        next
    }

    /// Current average, or `None` before any sample.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Forgets the state (keeps `alpha`).
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Sliding-window maximum with amortized O(1) push (monotonic deque).
///
/// Used by the dynamic DVFS governor, which re-evaluates the frequency
/// from the peak utilization of the last `k` samples.
///
/// # Example
///
/// ```
/// use cavm_trace::WindowedMax;
///
/// # fn main() -> Result<(), cavm_trace::TraceError> {
/// let mut w = WindowedMax::new(3)?;
/// for (x, expect) in [(1.0, 1.0), (5.0, 5.0), (2.0, 5.0), (0.5, 5.0), (0.2, 2.0)] {
///     w.push(x);
///     assert_eq!(w.max().unwrap(), expect);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowedMax {
    window: usize,
    /// (sequence index, value), values strictly decreasing front→back.
    deque: VecDeque<(u64, f64)>,
    next_index: u64,
}

impl WindowedMax {
    /// Creates a tracker over the last `window` samples.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] when `window == 0`.
    pub fn new(window: usize) -> crate::Result<Self> {
        if window == 0 {
            return Err(TraceError::InvalidParameter("window must be >= 1"));
        }
        Ok(Self { window, deque: VecDeque::new(), next_index: 0 })
    }

    /// Window length in samples.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Feeds one sample.
    pub fn push(&mut self, x: f64) {
        let idx = self.next_index;
        self.next_index += 1;
        while matches!(self.deque.back(), Some(&(_, v)) if v <= x) {
            self.deque.pop_back();
        }
        self.deque.push_back((idx, x));
        // Expire entries that slid out of the window.
        let min_live = idx + 1 - (self.window as u64).min(idx + 1);
        while matches!(self.deque.front(), Some(&(i, _)) if i < min_live) {
            self.deque.pop_front();
        }
    }

    /// Maximum over the last `window` samples, or `None` before any
    /// sample.
    pub fn max(&self) -> Option<f64> {
        self.deque.front().map(|&(_, v)| v)
    }

    /// Forgets all samples (keeps the window length).
    pub fn reset(&mut self) {
        self.deque.clear();
        self.next_index = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn streaming_peak_tracks_max() {
        let mut p = StreamingPeak::new();
        assert_eq!(p.peak(), 0.0);
        p.push(-5.0);
        assert_eq!(p.peak(), -5.0);
        p.push(3.0);
        p.push(1.0);
        assert_eq!(p.peak(), 3.0);
        assert_eq!(p.count(), 3);
        p.reset();
        assert_eq!(p.peak(), 0.0);
        assert_eq!(p.count(), 0);
    }

    #[test]
    fn p2_rejects_degenerate_quantiles() {
        assert!(P2Quantile::new(0.0).is_err());
        assert!(P2Quantile::new(1.0).is_err());
        assert!(P2Quantile::new(-0.3).is_err());
        assert!(P2Quantile::new(0.5).is_ok());
    }

    #[test]
    fn p2_exact_below_five_samples() {
        let mut q = P2Quantile::new(0.5).unwrap();
        assert_eq!(q.estimate(), None);
        q.push(3.0);
        assert_eq!(q.estimate(), Some(3.0));
        q.push(1.0);
        // Median of {1, 3} with linear interpolation.
        assert_eq!(q.estimate(), Some(2.0));
    }

    #[test]
    fn p2_close_to_exact_on_uniform() {
        let mut rng = SimRng::new(7);
        let mut q = P2Quantile::new(0.9).unwrap();
        let mut all = Vec::new();
        for _ in 0..50_000 {
            let x = rng.f64();
            q.push(x);
            all.push(x);
        }
        let exact = crate::percentile(&all, 90.0).unwrap();
        let est = q.estimate().unwrap();
        assert!(
            (est - exact).abs() < 0.01,
            "P² estimate {est} too far from exact {exact}"
        );
    }

    #[test]
    fn p2_close_to_exact_on_lognormal() {
        let mut rng = SimRng::new(99);
        let mut q = P2Quantile::new(0.95).unwrap();
        let mut all = Vec::new();
        for _ in 0..50_000 {
            let x = rng.lognormal_mean_cv(2.0, 0.5);
            q.push(x);
            all.push(x);
        }
        let exact = crate::percentile(&all, 95.0).unwrap();
        let est = q.estimate().unwrap();
        assert!(
            (est - exact).abs() / exact < 0.05,
            "P² estimate {est} too far from exact {exact}"
        );
    }

    #[test]
    fn p2_monotone_input() {
        let mut q = P2Quantile::new(0.9).unwrap();
        for i in 0..1000 {
            q.push(i as f64);
        }
        let est = q.estimate().unwrap();
        assert!((est - 900.0).abs() < 30.0, "estimate {est}");
        assert_eq!(q.count(), 1000);
        assert_eq!(q.quantile(), 0.9);
    }

    #[test]
    fn ewma_basics() {
        assert!(Ewma::new(0.0).is_err());
        assert!(Ewma::new(1.5).is_err());
        let mut e = Ewma::new(1.0).unwrap();
        assert_eq!(e.value(), None);
        e.push(3.0);
        e.push(9.0);
        // alpha = 1 tracks the last sample exactly.
        assert_eq!(e.value(), Some(9.0));
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.alpha(), 1.0);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.2).unwrap();
        for _ in 0..200 {
            e.push(4.0);
        }
        assert!((e.value().unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn windowed_max_matches_naive() {
        let mut rng = SimRng::new(3);
        let xs: Vec<f64> = (0..500).map(|_| rng.f64()).collect();
        for window in [1, 3, 7, 64] {
            let mut w = WindowedMax::new(window).unwrap();
            for (i, &x) in xs.iter().enumerate() {
                w.push(x);
                let lo = i + 1 - window.min(i + 1);
                let naive =
                    xs[lo..=i].iter().copied().fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(w.max().unwrap(), naive, "window={window} i={i}");
            }
        }
        assert!(WindowedMax::new(0).is_err());
    }

    #[test]
    fn windowed_max_reset() {
        let mut w = WindowedMax::new(2).unwrap();
        w.push(9.0);
        w.reset();
        assert_eq!(w.max(), None);
        w.push(1.0);
        assert_eq!(w.max(), Some(1.0));
        assert_eq!(w.window(), 2);
    }
}
