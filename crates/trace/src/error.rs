use std::fmt;

/// Errors produced by the time-series substrate.
///
/// All fallible operations in this crate return [`TraceError`]; it is
/// `Send + Sync + 'static` so it composes with any error-handling stack.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A sampling interval was zero, negative, NaN or infinite.
    InvalidInterval(f64),
    /// An operation required a non-empty series or slice.
    EmptyInput,
    /// Two series that must be sampled alike had different lengths.
    LengthMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
    /// Two series that must be sampled alike had different intervals.
    IntervalMismatch {
        /// Interval of the first operand, in seconds.
        left: f64,
        /// Interval of the second operand, in seconds.
        right: f64,
    },
    /// A percentile outside the closed range `[0, 100]` was requested.
    InvalidPercentile(f64),
    /// A sample value was NaN or infinite where a finite value is required.
    NonFiniteSample {
        /// Index of the offending sample.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A generic invalid parameter with a short description.
    InvalidParameter(&'static str),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidInterval(dt) => {
                write!(f, "invalid sampling interval {dt}, must be finite and > 0")
            }
            TraceError::EmptyInput => write!(f, "operation requires non-empty input"),
            TraceError::LengthMismatch { left, right } => {
                write!(f, "series length mismatch: {left} vs {right}")
            }
            TraceError::IntervalMismatch { left, right } => {
                write!(f, "sampling interval mismatch: {left} vs {right}")
            }
            TraceError::InvalidPercentile(p) => {
                write!(f, "percentile {p} outside [0, 100]")
            }
            TraceError::NonFiniteSample { index, value } => {
                write!(f, "non-finite sample {value} at index {index}")
            }
            TraceError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            TraceError::InvalidInterval(-1.0),
            TraceError::EmptyInput,
            TraceError::LengthMismatch { left: 1, right: 2 },
            TraceError::IntervalMismatch {
                left: 1.0,
                right: 2.0,
            },
            TraceError::InvalidPercentile(101.0),
            TraceError::NonFiniteSample {
                index: 3,
                value: f64::NAN,
            },
            TraceError::InvalidParameter("cv must be positive"),
        ];
        for v in variants {
            let msg = v.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<TraceError>();
    }
}
