//! Property-based tests for the time-series substrate.

use cavm_trace::{
    percentile, Envelope, P2Quantile, Reference, SimRng, TimeSeries, Welford, WindowedMax,
};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6f64, 1..max_len)
}

proptest! {
    /// Percentiles are monotone in p and bracketed by min/max.
    #[test]
    fn percentile_monotone(values in finite_vec(200), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&values, lo).unwrap();
        let b = percentile(&values, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
    }

    /// peak(a+b) is subadditive and at least the larger single peak —
    /// the inequality underlying the paper's Cost ∈ [1, 2] bound
    /// (for non-negative utilization signals).
    #[test]
    fn peak_subadditive(
        pairs in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..100)
    ) {
        let (xs, ys): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let a = TimeSeries::new(1.0, xs).unwrap();
        let b = TimeSeries::new(1.0, ys).unwrap();
        let sum = TimeSeries::sum_of(&[&a, &b]).unwrap();
        prop_assert!(sum.peak() <= a.peak() + b.peak() + 1e-9);
        prop_assert!(sum.peak() >= a.peak().max(b.peak()) - 1e-9);
    }

    /// Welford matches the two-pass computation.
    #[test]
    fn welford_matches_two_pass(values in finite_vec(300)) {
        let mut w = Welford::new();
        for &v in &values { w.push(v); }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / values.len() as f64;
        let scale = 1.0 + mean.abs() + var.abs();
        prop_assert!((w.mean() - mean).abs() / scale < 1e-9);
        prop_assert!((w.population_variance() - var).abs() / scale.powi(2).max(1.0) < 1e-6);
    }

    /// Welford merge is equivalent to sequential feeding.
    #[test]
    fn welford_merge_associative(a in finite_vec(100), b in finite_vec(100)) {
        let mut seq = Welford::new();
        for &v in a.iter().chain(b.iter()) { seq.push(v); }
        let mut wa = Welford::new();
        for &v in &a { wa.push(v); }
        let mut wb = Welford::new();
        for &v in &b { wb.push(v); }
        wa.merge(&wb);
        let scale = 1.0 + seq.mean().abs();
        prop_assert!((wa.mean() - seq.mean()).abs() / scale < 1e-9);
        prop_assert!(
            (wa.population_variance() - seq.population_variance()).abs()
                / (1.0 + seq.population_variance()) < 1e-6
        );
    }

    /// coarsen_mean preserves the overall mean when len divides evenly.
    #[test]
    fn coarsen_preserves_mean(values in prop::collection::vec(-1e3f64..1e3, 1..50), factor in 1usize..5) {
        let padded: Vec<f64> = values
            .iter()
            .copied()
            .cycle()
            .take(values.len() * factor)
            .collect();
        let t = TimeSeries::new(1.0, padded).unwrap();
        let c = t.coarsen_mean(factor).unwrap();
        prop_assert!((c.mean() - t.mean()).abs() < 1e-6);
        // Peak-preserving variant dominates the mean variant (up to
        // float round-off in the chunk mean).
        let m = t.coarsen_max(factor).unwrap();
        for (a, b) in m.values().iter().zip(c.values()) {
            prop_assert!(*a >= b - 1e-9 * (1.0 + b.abs()));
        }
    }

    /// Envelope overlap metrics stay in [0, 1] and Jaccard ≤ containment.
    #[test]
    fn envelope_metric_bounds(
        bits in prop::collection::vec((any::<bool>(), any::<bool>()), 1..200)
    ) {
        let (xs, ys): (Vec<bool>, Vec<bool>) = bits.into_iter().unzip();
        let a = Envelope::from_bits(xs);
        let b = Envelope::from_bits(ys);
        let j = a.jaccard(&b).unwrap();
        let c = a.containment(&b).unwrap();
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(j <= c + 1e-12);
    }

    /// The reference utilization of a percentile never exceeds the peak.
    #[test]
    fn reference_percentile_below_peak(values in finite_vec(200), p in 0.0f64..100.0) {
        let perc = Reference::Percentile(p).of(&values).unwrap();
        let peak = Reference::Peak.of(&values).unwrap();
        prop_assert!(perc <= peak + 1e-9);
    }

    /// WindowedMax equals the naive max over the trailing window.
    #[test]
    fn windowed_max_correct(values in finite_vec(150), window in 1usize..20) {
        let mut w = WindowedMax::new(window).unwrap();
        for (i, &x) in values.iter().enumerate() {
            w.push(x);
            let lo = i + 1 - window.min(i + 1);
            let naive = values[lo..=i].iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(w.max().unwrap(), naive);
        }
    }

    /// P² stays within the sample range and is finite.
    #[test]
    fn p2_stays_in_range(seed in any::<u64>(), q in 0.05f64..0.95) {
        let mut rng = SimRng::new(seed);
        let mut est = P2Quantile::new(q).unwrap();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..500 {
            let x = rng.range_f64(-5.0, 5.0);
            min = min.min(x);
            max = max.max(x);
            est.push(x);
        }
        let e = est.estimate().unwrap();
        prop_assert!(e.is_finite());
        prop_assert!(e >= min - 1e-9 && e <= max + 1e-9);
    }

    /// SimRng::below is always in range.
    #[test]
    fn below_in_range(seed in any::<u64>(), n in 1usize..1000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// Lognormal draws are positive when the mean is positive.
    #[test]
    fn lognormal_positive(seed in any::<u64>(), mean in 0.01f64..100.0, cv in 0.0f64..3.0) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.lognormal_mean_cv(mean, cv) > 0.0);
        }
    }
}
