//! No-op derive macros mirroring `serde_derive`'s entry points.
//!
//! The workspace builds in an offline environment without the real
//! `serde` crates. Nothing in this repository serializes at runtime —
//! the derives exist so types stay annotated for a future switch to the
//! real serde — so expanding to an empty token stream is sufficient: the
//! sibling `serde` stub provides blanket trait impls that satisfy any
//! `Serialize`/`Deserialize` bound.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
