//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no access to a crate registry, so this
//! workspace vendors the minimal serde surface it actually uses:
//! `#[derive(Serialize, Deserialize)]` annotations on plain data types.
//! No code path serializes at runtime, therefore:
//!
//! * the derive macros (re-exported from the sibling `serde_derive`
//!   stub) expand to nothing, and
//! * the traits are markers with blanket impls, so any generic bound on
//!   `Serialize`/`Deserialize` is trivially satisfied.
//!
//! Swapping in the real serde later is a two-line `Cargo.toml` change;
//! no source file needs to move because the import paths match.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for
/// all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
