//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach a crate registry, so this stub
//! re-implements the (small) slice of the proptest API the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (`#[test] fn name(x in strategy, ...) { .. }`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`Strategy`] with range, tuple, [`Just`], `prop_map` and
//!   `prop::collection::vec` combinators,
//! * [`any`] for primitive types.
//!
//! Differences from the real crate: generation is driven by a fixed
//! per-test deterministic seed (derived from the test name), there is no
//! shrinking, and each test runs [`DEFAULT_CASES`] cases (override with
//! the `PROPTEST_CASES` environment variable). Failures report the case
//! number so a failing input can be reproduced exactly.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Number of random cases per property when `PROPTEST_CASES` is unset.
pub const DEFAULT_CASES: u32 = 64;

/// Reads the per-test case budget from the environment.
pub fn cases_from_env() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// A property-test failure (produced by [`prop_assert!`] and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// SplitMix64 — a tiny, high-quality deterministic generator; good
/// enough for test-input generation and dependency-free.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.u64() % bound
    }
}

/// A generator of test inputs (no shrinking in this stub).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Closed interval: admit the endpoint by widening one ulp's
        // worth; exact endpoint hits are as likely as with real
        // proptest's open-closed scheme.
        lo + rng.f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Full-domain strategy for primitive types — `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Creates an [`Any`] strategy.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.u64()
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, wide dynamic range.
        (rng.f64() * 2.0 - 1.0) * 1e9
    }
}

/// `prop::...` namespace mirror.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Length specification for [`vec()`](fn@vec): an exact size
        /// or a range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            min: usize,
            /// Exclusive upper bound.
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(exact: usize) -> Self {
                Self {
                    min: exact,
                    max: exact + 1,
                }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty length range");
                Self {
                    min: r.start,
                    max: r.end,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                Self {
                    min: *r.start(),
                    max: *r.end() + 1,
                }
            }
        }

        /// Strategy for `Vec`s with lengths drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        /// `prop::collection::vec(element, min..max)` (or an exact
        /// usize length).
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.max - self.len.min) as u64;
                let n = self.len.min + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property test needs, in one import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Just,
        Strategy, TestCaseError,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies: `proptest! { #[test] fn name(x in strat) { body } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = $crate::cases_from_env();
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cases {
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(e) = result {
                        panic!("property '{}' failed on case {}/{}: {}",
                            stringify!($name), case + 1, cases, e);
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// `prop_assert_ne!(left, right)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.u64(), b.u64());
        let mut c = crate::TestRng::deterministic("y");
        assert_ne!(a.u64(), c.u64());
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 1.5f64..2.5, n in 3usize..7, b in any::<bool>()) {
            prop_assert!((1.5..2.5).contains(&x), "x out of range: {}", x);
            prop_assert!((3..7).contains(&n));
            prop_assert!(b == b, "bool strategy produced {}", b);
        }

        #[test]
        fn vec_and_tuple_strategies(v in prop::collection::vec((0.0f64..1.0, 2u32..4), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (f, i) in &v {
                prop_assert!((0.0..1.0).contains(f));
                prop_assert!((2..4).contains(i));
            }
        }
    }
}
